//! Integration test of the "large-scale ML" workflow the paper sketches in
//! Section 3.1: build sketches distributively on partitions, serialize them
//! to the driver, deserialize, and use them for compilation decisions —
//! all without ever shipping the matrices themselves.

use std::sync::Arc;

use mnc::core::{
    build_distributed, estimate_matmul_ci, from_bytes, to_bytes, MncConfig, MncSketch, OpKind,
};
use mnc::matrix::partition::RowPartitionedMatrix;
use mnc::matrix::{gen, ops};
use rand::SeedableRng;

#[test]
fn executor_to_driver_roundtrip_preserves_estimates() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let a = gen::rand_uniform(&mut rng, 300, 200, 0.02);
    let b = gen::rand_uniform(&mut rng, 200, 250, 0.03);

    // "Executors" build partial sketches; the "driver" collects bytes.
    let wire_a = to_bytes(&build_distributed(&RowPartitionedMatrix::from_matrix(
        &a, 6,
    )));
    let wire_b = to_bytes(&build_distributed(&RowPartitionedMatrix::from_matrix(
        &b, 3,
    )));

    // Driver-side estimation from deserialized sketches only.
    let ha = from_bytes(&wire_a).expect("valid sketch bytes");
    let hb = from_bytes(&wire_b).expect("valid sketch bytes");
    let est = MncSketch::estimate(&OpKind::MatMul, &[&ha, &hb]).unwrap();

    // Same value as fully local estimation, and close to the truth.
    let local = MncSketch::estimate(
        &OpKind::MatMul,
        &[&MncSketch::build(&a), &MncSketch::build(&b)],
    )
    .unwrap();
    assert_eq!(est, local);
    let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
    let rel = est.max(truth) / est.min(truth).max(1e-12);
    assert!(rel < 1.3, "relative error {rel}");
}

#[test]
fn confidence_interval_travels_with_the_sketch() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let a = gen::rand_uniform(&mut rng, 120, 100, 0.05);
    let b = gen::rand_uniform(&mut rng, 100, 150, 0.06);
    let ha = from_bytes(&to_bytes(&MncSketch::build(&a))).unwrap();
    let hb = from_bytes(&to_bytes(&MncSketch::build(&b))).unwrap();
    let ci = estimate_matmul_ci(&ha, &hb, &MncConfig::default(), 0.99);
    assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
    let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
    assert!(
        ci.covers(truth),
        "99% interval [{}, {}] missed truth {truth}",
        ci.lower,
        ci.upper
    );
}

#[test]
fn partitioned_sketch_of_structured_matrix_keeps_exactness() {
    // A permutation split over partitions still yields an exact estimate
    // (the structural metadata survives the distributed merge).
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let p = gen::permutation(&mut rng, 128);
    let x = gen::rand_uniform(&mut rng, 128, 60, 0.1);
    let hp = build_distributed(&RowPartitionedMatrix::from_matrix(&p, 5));
    let hx = MncSketch::build(&x);
    assert_eq!(hp.meta.max_hr, 1);
    let est = MncSketch::estimate(&OpKind::MatMul, &[&hp, &hx]).unwrap();
    assert!((est - x.sparsity()).abs() < 1e-12);
}

#[test]
fn planner_works_from_deserialized_leaf_sketches() {
    // The planner consumes synopses built by the estimator; here we verify
    // the end-to-end story where the DAG is planned in a driver that only
    // has (deserialized) sketch state available for format decisions.
    use mnc::estimators::MncEstimator;
    use mnc::expr::{ExprDag, Format, Planner};

    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let counts = vec![1u32; 500];
    let tokens = gen::rand_with_row_counts(&mut rng, 500, &counts);
    let emb = gen::rand_dense(&mut rng, 500, 32);
    let mut dag = ExprDag::new();
    let s = dag.leaf("S", Arc::new(tokens));
    let w = dag.leaf("W", Arc::new(emb));
    let sw = dag.matmul(s, w).unwrap();
    let plan = Planner::default().plan(&MncEstimator::new(), &dag).unwrap();
    // One token per row meeting a dense embedding: fully dense output rows,
    // so the product is dense and must be planned as such.
    assert_eq!(plan.node(sw).format, Format::Dense);
    assert!((plan.node(sw).sparsity - 1.0).abs() < 1e-9);
}
