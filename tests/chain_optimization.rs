//! Integration tests for the Appendix C optimizer across crates: DP
//! optimality against exhaustive enumeration, and estimated vs exact costs.

use std::sync::Arc;

use mnc::core::{MncConfig, MncSketch, SplitMix64};
use mnc::expr::{
    chain_flops_exact, dense_chain_order, plan_cost_sketched, random_plan, sparse_chain_order,
    PlanTree,
};
use mnc::matrix::{gen, CsrMatrix};
use rand::SeedableRng;

fn chain(seed: u64, dims: &[usize], sparsities: &[f64]) -> Vec<Arc<CsrMatrix>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    dims.windows(2)
        .zip(sparsities)
        .map(|(w, &s)| {
            Arc::new(gen::rand_uniform(
                &mut rng,
                w[0],
                w[1],
                s.max(1.0 / (w[0] * w[1]) as f64),
            ))
        })
        .collect()
}

/// Enumerates every parenthesization of `n` matrices.
fn all_plans(lo: usize, hi: usize) -> Vec<PlanTree> {
    if lo == hi {
        return vec![PlanTree::Leaf(lo)];
    }
    let mut out = Vec::new();
    for k in lo..hi {
        for l in all_plans(lo, k) {
            for r in all_plans(k + 1, hi) {
                out.push(PlanTree::Node(Box::new(l.clone()), Box::new(r.clone())));
            }
        }
    }
    out
}

#[test]
fn dense_dp_matches_exhaustive_enumeration() {
    let dims = [7usize, 12, 4, 20, 9, 15];
    let (dp_cost, _) = dense_chain_order(&dims);
    let plans = all_plans(0, dims.len() - 2);
    let best = plans
        .iter()
        .map(|p| dense_plan_cost(&dims, p))
        .fold(f64::INFINITY, f64::min);
    assert_eq!(dp_cost, best);
}

fn dense_plan_cost(dims: &[usize], plan: &PlanTree) -> f64 {
    fn go(dims: &[usize], plan: &PlanTree) -> (usize, usize, f64) {
        match plan {
            PlanTree::Leaf(i) => (dims[*i], dims[*i + 1], 0.0),
            PlanTree::Node(l, r) => {
                let (ml, nl, cl) = go(dims, l);
                let (nr2, lr, cr) = go(dims, r);
                assert_eq!(nl, nr2);
                (ml, lr, cl + cr + ml as f64 * nl as f64 * lr as f64)
            }
        }
    }
    go(dims, plan).2
}

#[test]
fn sparse_dp_matches_exhaustive_enumeration_under_its_own_cost_model() {
    // The DP must find the cheapest plan under the sketched cost model.
    // Note: the DP memoizes the sketch of the *optimal* subchain, while
    // plan_cost_sketched propagates along the evaluated plan — for exact
    // base sketches and deterministic rounding both agree.
    let dims = [8usize, 30, 6, 25, 12];
    let sparsities = [0.2, 0.05, 0.3, 0.1];
    let mats = chain(5, &dims, &sparsities);
    let sketches: Vec<MncSketch> = mats.iter().map(|m| MncSketch::build(m)).collect();
    let cfg = MncConfig {
        probabilistic_rounding: false,
        ..MncConfig::default()
    };
    let (dp_cost, dp_plan) = sparse_chain_order(&sketches, &cfg);
    let plans = all_plans(0, mats.len() - 1);
    let mut best = f64::INFINITY;
    for p in &plans {
        best = best.min(plan_cost_sketched(&sketches, p, &cfg));
    }
    let dp_replayed = plan_cost_sketched(&sketches, &dp_plan, &cfg);
    assert!(
        (dp_cost - dp_replayed).abs() < 1e-6,
        "DP cost {dp_cost} vs replay {dp_replayed}"
    );
    assert!(
        dp_cost <= best + 1e-6,
        "DP {dp_cost} worse than exhaustive best {best}"
    );
}

#[test]
fn sparse_plan_beats_random_plans_in_actual_flops() {
    let dims = [30usize, 120, 15, 100, 25, 40];
    let sparsities = [0.05, 0.01, 0.3, 0.02, 0.2];
    let mats = chain(9, &dims, &sparsities);
    let sketches: Vec<MncSketch> = mats.iter().map(|m| MncSketch::build(m)).collect();
    let (_, plan) = sparse_chain_order(&sketches, &MncConfig::default());
    let opt_flops = chain_flops_exact(&mats, &plan);
    let mut rng = SplitMix64::new(77);
    const TRIALS: usize = 30;
    let mut costs: Vec<u64> = (0..TRIALS)
        .map(|_| chain_flops_exact(&mats, &random_plan(mats.len(), &mut rng)))
        .collect();
    costs.sort_unstable();
    // The optimized plan is chosen on *estimated* costs, so it may lose a
    // photo finish in actual FLOPs — but it must beat the median random
    // plan and stay within 1.5x of the best one sampled.
    assert!(
        opt_flops <= costs[TRIALS / 2],
        "optimized {opt_flops} worse than median random {}",
        costs[TRIALS / 2]
    );
    assert!(
        opt_flops as f64 <= 1.5 * costs[0] as f64,
        "optimized {opt_flops} vs best random {}",
        costs[0]
    );
}

#[test]
fn optimizer_handles_degenerate_chains() {
    // Length-1 and length-2 chains.
    let (c1, p1) = dense_chain_order(&[5, 9]);
    assert_eq!(c1, 0.0);
    assert_eq!(p1, PlanTree::Leaf(0));

    let mats = chain(3, &[5, 9, 4], &[0.5, 0.5]);
    let sketches: Vec<MncSketch> = mats.iter().map(|m| MncSketch::build(m)).collect();
    let (c2, p2) = sparse_chain_order(&sketches, &MncConfig::default());
    assert!(c2 > 0.0);
    assert_eq!(p2.to_string(), "(M0 M1)");
    // DP cost equals the exact first-product FLOPs (base sketches exact).
    let exact = chain_flops_exact(&mats, &p2) as f64;
    assert_eq!(c2, exact);
}
