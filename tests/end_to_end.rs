//! Cross-crate integration tests: the SparsEst suite at test scale, driving
//! every estimator through the full pipeline (datasets → DAGs → synopses →
//! estimates → metrics).

use mnc::estimators::{BitsetEstimator, MncEstimator, SparsityEstimator};
use mnc::expr::{estimate_root, Evaluator};
use mnc::sparsest::datasets::Datasets;
use mnc::sparsest::runner::{run_case, run_tracked, standard_estimators};
use mnc::sparsest::usecases::{b1_suite, b2_suite, b3_suite};
use mnc::sparsest::Outcome;

fn refs(ests: &[Box<dyn SparsityEstimator>]) -> Vec<&dyn SparsityEstimator> {
    ests.iter().map(|b| b.as_ref()).collect()
}

#[test]
fn full_b1_suite_with_all_estimators() {
    let ests = standard_estimators();
    let refs = refs(&ests);
    for case in b1_suite(0.004, 17) {
        let results = run_case(&case, &refs);
        assert_eq!(results.len(), refs.len(), "{}", case.id);
        for r in &results {
            if let Outcome::Estimate {
                estimate,
                relative_error,
            } = &r.outcome
            {
                assert!(
                    (0.0..=1.0).contains(estimate),
                    "{} {}: estimate {estimate}",
                    r.case,
                    r.estimator
                );
                assert!(
                    *relative_error >= 1.0,
                    "{} {}: error {relative_error}",
                    r.case,
                    r.estimator
                );
            }
        }
        // MNC and Bitset exact on all B1 use cases (paper Section 6.3).
        for name in ["MNC", "Bitset"] {
            let r = results.iter().find(|r| r.estimator == name).unwrap();
            assert!(
                r.outcome.error().unwrap() < 1.0 + 1e-9,
                "{} {} not exact",
                case.id,
                name
            );
        }
    }
}

#[test]
fn full_b2_and_b3_suites_run_clean() {
    let data = Datasets::with_scale(23, 0.015);
    let ests = standard_estimators();
    let refs = refs(&ests);
    let mut supported = 0usize;
    for case in b2_suite(&data).iter().chain(b3_suite(&data).iter()) {
        for r in run_case(case, &refs) {
            if let Some(err) = r.outcome.error() {
                supported += 1;
                assert!(err >= 1.0, "{} {}: {err}", r.case, r.estimator);
            }
        }
    }
    // Most (case, estimator) pairs must produce estimates.
    assert!(supported > 50, "only {supported} supported pairs");
}

#[test]
fn mnc_beats_naive_metadata_on_structured_cases() {
    // The headline claim: on structured inputs MNC's error is far below
    // the metadata estimators'.
    let ests = standard_estimators();
    let refs = refs(&ests);
    for case in b1_suite(0.004, 29) {
        let results = run_case(&case, &refs);
        let err_of = |name: &str| {
            results
                .iter()
                .find(|r| r.estimator == name)
                .and_then(|r| r.outcome.error())
        };
        let mnc = err_of("MNC").expect("MNC always applies");
        for naive in ["MetaAC", "MetaWC"] {
            if let Some(e) = err_of(naive) {
                assert!(mnc <= e + 1e-9, "{}: MNC {mnc} vs {naive} {e}", case.id);
            }
        }
    }
}

#[test]
fn tracked_chain_errors_grow_for_mnc_and_stay_low_for_lgraph() {
    let data = Datasets::with_scale(31, 0.05);
    let case = b3_suite(&data)
        .into_iter()
        .find(|c| c.id == "B3.3")
        .unwrap();
    let mnc = MncEstimator::new();
    let lg = mnc::estimators::LayeredGraphEstimator::with_rounds(64);
    let ests: Vec<&dyn SparsityEstimator> = vec![&mnc, &lg];
    let results = run_tracked(&case, &ests);
    // First hop: MNC exact (selection matrix product, Theorem 3.1).
    let first_mnc = results
        .iter()
        .find(|r| r.case.ends_with("/PG") && r.estimator == "MNC")
        .unwrap();
    assert!(first_mnc.outcome.error().unwrap() < 1.0 + 1e-9);
    // The layered graph stays below 2x everywhere (paper: near 1).
    for r in results.iter().filter(|r| r.estimator == "LGraph") {
        let e = r.outcome.error().unwrap();
        assert!(e < 2.0, "{}: LGraph error {e}", r.case);
    }
}

#[test]
fn bitset_is_ground_truth_on_every_supported_case() {
    let data = Datasets::with_scale(37, 0.01);
    let bitset = BitsetEstimator::default();
    let ests: Vec<&dyn SparsityEstimator> = vec![&bitset];
    for case in b2_suite(&data) {
        let results = run_case(&case, &ests);
        let err = results[0].outcome.error().expect("bitset applies");
        assert!(err < 1.0 + 1e-9, "{}: bitset error {err}", case.id);
    }
}

#[test]
fn spatial_predicate_with_max_replacing_or() {
    // Section 5's spatial-processing remark: `⊙` replaces `∧`, `max`
    // replaces `∨`. Build X ⊙ ((R ⊙ S max T) != 0) and check that the MNC
    // estimate matches the variant using `+` (the patterns are identical
    // under A1) and stays close to the exact result.
    use mnc::expr::{ExprDag, OpKind};
    use mnc::matrix::gen;
    use rand::SeedableRng;
    use std::sync::Arc;

    let mut rng = rand::rngs::StdRng::seed_from_u64(55);
    let x = Arc::new(gen::rand_uniform(&mut rng, 60, 40, 0.3));
    let r = Arc::new(gen::rand_uniform(&mut rng, 60, 40, 0.4));
    let s = Arc::new(gen::rand_uniform(&mut rng, 60, 40, 0.2));
    let t = Arc::new(gen::rand_uniform(&mut rng, 60, 40, 0.1));

    let build = |combine: OpKind| {
        let mut dag = ExprDag::new();
        let nx = dag.leaf("X", Arc::clone(&x));
        let nr = dag.leaf("R", Arc::clone(&r));
        let ns = dag.leaf("S", Arc::clone(&s));
        let nt = dag.leaf("T", Arc::clone(&t));
        let rs = dag.ew_mul(nr, ns).unwrap();
        let rst = dag.op(combine, &[rs, nt]).unwrap();
        let mask = dag.op(OpKind::Neq0, &[rst]).unwrap();
        let root = dag.ew_mul(nx, mask).unwrap();
        (dag, root)
    };

    let mnc = MncEstimator::new();
    let (dag_max, root_max) = build(OpKind::EwMax);
    let (dag_add, root_add) = build(OpKind::EwAdd);
    let est_max = estimate_root(&mnc, &dag_max, root_max).unwrap();
    let est_add = estimate_root(&MncEstimator::new(), &dag_add, root_add).unwrap();
    assert_eq!(
        est_max, est_add,
        "max and + are pattern-equivalent under A1"
    );

    let truth = Evaluator::new().sparsity(&dag_max, root_max).unwrap();
    let rel = est_max.max(truth) / est_max.min(truth).max(1e-12);
    assert!(rel < 1.3, "relative error {rel}");
}

#[test]
fn estimate_root_agrees_with_runner() {
    let data = Datasets::with_scale(41, 0.01);
    let case = &b2_suite(&data)[0];
    let mnc = MncEstimator::new();
    let direct = estimate_root(&mnc, &case.dag, case.root).unwrap();
    let ests: Vec<&dyn SparsityEstimator> = vec![&mnc];
    let via_runner = match &run_case(case, &ests)[0].outcome {
        Outcome::Estimate { estimate, .. } => *estimate,
        other => panic!("unexpected outcome {other:?}"),
    };
    assert!((direct - via_runner).abs() < 1e-15);
    // And the runner's truth agrees with direct evaluation.
    let truth = Evaluator::new().sparsity(&case.dag, case.root).unwrap();
    assert!((run_case(case, &ests)[0].truth - truth).abs() < 1e-15);
}
