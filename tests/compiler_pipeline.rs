//! End-to-end "optimizing compiler" pipeline test: build a realistic
//! expression, estimate it, rewrite its product chains sparsity-aware,
//! plan formats and memory, and finally execute both the original and the
//! rewritten plans to check semantics and cost.

use std::sync::Arc;

use mnc::core::MncConfig;
use mnc::estimators::{MetaAcEstimator, MncEstimator};
use mnc::expr::{estimate_root, rewrite_mm_chains, Evaluator, ExprDag, ExprNode, NodeId, Planner};
use mnc::matrix::{gen, CsrMatrix};
use rand::SeedableRng;

/// A regression-style scoring expression with an embedded 4-matrix chain:
/// `((X S) W1 W2) + B` where S is ultra-sparse and large.
fn build_pipeline(seed: u64) -> (ExprDag, NodeId) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let x = gen::rand_uniform(&mut rng, 60, 400, 0.15);
    let s = gen::rand_uniform(&mut rng, 400, 400, 0.002);
    let w1 = gen::rand_uniform(&mut rng, 400, 50, 0.4);
    let w2 = gen::rand_uniform(&mut rng, 50, 20, 0.5);
    let b = gen::rand_uniform(&mut rng, 60, 20, 0.3);
    let mut dag = ExprDag::new();
    let nx = dag.leaf("X", Arc::new(x));
    let ns = dag.leaf("S", Arc::new(s));
    let n1 = dag.leaf("W1", Arc::new(w1));
    let n2 = dag.leaf("W2", Arc::new(w2));
    let nb = dag.leaf("B", Arc::new(b));
    let xs = dag.matmul(nx, ns).unwrap();
    let h1 = dag.matmul(xs, n1).unwrap();
    let h2 = dag.matmul(h1, n2).unwrap();
    let out = dag.ew_add(h2, nb).unwrap();
    (dag, out)
}

#[test]
fn estimate_rewrite_plan_execute() {
    let (dag, root) = build_pipeline(7);

    // 1. Estimation: MNC lands close to the truth, MetaAC is usable too.
    let truth = Evaluator::new().sparsity(&dag, root).unwrap();
    let mnc_est = estimate_root(&MncEstimator::new(), &dag, root).unwrap();
    let rel = mnc_est.max(truth) / mnc_est.min(truth).max(1e-12);
    assert!(rel < 1.6, "MNC estimate off by {rel}");
    let _ = estimate_root(&MetaAcEstimator, &dag, root).unwrap();

    // 2. Rewrite: the 4-matrix chain is found and re-parenthesized.
    let rewritten = rewrite_mm_chains(&dag, &MncConfig::default()).unwrap();
    assert_eq!(rewritten.chains_rewritten, 1);

    // 3. Semantics preserved (up to FP reassociation).
    let new_root = rewritten.node_map[&root];
    let before = Evaluator::new().eval(&dag, root).unwrap();
    let after = Evaluator::new().eval(&rewritten.dag, new_root).unwrap();
    assert!(after.same_pattern(&before));

    // 4. Planning both DAGs: the rewritten plan must not cost more
    //    estimated FLOPs (the optimizer's objective).
    let planner = Planner::default();
    let plan_old = planner.plan(&MncEstimator::new(), &dag).unwrap();
    let plan_new = planner.plan(&MncEstimator::new(), &rewritten.dag).unwrap();
    // Probabilistic rounding gives each propagation pass its own noise, so
    // allow a small tolerance around "not worse".
    assert!(
        plan_new.total_flops <= plan_old.total_flops * 1.1,
        "rewritten {} vs original {}",
        plan_new.total_flops,
        plan_old.total_flops
    );
}

#[test]
fn rewrite_handles_multiple_independent_chains() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mk = |rng: &mut rand::rngs::StdRng, m: usize, n: usize| {
        Arc::new(gen::rand_uniform(rng, m, n, 0.2))
    };
    let mut dag = ExprDag::new();
    // Chain 1: A B C.
    let a = dag.leaf("A", mk(&mut rng, 10, 30));
    let b = dag.leaf("B", mk(&mut rng, 30, 8));
    let c = dag.leaf("C", mk(&mut rng, 8, 12));
    let ab = dag.matmul(a, b).unwrap();
    let abc = dag.matmul(ab, c).unwrap();
    // Chain 2: D E F (independent).
    let d = dag.leaf("D", mk(&mut rng, 12, 25));
    let e = dag.leaf("E", mk(&mut rng, 25, 7));
    let f = dag.leaf("F", mk(&mut rng, 7, 12));
    let de = dag.matmul(d, e).unwrap();
    let def = dag.matmul(de, f).unwrap();
    // Join the chains element-wise (both are 10x12 / 12x12 → mismatch!).
    // Use a product join instead: (A B C)(D E F) is 10x12 · 12x12.
    let joined = dag.matmul(abc, def).unwrap();

    let rewritten = rewrite_mm_chains(&dag, &MncConfig::default()).unwrap();
    // The join dissolves both sub-chains into one maximal 6-matrix chain.
    assert!(rewritten.chains_rewritten >= 1);
    let new_root = rewritten.node_map[&joined];
    let before = Evaluator::new().eval(&dag, joined).unwrap();
    let after = Evaluator::new().eval(&rewritten.dag, new_root).unwrap();
    assert!(after.same_pattern(&before));
    // All original leaves survive in the rewritten DAG.
    let leaf_count = rewritten
        .dag
        .iter()
        .filter(|(_, n)| matches!(n, ExprNode::Leaf { .. }))
        .count();
    assert_eq!(leaf_count, 6);
}

#[test]
fn planner_totals_are_consistent() {
    let (dag, _) = build_pipeline(13);
    let plan = Planner::default().plan(&MncEstimator::new(), &dag).unwrap();
    let sum_mem: f64 = plan.nodes.iter().map(|n| n.memory_bytes).sum();
    let sum_flops: f64 = plan.nodes.iter().map(|n| n.flops).sum();
    assert_eq!(sum_mem, plan.total_memory_bytes);
    assert_eq!(sum_flops, plan.total_flops);
    // Leaves carry no compute cost.
    for (id, node) in dag.iter() {
        if matches!(node, ExprNode::Leaf { .. }) {
            assert_eq!(plan.node(id).flops, 0.0);
        }
    }
}

/// Execution helper used by the pipeline test (kept to assert the kernels
/// agree with the planner's shape bookkeeping).
#[test]
fn planner_shapes_match_execution() {
    let (dag, root) = build_pipeline(17);
    let plan = Planner::default().plan(&MncEstimator::new(), &dag).unwrap();
    let result: Arc<CsrMatrix> = Evaluator::new().eval(&dag, root).unwrap();
    assert_eq!(plan.node(root).shape, result.shape());
}
