//! Property-based tests of the core invariants, across random matrices:
//! sketch construction identities, the theorems of Section 3, estimator
//! ranges, exactness of the bitset reference, and kernel algebra.

use std::sync::Arc;

use proptest::prelude::*;

use mnc::core::{MncConfig, MncSketch, SplitMix64};
use mnc::estimators::{BitsetEstimator, OpKind, SparsityEstimator};
use mnc::matrix::{gen, ops, CsrMatrix};
use rand::SeedableRng;

/// Strategy: a random sparse matrix described by (rows, cols, sparsity,
/// seed) — generated deterministically inside the property.
fn matrix_params() -> impl Strategy<Value = (usize, usize, f64, u64)> {
    (2usize..40, 2usize..40, 0.0f64..0.5, any::<u64>())
}

fn make(rows: usize, cols: usize, s: f64, seed: u64) -> CsrMatrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    gen::rand_uniform(&mut rng, rows, cols, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Σ h^r = nnz = Σ h^c` for sketches built from matrices.
    #[test]
    fn sketch_count_sums_equal_nnz((m, n, s, seed) in matrix_params()) {
        let a = make(m, n, s, seed);
        let h = MncSketch::build(&a);
        let rsum: u64 = h.hr.iter().map(|&c| c as u64).sum();
        let csum: u64 = h.hc.iter().map(|&c| c as u64).sum();
        prop_assert_eq!(rsum, a.nnz() as u64);
        prop_assert_eq!(csum, a.nnz() as u64);
        prop_assert_eq!(h.meta.nnz, a.nnz() as u64);
    }

    /// Extended counts never exceed their base counts.
    #[test]
    fn extended_counts_bounded((m, n, s, seed) in matrix_params()) {
        let a = make(m, n, s, seed);
        let h = MncSketch::build(&a);
        if let Some(her) = &h.her {
            for (e, b) in her.iter().zip(&h.hr) {
                prop_assert!(e <= b);
            }
        }
        if let Some(hec) = &h.hec {
            for (e, b) in hec.iter().zip(&h.hc) {
                prop_assert!(e <= b);
            }
        }
    }

    /// Theorem 3.1: whenever `max(h^r_A) <= 1` or `max(h^c_B) <= 1`, the
    /// MNC product estimate equals the true boolean-product sparsity.
    #[test]
    fn theorem_3_1_exactness(
        rows in 2usize..30,
        inner in 2usize..30,
        cols in 2usize..30,
        s in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        // Left operand: at most one non-zero per row.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let counts: Vec<u32> = (0..rows).map(|i| u32::from((seed >> (i % 60)) & 1 == 1)).collect();
        let a = gen::rand_with_row_counts(&mut rng, inner, &counts);
        let b = make(inner, cols, s, seed ^ 1);
        let (ha, hb) = (MncSketch::build(&a), MncSketch::build(&b));
        prop_assert!(ha.meta.max_hr <= 1);
        let est = MncSketch::estimate(&OpKind::MatMul, &[&ha, &hb]).unwrap();
        let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
        prop_assert!((est - truth).abs() < 1e-12, "est {} truth {}", est, truth);
    }

    /// Theorem 3.2: the bounds hold for the true output sparsity, and the
    /// bounded estimate respects them.
    #[test]
    fn theorem_3_2_bounds(
        (m, n, s, seed) in matrix_params(),
        cols in 2usize..30,
        s2 in 0.0f64..0.5,
    ) {
        let a = make(m, n, s, seed);
        let b = make(n, cols, s2, seed ^ 2);
        let (ha, hb) = (MncSketch::build(&a), MncSketch::build(&b));
        let cells = (m * cols) as f64;
        let lower = (ha.meta.half_full_rows * hb.meta.half_full_cols) as f64 / cells;
        let upper = (ha.meta.nonempty_rows * hb.meta.nonempty_cols) as f64 / cells;
        let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
        prop_assert!(lower <= truth + 1e-12);
        prop_assert!(truth <= upper + 1e-12);
        let est = MncSketch::estimate(&OpKind::MatMul, &[&ha, &hb]).unwrap();
        prop_assert!(est >= lower - 1e-12 && est <= upper + 1e-12);
    }

    /// All MNC product estimates are valid sparsities, with or without
    /// bounds/extended counts.
    #[test]
    fn estimates_always_in_unit_interval(
        (m, n, s, seed) in matrix_params(),
        cols in 2usize..30,
        s2 in 0.0f64..0.6,
    ) {
        let a = make(m, n, s, seed);
        let b = make(n, cols, s2, seed ^ 3);
        let (ha, hb) = (MncSketch::build(&a), MncSketch::build(&b));
        for cfg in [MncConfig::default(), MncConfig::basic()] {
            let est = MncSketch::estimate_with(&OpKind::MatMul, &[&ha, &hb], &cfg).unwrap();
            prop_assert!((0.0..=1.0).contains(&est), "cfg {:?} -> {}", cfg, est);
        }
    }

    /// The bitset estimator is exact on every operation it supports.
    #[test]
    fn bitset_estimator_is_exact(
        (m, n, s, seed) in matrix_params(),
        s2 in 0.0f64..0.5,
    ) {
        let a = Arc::new(make(m, n, s, seed));
        let b = Arc::new(make(m, n, s2, seed ^ 4));
        let e = BitsetEstimator::default();
        let (sa, sb) = (e.build(&a).unwrap(), e.build(&b).unwrap());
        for (op, truth) in [
            (OpKind::EwAdd, ops::ew_add(&a, &b).unwrap().sparsity()),
            (OpKind::EwMul, ops::ew_mul(&a, &b).unwrap().sparsity()),
            (OpKind::Rbind, ops::rbind(&a, &b).unwrap().sparsity()),
            (OpKind::Cbind, ops::cbind(&a, &b).unwrap().sparsity()),
        ] {
            let est = e.estimate(&op, &[&sa, &sb]).unwrap();
            prop_assert!((est - truth).abs() < 1e-12, "{:?}", op);
        }
        let t = e.estimate(&OpKind::Transpose, &[&sa]).unwrap();
        prop_assert!((t - a.sparsity()).abs() < 1e-12);
        let z = e.estimate(&OpKind::Eq0, &[&sa]).unwrap();
        prop_assert!((z - (1.0 - a.sparsity())).abs() < 1e-12);
    }

    /// SpGEMM agrees with the dense reference product.
    #[test]
    fn spgemm_matches_dense(
        (m, n, s, seed) in matrix_params(),
        cols in 2usize..20,
        s2 in 0.0f64..0.5,
    ) {
        let a = make(m, n, s, seed);
        let b = make(n, cols, s2, seed ^ 5);
        let c = ops::matmul(&a, &b).unwrap();
        let expect = a.to_dense().matmul(&b.to_dense()).unwrap();
        let got = c.to_dense();
        for i in 0..m {
            for j in 0..cols {
                prop_assert!((got[(i, j)] - expect[(i, j)]).abs() < 1e-9);
            }
        }
    }

    /// Transpose is an involution and reshape round-trips.
    #[test]
    fn reorg_roundtrips((m, n, s, seed) in matrix_params()) {
        let a = make(m, n, s, seed);
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let r = ops::reshape(&a, n, m).unwrap();
        prop_assert_eq!(ops::reshape(&r, m, n).unwrap(), a.clone());
        prop_assert_eq!(r.nnz(), a.nnz());
    }

    /// Element-wise algebra: `nnz(A+B) + nnz(A⊙B) == nnz(A) + nnz(B)`
    /// under assumption A1 (no cancellation; values are positive).
    #[test]
    fn inclusion_exclusion_of_patterns(
        (m, n, s, seed) in matrix_params(),
        s2 in 0.0f64..0.5,
    ) {
        let a = make(m, n, s, seed);
        let b = make(m, n, s2, seed ^ 6);
        let add = ops::ew_add(&a, &b).unwrap();
        let mul = ops::ew_mul(&a, &b).unwrap();
        prop_assert_eq!(add.nnz() + mul.nnz(), a.nnz() + b.nnz());
    }

    /// Probabilistic rounding is within 1 of its input and unbiased enough
    /// that large sums are conserved.
    #[test]
    fn probabilistic_rounding_conserves_mass(target in 1.0f64..500.0, seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let n = 1000;
        let x = target / n as f64;
        let total: u64 = (0..n).map(|_| rng.prob_round(x)).sum();
        // Binomial concentration: generous 6-sigma bound.
        let sigma = (n as f64 * 0.25).sqrt();
        prop_assert!((total as f64 - target).abs() < 6.0 * sigma + 1.0);
    }

    /// Parallel sketch construction is bit-identical to the sequential
    /// build for any matrix and worker count.
    #[test]
    fn parallel_sketch_build_is_bit_identical(
        (m, n, s, seed) in matrix_params(),
        threads in 1usize..9,
    ) {
        let a = make(m, n, s, seed);
        prop_assert_eq!(MncSketch::build_parallel(&a, threads), MncSketch::build(&a));
    }

    /// Estimating through a cached `EstimationContext` returns exactly the
    /// uncached estimates on random DAGs — cold (first walk mirrors the
    /// uncached build/propagate order, so probabilistic-rounding RNG
    /// streams line up under fresh same-seed estimators) and warm (cached
    /// synopses feed a deterministic root estimate).
    #[test]
    fn cached_context_estimates_equal_uncached(
        n in 2usize..16,
        nleaves in 2usize..5,
        nops in 1usize..7,
        s in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        use mnc::estimators::MncEstimator;
        use mnc::expr::{estimate_all, estimate_root, EstimationContext, ExprDag};

        // Random DAG over square matrices (every op shape-checks).
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut dag = ExprDag::new();
        let mut ids = Vec::new();
        for i in 0..nleaves {
            ids.push(dag.leaf(format!("L{i}"), Arc::new(gen::rand_uniform(&mut rng, n, n, s))));
        }
        let mut pick = SplitMix64::new(seed ^ 0xD1CE);
        for _ in 0..nops {
            let a = ids[(pick.next_u64() as usize) % ids.len()];
            let b = ids[(pick.next_u64() as usize) % ids.len()];
            ids.push(match pick.next_u64() % 4 {
                0 => dag.matmul(a, b).unwrap(),
                1 => dag.ew_add(a, b).unwrap(),
                2 => dag.ew_mul(a, b).unwrap(),
                _ => dag.transpose(a).unwrap(),
            });
        }
        let root = *ids.last().unwrap();

        let uncached = estimate_root(&MncEstimator::new(), &dag, root).unwrap();
        let mut ctx = EstimationContext::new();
        let est = MncEstimator::new();
        let cold = ctx.estimate_root(&est, &dag, root).unwrap();
        let warm = ctx.estimate_root(&est, &dag, root).unwrap();
        prop_assert_eq!(uncached, cold);
        prop_assert_eq!(cold, warm);
        prop_assert!(ctx.stats().cache_hits > 0, "warm walk must hit the cache");

        // And node-by-node over the whole DAG.
        let all_uncached = estimate_all(&MncEstimator::new(), &dag).unwrap();
        let all_cached = EstimationContext::new()
            .estimate_all(&MncEstimator::new(), &dag)
            .unwrap();
        prop_assert_eq!(all_uncached.len(), all_cached.len());
        for (u, c) in all_uncached.iter().zip(&all_cached) {
            prop_assert_eq!(u.id, c.id);
            prop_assert_eq!(u.sparsity, c.sparsity);
        }
    }

    /// MNC sketch propagation over a product keeps the implied nnz within
    /// the estimate's mass (no runaway counts).
    #[test]
    fn propagation_conserves_estimated_mass(
        (m, n, s, seed) in matrix_params(),
        cols in 2usize..30,
        s2 in 0.0f64..0.5,
    ) {
        let a = make(m, n, s, seed);
        let b = make(n, cols, s2, seed ^ 7);
        let (ha, hb) = (MncSketch::build(&a), MncSketch::build(&b));
        let cfg = MncConfig::default();
        let mut rng = SplitMix64::new(9);
        let hc = MncSketch::propagate_with(&OpKind::MatMul, &[&ha, &hb], &cfg, &mut rng).unwrap();
        let est = MncSketch::estimate(&OpKind::MatMul, &[&ha, &hb]).unwrap() * (m * cols) as f64;
        let got: f64 = hc.hr.iter().map(|&c| c as f64).sum();
        // Rounding noise is bounded by one per entry.
        prop_assert!((got - est).abs() <= m as f64 + est * 0.5 + 1.0);
    }
}
