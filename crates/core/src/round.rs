//! Probabilistic rounding and the tiny generator backing it.
//!
//! Section 3.3: deterministic rounding of scaled count vectors introduces
//! systematic bias for ultra-sparse matrices (e.g. every entry `0.4` rounds
//! to `0`, predicting an empty intermediate). Probabilistic rounding —
//! round `x` up with probability `x - floor(x)` — is unbiased with minimal
//! variance.

/// SplitMix64: a tiny, high-quality, dependency-free PRNG.
///
/// Used only for rounding decisions, so estimator crates do not need to
/// thread an external RNG through every propagation call.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53-bit mantissa construction).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Probabilistic rounding: returns `floor(x)` or `ceil(x)` such that the
    /// expectation equals `x`. Negative inputs clamp to zero (counts cannot
    /// be negative).
    #[inline]
    pub fn prob_round(&mut self, x: f64) -> u64 {
        if x <= 0.0 {
            return 0;
        }
        let floor = x.floor();
        let frac = x - floor;
        let up = frac > 0.0 && self.next_f64() < frac;
        floor as u64 + u64::from(up)
    }
}

/// Rounds a scaled count to `u64` according to the configuration: unbiased
/// probabilistic rounding, or deterministic nearest-integer rounding.
#[inline]
pub fn round_count(rng: &mut SplitMix64, x: f64, probabilistic: bool) -> u64 {
    if probabilistic {
        rng.prob_round(x)
    } else if x <= 0.0 {
        0
    } else {
        x.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prob_round_integer_is_exact() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(rng.prob_round(3.0), 3);
        assert_eq!(rng.prob_round(0.0), 0);
        assert_eq!(rng.prob_round(-2.5), 0);
    }

    #[test]
    fn prob_round_is_unbiased() {
        let mut rng = SplitMix64::new(2);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.prob_round(0.4)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 0.4).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn prob_round_within_one_of_input() {
        let mut rng = SplitMix64::new(3);
        for i in 0..1000 {
            let x = i as f64 * 0.37;
            let r = rng.prob_round(x) as f64;
            assert!(r == x.floor() || r == x.ceil(), "x={x} r={r}");
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(4);
        for _ in 0..1000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn deterministic_rounding_matches_round() {
        let mut rng = SplitMix64::new(5);
        assert_eq!(round_count(&mut rng, 0.4, false), 0);
        assert_eq!(round_count(&mut rng, 0.6, false), 1);
        assert_eq!(round_count(&mut rng, 2.0, false), 2);
    }

    #[test]
    fn sequences_are_reproducible() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
