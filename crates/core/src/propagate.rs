//! Sketch propagation: deriving the MNC sketch of an operation's output from
//! its input sketches (Sections 3.3 and 4.2).
//!
//! Propagation enables recursive sparsity estimation over arbitrary DAGs of
//! operations: estimate the output sparsity, then scale/reshape the count
//! vectors accordingly, applying *probabilistic rounding* to avoid the
//! systematic bias deterministic rounding introduces for ultra-sparse
//! intermediates.

use crate::estimate::{
    estimate_eq_zero, estimate_ew_add, estimate_ew_mul, estimate_matmul_in, lambda_cols,
    lambda_rows,
};
use crate::round::{round_count, SplitMix64};
use crate::sketch::{col_half_threshold, row_half_threshold, MncSketch};
use crate::MncConfig;
use mnc_kernels::{
    complement_into, concat_meta_into, scale_round_into, sum_u32, zip_add_into, ScratchArena,
    VecMeta,
};

/// Scales `counts` so that they sum to `target`, rounding each entry
/// (probabilistically when configured) and capping at `cap` (a count can
/// never exceed the opposite dimension). Test-only reference wrapper — the
/// hot paths call [`scale_round_into`] directly with an arena-leased buffer.
#[cfg(test)]
fn scale_counts(
    counts: &[u32],
    target: f64,
    cap: u64,
    rng: &mut SplitMix64,
    probabilistic: bool,
) -> Vec<u32> {
    let mut out = Vec::new();
    scale_round_into(
        counts,
        target,
        cap,
        0,
        |x| round_count(rng, x, probabilistic),
        &mut out,
    );
    out
}

/// Propagates sketches over `C = A B` (Section 3.3, Eq. 11–12).
///
/// Exact cases: if either input is fully diagonal (and square), the other
/// input's sketch *is* the output sketch (Eq. 12). Otherwise the output
/// sparsity is estimated with Algorithm 1 and both count vectors are scaled
/// to match it, assuming the per-row/column non-zero distribution carries
/// over the product.
pub fn propagate_matmul(
    ha: &MncSketch,
    hb: &MncSketch,
    cfg: &MncConfig,
    rng: &mut SplitMix64,
) -> MncSketch {
    propagate_matmul_in(ha, hb, cfg, rng, &mut ScratchArena::new())
}

/// [`propagate_matmul`] with caller-provided scratch — output count vectors
/// are leased from `arena` and their metadata is recomputed in the same
/// fused scaling pass. Bit-identical to the plain variant.
pub fn propagate_matmul_in(
    ha: &MncSketch,
    hb: &MncSketch,
    cfg: &MncConfig,
    rng: &mut SplitMix64,
    arena: &mut ScratchArena,
) -> MncSketch {
    assert_eq!(ha.ncols, hb.nrows, "matmul propagation: shape mismatch");
    // Eq. 12: multiplication with a fully diagonal square matrix preserves
    // the other operand's structure exactly.
    if hb.meta.fully_diagonal && hb.nrows == hb.ncols {
        return ha.clone();
    }
    if ha.meta.fully_diagonal && ha.nrows == ha.ncols {
        return hb.clone();
    }
    let (m, l) = (ha.nrows, hb.ncols);
    let s_c = estimate_matmul_in(ha, hb, cfg, arena);
    let target = s_c * m as f64 * l as f64;
    let prob = cfg.probabilistic_rounding;
    let mut hr = arena.take_u32_spare();
    let row_meta = scale_round_into(
        &ha.hr,
        target,
        l as u64,
        row_half_threshold(l),
        |x| round_count(rng, x, prob),
        &mut hr,
    );
    let mut hc = arena.take_u32_spare();
    let col_meta = scale_round_into(
        &hb.hc,
        target,
        m as u64,
        col_half_threshold(m),
        |x| round_count(rng, x, prob),
        &mut hc,
    );
    MncSketch::from_vectors_with_meta(m, l, hr, hc, None, None, false, row_meta, col_meta)
}

/// Transpose: mirror all components exactly (Eq. 14).
///
/// The output metadata is the input's with the row/column halves swapped —
/// the half-full thresholds swap along with the dimensions — except `nnz`,
/// which is authoritative from the *output* row counts (= the input column
/// counts, whose sum can differ by rounding noise on propagated sketches)
/// and is recomputed with one kernel pass.
pub fn propagate_transpose(h: &MncSketch) -> MncSketch {
    let row_meta = VecMeta {
        sum: sum_u32(&h.hc),
        max: h.meta.max_hc,
        nonempty: h.meta.nonempty_cols,
        eq1: h.meta.cols_eq_1,
        over_half: h.meta.half_full_cols,
    };
    let col_meta = VecMeta {
        sum: h.meta.nnz,
        max: h.meta.max_hr,
        nonempty: h.meta.nonempty_rows,
        eq1: h.meta.rows_eq_1,
        over_half: h.meta.half_full_rows,
    };
    MncSketch::from_vectors_with_meta(
        h.ncols,
        h.nrows,
        h.hc.clone(),
        h.hr.clone(),
        h.hec.clone(),
        h.her.clone(),
        h.meta.fully_diagonal,
        row_meta,
        col_meta,
    )
}

/// `A != 0`: the pattern — and thus the entire sketch — is unchanged.
pub fn propagate_neq_zero(h: &MncSketch) -> MncSketch {
    h.clone()
}

/// `A == 0`: complement counts, `h^r_C = n - h^r_A`, `h^c_C = m - h^c_A`;
/// extension vectors are dropped (Eq. 14).
pub fn propagate_eq_zero(h: &MncSketch) -> MncSketch {
    propagate_eq_zero_in(h, &mut ScratchArena::new())
}

/// [`propagate_eq_zero`] with caller-provided scratch.
pub fn propagate_eq_zero_in(h: &MncSketch, arena: &mut ScratchArena) -> MncSketch {
    let n = h.ncols as u32;
    let m = h.nrows as u32;
    let mut hr = arena.take_u32_spare();
    let row_meta = complement_into(&h.hr, n, row_half_threshold(h.ncols), &mut hr);
    let mut hc = arena.take_u32_spare();
    let col_meta = complement_into(&h.hc, m, col_half_threshold(h.nrows), &mut hc);
    let out = MncSketch::from_vectors_with_meta(
        h.nrows, h.ncols, hr, hc, None, None, false, row_meta, col_meta,
    );
    debug_assert!(
        (out.sparsity() - estimate_eq_zero(h)).abs() < 1e-9,
        "complement sketch must agree with the scalar estimate"
    );
    out
}

/// `rbind(A, B)`: row counts concatenate and column counts add — both exact.
/// `h^ec` adds exactly (single-non-zero rows are unaffected by stacking);
/// `h^er` cannot be preserved (a column's total count changes) — Eq. 14.
pub fn propagate_rbind(ha: &MncSketch, hb: &MncSketch) -> MncSketch {
    propagate_rbind_in(ha, hb, &mut ScratchArena::new())
}

/// [`propagate_rbind`] with caller-provided scratch.
pub fn propagate_rbind_in(ha: &MncSketch, hb: &MncSketch, arena: &mut ScratchArena) -> MncSketch {
    assert_eq!(ha.ncols, hb.ncols, "rbind propagation: shape mismatch");
    let nrows = ha.nrows + hb.nrows;
    let mut hr = arena.take_u32_spare();
    let row_meta = concat_meta_into(&ha.hr, &hb.hr, row_half_threshold(ha.ncols), &mut hr);
    let mut hc = arena.take_u32_spare();
    let col_meta = zip_add_into(&ha.hc, &hb.hc, col_half_threshold(nrows), &mut hc);
    let hec = match (ha.effective_hec_slice(), hb.effective_hec_slice()) {
        (Some(a), Some(b)) => {
            let mut buf = arena.take_u32_spare();
            zip_add_into(a, b, 0, &mut buf);
            Some(buf)
        }
        _ => None,
    };
    MncSketch::from_vectors_with_meta(
        nrows, ha.ncols, hr, hc, None, hec, false, row_meta, col_meta,
    )
}

/// `cbind(A, B)`: symmetric to [`propagate_rbind`].
pub fn propagate_cbind(ha: &MncSketch, hb: &MncSketch) -> MncSketch {
    propagate_cbind_in(ha, hb, &mut ScratchArena::new())
}

/// [`propagate_cbind`] with caller-provided scratch.
pub fn propagate_cbind_in(ha: &MncSketch, hb: &MncSketch, arena: &mut ScratchArena) -> MncSketch {
    assert_eq!(ha.nrows, hb.nrows, "cbind propagation: shape mismatch");
    let ncols = ha.ncols + hb.ncols;
    let mut hr = arena.take_u32_spare();
    let row_meta = zip_add_into(&ha.hr, &hb.hr, row_half_threshold(ncols), &mut hr);
    let mut hc = arena.take_u32_spare();
    let col_meta = concat_meta_into(&ha.hc, &hb.hc, col_half_threshold(ha.nrows), &mut hc);
    let her = match (ha.effective_her_slice(), hb.effective_her_slice()) {
        (Some(a), Some(b)) => {
            let mut buf = arena.take_u32_spare();
            zip_add_into(a, b, 0, &mut buf);
            Some(buf)
        }
        _ => None,
    };
    MncSketch::from_vectors_with_meta(
        ha.nrows, ncols, hr, hc, her, None, false, row_meta, col_meta,
    )
}

/// `diag(v)` for an `m x 1` vector: all four count vectors equal the
/// vector's 0/1 row counts (Eq. 14); the result is fully diagonal iff the
/// vector is dense.
pub fn propagate_diag_v2m(h: &MncSketch) -> MncSketch {
    assert_eq!(h.ncols, 1, "diag propagation expects a column vector");
    let m = h.nrows;
    let hr = h.hr.clone();
    let fully_diagonal = h.meta.nnz as usize == m;
    MncSketch::from_vectors(
        m,
        m,
        hr.clone(),
        hr.clone(),
        Some(hr.clone()),
        Some(hr),
        fully_diagonal,
    )
}

/// `diag(A)` extraction (matrix-to-vector) for a square sketch — handled
/// "in a best-effort manner" (Section 4.2): each output row is expected to
/// hold `h^r_i / n` non-zeros, probabilistically rounded; the single output
/// column sums the row expectations.
pub fn propagate_diag_extract(h: &MncSketch, cfg: &MncConfig, rng: &mut SplitMix64) -> MncSketch {
    propagate_diag_extract_in(h, cfg, rng, &mut ScratchArena::new())
}

/// [`propagate_diag_extract`] with caller-provided scratch.
pub fn propagate_diag_extract_in(
    h: &MncSketch,
    cfg: &MncConfig,
    rng: &mut SplitMix64,
    arena: &mut ScratchArena,
) -> MncSketch {
    assert_eq!(h.nrows, h.ncols, "diag extraction expects a square sketch");
    let n = h.ncols as f64;
    let mut total = 0.0f64;
    let mut hr = arena.take_u32(h.nrows);
    for (o, &c) in hr.iter_mut().zip(&h.hr) {
        if n == 0.0 {
            continue;
        }
        let est = c as f64 / n;
        total += est;
        *o = round_count(rng, est, cfg.probabilistic_rounding).min(1) as u32;
    }
    let hc = vec![round_count(rng, total, cfg.probabilistic_rounding).min(h.nrows as u64) as u32];
    MncSketch::from_vectors(h.nrows, 1, hr, hc, None, None, false)
}

/// Row-wise reshape of an `m x n` sketch to `k x l` (Section 4.2).
///
/// * `m % k == 0` (rows merge): output row counts aggregate groups of
///   `m/k` input rows **exactly**; column counts are scaled by `1/(m/k)`
///   and replicated per block (estimated).
/// * `k % m == 0` (rows split): output column counts aggregate the input
///   columns that fold onto them **exactly**; row counts split evenly
///   (estimated).
/// * Otherwise: best-effort uniform redistribution of the non-zeros.
pub fn propagate_reshape(
    h: &MncSketch,
    k: usize,
    l: usize,
    cfg: &MncConfig,
    rng: &mut SplitMix64,
) -> MncSketch {
    propagate_reshape_in(h, k, l, cfg, rng, &mut ScratchArena::new())
}

/// [`propagate_reshape`] with caller-provided scratch.
pub fn propagate_reshape_in(
    h: &MncSketch,
    k: usize,
    l: usize,
    cfg: &MncConfig,
    rng: &mut SplitMix64,
    arena: &mut ScratchArena,
) -> MncSketch {
    let (m, n) = (h.nrows, h.ncols);
    assert_eq!(m * n, k * l, "reshape propagation: cell count mismatch");
    if k == m {
        return h.clone();
    }
    let nnz = h.meta.nnz as f64;
    if k > 0 && m.is_multiple_of(k) {
        // Merge t consecutive input rows into each output row.
        let t = m / k;
        let mut hr = arena.take_u32(k);
        for (o, chunk) in hr.iter_mut().zip(h.hr.chunks(t)) {
            *o = chunk.iter().sum::<u32>();
        }
        // Each output column block sees ~1/t of a source column's count.
        let mut hc = arena.take_u32(l);
        let mut out = hc.iter_mut();
        for _block in 0..t {
            for &c in &h.hc {
                let est = c as f64 / t as f64;
                *out.next().expect("l = t * n") =
                    round_count(rng, est, cfg.probabilistic_rounding).min(k as u64) as u32;
            }
        }
        return MncSketch::from_vectors(k, l, hr, hc, None, None, false);
    }
    if m > 0 && k.is_multiple_of(m) {
        // Split each input row into t output rows.
        let t = k / m;
        let mut hr = arena.take_u32(k);
        let mut out = hr.iter_mut();
        for &c in &h.hr {
            for _ in 0..t {
                let est = c as f64 / t as f64;
                *out.next().expect("k = t * m") =
                    round_count(rng, est, cfg.probabilistic_rounding).min(l as u64) as u32;
            }
        }
        // Output column j accumulates input columns j, j+l, j+2l, ... exactly.
        let mut hc = arena.take_u32(l);
        for (j, &c) in h.hc.iter().enumerate() {
            hc[j % l] += c;
        }
        return MncSketch::from_vectors(k, l, hr, hc, None, None, false);
    }
    // Non-aligned fallback: uniform redistribution.
    let mut hr = arena.take_u32(k);
    for o in hr.iter_mut() {
        *o = round_count(rng, nnz / k as f64, cfg.probabilistic_rounding).min(l as u64) as u32;
    }
    let mut hc = arena.take_u32(l);
    for o in hc.iter_mut() {
        *o = round_count(rng, nnz / l as f64, cfg.probabilistic_rounding).min(k as u64) as u32;
    }
    MncSketch::from_vectors(k, l, hr, hc, None, None, false)
}

/// Element-wise addition (Eq. 15, `+` branch): per-entry inclusion-exclusion
/// with the symmetric collision factors `λ^r`, `λ^c`.
pub fn propagate_ew_add(
    ha: &MncSketch,
    hb: &MncSketch,
    cfg: &MncConfig,
    rng: &mut SplitMix64,
) -> MncSketch {
    propagate_ew_add_in(ha, hb, cfg, rng, &mut ScratchArena::new())
}

/// [`propagate_ew_add`] with caller-provided scratch.
pub fn propagate_ew_add_in(
    ha: &MncSketch,
    hb: &MncSketch,
    cfg: &MncConfig,
    rng: &mut SplitMix64,
    arena: &mut ScratchArena,
) -> MncSketch {
    assert_eq!(
        (ha.nrows, ha.ncols),
        (hb.nrows, hb.ncols),
        "element-wise propagation: shape mismatch"
    );
    let lc = lambda_cols(ha, hb);
    let lr = lambda_rows(ha, hb);
    let mut hr = arena.take_u32(ha.nrows);
    for ((o, &a), &b) in hr.iter_mut().zip(&ha.hr).zip(&hb.hr) {
        let (a, b) = (a as f64, b as f64);
        let est = a + b - a * b * lc;
        *o = round_count(rng, est, cfg.probabilistic_rounding).min(ha.ncols as u64) as u32;
    }
    let mut hc = arena.take_u32(ha.ncols);
    for ((o, &a), &b) in hc.iter_mut().zip(&ha.hc).zip(&hb.hc) {
        let (a, b) = (a as f64, b as f64);
        let est = a + b - a * b * lr;
        *o = round_count(rng, est, cfg.probabilistic_rounding).min(ha.nrows as u64) as u32;
    }
    let out = MncSketch::from_vectors(ha.nrows, ha.ncols, hr, hc, None, None, false);
    debug_assert!(estimate_ew_add(ha, hb).is_finite());
    out
}

/// Element-wise multiplication (Eq. 15, `⊙` branch).
pub fn propagate_ew_mul(
    ha: &MncSketch,
    hb: &MncSketch,
    cfg: &MncConfig,
    rng: &mut SplitMix64,
) -> MncSketch {
    propagate_ew_mul_in(ha, hb, cfg, rng, &mut ScratchArena::new())
}

/// [`propagate_ew_mul`] with caller-provided scratch.
pub fn propagate_ew_mul_in(
    ha: &MncSketch,
    hb: &MncSketch,
    cfg: &MncConfig,
    rng: &mut SplitMix64,
    arena: &mut ScratchArena,
) -> MncSketch {
    assert_eq!(
        (ha.nrows, ha.ncols),
        (hb.nrows, hb.ncols),
        "element-wise propagation: shape mismatch"
    );
    let lc = lambda_cols(ha, hb);
    let lr = lambda_rows(ha, hb);
    let mut hr = arena.take_u32(ha.nrows);
    for ((o, &a), &b) in hr.iter_mut().zip(&ha.hr).zip(&hb.hr) {
        let est = a as f64 * b as f64 * lc;
        *o = round_count(rng, est, cfg.probabilistic_rounding).min(ha.ncols as u64) as u32;
    }
    let mut hc = arena.take_u32(ha.ncols);
    for ((o, &a), &b) in hc.iter_mut().zip(&ha.hc).zip(&hb.hc) {
        let est = a as f64 * b as f64 * lr;
        *o = round_count(rng, est, cfg.probabilistic_rounding).min(ha.nrows as u64) as u32;
    }
    let out = MncSketch::from_vectors(ha.nrows, ha.ncols, hr, hc, None, None, false);
    debug_assert!(estimate_ew_mul(ha, hb).is_finite());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::{gen, ops, CsrMatrix};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn cfg() -> MncConfig {
        MncConfig::default()
    }

    fn smx() -> SplitMix64 {
        SplitMix64::new(7)
    }

    #[test]
    fn matmul_propagation_conserves_estimated_nnz() {
        let mut r = rng(1);
        let a = gen::rand_uniform(&mut r, 80, 60, 0.05);
        let b = gen::rand_uniform(&mut r, 60, 70, 0.08);
        let (ha, hb) = (MncSketch::build(&a), MncSketch::build(&b));
        let s = crate::estimate::estimate_matmul(&ha, &hb);
        let hc = propagate_matmul(&ha, &hb, &cfg(), &mut smx());
        let expect = s * 80.0 * 70.0;
        let got: f64 = hc.hr.iter().map(|&c| c as f64).sum();
        // Probabilistic rounding keeps the sum within sampling noise.
        assert!(
            (got - expect).abs() < expect.max(10.0) * 0.25,
            "expect {expect} got {got}"
        );
        assert_eq!(hc.nrows, 80);
        assert_eq!(hc.ncols, 70);
    }

    #[test]
    fn diagonal_matmul_propagates_exactly() {
        let mut r = rng(2);
        let x = gen::rand_uniform(&mut r, 30, 20, 0.2);
        let hx = MncSketch::build(&x);
        let d = gen::scalar_diag(30, 2.0);
        let hd = MncSketch::build(&d);
        // diag(λ) · X preserves X's sketch exactly (Eq. 12).
        let hc = propagate_matmul(&hd, &hx, &cfg(), &mut smx());
        assert_eq!(hc, hx);
        // X · diag(λ) on the other side.
        let d2 = gen::scalar_diag(20, 3.0);
        let hd2 = MncSketch::build(&d2);
        let hc2 = propagate_matmul(&hx, &hd2, &cfg(), &mut smx());
        assert_eq!(hc2, hx);
    }

    #[test]
    fn transpose_propagation_matches_rebuild() {
        let mut r = rng(3);
        let a = gen::rand_uniform(&mut r, 25, 35, 0.1);
        let h = MncSketch::build(&a);
        let ht = propagate_transpose(&h);
        let rebuilt = MncSketch::build(&a.transpose());
        assert_eq!(ht, rebuilt);
    }

    #[test]
    fn eq_zero_propagation_matches_rebuild() {
        let mut r = rng(4);
        let a = gen::rand_uniform(&mut r, 20, 15, 0.3);
        let h = MncSketch::build(&a);
        let hz = propagate_eq_zero(&h);
        let rebuilt = MncSketch::build(&ops::eq_zero(&a));
        assert_eq!(hz.hr, rebuilt.hr);
        assert_eq!(hz.hc, rebuilt.hc);
    }

    #[test]
    fn rbind_propagation_matches_rebuild_counts() {
        let mut r = rng(5);
        let a = gen::rand_uniform(&mut r, 12, 10, 0.2);
        let b = gen::rand_uniform(&mut r, 8, 10, 0.4);
        let h = propagate_rbind(&MncSketch::build(&a), &MncSketch::build(&b));
        let rebuilt = MncSketch::build(&ops::rbind(&a, &b).unwrap());
        assert_eq!(h.hr, rebuilt.hr);
        assert_eq!(h.hc, rebuilt.hc);
        assert_eq!(h.meta.nnz, rebuilt.meta.nnz);
    }

    #[test]
    fn cbind_propagation_matches_rebuild_counts() {
        let mut r = rng(6);
        let a = gen::rand_uniform(&mut r, 12, 10, 0.2);
        let b = gen::rand_uniform(&mut r, 12, 6, 0.4);
        let h = propagate_cbind(&MncSketch::build(&a), &MncSketch::build(&b));
        let rebuilt = MncSketch::build(&ops::cbind(&a, &b).unwrap());
        assert_eq!(h.hr, rebuilt.hr);
        assert_eq!(h.hc, rebuilt.hc);
    }

    #[test]
    fn diag_propagation_matches_rebuild() {
        let v = CsrMatrix::from_triples(5, 1, vec![(0, 0, 1.0), (3, 0, 2.0)]).unwrap();
        let h = propagate_diag_v2m(&MncSketch::build(&v));
        let rebuilt = MncSketch::build(&ops::diag_v2m(&v).unwrap());
        assert_eq!(h.hr, rebuilt.hr);
        assert_eq!(h.hc, rebuilt.hc);
        assert!(!h.meta.fully_diagonal);
        // A dense vector produces a fully diagonal matrix.
        let dense_v = gen::ones_vector(4);
        let hd = propagate_diag_v2m(&MncSketch::build(&dense_v));
        assert!(hd.meta.fully_diagonal);
    }

    #[test]
    fn diag_extract_propagation_mass() {
        // Expected diagonal occupancy for a dense square matrix is 1/row.
        let d = gen::rand_dense(&mut rng(12).clone(), 16, 16);
        let h = MncSketch::build(&d);
        let hp = propagate_diag_extract(&h, &cfg(), &mut smx());
        assert_eq!(hp.nrows, 16);
        assert_eq!(hp.ncols, 1);
        assert_eq!(hp.hr.iter().map(|&c| c as u64).sum::<u64>(), 16);
    }

    #[test]
    fn reshape_merge_rows_exact_row_counts() {
        let mut r = rng(7);
        let a = gen::rand_uniform(&mut r, 12, 5, 0.3);
        let h = MncSketch::build(&a);
        // 12x5 -> 4x15 merges 3 rows into 1.
        let hp = propagate_reshape(&h, 4, 15, &cfg(), &mut smx());
        let rebuilt = MncSketch::build(&ops::reshape(&a, 4, 15).unwrap());
        assert_eq!(hp.hr, rebuilt.hr, "merged row counts are exact");
        let sum_hc: u64 = hp.hc.iter().map(|&c| c as u64).sum();
        assert!((sum_hc as f64 - a.nnz() as f64).abs() <= 12.0);
    }

    #[test]
    fn reshape_split_rows_exact_col_counts() {
        let mut r = rng(8);
        let a = gen::rand_uniform(&mut r, 4, 15, 0.3);
        let h = MncSketch::build(&a);
        // 4x15 -> 12x5 splits each row into 3.
        let hp = propagate_reshape(&h, 12, 5, &cfg(), &mut smx());
        let rebuilt = MncSketch::build(&ops::reshape(&a, 12, 5).unwrap());
        assert_eq!(hp.hc, rebuilt.hc, "folded column counts are exact");
    }

    #[test]
    fn reshape_identity_is_noop() {
        let mut r = rng(9);
        let a = gen::rand_uniform(&mut r, 6, 4, 0.5);
        let h = MncSketch::build(&a);
        let hp = propagate_reshape(&h, 6, 4, &cfg(), &mut smx());
        assert_eq!(hp, h);
    }

    #[test]
    fn ew_mul_propagation_close_to_truth() {
        let mut r = rng(10);
        let a = gen::rand_uniform(&mut r, 50, 40, 0.2);
        let b = gen::rand_uniform(&mut r, 50, 40, 0.3);
        let (ha, hb) = (MncSketch::build(&a), MncSketch::build(&b));
        let hp = propagate_ew_mul(&ha, &hb, &cfg(), &mut smx());
        let truth = ops::ew_mul(&a, &b).unwrap();
        let est_nnz: f64 = hp.hr.iter().map(|&c| c as f64).sum();
        let true_nnz = truth.nnz() as f64;
        assert!(
            (est_nnz - true_nnz).abs() < true_nnz.max(20.0) * 0.5,
            "est {est_nnz} true {true_nnz}"
        );
    }

    #[test]
    fn ew_add_propagation_close_to_truth() {
        let mut r = rng(11);
        let a = gen::rand_uniform(&mut r, 50, 40, 0.15);
        let b = gen::rand_uniform(&mut r, 50, 40, 0.25);
        let (ha, hb) = (MncSketch::build(&a), MncSketch::build(&b));
        let hp = propagate_ew_add(&ha, &hb, &cfg(), &mut smx());
        let truth = ops::ew_add(&a, &b).unwrap();
        let est_nnz: f64 = hp.hr.iter().map(|&c| c as f64).sum();
        let true_nnz = truth.nnz() as f64;
        assert!(
            (est_nnz - true_nnz).abs() < true_nnz * 0.1,
            "est {est_nnz} true {true_nnz}"
        );
    }

    #[test]
    fn probabilistic_rounding_preserves_ultra_sparse_mass() {
        // Section 3.3's motivating case: all scaled entries below 0.5 would
        // deterministically round to zero; probabilistic rounding keeps the
        // expected mass.
        let counts = vec![1u32; 1000];
        let mut rng = SplitMix64::new(99);
        let scaled = scale_counts(&counts, 400.0, 10, &mut rng, true);
        let total: u64 = scaled.iter().map(|&c| c as u64).sum();
        assert!((total as f64 - 400.0).abs() < 80.0, "total {total}");
        // Deterministic rounding collapses to zero (0.4 -> 0).
        let det = scale_counts(&counts, 400.0, 10, &mut rng, false);
        assert_eq!(det.iter().map(|&c| c as u64).sum::<u64>(), 0);
    }
}
