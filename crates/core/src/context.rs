//! Session-level estimation machinery: instrumentation counters, a
//! byte-budgeted LRU synopsis cache, and parallel sketch construction.
//!
//! These are the estimator-agnostic building blocks behind
//! `mnc_expr::EstimationContext`. They live in the core crate so the cache
//! and counters can be reused by any synopsis type (the cache is generic —
//! the expression layer instantiates it over `Synopsis` values sized by
//! `Synopsis::size_bytes()`), while the parallel builder reuses the
//! phase-1/phase-2 split proven equivalent in [`crate::distributed`].

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;
use std::time::Instant;

use mnc_kernels::{row_chunks, WorkerPool};
use mnc_matrix::CsrMatrix;
use mnc_obs::LatencyHisto;

use crate::sketch::MncSketch;

// ---------------------------------------------------------------------------
// Instrumentation
// ---------------------------------------------------------------------------

/// Per-operation timing bucket inside [`EstimationStats`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct OpStat {
    /// Number of sparsity estimates for this op.
    pub estimates: u64,
    /// Total wall-clock nanoseconds spent estimating.
    pub estimate_ns: u64,
    /// Number of synopsis propagations for this op.
    pub propagations: u64,
    /// Total wall-clock nanoseconds spent propagating.
    pub propagate_ns: u64,
    /// Log₂ histogram of per-call estimate latencies.
    pub estimate_histo: LatencyHisto,
    /// Log₂ histogram of per-call propagate latencies.
    pub propagate_histo: LatencyHisto,
}

/// Counters for one estimation session: synopsis builds, cache traffic, and
/// per-operation estimate/propagate timings.
///
/// The `Display` impl renders the compact report printed by `mnc-cli` and
/// the SparsEst runner.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct EstimationStats {
    /// Leaf synopses built (cache misses that did real work).
    pub builds: u64,
    /// Total wall-clock nanoseconds spent building leaf synopses.
    pub build_ns: u64,
    /// Cache lookups answered from the cache.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Bytes currently resident in the cache.
    pub bytes_resident: u64,
    /// Log₂ histogram of per-call leaf-synopsis build latencies.
    pub build_histo: LatencyHisto,
    per_op: BTreeMap<&'static str, OpStat>,
}

impl EstimationStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one leaf-synopsis build taking `ns` nanoseconds.
    pub fn record_build(&mut self, ns: u64) {
        self.builds += 1;
        self.build_ns += ns;
        self.build_histo.record(ns);
    }

    /// Records one sparsity estimate for `op` taking `ns` nanoseconds.
    pub fn record_estimate(&mut self, op: &'static str, ns: u64) {
        let s = self.per_op.entry(op).or_default();
        s.estimates += 1;
        s.estimate_ns += ns;
        s.estimate_histo.record(ns);
    }

    /// Records one synopsis propagation for `op` taking `ns` nanoseconds.
    pub fn record_propagate(&mut self, op: &'static str, ns: u64) {
        let s = self.per_op.entry(op).or_default();
        s.propagations += 1;
        s.propagate_ns += ns;
        s.propagate_histo.record(ns);
    }

    /// Fraction of cache lookups that hit, or 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Per-op timing buckets in deterministic (name) order.
    pub fn per_op(&self) -> impl Iterator<Item = (&'static str, &OpStat)> {
        self.per_op.iter().map(|(k, v)| (*k, v))
    }

    /// Folds another session's counters into this one.
    ///
    /// Latency histograms merge bucket-wise, so quantiles reported after a
    /// merge are computed over the union of both sessions' observations —
    /// not an average of per-session quantiles (which would understate tail
    /// latency whenever one session is slower than the other).
    pub fn merge(&mut self, other: &EstimationStats) {
        self.builds += other.builds;
        self.build_ns += other.build_ns;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.evictions += other.evictions;
        self.bytes_resident = self.bytes_resident.max(other.bytes_resident);
        self.build_histo.merge(&other.build_histo);
        for (op, s) in &other.per_op {
            let acc = self.per_op.entry(op).or_default();
            acc.estimates += s.estimates;
            acc.estimate_ns += s.estimate_ns;
            acc.propagations += s.propagations;
            acc.propagate_ns += s.propagate_ns;
            acc.estimate_histo.merge(&s.estimate_histo);
            acc.propagate_histo.merge(&s.propagate_histo);
        }
    }
}

/// `p50/p95/max` rendering helper for one histogram, in µs.
fn fmt_quantiles(h: &LatencyHisto) -> String {
    if h.count() == 0 {
        return String::from("-");
    }
    format!(
        "p50 {:.1} / p95 {:.1} / max {:.1} µs",
        h.quantile(0.5) as f64 / 1_000.0,
        h.quantile(0.95) as f64 / 1_000.0,
        h.max() as f64 / 1_000.0,
    )
}

impl fmt::Display for EstimationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "builds: {} ({:.1} µs)   cache: {} hits / {} misses ({:.0}% hit rate), \
             {} evictions, {} B resident",
            self.builds,
            self.build_ns as f64 / 1_000.0,
            self.cache_hits,
            self.cache_misses,
            self.hit_rate() * 100.0,
            self.evictions,
            self.bytes_resident,
        )?;
        if self.build_histo.count() > 0 {
            writeln!(f, "  build latency: {}", fmt_quantiles(&self.build_histo))?;
        }
        for (op, s) in &self.per_op {
            writeln!(
                f,
                "  {op:<10} estimate: {:>5} calls {:>10.1} µs   propagate: {:>5} calls {:>10.1} µs",
                s.estimates,
                s.estimate_ns as f64 / 1_000.0,
                s.propagations,
                s.propagate_ns as f64 / 1_000.0,
            )?;
            if s.estimate_histo.count() > 0 {
                writeln!(
                    f,
                    "  {:<10}   estimate {}",
                    "",
                    fmt_quantiles(&s.estimate_histo)
                )?;
            }
            if s.propagate_histo.count() > 0 {
                writeln!(
                    f,
                    "  {:<10}  propagate {}",
                    "",
                    fmt_quantiles(&s.propagate_histo)
                )?;
            }
        }
        Ok(())
    }
}

/// Minimal wall-clock timer for feeding [`EstimationStats`]:
/// `OpTimer::start()` ... `timer.elapsed_ns()`.
#[derive(Debug, Clone, Copy)]
pub struct OpTimer {
    start: Instant,
}

impl OpTimer {
    /// Starts the clock.
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        OpTimer {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since `start()`, saturated to `u64`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

// ---------------------------------------------------------------------------
// Byte-budgeted LRU cache
// ---------------------------------------------------------------------------

struct CacheEntry<V> {
    value: V,
    bytes: usize,
    last_used: u64,
}

/// A keyed LRU cache with a byte budget instead of an entry-count capacity —
/// synopsis sizes vary by orders of magnitude (`O(m+n)` MNC sketches vs.
/// `O(mn)`-bit bitsets), so counting entries would be meaningless.
///
/// The caller supplies each entry's size (e.g. `Synopsis::size_bytes()`).
/// Recency is tracked with a monotone tick; eviction scans for the minimum
/// tick, which is `O(len)` but the cache holds at most a few hundred
/// synopses in practice. Values larger than the whole budget are not cached
/// at all — admitting one would evict everything for a value that can never
/// be resident alongside anything else.
pub struct LruSynopsisCache<K, V> {
    map: HashMap<K, CacheEntry<V>>,
    byte_budget: usize,
    bytes: usize,
    tick: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruSynopsisCache<K, V> {
    /// Creates a cache that keeps at most `byte_budget` bytes resident.
    pub fn new(byte_budget: usize) -> Self {
        LruSynopsisCache {
            map: HashMap::new(),
            byte_budget,
            bytes: 0,
            tick: 0,
            evictions: 0,
        }
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Bytes currently resident.
    pub fn bytes_resident(&self) -> usize {
        self.bytes
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries evicted over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            &e.value
        })
    }

    /// Whether `key` is cached (without touching recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts `key -> value` accounted as `bytes`, evicting
    /// least-recently-used entries until the budget holds. Oversized values
    /// (`bytes > byte_budget`) are silently not cached.
    pub fn insert(&mut self, key: K, value: V, bytes: usize) {
        if bytes > self.byte_budget {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.map.insert(
            key,
            CacheEntry {
                value,
                bytes,
                last_used: self.tick,
            },
        );
        while self.bytes > self.byte_budget {
            // The just-inserted entry carries the max tick, so the scan
            // always finds an older victim first.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("over budget implies a non-empty cache");
            if let Some(e) = self.map.remove(&victim) {
                self.bytes -= e.bytes;
                self.evictions += 1;
            }
        }
    }

    /// Drops every entry (lifetime eviction counter is preserved).
    pub fn clear(&mut self) {
        self.map.clear();
        self.bytes = 0;
    }
}

// ---------------------------------------------------------------------------
// Parallel sketch construction
// ---------------------------------------------------------------------------

/// Phase-1 result for one row chunk: its `h^r` slice, a full-width `h^c`
/// contribution, and the chunk's diagonal-consistency flag.
struct Chunk1 {
    hr: Vec<u32>,
    hc: Vec<u32>,
    diagonal_fragment: bool,
}

fn chunk_phase1(m: &CsrMatrix, lo: usize, hi: usize, ncols: usize) -> Chunk1 {
    let mut hr = vec![0u32; hi - lo];
    let mut hc = vec![0u32; ncols];
    let mut diagonal_fragment = true;
    for (k, rc) in hr.iter_mut().enumerate() {
        let i = lo + k;
        let (cols, _) = m.row(i);
        *rc = cols.len() as u32;
        diagonal_fragment &= cols.len() == 1 && cols[0] as usize == i;
        for &c in cols {
            hc[c as usize] += 1;
        }
    }
    Chunk1 {
        hr,
        hc,
        diagonal_fragment,
    }
}

/// Phase-2 result for one row chunk: its `h^er` slice and a full-width
/// `h^ec` contribution (needs the merged global `h^c`).
struct Chunk2 {
    her: Vec<u32>,
    hec: Vec<u32>,
}

fn chunk_phase2(m: &CsrMatrix, lo: usize, hi: usize, global_hc: &[u32]) -> Chunk2 {
    let mut her = vec![0u32; hi - lo];
    let mut hec = vec![0u32; global_hc.len()];
    for (k, er) in her.iter_mut().enumerate() {
        let (cols, _) = m.row(lo + k);
        let single_row = cols.len() == 1;
        for &c in cols {
            if global_hc[c as usize] == 1 {
                *er += 1;
            }
            if single_row {
                hec[c as usize] += 1;
            }
        }
    }
    Chunk2 { her, hec }
}

impl MncSketch {
    /// [`MncSketch::build`] over `threads` scoped worker threads scanning
    /// disjoint row chunks. Count merging is additive over integers, so the
    /// result is **bit-identical** to the sequential build (asserted in
    /// tests and by the serialization round-trip).
    pub fn build_parallel(m: &CsrMatrix, threads: usize) -> Self {
        Self::build_parallel_with(m, true, threads)
    }

    /// Parallel build with the extended vectors optional (MNC Basic).
    ///
    /// Mirrors the phase-1 / phase-2 split of
    /// [`build_distributed`](crate::distributed::build_distributed), but over
    /// row chunks of one matrix instead of pre-partitioned fragments.
    pub fn build_parallel_with(m: &CsrMatrix, use_extended: bool, threads: usize) -> Self {
        let (nrows, ncols) = m.shape();
        let threads = threads.clamp(1, nrows.max(1));
        if threads == 1 {
            return Self::build_with(m, use_extended);
        }
        let chunks = row_chunks(nrows, threads);
        let pool = WorkerPool::new(threads);

        // Phase 1: per-chunk counts on pool workers, merged in chunk order.
        let phase1: Vec<Chunk1> = pool.run(chunks.len(), |k| {
            let (lo, hi) = chunks[k];
            chunk_phase1(m, lo, hi, ncols)
        });
        let mut hr = Vec::with_capacity(nrows);
        let mut hc = vec![0u32; ncols];
        let mut diagonal = nrows == ncols && nrows > 0;
        for c in &phase1 {
            hr.extend_from_slice(&c.hr);
            for (acc, &v) in hc.iter_mut().zip(&c.hc) {
                *acc += v;
            }
            diagonal &= c.diagonal_fragment;
        }

        let max_hr = hr.iter().copied().max().unwrap_or(0);
        let max_hc = hc.iter().copied().max().unwrap_or(0);

        // Phase 2: extended vectors against the merged global h^c.
        let (her, hec) = if use_extended && max_hr > 1 && max_hc > 1 {
            let hc_ref = &hc;
            let phase2: Vec<Chunk2> = pool.run(chunks.len(), |k| {
                let (lo, hi) = chunks[k];
                chunk_phase2(m, lo, hi, hc_ref)
            });
            let mut her = Vec::with_capacity(nrows);
            let mut hec = vec![0u32; ncols];
            for c in &phase2 {
                her.extend_from_slice(&c.her);
                for (acc, &v) in hec.iter_mut().zip(&c.hec) {
                    *acc += v;
                }
            }
            (Some(her), Some(hec))
        } else {
            (None, None)
        };

        MncSketch::from_vectors(nrows, ncols, hr, hc, her, hec, diagonal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::{from_bytes, to_bytes};
    use mnc_matrix::gen;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        let mut r = rng(1);
        for (rows, cols, s) in [
            (64usize, 48usize, 0.1f64),
            (33, 7, 0.4),
            (7, 96, 0.05),
            (1, 1, 1.0),
        ] {
            let m = gen::rand_uniform(&mut r, rows, cols, s);
            let seq = MncSketch::build(&m);
            for threads in [1, 2, 3, 4, 9, 64] {
                let par = MncSketch::build_parallel(&m, threads);
                assert_eq!(par, seq, "{rows}x{cols} s={s} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_basic_build_matches_sequential_basic() {
        let mut r = rng(2);
        let m = gen::rand_uniform(&mut r, 40, 40, 0.2);
        let par = MncSketch::build_parallel_with(&m, false, 4);
        assert_eq!(par, MncSketch::build_with(&m, false));
        assert!(par.her.is_none());
    }

    #[test]
    fn parallel_build_diagonal_flag() {
        let d = gen::scalar_diag(24, 2.0);
        assert!(MncSketch::build_parallel(&d, 4).meta.fully_diagonal);
        let mut r = rng(3);
        let m = gen::rand_uniform(&mut r, 24, 24, 0.3);
        assert_eq!(
            MncSketch::build_parallel(&m, 4).meta.fully_diagonal,
            MncSketch::build(&m).meta.fully_diagonal
        );
    }

    #[test]
    fn parallel_build_of_empty_and_degenerate_matrices() {
        let z = CsrMatrix::zeros(0, 5);
        let h = MncSketch::build_parallel(&z, 8);
        assert_eq!(h, MncSketch::build(&z));
        let z = CsrMatrix::zeros(5, 0);
        assert_eq!(MncSketch::build_parallel(&z, 8), MncSketch::build(&z));
    }

    #[test]
    fn parallel_built_sketch_round_trips_through_bytes() {
        let mut r = rng(4);
        let m = gen::rand_uniform(&mut r, 50, 30, 0.15);
        let par = MncSketch::build_parallel(&m, 4);
        let seq = MncSketch::build(&m);
        // Bit-identical sketches serialize to identical bytes...
        assert_eq!(to_bytes(&par), to_bytes(&seq));
        // ...and the round-trip reproduces the parallel-built sketch.
        assert_eq!(from_bytes(&to_bytes(&par)).unwrap(), par);
    }

    #[test]
    fn lru_respects_byte_budget_and_evicts_least_recent() {
        let mut cache: LruSynopsisCache<u32, &'static str> = LruSynopsisCache::new(100);
        cache.insert(1, "a", 40);
        cache.insert(2, "b", 40);
        assert_eq!(cache.bytes_resident(), 80);
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(cache.get(&1), Some(&"a"));
        cache.insert(3, "c", 40);
        assert!(cache.contains(&1), "recently used entry must survive");
        assert!(!cache.contains(&2), "LRU entry must be evicted");
        assert!(cache.contains(&3));
        assert_eq!(cache.bytes_resident(), 80);
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn lru_reinsert_replaces_without_double_counting() {
        let mut cache: LruSynopsisCache<u32, u64> = LruSynopsisCache::new(100);
        cache.insert(1, 10, 60);
        cache.insert(1, 11, 30);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes_resident(), 30);
        assert_eq!(cache.get(&1), Some(&11));
    }

    #[test]
    fn lru_skips_oversized_values() {
        let mut cache: LruSynopsisCache<u32, u64> = LruSynopsisCache::new(50);
        cache.insert(1, 10, 40);
        cache.insert(2, 20, 51);
        assert!(
            cache.contains(&1),
            "small entry must not be evicted for an oversized one"
        );
        assert!(!cache.contains(&2));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes_resident(), 0);
    }

    #[test]
    fn stats_counters_and_display() {
        let mut s = EstimationStats::new();
        s.record_build(1_500);
        s.cache_hits = 3;
        s.cache_misses = 1;
        s.record_estimate("matmul", 2_000);
        s.record_estimate("matmul", 1_000);
        s.record_propagate("ew_add", 500);
        assert_eq!(s.hit_rate(), 0.75);
        let per_op: Vec<_> = s.per_op().collect();
        assert_eq!(per_op.len(), 2);
        assert_eq!(per_op[1].0, "matmul");
        assert_eq!(per_op[1].1.estimates, 2);

        let mut merged = EstimationStats::new();
        merged.merge(&s);
        merged.merge(&s);
        assert_eq!(merged.builds, 2);
        assert_eq!(merged.cache_hits, 6);
        assert_eq!(merged.build_histo.count(), 2);
        assert_eq!(merged.per_op["matmul"].estimate_histo.count(), 4);

        let text = s.to_string();
        assert!(text.contains("75% hit rate"), "{text}");
        assert!(text.contains("matmul"), "{text}");
        assert!(text.contains("p95"), "{text}");
    }

    #[test]
    fn merged_quantiles_come_from_the_union_not_a_mean_of_means() {
        // Session A: 99 fast estimates; session B: one slow estimate. A
        // mean-of-per-session-p95s would report ~half the slow latency; the
        // bucket-additive merge must keep p95 in the fast range while max is
        // exact.
        let mut a = EstimationStats::new();
        for _ in 0..99 {
            a.record_estimate("matmul", 10);
        }
        let mut b = EstimationStats::new();
        b.record_estimate("matmul", 1_000_000);
        let mut merged = EstimationStats::new();
        merged.merge(&a);
        merged.merge(&b);
        let m = &merged
            .per_op()
            .find(|(op, _)| *op == "matmul")
            .unwrap()
            .1
            .estimate_histo;
        assert_eq!(m.count(), 100);
        assert!(m.quantile(0.95) <= 15, "p95 {}", m.quantile(0.95));
        assert_eq!(m.max(), 1_000_000);
    }

    #[test]
    fn op_timer_is_monotone() {
        let t = OpTimer::start();
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
    }
}
