//! The MNC sketch data structure and its construction (Section 3.1).

use mnc_kernels::VecMeta;
use mnc_matrix::CsrMatrix;

/// Summary statistics kept alongside the count vectors (Section 3.1,
/// "Summary Statistics").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SketchMeta {
    /// Total non-zeros, `Σ h^r` (equal to `Σ h^c` for sketches built from a
    /// matrix; propagated sketches keep both sums within rounding noise).
    pub nnz: u64,
    /// `max(h^r)`.
    pub max_hr: u32,
    /// `max(h^c)`.
    pub max_hc: u32,
    /// Number of non-empty rows, `nnz(h^r)`.
    pub nonempty_rows: usize,
    /// Number of non-empty columns, `nnz(h^c)`.
    pub nonempty_cols: usize,
    /// Number of half-full rows, `|h^r > n/2|` (more than half the columns
    /// occupied) — feeds the Theorem 3.2 lower bound.
    pub half_full_rows: usize,
    /// Number of half-full columns, `|h^c > m/2|`.
    pub half_full_cols: usize,
    /// `|h^r = 1|` — rows with exactly one non-zero (Eq. 9 / Alg. 1 line 6).
    pub rows_eq_1: usize,
    /// `|h^c = 1|` — columns with exactly one non-zero.
    pub cols_eq_1: usize,
    /// Square with a fully dense diagonal and nothing else (Eq. 12 flag).
    pub fully_diagonal: bool,
}

/// The MNC (Matrix Non-zero Count) sketch of an `m x n` matrix:
/// row/column non-zero count vectors, optional extended count vectors, and
/// summary metadata. Size `O(m + n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MncSketch {
    /// Number of rows of the sketched matrix.
    pub nrows: usize,
    /// Number of columns of the sketched matrix.
    pub ncols: usize,
    /// `h^r` — non-zeros per row, length `nrows`.
    pub hr: Vec<u32>,
    /// `h^c` — non-zeros per column, length `ncols`.
    pub hc: Vec<u32>,
    /// `h^er` — per row, the count of non-zeros lying in columns with a
    /// single non-zero (`rowSums((A≠0) · (h^c = 1))`). Built only when some
    /// row *and* some column has more than one non-zero.
    pub her: Option<Vec<u32>>,
    /// `h^ec` — per column, the count of non-zeros lying in rows with a
    /// single non-zero (`colSums((A≠0) · (h^r = 1))`).
    pub hec: Option<Vec<u32>>,
    /// Summary statistics.
    pub meta: SketchMeta,
}

impl MncSketch {
    /// Builds the sketch with extended count vectors when applicable
    /// (the paper's default construction).
    ///
    /// ```
    /// use mnc_core::MncSketch;
    /// use mnc_matrix::CsrMatrix;
    ///
    /// let m = CsrMatrix::from_triples(2, 3, vec![(0, 1, 1.0), (1, 0, 2.0), (1, 2, 3.0)])
    ///     .unwrap();
    /// let h = MncSketch::build(&m);
    /// assert_eq!(h.hr, vec![1, 2]);
    /// assert_eq!(h.hc, vec![1, 1, 1]);
    /// assert_eq!(h.meta.nnz, 3);
    /// ```
    pub fn build(m: &CsrMatrix) -> Self {
        Self::build_with(m, true)
    }

    /// Builds the sketch; `use_extended = false` reproduces *MNC Basic*.
    ///
    /// One scan over the non-zeros for `h^r`/`h^c` (CSR provides `h^r` from
    /// the row pointer), one pass over the vectors for the metadata, and —
    /// if needed — a second scan over the non-zeros for `h^er`/`h^ec`.
    pub fn build_with(m: &CsrMatrix, use_extended: bool) -> Self {
        let (nrows, ncols) = m.shape();
        let mut hr = vec![0u32; nrows];
        let mut hc = vec![0u32; ncols];
        for (i, rc) in hr.iter_mut().enumerate() {
            let (cols, _) = m.row(i);
            *rc = cols.len() as u32;
            for &c in cols {
                hc[c as usize] += 1;
            }
        }
        let fully_diagonal = m.is_fully_diagonal();
        let meta = compute_meta(&hr, &hc, nrows, ncols, fully_diagonal);

        // Extended vectors only pay off when neither Theorem 3.1 case holds.
        let (her, hec) = if use_extended && meta.max_hr > 1 && meta.max_hc > 1 {
            let mut her = vec![0u32; nrows];
            let mut hec = vec![0u32; ncols];
            for (i, er) in her.iter_mut().enumerate() {
                let (cols, _) = m.row(i);
                let single_row = cols.len() == 1;
                for &c in cols {
                    if hc[c as usize] == 1 {
                        *er += 1;
                    }
                    if single_row {
                        hec[c as usize] += 1;
                    }
                }
            }
            (Some(her), Some(hec))
        } else {
            (None, None)
        };

        MncSketch {
            nrows,
            ncols,
            hr,
            hc,
            her,
            hec,
            meta,
        }
    }

    /// Assembles a sketch from (propagated) count vectors, recomputing the
    /// metadata. Used by the propagation rules of Sections 3.3 / 4.2.
    pub fn from_vectors(
        nrows: usize,
        ncols: usize,
        hr: Vec<u32>,
        hc: Vec<u32>,
        her: Option<Vec<u32>>,
        hec: Option<Vec<u32>>,
        fully_diagonal: bool,
    ) -> Self {
        debug_assert_eq!(hr.len(), nrows);
        debug_assert_eq!(hc.len(), ncols);
        let meta = compute_meta(&hr, &hc, nrows, ncols, fully_diagonal);
        MncSketch {
            nrows,
            ncols,
            hr,
            hc,
            her,
            hec,
            meta,
        }
    }

    /// Assembles a sketch from count vectors whose per-vector statistics were
    /// already produced by a fused kernel pass ([`mnc_kernels::VecMeta`]),
    /// skipping the metadata rescan of [`MncSketch::from_vectors`].
    ///
    /// The caller must have computed `row_meta`/`col_meta` with the matching
    /// half-full thresholds (`ncols / 2` for rows, `nrows / 2` for columns).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_vectors_with_meta(
        nrows: usize,
        ncols: usize,
        hr: Vec<u32>,
        hc: Vec<u32>,
        her: Option<Vec<u32>>,
        hec: Option<Vec<u32>>,
        fully_diagonal: bool,
        row_meta: VecMeta,
        col_meta: VecMeta,
    ) -> Self {
        debug_assert_eq!(hr.len(), nrows);
        debug_assert_eq!(hc.len(), ncols);
        let meta = meta_from_scans(row_meta, col_meta, fully_diagonal);
        debug_assert_eq!(
            meta,
            compute_meta(&hr, &hc, nrows, ncols, fully_diagonal),
            "fused VecMeta must agree with a fresh metadata scan"
        );
        MncSketch {
            nrows,
            ncols,
            hr,
            hc,
            her,
            hec,
            meta,
        }
    }

    /// Sketch of an all-zero matrix.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Self::from_vectors(
            nrows,
            ncols,
            vec![0; nrows],
            vec![0; ncols],
            None,
            None,
            false,
        )
    }

    /// Sparsity implied by the sketch, `nnz / (m·n)`.
    pub fn sparsity(&self) -> f64 {
        let cells = self.nrows as f64 * self.ncols as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.meta.nnz as f64 / cells
        }
    }

    /// `h^er` with the degenerate case materialized: when every column has
    /// at most one non-zero, *every* stored entry lies in a single-non-zero
    /// column, so `h^er = h^r`.
    pub fn effective_her(&self) -> Option<Vec<u32>> {
        self.effective_her_slice().map(<[u32]>::to_vec)
    }

    /// `h^ec` with the degenerate case materialized (`max(h^r) ≤ 1` ⇒
    /// `h^ec = h^c`).
    pub fn effective_hec(&self) -> Option<Vec<u32>> {
        self.effective_hec_slice().map(<[u32]>::to_vec)
    }

    /// Borrowing variant of [`MncSketch::effective_her`] — the hot paths use
    /// this to avoid cloning a count vector per propagation step.
    pub fn effective_her_slice(&self) -> Option<&[u32]> {
        if self.meta.max_hc <= 1 {
            Some(&self.hr)
        } else {
            self.her.as_deref()
        }
    }

    /// Borrowing variant of [`MncSketch::effective_hec`].
    pub fn effective_hec_slice(&self) -> Option<&[u32]> {
        if self.meta.max_hr <= 1 {
            Some(&self.hc)
        } else {
            self.hec.as_deref()
        }
    }

    /// Consumes the sketch, returning its count-vector buffers to `arena` so
    /// the next propagation step can lease them back. Chain drivers call this
    /// on each retired intermediate: once the pool holds one generation of
    /// buffers, the whole chain runs allocation-free.
    pub fn recycle_into(self, arena: &mut mnc_kernels::ScratchArena) {
        arena.put_u32(self.hr);
        arena.put_u32(self.hc);
        arena.put_u32_opt(self.her);
        arena.put_u32_opt(self.hec);
    }

    /// Synopsis size in bytes: 4 B per count entry (`u32`), doubled when the
    /// extended vectors are materialized, plus the fixed metadata block.
    pub fn size_bytes(&self) -> usize {
        let base = 4 * (self.nrows + self.ncols);
        let ext = if self.her.is_some() {
            4 * self.nrows
        } else {
            0
        } + if self.hec.is_some() {
            4 * self.ncols
        } else {
            0
        };
        base + ext + std::mem::size_of::<SketchMeta>()
    }

    /// Measured heap bytes retained by the count vectors (capacities, not
    /// lengths). The metadata block lives inline and is excluded.
    pub fn heap_bytes(&self) -> u64 {
        let vec_bytes = |v: &Option<Vec<u32>>| v.as_ref().map_or(0, |v| v.capacity() * 4);
        (self.hr.capacity() * 4
            + self.hc.capacity() * 4
            + vec_bytes(&self.her)
            + vec_bytes(&self.hec)) as u64
    }
}

/// Half-full thresholds: rows are half-full w.r.t. the number of columns and
/// vice versa (Theorem 3.2 compares against the common dimension).
pub(crate) fn row_half_threshold(ncols: usize) -> u32 {
    ncols as u32 / 2
}

pub(crate) fn col_half_threshold(nrows: usize) -> u32 {
    nrows as u32 / 2
}

/// Folds two fused-kernel vector scans into the sketch metadata. The row sum
/// is authoritative for `nnz`: matrix-built sketches have equal sums, while
/// propagated sketches may disagree by rounding noise (documented in
/// `SketchMeta::nnz`).
pub(crate) fn meta_from_scans(
    row_meta: VecMeta,
    col_meta: VecMeta,
    fully_diagonal: bool,
) -> SketchMeta {
    SketchMeta {
        nnz: row_meta.sum,
        max_hr: row_meta.max,
        max_hc: col_meta.max,
        nonempty_rows: row_meta.nonempty,
        nonempty_cols: col_meta.nonempty,
        half_full_rows: row_meta.over_half,
        half_full_cols: col_meta.over_half,
        rows_eq_1: row_meta.eq1,
        cols_eq_1: col_meta.eq1,
        fully_diagonal,
    }
}

fn compute_meta(
    hr: &[u32],
    hc: &[u32],
    nrows: usize,
    ncols: usize,
    fully_diagonal: bool,
) -> SketchMeta {
    let row_meta = mnc_kernels::meta_scan(hr, row_half_threshold(ncols));
    let col_meta = mnc_kernels::meta_scan(hc, col_half_threshold(nrows));
    meta_from_scans(row_meta, col_meta, fully_diagonal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::gen;
    use rand::SeedableRng;

    /// The running-example-style matrix used across the crate's tests:
    ///
    /// ```text
    /// [ . 1 . . ]      h^r = [1, 2, 0, 1, 3]
    /// [ 1 . 1 . ]      h^c = [2, 2, 2, 1]
    /// [ . . . . ]      h^er = [0, 0, 0, 0, 1]  (column 3 is single-nnz)
    /// [ . 1 . . ]      h^ec = [0, 1, 0, 0]     (row 0 and row 3 are single;
    /// [ 1 . 1 1 ]                               both hit column 1 ... row 0
    ///                                           col 1, row 3 col 1 -> hec[1]=2)
    /// ```
    fn sample() -> CsrMatrix {
        CsrMatrix::from_triples(
            5,
            4,
            vec![
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (3, 1, 1.0),
                (4, 0, 1.0),
                (4, 2, 1.0),
                (4, 3, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn count_vectors() {
        let h = MncSketch::build(&sample());
        assert_eq!(h.hr, vec![1, 2, 0, 1, 3]);
        assert_eq!(h.hc, vec![2, 2, 2, 1]);
        assert_eq!(h.meta.nnz, 7);
    }

    #[test]
    fn extended_vectors() {
        let h = MncSketch::build(&sample());
        // Column 3 is the only single-non-zero column; its entry is in row 4.
        assert_eq!(h.her, Some(vec![0, 0, 0, 0, 1]));
        // Rows 0 and 3 are single-non-zero rows; both entries in column 1.
        assert_eq!(h.hec, Some(vec![0, 2, 0, 0]));
    }

    #[test]
    fn metadata() {
        let h = MncSketch::build(&sample());
        let m = &h.meta;
        assert_eq!(m.max_hr, 3);
        assert_eq!(m.max_hc, 2);
        assert_eq!(m.nonempty_rows, 4);
        assert_eq!(m.nonempty_cols, 4);
        assert_eq!(m.rows_eq_1, 2);
        assert_eq!(m.cols_eq_1, 1);
        // Row threshold: ncols/2 = 2, so rows with > 2 nnz: row 4 only.
        assert_eq!(m.half_full_rows, 1);
        // Col threshold: nrows/2 = 2, no column exceeds 2.
        assert_eq!(m.half_full_cols, 0);
        assert!(!m.fully_diagonal);
    }

    #[test]
    fn extended_skipped_when_theorem31_applies() {
        // Permutation: max(h^r) = 1, extended vectors are unnecessary.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = gen::permutation(&mut rng, 16);
        let h = MncSketch::build(&p);
        assert!(h.her.is_none() && h.hec.is_none());
        // But the effective vectors materialize the degenerate equality.
        assert_eq!(h.effective_hec(), Some(h.hc.clone()));
        assert_eq!(h.effective_her(), Some(h.hr.clone()));
    }

    #[test]
    fn basic_config_skips_extended() {
        let h = MncSketch::build_with(&sample(), false);
        assert!(h.her.is_none() && h.hec.is_none());
        assert_eq!(h.hr, vec![1, 2, 0, 1, 3]);
    }

    #[test]
    fn diagonal_flag() {
        let d = gen::scalar_diag(8, 2.0);
        assert!(MncSketch::build(&d).meta.fully_diagonal);
        let i = CsrMatrix::identity(3);
        assert!(MncSketch::build(&i).meta.fully_diagonal);
        assert!(!MncSketch::build(&sample()).meta.fully_diagonal);
    }

    #[test]
    fn row_and_col_sums_agree_for_built_sketches() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let m = gen::rand_uniform(&mut rng, 50, 70, 0.08);
        let h = MncSketch::build(&m);
        let rsum: u64 = h.hr.iter().map(|&c| c as u64).sum();
        let csum: u64 = h.hc.iter().map(|&c| c as u64).sum();
        assert_eq!(rsum, csum);
        assert_eq!(rsum, m.nnz() as u64);
        assert!((h.sparsity() - m.sparsity()).abs() < 1e-12);
    }

    #[test]
    fn extended_counts_bounded_by_base_counts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let m = gen::rand_uniform(&mut rng, 60, 40, 0.05);
        let h = MncSketch::build(&m);
        if let (Some(her), Some(hec)) = (&h.her, &h.hec) {
            for (e, b) in her.iter().zip(&h.hr) {
                assert!(e <= b);
            }
            for (e, b) in hec.iter().zip(&h.hc) {
                assert!(e <= b);
            }
        }
    }

    #[test]
    fn empty_sketch() {
        let h = MncSketch::empty(3, 5);
        assert_eq!(h.meta.nnz, 0);
        assert_eq!(h.sparsity(), 0.0);
        assert_eq!(h.meta.nonempty_rows, 0);
    }

    #[test]
    fn size_is_linear_in_dimensions() {
        let h = MncSketch::empty(1000, 500);
        // No extended vectors: 4 B per dimension entry plus metadata.
        assert_eq!(h.size_bytes(), 4 * 1500 + std::mem::size_of::<SketchMeta>());
        let he = MncSketch::build(&sample());
        assert!(he.size_bytes() > 4 * (5 + 4)); // extended vectors present
    }
}
