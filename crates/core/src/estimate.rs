//! Sparsity estimation from MNC sketches.
//!
//! * Matrix products: Algorithm 1 of the paper, combining the exact case of
//!   Theorem 3.1, the extended-count estimator (Eq. 8–9), a density-map-like
//!   fallback over count vectors, and the Theorem 3.2 bounds.
//! * Reorganizations and element-wise operations: Section 4.1.

use crate::sketch::MncSketch;
use crate::MncConfig;
use mnc_kernels::{dot_u32, sub_sat_into, ScratchArena};

/// Density-map-like estimator over two aligned count vectors (the fallback
/// of Algorithm 1, lines 7/10):
///
/// `E_dm(x, y, p) = 1 - Π_k (1 - min(1, x_k · y_k / p))`
///
/// which treats each rank-1 term `x_k · y_k` as independently scattering
/// non-zeros over `p` candidate output cells. Computed in log-space for
/// numerical stability; returns a fraction in `[0, 1]` of the `p` cells.
///
/// Delegates to the unrolled kernel, which is bit-identical to the scalar
/// formulation for all inputs (see [`mnc_kernels::vector_edm`]).
pub fn vector_edm(x: &[u32], y: &[u32], p: f64) -> f64 {
    mnc_kernels::vector_edm(x, y, p)
}

/// Estimates the output sparsity of `C = A B` from the two sketches with the
/// default configuration (full MNC: extended counts + bounds).
///
/// ```
/// use mnc_core::estimate::estimate_matmul;
/// use mnc_core::MncSketch;
/// use mnc_matrix::CsrMatrix;
///
/// // A permutation-like left operand: one non-zero per row, so the
/// // estimate is exact (Theorem 3.1).
/// let p = CsrMatrix::identity(3);
/// let x = CsrMatrix::from_triples(3, 2, vec![(0, 0, 1.0), (2, 1, 1.0)]).unwrap();
/// let s = estimate_matmul(&MncSketch::build(&p), &MncSketch::build(&x));
/// assert_eq!(s, x.sparsity());
/// ```
pub fn estimate_matmul(ha: &MncSketch, hb: &MncSketch) -> f64 {
    estimate_matmul_with(ha, hb, &MncConfig::default())
}

/// Estimates the output sparsity of `C = A B` (Algorithm 1).
///
/// `O(n)` time in the common dimension. Panics if the sketch shapes are not
/// compatible (programmer error — callers validate user input).
pub fn estimate_matmul_with(ha: &MncSketch, hb: &MncSketch, cfg: &MncConfig) -> f64 {
    estimate_matmul_in(ha, hb, cfg, &mut ScratchArena::new())
}

/// [`estimate_matmul_with`] with caller-provided scratch: the extended-count
/// temporaries of Algorithm 1 are leased from `arena` instead of freshly
/// allocated, so repeated estimation (DAG propagation, chain optimization)
/// runs allocation-free in steady state. Bit-identical to the plain variant.
pub fn estimate_matmul_in(
    ha: &MncSketch,
    hb: &MncSketch,
    cfg: &MncConfig,
    arena: &mut ScratchArena,
) -> f64 {
    assert_eq!(
        ha.ncols, hb.nrows,
        "matmul sketch estimation: inner dimensions must agree"
    );
    let (m, l) = (ha.nrows, hb.ncols);
    let cells = m as f64 * l as f64;
    if cells == 0.0 || ha.meta.nnz == 0 || hb.meta.nnz == 0 {
        return 0.0;
    }

    let nnz_est = if ha.meta.max_hr <= 1 || hb.meta.max_hc <= 1 {
        // Theorem 3.1: the boolean product decomposes into a *disjoint*
        // union of outer products, so the dot product of the count vectors
        // is exact.
        dot_u32(&ha.hc, &hb.hr)
    } else if cfg.use_extended && (ha.hec.is_some() || hb.her.is_some()) {
        // Extended counts (Eq. 8): split into an exactly-known fraction and
        // a generic remainder over a reduced output size (Alg. 1, line 6).
        // A missing extended vector acts as all-zeros: its exact term is 0
        // and the remainder degenerates to the base count vector, so no
        // zero-filled temporary is materialized at all.
        let mut rest_c_buf: Option<Vec<u32>> = None;
        let exact_c = match &ha.hec {
            Some(hec_a) => {
                let mut buf = arena.take_u32_spare();
                sub_sat_into(&ha.hc, hec_a, &mut buf);
                rest_c_buf = Some(buf);
                dot_u32(hec_a, &hb.hr)
            }
            None => 0.0,
        };
        let rest_c: &[u32] = rest_c_buf.as_deref().unwrap_or(&ha.hc);
        let mut rest_r_buf: Option<Vec<u32>> = None;
        let exact_r = match &hb.her {
            Some(her_b) => {
                let mut buf = arena.take_u32_spare();
                sub_sat_into(&hb.hr, her_b, &mut buf);
                rest_r_buf = Some(buf);
                dot_u32(rest_c, her_b)
            }
            None => 0.0,
        };
        let rest_r: &[u32] = rest_r_buf.as_deref().unwrap_or(&hb.hr);
        let exact = exact_c + exact_r;
        let p = if cfg.use_bounds {
            (ha.meta.nonempty_rows - ha.meta.rows_eq_1) as f64
                * (hb.meta.nonempty_cols - hb.meta.cols_eq_1) as f64
        } else {
            cells
        };
        let est = exact + vector_edm(rest_c, rest_r, p) * p;
        arena.put_u32_opt(rest_c_buf);
        arena.put_u32_opt(rest_r_buf);
        est
    } else {
        // Generic fallback over column/row counts (Alg. 1, lines 9-10).
        let p = if cfg.use_bounds {
            ha.meta.nonempty_rows as f64 * hb.meta.nonempty_cols as f64
        } else {
            cells
        };
        vector_edm(&ha.hc, &hb.hr, p) * p
    };

    let mut nnz_est = nnz_est;
    if cfg.use_bounds {
        // Theorem 3.2: half-full rows x half-full columns always collide
        // (lower bound); non-empty rows x non-empty columns cap the output
        // (upper bound).
        let lower = ha.meta.half_full_rows as f64 * hb.meta.half_full_cols as f64;
        let upper = ha.meta.nonempty_rows as f64 * hb.meta.nonempty_cols as f64;
        nnz_est = nnz_est.max(lower).min(upper);
    }
    (nnz_est / cells).clamp(0.0, 1.0)
}

/// `s(Aᵀ) = s(A)` — transpose preserves sparsity exactly.
pub fn estimate_transpose(h: &MncSketch) -> f64 {
    h.sparsity()
}

/// `s(reshape(A)) = s(A)` — reshape preserves the non-zero count exactly.
pub fn estimate_reshape(h: &MncSketch) -> f64 {
    h.sparsity()
}

/// `s(A != 0) = s(A)` (assumption A2: no NaNs).
pub fn estimate_neq_zero(h: &MncSketch) -> f64 {
    h.sparsity()
}

/// `s(A == 0) = 1 - s(A)`.
pub fn estimate_eq_zero(h: &MncSketch) -> f64 {
    1.0 - h.sparsity()
}

/// `diag(v)` for an `m x 1` vector: exactly `nnz(v)` non-zeros in an
/// `m x m` output.
pub fn estimate_diag_v2m(h: &MncSketch) -> f64 {
    assert_eq!(h.ncols, 1, "diag_v2m expects a column-vector sketch");
    let m = h.nrows as f64;
    if m == 0.0 {
        0.0
    } else {
        h.meta.nnz as f64 / (m * m)
    }
}

/// `diag(A)` extraction for a square matrix: best-effort estimate — the
/// expected diagonal occupancy if each row's non-zeros were uniformly
/// placed, `Σ_i h^r_i / n` non-zeros in an `m x 1` output (Section 4.2
/// treats matrix-to-vector diag "in a best-effort manner").
pub fn estimate_diag_extract(h: &MncSketch) -> f64 {
    assert_eq!(h.nrows, h.ncols, "diag_extract expects a square sketch");
    let n = h.ncols as f64;
    if n == 0.0 {
        return 0.0;
    }
    let expected_nnz: f64 = h.hr.iter().map(|&c| c as f64 / n).sum();
    (expected_nnz / n).clamp(0.0, 1.0)
}

/// `rbind(A, B)`: exact from metadata.
pub fn estimate_rbind(ha: &MncSketch, hb: &MncSketch) -> f64 {
    assert_eq!(ha.ncols, hb.ncols, "rbind expects equal column counts");
    let cells = (ha.nrows + hb.nrows) as f64 * ha.ncols as f64;
    if cells == 0.0 {
        0.0
    } else {
        (ha.meta.nnz + hb.meta.nnz) as f64 / cells
    }
}

/// `cbind(A, B)`: exact from metadata.
pub fn estimate_cbind(ha: &MncSketch, hb: &MncSketch) -> f64 {
    assert_eq!(ha.nrows, hb.nrows, "cbind expects equal row counts");
    let cells = ha.nrows as f64 * (ha.ncols + hb.ncols) as f64;
    if cells == 0.0 {
        0.0
    } else {
        (ha.meta.nnz + hb.meta.nnz) as f64 / cells
    }
}

/// Column-collision factor `λ` of Eq. 13: the probability that a non-zero of
/// `A` and one of `B` in the same row also share the column, estimated from
/// the column count vectors.
pub(crate) fn lambda_cols(ha: &MncSketch, hb: &MncSketch) -> f64 {
    let denom = ha.meta.nnz as f64 * hb.meta.nnz as f64;
    if denom == 0.0 {
        0.0
    } else {
        dot_u32(&ha.hc, &hb.hc) / denom
    }
}

/// Row-collision factor, the symmetric counterpart used by Eq. 15.
pub(crate) fn lambda_rows(ha: &MncSketch, hb: &MncSketch) -> f64 {
    let denom = ha.meta.nnz as f64 * hb.meta.nnz as f64;
    if denom == 0.0 {
        0.0
    } else {
        dot_u32(&ha.hr, &hb.hr) / denom
    }
}

/// Element-wise addition `A + B` (Eq. 13, `+` branch): row-wise inclusion-
/// exclusion with column-collision scaling.
pub fn estimate_ew_add(ha: &MncSketch, hb: &MncSketch) -> f64 {
    assert_eq!(
        (ha.nrows, ha.ncols),
        (hb.nrows, hb.ncols),
        "element-wise ops expect equal shapes"
    );
    let cells = ha.nrows as f64 * ha.ncols as f64;
    if cells == 0.0 {
        return 0.0;
    }
    let lambda = lambda_cols(ha, hb);
    let nnz: f64 = ha
        .hr
        .iter()
        .zip(&hb.hr)
        .map(|(&a, &b)| {
            let (a, b) = (a as f64, b as f64);
            a + b - a * b * lambda
        })
        .sum();
    (nnz / cells).clamp(0.0, 1.0)
}

/// Element-wise multiplication `A ⊙ B` (Eq. 13, `⊙` branch): estimated
/// collisions per row scaled by the column-collision factor.
pub fn estimate_ew_mul(ha: &MncSketch, hb: &MncSketch) -> f64 {
    assert_eq!(
        (ha.nrows, ha.ncols),
        (hb.nrows, hb.ncols),
        "element-wise ops expect equal shapes"
    );
    let cells = ha.nrows as f64 * ha.ncols as f64;
    if cells == 0.0 {
        return 0.0;
    }
    let lambda = lambda_cols(ha, hb);
    let nnz: f64 = ha
        .hr
        .iter()
        .zip(&hb.hr)
        .map(|(&a, &b)| a as f64 * b as f64 * lambda)
        .sum();
    (nnz / cells).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::{gen, ops, CsrMatrix};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn true_sparsity_mm(a: &CsrMatrix, b: &CsrMatrix) -> f64 {
        ops::bool_matmul(a, b).unwrap().sparsity()
    }

    #[test]
    fn theorem_3_1_exact_for_permutation_times_anything() {
        let mut r = rng(1);
        let p = gen::permutation(&mut r, 64);
        let x = gen::rand_uniform(&mut r, 64, 32, 0.2);
        let est = estimate_matmul(&MncSketch::build(&p), &MncSketch::build(&x));
        assert!((est - true_sparsity_mm(&p, &x)).abs() < 1e-12);
    }

    #[test]
    fn theorem_3_1_exact_for_single_nnz_rows() {
        // Token-sequence-like matrix: exactly one non-zero per row.
        let mut r = rng(2);
        let counts = vec![1u32; 100];
        let s = gen::rand_with_row_counts(&mut r, 40, &counts);
        let w = gen::rand_uniform(&mut r, 40, 25, 0.9);
        let est = estimate_matmul(&MncSketch::build(&s), &MncSketch::build(&w));
        assert!((est - true_sparsity_mm(&s, &w)).abs() < 1e-12);
    }

    #[test]
    fn density_map_anomaly_example_is_exact_under_mnc() {
        // Section 2.2: 200x100 matrix with 50 non-zeros in one column times
        // a dense 100x100 matrix. True nnz = 5,000; the density map
        // under-estimates (4,429 at b=200), MNC is exact via Theorem 3.1.
        let mut r = rng(3);
        let mut a_triples = Vec::new();
        for i in 0..50 {
            a_triples.push((i * 3, 7usize, 1.0)); // 50 rows, single column
        }
        let a = CsrMatrix::from_triples(200, 100, a_triples).unwrap();
        let b = gen::rand_dense(&mut r, 100, 100);
        let est = estimate_matmul(&MncSketch::build(&a), &MncSketch::build(&b));
        let true_s = 5_000.0 / (200.0 * 100.0);
        assert!((est - true_s).abs() < 1e-12);
        assert!((true_sparsity_mm(&a, &b) - true_s).abs() < 1e-12);
    }

    #[test]
    fn b15_inner_product_exact_via_upper_bound() {
        // R has a single dense row, C a single aligned dense column: the
        // product has exactly one non-zero. The upper bound
        // nnz(h^r_A) · nnz(h^c_B) = 1 forces exactness (Fig. 10(f)).
        let n = 100;
        let r: CsrMatrix = CsrMatrix::from_triples(n, n, (0..n).map(|j| (0usize, j, 1.0))).unwrap();
        let c: CsrMatrix = CsrMatrix::from_triples(n, n, (0..n).map(|i| (i, 0usize, 1.0))).unwrap();
        let est = estimate_matmul(&MncSketch::build(&r), &MncSketch::build(&c));
        assert!((est - 1.0 / (n * n) as f64).abs() < 1e-15);

        // MNC Basic (no bounds) over-estimates here.
        let est_basic = estimate_matmul_with(
            &MncSketch::build(&r),
            &MncSketch::build(&c),
            &MncConfig::basic(),
        );
        assert!(est_basic > 10.0 / (n * n) as f64);
    }

    #[test]
    fn b14_outer_product_exact() {
        // C has a single dense column, R a single aligned dense row: the
        // product is fully dense. max(h^r_C) = 1 ⇒ Theorem 3.1.
        let n = 64;
        let c: CsrMatrix = CsrMatrix::from_triples(n, n, (0..n).map(|i| (i, 0usize, 1.0))).unwrap();
        let r: CsrMatrix = CsrMatrix::from_triples(n, n, (0..n).map(|j| (0usize, j, 1.0))).unwrap();
        let est = estimate_matmul(&MncSketch::build(&c), &MncSketch::build(&r));
        assert!((est - 1.0).abs() < 1e-15);
    }

    #[test]
    fn lower_bound_kicks_in_for_half_full() {
        // Rows of A and columns of B more than half full guarantee output
        // non-zeros even when the generic estimate would underestimate.
        let mut r = rng(4);
        let a = gen::rand_dense(&mut r, 20, 30);
        let b = gen::rand_dense(&mut r, 30, 20);
        let est = estimate_matmul(&MncSketch::build(&a), &MncSketch::build(&b));
        assert!((est - 1.0).abs() < 1e-12); // lower bound = all cells
    }

    #[test]
    fn bounds_sandwich_true_sparsity() {
        // Theorem 3.2 bounds hold for the true sparsity on random inputs.
        for seed in 0..10u64 {
            let mut r = rng(100 + seed);
            let a = gen::rand_uniform(&mut r, 50, 40, 0.1);
            let b = gen::rand_uniform(&mut r, 40, 60, 0.12);
            let (ha, hb) = (MncSketch::build(&a), MncSketch::build(&b));
            let true_nnz = ops::bool_matmul(&a, &b).unwrap().nnz() as f64;
            let lower = ha.meta.half_full_rows as f64 * hb.meta.half_full_cols as f64;
            let upper = ha.meta.nonempty_rows as f64 * hb.meta.nonempty_cols as f64;
            assert!(lower <= true_nnz && true_nnz <= upper);
        }
    }

    #[test]
    fn estimate_in_unit_interval_on_random_inputs() {
        for seed in 0..20u64 {
            let mut r = rng(200 + seed);
            let a = gen::rand_uniform(&mut r, 30, 25, 0.2);
            let b = gen::rand_uniform(&mut r, 25, 35, 0.3);
            let est = estimate_matmul(&MncSketch::build(&a), &MncSketch::build(&b));
            assert!((0.0..=1.0).contains(&est));
        }
    }

    #[test]
    fn empty_inputs_estimate_zero() {
        let a = MncSketch::empty(10, 5);
        let b = MncSketch::empty(5, 8);
        assert_eq!(estimate_matmul(&a, &b), 0.0);
    }

    #[test]
    fn vector_edm_basics() {
        // Empty vectors -> no non-zeros.
        assert_eq!(vector_edm(&[], &[], 10.0), 0.0);
        // Saturated term -> full.
        assert_eq!(vector_edm(&[10], &[10], 50.0), 1.0);
        // Single small term: 1 - (1 - v) = v.
        let v = vector_edm(&[2], &[3], 100.0);
        assert!((v - 0.06).abs() < 1e-12);
        // Equals the unbiased product form on several terms.
        let x = [3u32, 0, 5];
        let y = [2u32, 7, 1];
        let expect = 1.0 - (1.0 - 6.0 / 100.0) * (1.0 - 5.0 / 100.0);
        assert!((vector_edm(&x, &y, 100.0) - expect).abs() < 1e-12);
    }

    #[test]
    fn reorg_estimates_are_exact() {
        let mut r = rng(5);
        let a = gen::rand_uniform(&mut r, 24, 18, 0.15);
        let h = MncSketch::build(&a);
        assert!((estimate_transpose(&h) - a.sparsity()).abs() < 1e-15);
        assert!((estimate_reshape(&h) - a.sparsity()).abs() < 1e-15);
        assert!((estimate_neq_zero(&h) - a.sparsity()).abs() < 1e-15);
        assert!((estimate_eq_zero(&h) - (1.0 - a.sparsity())).abs() < 1e-15);
    }

    #[test]
    fn diag_estimates() {
        let v = CsrMatrix::from_triples(6, 1, vec![(1, 0, 1.0), (4, 0, 2.0)]).unwrap();
        let h = MncSketch::build(&v);
        assert!((estimate_diag_v2m(&h) - 2.0 / 36.0).abs() < 1e-15);

        let d = gen::scalar_diag(6, 3.0);
        let hd = MncSketch::build(&d);
        // Every row has one non-zero; expected diag occupancy = 6 * (1/6) = 1
        // non-zero over 6 cells.
        assert!((estimate_diag_extract(&hd) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn bind_estimates_exact() {
        let mut r = rng(6);
        let a = gen::rand_uniform(&mut r, 10, 8, 0.2);
        let b = gen::rand_uniform(&mut r, 14, 8, 0.3);
        let (ha, hb) = (MncSketch::build(&a), MncSketch::build(&b));
        let rb = ops::rbind(&a, &b).unwrap();
        assert!((estimate_rbind(&ha, &hb) - rb.sparsity()).abs() < 1e-15);

        let c = gen::rand_uniform(&mut r, 10, 12, 0.25);
        let hc = MncSketch::build(&c);
        let cb = ops::cbind(&a, &c).unwrap();
        assert!((estimate_cbind(&ha, &hc) - cb.sparsity()).abs() < 1e-15);
    }

    #[test]
    fn ew_mul_exact_for_column_mask() {
        // Column mask (B2.5 structure): full columns in the mask make the
        // aggregate Eq. 13 estimate exact.
        let mut r = rng(7);
        let x = gen::rand_uniform(&mut r, 40, 20, 0.3);
        // Mask: columns 5..10 fully dense.
        let mask = CsrMatrix::from_triples(
            40,
            20,
            (0..40).flat_map(|i| (5..10).map(move |j| (i, j, 1.0))),
        )
        .unwrap();
        let est = estimate_ew_mul(&MncSketch::build(&mask), &MncSketch::build(&x));
        let truth = ops::ew_mul(&mask, &x).unwrap().sparsity();
        assert!((est - truth).abs() < 1e-12, "est {est} vs truth {truth}");
    }

    #[test]
    fn ew_add_upper_bounded_by_sum_and_reasonable() {
        let mut r = rng(8);
        let a = gen::rand_uniform(&mut r, 30, 30, 0.2);
        let b = gen::rand_uniform(&mut r, 30, 30, 0.25);
        let (ha, hb) = (MncSketch::build(&a), MncSketch::build(&b));
        let est = estimate_ew_add(&ha, &hb);
        let truth = ops::ew_add(&a, &b).unwrap().sparsity();
        assert!(est <= a.sparsity() + b.sparsity() + 1e-12);
        assert!((est - truth).abs() < 0.05, "est {est} truth {truth}");
    }

    #[test]
    fn ew_mul_with_dense_operand_is_exact() {
        // B3.4 structure: a sparse mask element-wise multiplied with an
        // (essentially) dense matrix. With B dense, λ = 1/n and the row
        // terms reduce to h^r_A — the estimate is exact.
        let mut r = rng(9);
        let a = gen::rand_uniform(&mut r, 25, 25, 0.1);
        let b = gen::rand_dense(&mut r, 25, 25);
        let (ha, hb) = (MncSketch::build(&a), MncSketch::build(&b));
        let est = estimate_ew_mul(&ha, &hb);
        let truth = ops::ew_mul(&a, &b).unwrap().sparsity();
        assert!((est - truth).abs() < 1e-12, "est {est} truth {truth}");
    }
}
