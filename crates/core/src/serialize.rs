//! Compact binary serialization of MNC sketches.
//!
//! The paper's deployment story (Section 3.1) has sketches "computed via
//! distributed operations and subsequently, collected and used in the
//! driver for compilation" — which requires shipping sketches over the
//! wire. The format below is a little-endian, versioned, self-describing
//! layout matching the paper's size accounting: 4 B per count entry plus a
//! fixed header.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   u32  = 0x4D4E4353 ("MNCS")
//! version u16  = 1
//! flags   u16  : bit 0 = h^er present, bit 1 = h^ec present,
//!                bit 2 = fully diagonal
//! nrows   u64
//! ncols   u64
//! h^r     nrows x u32
//! h^c     ncols x u32
//! [h^er   nrows x u32]          (if flag bit 0)
//! [h^ec   ncols x u32]          (if flag bit 1)
//! ```
//!
//! The summary metadata is *recomputed* on load (it is derived state), so
//! a sketch round-trips bit-exactly through `to_bytes`/`from_bytes`.

use crate::sketch::MncSketch;

/// Magic number identifying serialized sketches ("MNCS").
pub const MAGIC: u32 = 0x4D4E_4353;
/// Current format version.
pub const VERSION: u16 = 1;

/// Errors from sketch deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// Magic number mismatch (not a sketch).
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u16),
    /// Flag bits this version does not define — a corrupt or
    /// newer-than-supported sketch.
    UnknownFlags(u16),
    /// Declared sizes exceed the buffer.
    LengthMismatch,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::UnknownFlags(x) => write!(f, "unknown flag bits 0x{x:04x}"),
            DecodeError::LengthMismatch => write!(f, "declared lengths exceed the buffer"),
        }
    }
}

impl std::error::Error for DecodeError {}

const FLAG_HER: u16 = 1 << 0;
const FLAG_HEC: u16 = 1 << 1;
const FLAG_DIAG: u16 = 1 << 2;

/// Serializes a sketch to its compact binary form.
pub fn to_bytes(sketch: &MncSketch) -> Vec<u8> {
    let mut flags = 0u16;
    if sketch.her.is_some() {
        flags |= FLAG_HER;
    }
    if sketch.hec.is_some() {
        flags |= FLAG_HEC;
    }
    if sketch.meta.fully_diagonal {
        flags |= FLAG_DIAG;
    }
    let count_entries = sketch.hr.len()
        + sketch.hc.len()
        + sketch.her.as_ref().map_or(0, Vec::len)
        + sketch.hec.as_ref().map_or(0, Vec::len);
    let mut buf = Vec::with_capacity(24 + 4 * count_entries);
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&flags.to_le_bytes());
    buf.extend_from_slice(&(sketch.nrows as u64).to_le_bytes());
    buf.extend_from_slice(&(sketch.ncols as u64).to_le_bytes());
    let mut write_counts = |counts: &[u32]| {
        for &c in counts {
            buf.extend_from_slice(&c.to_le_bytes());
        }
    };
    write_counts(&sketch.hr);
    write_counts(&sketch.hc);
    if let Some(her) = &sketch.her {
        write_counts(her);
    }
    if let Some(hec) = &sketch.hec {
        write_counts(hec);
    }
    buf
}

/// Deserializes a sketch; the summary metadata is recomputed.
pub fn from_bytes(buf: &[u8]) -> Result<MncSketch, DecodeError> {
    if buf.len() < 24 {
        return Err(DecodeError::Truncated);
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("sliced"));
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().expect("sliced"));
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let flags = u16::from_le_bytes(buf[6..8].try_into().expect("sliced"));
    if flags & !(FLAG_HER | FLAG_HEC | FLAG_DIAG) != 0 {
        return Err(DecodeError::UnknownFlags(
            flags & !(FLAG_HER | FLAG_HEC | FLAG_DIAG),
        ));
    }
    let nrows64 = u64::from_le_bytes(buf[8..16].try_into().expect("sliced"));
    let ncols64 = u64::from_le_bytes(buf[16..24].try_into().expect("sliced"));

    // Hostile buffers can declare dimensions near u64::MAX; sizing in u128
    // keeps the length check exact instead of overflowing.
    let mut expected: u128 = nrows64 as u128 + ncols64 as u128;
    if flags & FLAG_HER != 0 {
        expected += nrows64 as u128;
    }
    if flags & FLAG_HEC != 0 {
        expected += ncols64 as u128;
    }
    if buf.len() as u128 != 24 + 4 * expected {
        return Err(DecodeError::LengthMismatch);
    }
    let nrows = nrows64 as usize;
    let ncols = ncols64 as usize;

    let mut offset = 24usize;
    let mut read_counts = |n: usize| -> Vec<u32> {
        let out = buf[offset..offset + 4 * n]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunked")))
            .collect();
        offset += 4 * n;
        out
    };
    let hr = read_counts(nrows);
    let hc = read_counts(ncols);
    let her = (flags & FLAG_HER != 0).then(|| read_counts(nrows));
    let hec = (flags & FLAG_HEC != 0).then(|| read_counts(ncols));
    Ok(MncSketch::from_vectors(
        nrows,
        ncols,
        hr,
        hc,
        her,
        hec,
        flags & FLAG_DIAG != 0,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::gen;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn roundtrip_with_extended_vectors() {
        let mut r = rng(1);
        let m = gen::rand_uniform(&mut r, 40, 30, 0.2);
        let sketch = MncSketch::build(&m);
        assert!(sketch.her.is_some(), "test needs extended vectors");
        let bytes = to_bytes(&sketch);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, sketch);
    }

    #[test]
    fn roundtrip_without_extended_vectors() {
        let mut r = rng(2);
        let p = gen::permutation(&mut r, 25);
        let sketch = MncSketch::build(&p);
        assert!(sketch.her.is_none());
        let back = from_bytes(&to_bytes(&sketch)).unwrap();
        assert_eq!(back, sketch);
    }

    #[test]
    fn roundtrip_preserves_diagonal_flag() {
        let d = gen::scalar_diag(12, 3.0);
        let sketch = MncSketch::build(&d);
        assert!(sketch.meta.fully_diagonal);
        let back = from_bytes(&to_bytes(&sketch)).unwrap();
        assert!(back.meta.fully_diagonal);
    }

    #[test]
    fn size_matches_paper_accounting() {
        let sketch = MncSketch::empty(1000, 500);
        // Header (24 B) + 4 B per dimension entry, no extended vectors.
        assert_eq!(to_bytes(&sketch).len(), 24 + 4 * 1500);
    }

    #[test]
    fn rejects_corrupt_buffers() {
        let mut r = rng(3);
        let sketch = MncSketch::build(&gen::rand_uniform(&mut r, 10, 10, 0.3));
        let bytes = to_bytes(&sketch);
        assert_eq!(from_bytes(&bytes[..10]), Err(DecodeError::Truncated));

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            from_bytes(&bad_magic),
            Err(DecodeError::BadMagic(_))
        ));

        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(matches!(
            from_bytes(&bad_version),
            Err(DecodeError::BadVersion(99))
        ));

        let mut short = bytes.clone();
        short.pop();
        assert_eq!(from_bytes(&short), Err(DecodeError::LengthMismatch));
    }

    #[test]
    fn driver_collect_scenario() {
        // Distributed construction on "executors", serialization, and
        // reassembly "in the driver" — end to end.
        let mut r = rng(4);
        let m = gen::rand_uniform(&mut r, 60, 45, 0.1);
        let pm = mnc_matrix::partition::RowPartitionedMatrix::from_matrix(&m, 4);
        let sketch = crate::distributed::build_distributed(&pm);
        let wire = to_bytes(&sketch);
        let driver_copy = from_bytes(&wire).unwrap();
        assert_eq!(driver_copy, MncSketch::build(&m));
    }
}
