//! The shared operation vocabulary and the op-driven sketch API.
//!
//! [`OpKind`] and [`EstimatorError`] originally lived in `mnc-estimators`;
//! they moved here so that the core sketch and every estimator speak one
//! vocabulary (`mnc-estimators` re-exports them). On top of that vocabulary,
//! [`MncSketch::estimate`] and [`MncSketch::propagate`] collapse the twelve
//! `estimate_*`/`propagate_*` free-function pairs into two entry points that
//! validate arity and shapes up front and return [`EstimatorError`] instead
//! of panicking on malformed input.

use std::fmt;

use mnc_obs::Recorder;

use crate::estimate::{
    estimate_cbind, estimate_diag_extract, estimate_diag_v2m, estimate_eq_zero, estimate_ew_add,
    estimate_ew_mul, estimate_matmul_with, estimate_neq_zero, estimate_rbind, estimate_reshape,
    estimate_transpose,
};
use crate::propagate::{
    propagate_cbind_in, propagate_diag_extract_in, propagate_diag_v2m, propagate_eq_zero_in,
    propagate_ew_add_in, propagate_ew_mul_in, propagate_matmul_in, propagate_neq_zero,
    propagate_rbind_in, propagate_reshape_in, propagate_transpose,
};
use crate::round::SplitMix64;
use crate::sketch::MncSketch;
use crate::MncConfig;
use mnc_kernels::ScratchArena;

/// The operations the SparsEst benchmark exercises (paper Sections 3–4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Matrix product `A B`.
    MatMul,
    /// Element-wise addition `A + B`.
    EwAdd,
    /// Element-wise (Hadamard) multiplication `A ⊙ B`.
    EwMul,
    /// Element-wise maximum `max(A, B)` — under assumption A1 its pattern
    /// is the union, like `EwAdd` (the paper's spatial pattern where `max`
    /// replaces `∨`).
    EwMax,
    /// Element-wise minimum `min(A, B)` — pattern-equivalent to `EwMul`
    /// under A1.
    EwMin,
    /// Transposition `Aᵀ`.
    Transpose,
    /// Row-wise reshape to `rows x cols`.
    Reshape { rows: usize, cols: usize },
    /// `diag(v)`: column vector onto the diagonal.
    DiagV2M,
    /// `diag(A)`: diagonal extraction from a square matrix into an
    /// `m x 1` vector.
    DiagM2V,
    /// Row-wise concatenation.
    Rbind,
    /// Column-wise concatenation.
    Cbind,
    /// `A != 0` indicator.
    Neq0,
    /// `A == 0` indicator.
    Eq0,
}

impl OpKind {
    /// Number of operands the operation consumes.
    pub fn arity(&self) -> usize {
        match self {
            OpKind::MatMul
            | OpKind::EwAdd
            | OpKind::EwMul
            | OpKind::EwMax
            | OpKind::EwMin
            | OpKind::Rbind
            | OpKind::Cbind => 2,
            _ => 1,
        }
    }

    /// Stable short name, used as the per-op key in
    /// [`EstimationStats`](crate::EstimationStats) and in reports.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::MatMul => "matmul",
            OpKind::EwAdd => "ew_add",
            OpKind::EwMul => "ew_mul",
            OpKind::EwMax => "ew_max",
            OpKind::EwMin => "ew_min",
            OpKind::Transpose => "transpose",
            OpKind::Reshape { .. } => "reshape",
            OpKind::DiagV2M => "diag_v2m",
            OpKind::DiagM2V => "diag_m2v",
            OpKind::Rbind => "rbind",
            OpKind::Cbind => "cbind",
            OpKind::Neq0 => "neq0",
            OpKind::Eq0 => "eq0",
        }
    }

    /// Output shape given input shapes; an error for a wrong input count or
    /// incompatible shapes (a malformed DAG must not panic).
    pub fn output_shape(&self, inputs: &[(usize, usize)]) -> Result<(usize, usize)> {
        if inputs.len() != self.arity() {
            return Err(EstimatorError::arity(self, inputs.len()));
        }
        match self {
            OpKind::MatMul => {
                if inputs[0].1 != inputs[1].0 {
                    return Err(EstimatorError::dims(
                        self,
                        inputs[0],
                        inputs[1],
                        "inner dimension",
                    ));
                }
                Ok((inputs[0].0, inputs[1].1))
            }
            OpKind::EwAdd | OpKind::EwMul | OpKind::EwMax | OpKind::EwMin => {
                if inputs[0] != inputs[1] {
                    return Err(EstimatorError::dims(
                        self,
                        inputs[0],
                        inputs[1],
                        "equal shapes required",
                    ));
                }
                Ok(inputs[0])
            }
            OpKind::Transpose => Ok((inputs[0].1, inputs[0].0)),
            OpKind::Reshape { rows, cols } => {
                if inputs[0].0 * inputs[0].1 != rows * cols {
                    return Err(EstimatorError::shape(
                        self,
                        inputs[0],
                        "cell count must be conserved",
                    ));
                }
                Ok((*rows, *cols))
            }
            OpKind::DiagV2M => {
                if inputs[0].1 != 1 {
                    return Err(EstimatorError::shape(
                        self,
                        inputs[0],
                        "column vector required",
                    ));
                }
                Ok((inputs[0].0, inputs[0].0))
            }
            OpKind::DiagM2V => {
                if inputs[0].0 != inputs[0].1 {
                    return Err(EstimatorError::shape(
                        self,
                        inputs[0],
                        "square matrix required",
                    ));
                }
                Ok((inputs[0].0, 1))
            }
            OpKind::Rbind => {
                if inputs[0].1 != inputs[1].1 {
                    return Err(EstimatorError::dims(
                        self,
                        inputs[0],
                        inputs[1],
                        "column count",
                    ));
                }
                Ok((inputs[0].0 + inputs[1].0, inputs[0].1))
            }
            OpKind::Cbind => {
                if inputs[0].0 != inputs[1].0 {
                    return Err(EstimatorError::dims(
                        self,
                        inputs[0],
                        inputs[1],
                        "row count",
                    ));
                }
                Ok((inputs[0].0, inputs[0].1 + inputs[1].1))
            }
            OpKind::Neq0 | OpKind::Eq0 => Ok(inputs[0]),
        }
    }
}

/// Errors surfaced by estimators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimatorError {
    /// The estimator does not support the operation (reported as `✗`).
    Unsupported { estimator: &'static str, op: String },
    /// The synopsis would exceed the configured memory budget — mirrors the
    /// paper's bitset out-of-memory cases (e.g. ≈8 TB for B2.1).
    SynopsisTooLarge {
        estimator: &'static str,
        bytes: u64,
        limit: u64,
    },
    /// Wrong operand count for an operation (a malformed DAG or request).
    ArityMismatch {
        op: &'static str,
        expected: usize,
        got: usize,
    },
    /// Two operand shapes that must agree do not (matmul inner dimension,
    /// element-wise equal shapes, rbind/cbind aligned counts).
    DimensionMismatch {
        op: &'static str,
        lhs: (usize, usize),
        rhs: (usize, usize),
        requirement: &'static str,
    },
    /// A single operand's shape violates the operation's requirement
    /// (diag wants a column vector or square input, reshape must conserve
    /// the cell count).
    ShapeInvalid {
        op: &'static str,
        shape: (usize, usize),
        requirement: &'static str,
    },
    /// Internal invariant violation (wrong synopsis variant handed to an
    /// estimator, ...) — conditions no well-formed input can trigger.
    Internal(String),
}

impl EstimatorError {
    /// Convenience constructor used across estimator modules.
    pub fn unsupported(estimator: &'static str, op: &OpKind) -> EstimatorError {
        EstimatorError::Unsupported {
            estimator,
            op: format!("{op:?}"),
        }
    }

    /// Convenience constructor: wrong operand count for `op`.
    pub fn arity(op: &OpKind, got: usize) -> EstimatorError {
        EstimatorError::ArityMismatch {
            op: op.name(),
            expected: op.arity(),
            got,
        }
    }

    /// Convenience constructor: two operand shapes that must agree do not.
    pub fn dims(
        op: &OpKind,
        lhs: (usize, usize),
        rhs: (usize, usize),
        requirement: &'static str,
    ) -> EstimatorError {
        EstimatorError::DimensionMismatch {
            op: op.name(),
            lhs,
            rhs,
            requirement,
        }
    }

    /// Convenience constructor: a single operand shape violates `op`'s
    /// requirement.
    pub fn shape(op: &OpKind, shape: (usize, usize), requirement: &'static str) -> EstimatorError {
        EstimatorError::ShapeInvalid {
            op: op.name(),
            shape,
            requirement,
        }
    }
}

impl fmt::Display for EstimatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimatorError::Unsupported { estimator, op } => {
                write!(f, "{estimator} does not support {op}")
            }
            EstimatorError::SynopsisTooLarge {
                estimator,
                bytes,
                limit,
            } => write!(
                f,
                "{estimator} synopsis of {bytes} B exceeds the {limit} B budget"
            ),
            EstimatorError::ArityMismatch { op, expected, got } => {
                write!(f, "{op}: expected {expected} input(s), got {got}")
            }
            EstimatorError::DimensionMismatch {
                op,
                lhs,
                rhs,
                requirement,
            } => write!(
                f,
                "{op}: operand shapes {}x{} and {}x{} are incompatible ({requirement})",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            EstimatorError::ShapeInvalid {
                op,
                shape,
                requirement,
            } => write!(
                f,
                "{op}: operand shape {}x{} is invalid ({requirement})",
                shape.0, shape.1
            ),
            EstimatorError::Internal(msg) => write!(f, "internal estimator error: {msg}"),
        }
    }
}

impl std::error::Error for EstimatorError {}

/// Result alias for estimator operations.
pub type Result<T> = std::result::Result<T, EstimatorError>;

/// Validates arity and shape compatibility, returning the output shape.
fn validate(op: &OpKind, inputs: &[&MncSketch]) -> Result<(usize, usize)> {
    let shapes: Vec<(usize, usize)> = inputs.iter().map(|h| (h.nrows, h.ncols)).collect();
    op.output_shape(&shapes)
}

impl MncSketch {
    /// Estimates the output sparsity of `op` applied to `inputs` with the
    /// default configuration — the op-driven face of the twelve
    /// `estimate_*` functions (Sections 3–4).
    ///
    /// ```
    /// use mnc_core::{MncSketch, OpKind};
    /// use mnc_matrix::CsrMatrix;
    ///
    /// let p = MncSketch::build(&CsrMatrix::identity(3));
    /// let x = MncSketch::build(
    ///     &CsrMatrix::from_triples(3, 2, vec![(0, 0, 1.0), (2, 1, 1.0)]).unwrap(),
    /// );
    /// let s = MncSketch::estimate(&OpKind::MatMul, &[&p, &x]).unwrap();
    /// assert!((s - 2.0 / 6.0).abs() < 1e-12);
    /// // Malformed input errors instead of panicking:
    /// assert!(MncSketch::estimate(&OpKind::MatMul, &[&p]).is_err());
    /// ```
    pub fn estimate(op: &OpKind, inputs: &[&MncSketch]) -> Result<f64> {
        Self::estimate_with(op, inputs, &MncConfig::default())
    }

    /// [`MncSketch::estimate`] under an explicit [`MncConfig`].
    pub fn estimate_with(op: &OpKind, inputs: &[&MncSketch], cfg: &MncConfig) -> Result<f64> {
        validate(op, inputs)?;
        let a = inputs[0];
        Ok(match op {
            OpKind::MatMul => estimate_matmul_with(a, inputs[1], cfg),
            // Under A1, max is pattern-equivalent to + and min to ⊙.
            OpKind::EwAdd | OpKind::EwMax => estimate_ew_add(a, inputs[1]),
            OpKind::EwMul | OpKind::EwMin => estimate_ew_mul(a, inputs[1]),
            OpKind::Transpose => estimate_transpose(a),
            OpKind::Reshape { .. } => estimate_reshape(a),
            OpKind::DiagV2M => estimate_diag_v2m(a),
            OpKind::DiagM2V => estimate_diag_extract(a),
            OpKind::Rbind => estimate_rbind(a, inputs[1]),
            OpKind::Cbind => estimate_cbind(a, inputs[1]),
            OpKind::Neq0 => estimate_neq_zero(a),
            OpKind::Eq0 => estimate_eq_zero(a),
        })
    }

    /// Derives the output sketch of `op` applied to `inputs` with the
    /// default configuration and a rounding generator seeded from it — the
    /// op-driven face of the twelve `propagate_*` functions.
    pub fn propagate(op: &OpKind, inputs: &[&MncSketch]) -> Result<MncSketch> {
        let cfg = MncConfig::default();
        let mut rng = SplitMix64::new(cfg.seed);
        Self::propagate_with(op, inputs, &cfg, &mut rng)
    }

    /// [`MncSketch::propagate`] under an explicit configuration and rounding
    /// generator (callers that propagate repeatedly thread one generator
    /// through for deterministic, unbiased rounding).
    pub fn propagate_with(
        op: &OpKind,
        inputs: &[&MncSketch],
        cfg: &MncConfig,
        rng: &mut SplitMix64,
    ) -> Result<MncSketch> {
        Self::propagate_in(op, inputs, cfg, rng, &mut ScratchArena::new())
    }

    /// [`MncSketch::propagate_with`] with caller-provided scratch: every
    /// output count vector and extended-count temporary is leased from
    /// `arena`, so repeated propagation over a DAG runs allocation-free in
    /// steady state. Bit-identical to the plain variant.
    pub fn propagate_in(
        op: &OpKind,
        inputs: &[&MncSketch],
        cfg: &MncConfig,
        rng: &mut SplitMix64,
        arena: &mut ScratchArena,
    ) -> Result<MncSketch> {
        validate(op, inputs)?;
        let a = inputs[0];
        Ok(match op {
            OpKind::MatMul => propagate_matmul_in(a, inputs[1], cfg, rng, arena),
            OpKind::EwAdd | OpKind::EwMax => propagate_ew_add_in(a, inputs[1], cfg, rng, arena),
            OpKind::EwMul | OpKind::EwMin => propagate_ew_mul_in(a, inputs[1], cfg, rng, arena),
            OpKind::Transpose => propagate_transpose(a),
            OpKind::Reshape { rows, cols } => {
                propagate_reshape_in(a, *rows, *cols, cfg, rng, arena)
            }
            OpKind::DiagV2M => propagate_diag_v2m(a),
            OpKind::DiagM2V => propagate_diag_extract_in(a, cfg, rng, arena),
            OpKind::Rbind => propagate_rbind_in(a, inputs[1], arena),
            OpKind::Cbind => propagate_cbind_in(a, inputs[1], arena),
            OpKind::Neq0 => propagate_neq_zero(a),
            OpKind::Eq0 => propagate_eq_zero_in(a, arena),
        })
    }

    /// [`MncSketch::estimate_with`] under an observability [`Recorder`]:
    /// opens an `"estimate"` span carrying the op name, input non-zeros, and
    /// the non-zeros implied by the estimate. With a disabled recorder this
    /// is exactly `estimate_with` (no clock reads, no allocation), so
    /// results are bit-identical either way.
    pub fn estimate_traced(
        op: &OpKind,
        inputs: &[&MncSketch],
        cfg: &MncConfig,
        rec: &Recorder,
    ) -> Result<f64> {
        if !rec.is_enabled() {
            return Self::estimate_with(op, inputs, cfg);
        }
        let nnz_in: u64 = inputs.iter().map(|h| h.meta.nnz).sum();
        let mut span = rec.span("estimate").op(op.name()).nnz_in(nnz_in);
        let s = Self::estimate_with(op, inputs, cfg)?;
        if let Ok((rows, cols)) = op.output_shape(
            &inputs
                .iter()
                .map(|h| (h.nrows, h.ncols))
                .collect::<Vec<_>>(),
        ) {
            span.set_nnz_out((s * rows as f64 * cols as f64).round() as u64);
        }
        Ok(s)
    }

    /// [`MncSketch::propagate_with`] under an observability [`Recorder`]:
    /// opens a `"propagate"` span carrying the op name, input/output
    /// non-zeros, and the produced synopsis size. Bit-identical to
    /// `propagate_with` regardless of whether the recorder is enabled.
    pub fn propagate_traced(
        op: &OpKind,
        inputs: &[&MncSketch],
        cfg: &MncConfig,
        rng: &mut SplitMix64,
        rec: &Recorder,
    ) -> Result<MncSketch> {
        if !rec.is_enabled() {
            return Self::propagate_with(op, inputs, cfg, rng);
        }
        let nnz_in: u64 = inputs.iter().map(|h| h.meta.nnz).sum();
        let mut span = rec.span("propagate").op(op.name()).nnz_in(nnz_in);
        let out = Self::propagate_with(op, inputs, cfg, rng)?;
        span.set_nnz_out(out.meta.nnz);
        span.set_bytes(out.size_bytes() as u64);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::estimate_matmul;
    use mnc_matrix::{gen, CsrMatrix};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn op_output_shapes() {
        assert_eq!(
            OpKind::MatMul.output_shape(&[(2, 3), (3, 5)]).unwrap(),
            (2, 5)
        );
        assert!(OpKind::MatMul.output_shape(&[(2, 3), (4, 5)]).is_err());
        assert_eq!(OpKind::Transpose.output_shape(&[(2, 3)]).unwrap(), (3, 2));
        assert_eq!(
            OpKind::Reshape { rows: 6, cols: 1 }
                .output_shape(&[(2, 3)])
                .unwrap(),
            (6, 1)
        );
        assert!(OpKind::Reshape { rows: 4, cols: 2 }
            .output_shape(&[(2, 3)])
            .is_err());
        assert_eq!(
            OpKind::Rbind.output_shape(&[(2, 3), (4, 3)]).unwrap(),
            (6, 3)
        );
        assert_eq!(
            OpKind::Cbind.output_shape(&[(2, 3), (2, 4)]).unwrap(),
            (2, 7)
        );
        assert_eq!(OpKind::DiagV2M.output_shape(&[(5, 1)]).unwrap(), (5, 5));
        assert!(OpKind::DiagV2M.output_shape(&[(5, 2)]).is_err());
    }

    #[test]
    fn output_shape_rejects_wrong_arity_instead_of_panicking() {
        // Regression: binary ops used to index inputs[1] unchecked, so a
        // malformed DAG paniced instead of returning an error.
        for op in [
            OpKind::MatMul,
            OpKind::EwAdd,
            OpKind::EwMul,
            OpKind::EwMax,
            OpKind::EwMin,
            OpKind::Rbind,
            OpKind::Cbind,
        ] {
            assert!(
                matches!(
                    op.output_shape(&[(2, 3)]),
                    Err(EstimatorError::ArityMismatch {
                        expected: 2,
                        got: 1,
                        ..
                    })
                ),
                "{op:?} must reject a single input"
            );
            assert!(op.output_shape(&[]).is_err());
        }
        for op in [OpKind::Transpose, OpKind::Neq0, OpKind::DiagV2M] {
            assert!(op.output_shape(&[]).is_err(), "{op:?} must reject 0 inputs");
            assert!(
                op.output_shape(&[(3, 1), (3, 1)]).is_err(),
                "{op:?} must reject 2 inputs"
            );
        }
    }

    #[test]
    fn arity() {
        assert_eq!(OpKind::MatMul.arity(), 2);
        assert_eq!(OpKind::Transpose.arity(), 1);
        assert_eq!(OpKind::Eq0.arity(), 1);
        assert_eq!(OpKind::Rbind.arity(), 2);
    }

    #[test]
    fn error_display() {
        let e = EstimatorError::Unsupported {
            estimator: "LGraph",
            op: "EwMul".into(),
        };
        assert_eq!(e.to_string(), "LGraph does not support EwMul");
    }

    #[test]
    fn op_driven_estimate_matches_free_functions() {
        let mut r = rng(1);
        let a = gen::rand_uniform(&mut r, 30, 25, 0.15);
        let b = gen::rand_uniform(&mut r, 25, 20, 0.2);
        let (ha, hb) = (MncSketch::build(&a), MncSketch::build(&b));
        let via_op = MncSketch::estimate(&OpKind::MatMul, &[&ha, &hb]).unwrap();
        assert_eq!(via_op, estimate_matmul(&ha, &hb));

        let c = gen::rand_uniform(&mut r, 30, 25, 0.3);
        let hc = MncSketch::build(&c);
        assert_eq!(
            MncSketch::estimate(&OpKind::EwAdd, &[&ha, &hc]).unwrap(),
            estimate_ew_add(&ha, &hc)
        );
        assert_eq!(
            MncSketch::estimate(&OpKind::Transpose, &[&ha]).unwrap(),
            a.sparsity()
        );
    }

    #[test]
    fn op_driven_propagate_matches_free_functions() {
        let mut r = rng(2);
        let a = gen::rand_uniform(&mut r, 20, 16, 0.2);
        let b = gen::rand_uniform(&mut r, 16, 12, 0.25);
        let (ha, hb) = (MncSketch::build(&a), MncSketch::build(&b));
        let cfg = MncConfig::default();
        let mut r1 = SplitMix64::new(cfg.seed);
        let mut r2 = SplitMix64::new(cfg.seed);
        let via_op =
            MncSketch::propagate_with(&OpKind::MatMul, &[&ha, &hb], &cfg, &mut r1).unwrap();
        let direct = crate::propagate::propagate_matmul(&ha, &hb, &cfg, &mut r2);
        assert_eq!(via_op, direct);
    }

    #[test]
    fn op_driven_api_errors_on_malformed_input() {
        let v = MncSketch::build(&CsrMatrix::identity(4));
        // Wrong arity.
        assert!(MncSketch::estimate(&OpKind::MatMul, &[&v]).is_err());
        assert!(MncSketch::propagate(&OpKind::EwAdd, &[&v]).is_err());
        // Incompatible shapes.
        let w = MncSketch::build(&CsrMatrix::zeros(3, 5));
        assert!(MncSketch::estimate(&OpKind::MatMul, &[&v, &w]).is_err());
        assert!(MncSketch::estimate(&OpKind::DiagV2M, &[&w]).is_err());
        assert!(MncSketch::propagate(&OpKind::DiagM2V, &[&w]).is_err());
    }

    #[test]
    fn traced_calls_match_untraced_and_record_spans() {
        let mut r = rng(7);
        let a = gen::rand_uniform(&mut r, 24, 18, 0.2);
        let b = gen::rand_uniform(&mut r, 18, 10, 0.3);
        let (ha, hb) = (MncSketch::build(&a), MncSketch::build(&b));
        let cfg = MncConfig::default();

        for rec in [mnc_obs::Recorder::disabled(), mnc_obs::Recorder::enabled()] {
            let s = MncSketch::estimate_traced(&OpKind::MatMul, &[&ha, &hb], &cfg, &rec).unwrap();
            assert_eq!(
                s.to_bits(),
                MncSketch::estimate_with(&OpKind::MatMul, &[&ha, &hb], &cfg)
                    .unwrap()
                    .to_bits(),
                "tracing must not perturb the estimate"
            );
            let mut r1 = SplitMix64::new(cfg.seed);
            let mut r2 = SplitMix64::new(cfg.seed);
            let traced =
                MncSketch::propagate_traced(&OpKind::MatMul, &[&ha, &hb], &cfg, &mut r1, &rec)
                    .unwrap();
            let plain =
                MncSketch::propagate_with(&OpKind::MatMul, &[&ha, &hb], &cfg, &mut r2).unwrap();
            assert_eq!(traced, plain);

            let spans = rec.spans();
            if rec.is_enabled() {
                assert_eq!(spans.len(), 2);
                assert_eq!(spans[0].name, "estimate");
                assert_eq!(spans[0].op.as_deref(), Some("matmul"));
                assert_eq!(spans[0].nnz_in, Some(ha.meta.nnz + hb.meta.nnz));
                assert!(spans[0].nnz_out.is_some());
                assert_eq!(spans[1].name, "propagate");
                assert_eq!(spans[1].nnz_out, Some(traced.meta.nnz));
                assert_eq!(spans[1].synopsis_bytes, Some(traced.size_bytes() as u64));
            } else {
                assert!(spans.is_empty());
            }
        }
    }
}
