//! # mnc-core — the MNC sketch
//!
//! The paper's primary contribution: the **Matrix Non-zero Count** sketch
//! (Section 3), a count-based matrix synopsis of size `O(m + n)` that
//! exploits structural properties — single non-zeros per row/column,
//! sparsity skew across columns, diagonal matrices — for accurate, cheap
//! sparsity estimation of matrix expressions.
//!
//! The crate is split along the paper's structure:
//!
//! * [`sketch`] — the [`MncSketch`] data structure and its single-pass
//!   construction (Section 3.1);
//! * [`estimate`] — sparsity estimation for matrix products
//!   (Algorithm 1; Theorems 3.1 and 3.2) and for reorganization /
//!   element-wise operations (Section 4.1);
//! * [`propagate`] — sketch propagation across products (Section 3.3,
//!   Eq. 11–12) and other operations (Section 4.2, Eq. 14–15), with
//!   probabilistic rounding;
//! * [`round`] — unbiased probabilistic rounding on top of a tiny,
//!   dependency-free SplitMix64 generator.
//!
//! ## Configuration and the "MNC Basic" ablation
//!
//! [`MncConfig`] toggles the extended count vectors, the Theorem 3.2 bounds
//! (including the reduced output size `p` of Algorithm 1), and probabilistic
//! vs. deterministic rounding. [`MncConfig::basic`] reproduces the paper's
//! *MNC Basic* baseline (no extension vectors, no bounds).

pub mod confidence;
pub mod context;
pub mod distributed;
pub mod estimate;
pub mod op;
pub mod propagate;
pub mod round;
pub mod serialize;
pub mod sketch;

pub use confidence::{estimate_matmul_ci, SparsityEstimateCi};
pub use context::{EstimationStats, LruSynopsisCache, OpStat, OpTimer};
pub use distributed::{build_distributed, build_distributed_with};
pub use op::{EstimatorError, OpKind};
pub use round::SplitMix64;
pub use serialize::{from_bytes, to_bytes, DecodeError};
pub use sketch::{MncSketch, SketchMeta};

// The kernel scratch arena is part of the core propagation API surface
// (`MncSketch::propagate_in`, the `propagate_*_in` free functions), so
// downstream crates get it without naming `mnc-kernels` directly.
pub use mnc_kernels::ScratchArena;

// The legacy per-op free functions are no longer re-exported at the crate
// root: [`MncSketch::estimate`] / [`MncSketch::propagate`] (see [`op`]) are
// the public vocabulary. Specialized callers (benchmarks, the chain
// optimizer's zero-alloc inner loop) reach the per-op kernels through
// their defining modules, e.g. `mnc_core::propagate::propagate_matmul_in`.

/// Configuration of the MNC estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MncConfig {
    /// Build and exploit the extended count vectors `h^er` / `h^ec`
    /// (Eq. 8 in the paper).
    pub use_extended: bool,
    /// Apply the Theorem 3.2 lower bound and the reduced output size `p`
    /// (Algorithm 1, lines 6/9/12).
    pub use_bounds: bool,
    /// Round propagated count vectors probabilistically (unbiased) instead
    /// of deterministically (`round()`), Section 3.3.
    pub probabilistic_rounding: bool,
    /// Seed for the internal rounding generator.
    pub seed: u64,
}

impl Default for MncConfig {
    fn default() -> Self {
        MncConfig {
            use_extended: true,
            use_bounds: true,
            probabilistic_rounding: true,
            seed: 0xC0FFEE,
        }
    }
}

impl MncConfig {
    /// The paper's *MNC Basic* configuration: count vectors only — no
    /// extension vectors, no bounds, naive full output size `m·l`.
    pub fn basic() -> Self {
        MncConfig {
            use_extended: false,
            use_bounds: false,
            ..Self::default()
        }
    }
}
