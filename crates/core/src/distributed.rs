//! Distributed MNC sketch construction over row-partitioned matrices.
//!
//! Section 3.1: "The small size of `h_A` also makes it amenable to
//! large-scale ML, where the sketch can be computed via distributed
//! operations and subsequently, collected and used in the driver for
//! compilation." (Full distributed support is the paper's future work #4.)
//!
//! The construction is the natural two-phase distributed plan:
//!
//! 1. **Map**: every partition computes its local row counts (a slice of
//!    the global `h^r`) and a local column-count vector; the driver
//!    concatenates the row slices and sums the column vectors.
//! 2. **Second map** (only when neither Theorem 3.1 case holds): the
//!    driver broadcasts the global `h^c`; every partition computes its
//!    slice of `h^er` (which needs global column counts) and a local
//!    `h^ec` contribution (row counts are partition-local, so no broadcast
//!    is needed for them); the driver merges again.
//!
//! Partitions are processed on scoped OS threads, standing in for cluster
//! executors.

use mnc_matrix::partition::RowPartitionedMatrix;
use mnc_matrix::CsrMatrix;

use crate::sketch::MncSketch;

/// Per-partition result of phase 1.
struct Phase1 {
    /// Local slice of `h^r` (indexed by partition-local row).
    hr: Vec<u32>,
    /// Local contribution to `h^c` (full width, sparse in practice).
    hc: Vec<u32>,
    /// Whether this partition is consistent with a global diagonal matrix
    /// (each local row `i` has exactly one non-zero at column `offset + i`).
    diagonal_fragment: bool,
}

fn phase1(part: &CsrMatrix, offset: usize, ncols_global: usize) -> Phase1 {
    let mut hr = vec![0u32; part.nrows()];
    let mut hc = vec![0u32; ncols_global];
    let mut diagonal_fragment = true;
    for (i, rc) in hr.iter_mut().enumerate() {
        let (cols, _) = part.row(i);
        *rc = cols.len() as u32;
        diagonal_fragment &= cols.len() == 1 && cols[0] as usize == offset + i;
        for &c in cols {
            hc[c as usize] += 1;
        }
    }
    Phase1 {
        hr,
        hc,
        diagonal_fragment,
    }
}

/// Per-partition result of phase 2 (extended count vectors).
struct Phase2 {
    /// Local slice of `h^er`.
    her: Vec<u32>,
    /// Local contribution to `h^ec`.
    hec: Vec<u32>,
}

fn phase2(part: &CsrMatrix, global_hc: &[u32]) -> Phase2 {
    let mut her = vec![0u32; part.nrows()];
    let mut hec = vec![0u32; global_hc.len()];
    for (i, er) in her.iter_mut().enumerate() {
        let (cols, _) = part.row(i);
        let single_row = cols.len() == 1;
        for &c in cols {
            if global_hc[c as usize] == 1 {
                *er += 1;
            }
            if single_row {
                hec[c as usize] += 1;
            }
        }
    }
    Phase2 { her, hec }
}

/// Builds the MNC sketch of a row-partitioned matrix with one worker thread
/// per partition. The result is **identical** to
/// [`MncSketch::build`](crate::MncSketch::build) on the assembled matrix.
pub fn build_distributed(m: &RowPartitionedMatrix) -> MncSketch {
    build_distributed_with(m, true)
}

/// Distributed build with the extended vectors optional (MNC Basic).
pub fn build_distributed_with(m: &RowPartitionedMatrix, use_extended: bool) -> MncSketch {
    let (nrows, ncols) = (m.nrows(), m.ncols());

    // Phase 1: local counts on worker threads, merged in the driver.
    let phase1_results: Vec<Phase1> = std::thread::scope(|scope| {
        let handles: Vec<_> = m
            .iter()
            .map(|(offset, part)| scope.spawn(move || phase1(part, offset, ncols)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("phase 1 worker panicked"))
            .collect()
    });
    let mut hr = Vec::with_capacity(nrows);
    let mut hc = vec![0u32; ncols];
    let mut diagonal = nrows == ncols && nrows > 0;
    for p in &phase1_results {
        hr.extend_from_slice(&p.hr);
        for (acc, &c) in hc.iter_mut().zip(&p.hc) {
            *acc += c;
        }
        diagonal &= p.diagonal_fragment;
    }

    let max_hr = hr.iter().copied().max().unwrap_or(0);
    let max_hc = hc.iter().copied().max().unwrap_or(0);

    // Phase 2: extended vectors, with the global h^c broadcast.
    let (her, hec) = if use_extended && max_hr > 1 && max_hc > 1 {
        let hc_ref = &hc;
        let phase2_results: Vec<Phase2> = std::thread::scope(|scope| {
            let handles: Vec<_> = m
                .iter()
                .map(|(_, part)| scope.spawn(move || phase2(part, hc_ref)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("phase 2 worker panicked"))
                .collect()
        });
        let mut her = Vec::with_capacity(nrows);
        let mut hec = vec![0u32; ncols];
        for p in &phase2_results {
            her.extend_from_slice(&p.her);
            for (acc, &c) in hec.iter_mut().zip(&p.hec) {
                *acc += c;
            }
        }
        (Some(her), Some(hec))
    } else {
        (None, None)
    };

    MncSketch::from_vectors(nrows, ncols, hr, hc, her, hec, diagonal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::gen;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn distributed_build_matches_local_build() {
        let mut r = rng(1);
        for (rows, cols, s) in [(50usize, 40usize, 0.1f64), (33, 7, 0.4), (8, 64, 0.02)] {
            let m = gen::rand_uniform(&mut r, rows, cols, s);
            let local = MncSketch::build(&m);
            for nparts in [1, 2, 3, 7] {
                let pm = RowPartitionedMatrix::from_matrix(&m, nparts);
                let dist = build_distributed(&pm);
                assert_eq!(dist, local, "{rows}x{cols} s={s} nparts={nparts}");
            }
        }
    }

    #[test]
    fn distributed_diagonal_flag() {
        let d = gen::scalar_diag(24, 2.0);
        let pm = RowPartitionedMatrix::from_matrix(&d, 4);
        let sketch = build_distributed(&pm);
        assert!(sketch.meta.fully_diagonal);

        // A permutation is not diagonal even though each row has one nnz.
        let mut r = rng(2);
        let p = gen::permutation(&mut r, 24);
        let pm = RowPartitionedMatrix::from_matrix(&p, 4);
        // (The permutation could coincidentally be the identity; regenerate
        // until it is not.)
        if !p.is_fully_diagonal() {
            assert!(!build_distributed(&pm).meta.fully_diagonal);
        }
    }

    #[test]
    fn distributed_basic_matches_local_basic() {
        let mut r = rng(3);
        let m = gen::rand_uniform(&mut r, 30, 30, 0.2);
        let pm = RowPartitionedMatrix::from_matrix(&m, 3);
        let dist = build_distributed_with(&pm, false);
        let local = MncSketch::build_with(&m, false);
        assert_eq!(dist, local);
        assert!(dist.her.is_none());
    }

    #[test]
    fn distributed_build_of_empty_matrix() {
        let m = mnc_matrix::CsrMatrix::zeros(0, 5);
        let pm = RowPartitionedMatrix::from_matrix(&m, 3);
        let sketch = build_distributed(&pm);
        assert_eq!(sketch.meta.nnz, 0);
        assert_eq!(sketch.ncols, 5);
    }
}
