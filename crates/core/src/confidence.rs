//! Confidence intervals for MNC product estimates — the paper's future
//! work item (2).
//!
//! The only non-exact component of Algorithm 1 is the density-map-like
//! fallback `E_dm(x, y, p)`, which models each rank-1 term `x_k · y_k` as
//! scattering non-zeros uniformly over `p` candidate cells. Under that
//! model every candidate cell is occupied independently with probability
//! `q = 1 - Π_k (1 - v_k)`, so the occupied-cell count is approximately
//! `Binomial(p, q)` and a normal interval
//! `p·q ± z · sqrt(p · q · (1 - q))` applies. Cells are in truth weakly
//! negatively correlated (each term places a fixed number of non-zeros),
//! making the binomial variance slightly conservative — the right
//! direction for an interval.
//!
//! Exact cases (Theorem 3.1, diagonal propagation, and the extended-count
//! exact fraction) contribute zero width; the Theorem 3.2 bounds clip the
//! interval.

use crate::sketch::MncSketch;
use crate::MncConfig;

/// A sparsity estimate with a confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityEstimateCi {
    /// Point estimate (identical to [`crate::estimate::estimate_matmul_with`]).
    pub estimate: f64,
    /// Lower interval bound.
    pub lower: f64,
    /// Upper interval bound.
    pub upper: f64,
    /// True when the estimate is structurally exact (zero-width interval).
    pub exact: bool,
}

impl SparsityEstimateCi {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// True if `truth` lies inside the interval.
    pub fn covers(&self, truth: f64) -> bool {
        (self.lower..=self.upper).contains(&truth)
    }
}

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error < 1.15e-9 — ample for confidence levels).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p must be in (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506_628_277_459_24,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

/// Components of the product estimate needed to attach an interval:
/// an exactly known non-zero count plus an `E_dm(x, y, p)`-estimated rest.
struct Decomposition {
    exact_nnz: f64,
    /// `(q, p)` of the binomial fallback component, if any.
    fallback: Option<(f64, f64)>,
}

fn decompose(ha: &MncSketch, hb: &MncSketch, cfg: &MncConfig) -> Decomposition {
    use crate::estimate::vector_edm;
    let cells = ha.nrows as f64 * hb.ncols as f64;
    if cells == 0.0 || ha.meta.nnz == 0 || hb.meta.nnz == 0 {
        return Decomposition {
            exact_nnz: 0.0,
            fallback: None,
        };
    }
    if ha.meta.max_hr <= 1 || hb.meta.max_hc <= 1 {
        let exact: f64 = ha
            .hc
            .iter()
            .zip(&hb.hr)
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        return Decomposition {
            exact_nnz: exact,
            fallback: None,
        };
    }
    if cfg.use_extended && (ha.hec.is_some() || hb.her.is_some()) {
        let zeros_a;
        let hec_a: &[u32] = match &ha.hec {
            Some(v) => v,
            None => {
                zeros_a = vec![0u32; ha.ncols];
                &zeros_a
            }
        };
        let zeros_b;
        let her_b: &[u32] = match &hb.her {
            Some(v) => v,
            None => {
                zeros_b = vec![0u32; hb.nrows];
                &zeros_b
            }
        };
        let rest_c: Vec<u32> = ha
            .hc
            .iter()
            .zip(hec_a)
            .map(|(&a, &e)| a.saturating_sub(e))
            .collect();
        let exact: f64 = hec_a
            .iter()
            .zip(&hb.hr)
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum::<f64>()
            + rest_c
                .iter()
                .zip(her_b)
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum::<f64>();
        let rest_r: Vec<u32> = hb
            .hr
            .iter()
            .zip(her_b)
            .map(|(&a, &e)| a.saturating_sub(e))
            .collect();
        let p = if cfg.use_bounds {
            (ha.meta.nonempty_rows - ha.meta.rows_eq_1) as f64
                * (hb.meta.nonempty_cols - hb.meta.cols_eq_1) as f64
        } else {
            cells
        };
        let q = vector_edm(&rest_c, &rest_r, p);
        return Decomposition {
            exact_nnz: exact,
            fallback: Some((q, p)),
        };
    }
    let p = if cfg.use_bounds {
        ha.meta.nonempty_rows as f64 * hb.meta.nonempty_cols as f64
    } else {
        cells
    };
    let q = vector_edm(&ha.hc, &hb.hr, p);
    Decomposition {
        exact_nnz: 0.0,
        fallback: Some((q, p)),
    }
}

/// Product estimate with a confidence interval at the given level (e.g.
/// `0.95`). The point estimate matches Algorithm 1.
pub fn estimate_matmul_ci(
    ha: &MncSketch,
    hb: &MncSketch,
    cfg: &MncConfig,
    confidence: f64,
) -> SparsityEstimateCi {
    assert!(
        (0.0..1.0).contains(&confidence) && confidence > 0.0,
        "confidence must be in (0, 1)"
    );
    let cells = ha.nrows as f64 * hb.ncols as f64;
    let estimate = crate::estimate::estimate_matmul_with(ha, hb, cfg);
    if cells == 0.0 {
        return SparsityEstimateCi {
            estimate,
            lower: estimate,
            upper: estimate,
            exact: true,
        };
    }
    let d = decompose(ha, hb, cfg);
    let (mut lower_nnz, mut upper_nnz, exact) = match d.fallback {
        None => (d.exact_nnz, d.exact_nnz, true),
        Some((q, p)) => {
            let z = inverse_normal_cdf(0.5 + confidence / 2.0);
            let sigma = (p * q * (1.0 - q)).max(0.0).sqrt();
            let mid = d.exact_nnz + q * p;
            (mid - z * sigma, mid + z * sigma, false)
        }
    };
    if cfg.use_bounds {
        let lb = ha.meta.half_full_rows as f64 * hb.meta.half_full_cols as f64;
        let ub = ha.meta.nonempty_rows as f64 * hb.meta.nonempty_cols as f64;
        lower_nnz = lower_nnz.max(lb).min(ub);
        upper_nnz = upper_nnz.max(lb).min(ub);
    }
    let clamp = |x: f64| (x / cells).clamp(0.0, 1.0);
    let (mut lower, mut upper) = (clamp(lower_nnz), clamp(upper_nnz));
    // The interval must contain the point estimate by construction.
    lower = lower.min(estimate);
    upper = upper.max(estimate);
    SparsityEstimateCi {
        estimate,
        lower,
        upper,
        exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::{gen, ops};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn inverse_normal_known_quantiles() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959_964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959_964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.9995) - 3.2905).abs() < 1e-3);
    }

    #[test]
    fn exact_cases_have_zero_width() {
        let mut r = rng(1);
        let p = gen::permutation(&mut r, 40);
        let x = gen::rand_uniform(&mut r, 40, 30, 0.2);
        let ci = estimate_matmul_ci(
            &MncSketch::build(&p),
            &MncSketch::build(&x),
            &MncConfig::default(),
            0.95,
        );
        assert!(ci.exact);
        assert_eq!(ci.width(), 0.0);
        let truth = ops::bool_matmul(&p, &x).unwrap().sparsity();
        assert!(ci.covers(truth));
    }

    #[test]
    fn point_estimate_matches_algorithm_1() {
        let mut r = rng(2);
        let a = gen::rand_uniform(&mut r, 50, 40, 0.1);
        let b = gen::rand_uniform(&mut r, 40, 60, 0.12);
        let cfg = MncConfig::default();
        let (ha, hb) = (MncSketch::build(&a), MncSketch::build(&b));
        let ci = estimate_matmul_ci(&ha, &hb, &cfg, 0.95);
        let point = crate::estimate::estimate_matmul_with(&ha, &hb, &cfg);
        assert_eq!(ci.estimate, point);
        assert!(ci.lower <= point && point <= ci.upper);
    }

    #[test]
    fn higher_confidence_widens_the_interval() {
        let mut r = rng(3);
        let a = gen::rand_uniform(&mut r, 60, 50, 0.08);
        let b = gen::rand_uniform(&mut r, 50, 70, 0.1);
        let cfg = MncConfig::default();
        let (ha, hb) = (MncSketch::build(&a), MncSketch::build(&b));
        let ci80 = estimate_matmul_ci(&ha, &hb, &cfg, 0.80);
        let ci99 = estimate_matmul_ci(&ha, &hb, &cfg, 0.99);
        assert!(ci99.width() >= ci80.width());
    }

    #[test]
    fn empirical_coverage_on_uniform_random_products() {
        // 95% interval should cover the truth in the (large) majority of
        // uniform-random draws; the binomial model is approximate, so we
        // assert a generous floor rather than exact coverage.
        let mut covered = 0usize;
        const TRIALS: usize = 40;
        for seed in 0..TRIALS as u64 {
            let mut r = rng(100 + seed);
            let a = gen::rand_uniform(&mut r, 80, 60, 0.05);
            let b = gen::rand_uniform(&mut r, 60, 90, 0.06);
            let ci = estimate_matmul_ci(
                &MncSketch::build(&a),
                &MncSketch::build(&b),
                &MncConfig::default(),
                0.95,
            );
            let truth = ops::bool_matmul(&a, &b).unwrap().sparsity();
            covered += usize::from(ci.covers(truth));
        }
        assert!(covered >= 30, "covered only {covered}/{TRIALS}");
    }

    #[test]
    fn interval_is_valid_sparsity_range() {
        let mut r = rng(4);
        let a = gen::rand_uniform(&mut r, 20, 20, 0.5);
        let b = gen::rand_uniform(&mut r, 20, 20, 0.5);
        let ci = estimate_matmul_ci(
            &MncSketch::build(&a),
            &MncSketch::build(&b),
            &MncConfig::basic(),
            0.999,
        );
        assert!(0.0 <= ci.lower && ci.lower <= ci.upper && ci.upper <= 1.0);
    }

    #[test]
    fn empty_inputs() {
        let a = MncSketch::empty(5, 5);
        let ci = estimate_matmul_ci(&a, &a, &MncConfig::default(), 0.9);
        assert_eq!(ci.estimate, 0.0);
        assert!(ci.exact);
    }
}
