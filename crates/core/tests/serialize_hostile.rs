//! Hostile-input coverage for the MNCS wire format. Serialized sketches are
//! attacker-reachable through `mnc-served`'s `PUT /v1/matrices/{name}`
//! endpoint, so `from_bytes` must reject — never panic on — truncated
//! buffers, bad magic/version words, undefined flag bits, and length lies
//! in the declared dimensions.

use proptest::prelude::*;

use mnc_core::serialize::{from_bytes, to_bytes, DecodeError};
use mnc_core::MncSketch;
use mnc_matrix::gen;
use rand::SeedableRng;

fn make_bytes(rows: usize, cols: usize, s: f64, seed: u64) -> (MncSketch, Vec<u8>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let sketch = MncSketch::build(&gen::rand_uniform(&mut rng, rows, cols, s));
    let bytes = to_bytes(&sketch);
    (sketch, bytes)
}

fn sketch_params() -> impl Strategy<Value = (usize, usize, f64, u64)> {
    (1usize..40, 1usize..40, 0.0f64..0.6, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Well-formed bytes round-trip bit-exactly (extended vectors, diagonal
    /// flag, and all) — the baseline sanity for everything below.
    #[test]
    fn roundtrip_is_exact((m, n, s, seed) in sketch_params()) {
        let (sketch, bytes) = make_bytes(m, n, s, seed);
        prop_assert_eq!(from_bytes(&bytes).unwrap(), sketch);
    }

    /// Every strict prefix of a valid buffer is rejected: short of the
    /// header it is `Truncated`, past the header the exact-length check
    /// reports `LengthMismatch`. No cut point may panic.
    #[test]
    fn truncated_buffers_rejected((m, n, s, seed) in sketch_params(), frac in 0.0f64..1.0) {
        let (_, bytes) = make_bytes(m, n, s, seed);
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(cut < bytes.len());
        let err = from_bytes(&bytes[..cut]).unwrap_err();
        if cut < 24 {
            prop_assert_eq!(err, DecodeError::Truncated);
        } else {
            prop_assert_eq!(err, DecodeError::LengthMismatch);
        }
    }

    /// Appending trailing bytes breaks the exact-length contract.
    #[test]
    fn extended_buffers_rejected((m, n, s, seed) in sketch_params(), extra in 1usize..64) {
        let (_, mut bytes) = make_bytes(m, n, s, seed);
        bytes.extend(std::iter::repeat_n(0u8, extra));
        prop_assert_eq!(from_bytes(&bytes), Err(DecodeError::LengthMismatch));
    }

    /// Any corruption of the magic word is identified as `BadMagic`.
    #[test]
    fn magic_corruption_rejected((m, n, s, seed) in sketch_params(), byte in 0usize..4, flip in 1u8..=255) {
        let (_, mut bytes) = make_bytes(m, n, s, seed);
        bytes[byte] ^= flip;
        prop_assert!(matches!(from_bytes(&bytes), Err(DecodeError::BadMagic(_))));
    }

    /// Any version other than 1 is `BadVersion`.
    #[test]
    fn version_corruption_rejected((m, n, s, seed) in sketch_params(), v in any::<u16>()) {
        let (_, mut bytes) = make_bytes(m, n, s, seed);
        if v != mnc_core::serialize::VERSION {
            bytes[4..6].copy_from_slice(&v.to_le_bytes());
            prop_assert!(matches!(from_bytes(&bytes), Err(DecodeError::BadVersion(_))));
        }
    }

    /// Flag bits this version does not define are rejected outright, and
    /// toggling a defined extension flag without supplying the extension
    /// vectors is a length mismatch — the flag/length contract is enforced
    /// both ways.
    #[test]
    fn flag_corruption_rejected((m, n, s, seed) in sketch_params(), bit in 0u32..16) {
        let (_, mut bytes) = make_bytes(m, n, s, seed);
        let flags = u16::from_le_bytes([bytes[6], bytes[7]]);
        let flipped = flags ^ (1u16 << bit);
        bytes[6..8].copy_from_slice(&flipped.to_le_bytes());
        match bit {
            // h^er / h^ec presence: the payload no longer matches.
            0 | 1 => prop_assert_eq!(from_bytes(&bytes), Err(DecodeError::LengthMismatch)),
            // The diagonal flag is semantic only; the buffer stays decodable.
            2 => prop_assert!(from_bytes(&bytes).is_ok()),
            _ => prop_assert!(matches!(
                from_bytes(&bytes),
                Err(DecodeError::UnknownFlags(_))
            )),
        }
    }

    /// Lying about the dimensions (including values near `u64::MAX`, which
    /// would overflow a naive `24 + 4 * n` length computation) must fail
    /// cleanly with `LengthMismatch`.
    #[test]
    fn dimension_lies_rejected((m, n, s, seed) in sketch_params(), lie in any::<u64>()) {
        let (sketch, mut bytes) = make_bytes(m, n, s, seed);
        if lie != sketch.nrows as u64 {
            bytes[8..16].copy_from_slice(&lie.to_le_bytes());
            prop_assert_eq!(from_bytes(&bytes), Err(DecodeError::LengthMismatch));
        }
    }

    /// Arbitrary garbage never panics (and in practice never decodes: a
    /// valid buffer must lead with the 4-byte magic).
    #[test]
    fn garbage_never_panics(len in 0usize..256, seed in any::<u64>()) {
        let mut x = seed | 1;
        let garbage: Vec<u8> = (0..len)
            .map(|_| {
                // xorshift64 — cheap deterministic noise.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        prop_assert!(from_bytes(&garbage).is_err());
    }
}

#[test]
fn dimension_overflow_is_rejected_not_panicking() {
    // Header-only buffer declaring u64::MAX rows: the expected-size
    // computation must not overflow (debug builds would abort).
    let mut buf = Vec::new();
    buf.extend_from_slice(&mnc_core::serialize::MAGIC.to_le_bytes());
    buf.extend_from_slice(&mnc_core::serialize::VERSION.to_le_bytes());
    buf.extend_from_slice(&0u16.to_le_bytes());
    buf.extend_from_slice(&u64::MAX.to_le_bytes());
    buf.extend_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(from_bytes(&buf), Err(DecodeError::LengthMismatch));
}
