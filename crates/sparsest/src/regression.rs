//! Accuracy-regression gating: per-case relative-error thresholds checked
//! against the session's accuracy telemetry.
//!
//! The thresholds ship as a TSV file checked into the crate
//! (`data/b1_thresholds.tsv`); the `sparsest` binary evaluates them against
//! the [`AccuracyRecord`]s collected by the benchmark run and exits non-zero
//! on any violation, turning estimator accuracy into a CI-enforceable
//! property instead of a number somebody has to eyeball.

use mnc_obs::AccuracyRecord;

/// One `(case, estimator)` accuracy bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Threshold {
    /// Use-case id, e.g. `"B1.3"`.
    pub case: String,
    /// Estimator display name, e.g. `"MNC"`.
    pub estimator: String,
    /// Maximum allowed symmetric relative error (≥ 1.0; 1.0 means exact).
    pub max_error: f64,
}

/// A threshold exceeded by a run.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The bound that was broken.
    pub threshold: Threshold,
    /// The observed relative error (`INF` for zero/non-zero mismatches).
    pub observed: f64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} / {}: relative error {:.6} exceeds threshold {:.6}",
            self.threshold.case, self.threshold.estimator, self.observed, self.threshold.max_error
        )
    }
}

/// Parses threshold lines (`case <TAB> estimator <TAB> max_error`); `#`
/// comments and blank lines are skipped. Malformed lines are an error — a
/// silently dropped threshold would pass CI while checking nothing.
pub fn parse_thresholds(text: &str) -> Result<Vec<Threshold>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 3 {
            return Err(format!(
                "thresholds line {}: expected 3 tab-separated fields, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        let max_error: f64 = fields[2]
            .trim()
            .parse()
            .map_err(|e| format!("thresholds line {}: bad max_error: {e}", lineno + 1))?;
        if max_error < 1.0 || max_error.is_nan() {
            return Err(format!(
                "thresholds line {}: max_error {max_error} must be >= 1.0",
                lineno + 1
            ));
        }
        out.push(Threshold {
            case: fields[0].trim().to_string(),
            estimator: fields[1].trim().to_string(),
            max_error,
        });
    }
    Ok(out)
}

/// The checked-in B1 thresholds (`data/b1_thresholds.tsv`).
pub fn b1_thresholds() -> Vec<Threshold> {
    parse_thresholds(include_str!("../data/b1_thresholds.tsv"))
        .expect("checked-in threshold file parses")
}

/// The checked-in B2 thresholds (`data/b2_thresholds.tsv`), seeded from
/// errors measured at `MNC_SCALE=0.1` — the scale CI runs the suite at.
pub fn b2_thresholds() -> Vec<Threshold> {
    parse_thresholds(include_str!("../data/b2_thresholds.tsv"))
        .expect("checked-in threshold file parses")
}

/// The checked-in B3 thresholds (`data/b3_thresholds.tsv`), seeded from
/// errors measured at `MNC_SCALE=0.1` — the scale CI runs the suite at.
pub fn b3_thresholds() -> Vec<Threshold> {
    parse_thresholds(include_str!("../data/b3_thresholds.tsv"))
        .expect("checked-in threshold file parses")
}

/// Checks accuracy telemetry against thresholds. Every record whose
/// `(case, estimator)` matches a threshold is gated — a non-finite error
/// (zero/non-zero sparsity mismatch) always violates. Thresholds whose
/// pairing produced no record are ignored (the benchmark may run a subset
/// of cases or estimators).
pub fn check_thresholds(records: &[AccuracyRecord], thresholds: &[Threshold]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for t in thresholds {
        for r in records {
            if r.case == t.case && r.estimator == t.estimator {
                let bad = !r.relative_error.is_finite() || r.relative_error > t.max_error;
                if bad {
                    violations.push(Violation {
                        threshold: t.clone(),
                        observed: r.relative_error,
                    });
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(case: &str, est: &str, err: f64) -> AccuracyRecord {
        AccuracyRecord {
            case: case.into(),
            op: "matmul".into(),
            estimator: est.into(),
            estimated_sparsity: 0.1,
            actual_sparsity: 0.1,
            relative_error: err,
            ts_ns: 0,
        }
    }

    #[test]
    fn checked_in_thresholds_parse_and_cover_all_b1_cases_for_mnc() {
        let ts = b1_thresholds();
        for case in ["B1.1", "B1.2", "B1.3", "B1.4", "B1.5"] {
            assert!(
                ts.iter().any(|t| t.case == case && t.estimator == "MNC"),
                "missing MNC threshold for {case}"
            );
        }
        assert!(ts.iter().all(|t| t.max_error >= 1.0));
    }

    #[test]
    fn checked_in_b2_b3_thresholds_parse_and_gate_mnc_and_bitset() {
        for (thresholds, cases) in [
            (b2_thresholds(), ["B2.1", "B2.2", "B2.3", "B2.4", "B2.5"]),
            (b3_thresholds(), ["B3.1", "B3.2", "B3.3", "B3.4", "B3.5"]),
        ] {
            for case in cases {
                for est in ["MNC", "Bitset"] {
                    assert!(
                        thresholds
                            .iter()
                            .any(|t| t.case == case && t.estimator == est),
                        "missing {est} threshold for {case}"
                    );
                }
            }
            assert!(thresholds.iter().all(|t| t.max_error >= 1.0));
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_thresholds("B1.1\tMNC").is_err());
        assert!(parse_thresholds("B1.1\tMNC\tnot-a-number").is_err());
        assert!(parse_thresholds("B1.1\tMNC\t0.5").is_err(), "below 1.0");
        let ok = parse_thresholds("# comment\n\nB1.1\tMNC\t1.25\n").unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].max_error, 1.25);
    }

    #[test]
    fn violations_flag_exceeded_and_infinite_errors_only() {
        let thresholds = parse_thresholds("B1.1\tMNC\t1.05\nB1.2\tMNC\t1.05").unwrap();
        let records = vec![
            record("B1.1", "MNC", 1.0),           // within bound
            record("B1.2", "MNC", 2.0),           // exceeds
            record("B1.1", "Sample", 50.0),       // no threshold -> ignored
            record("B1.9", "MNC", 99.0),          // unknown case -> ignored
            record("B1.1", "MNC", f64::INFINITY), // always violates
        ];
        let v = check_thresholds(&records, &thresholds);
        assert_eq!(v.len(), 2);
        assert!(v
            .iter()
            .any(|x| x.threshold.case == "B1.2" && x.observed == 2.0));
        assert!(v.iter().any(|x| x.observed.is_infinite()));
        let msg = v[0].to_string();
        assert!(msg.contains("exceeds threshold"), "{msg}");
    }
}
