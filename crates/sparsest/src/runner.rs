//! Drives estimators over use cases and reports outcomes.

use mnc_estimators::{EstimatorError, SparsityEstimator};
use mnc_expr::{estimate_root, EstimationContext, Evaluator, ExprNode};
use mnc_obs::AccuracyRecord;

use crate::metrics::relative_error;
use crate::usecases::UseCase;

/// What happened when an estimator ran on a use case.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A sparsity estimate and its relative error against the ground truth.
    Estimate {
        /// Estimated sparsity.
        estimate: f64,
        /// `max(s, ŝ)/min(s, ŝ)`.
        relative_error: f64,
    },
    /// The estimator does not support an operation in the expression —
    /// rendered as `✗` (paper figures).
    Unsupported,
    /// The synopsis exceeded the memory budget — the paper's bitset
    /// out-of-memory cases, also rendered as `✗`.
    TooLarge,
}

impl Outcome {
    /// The relative error if an estimate was produced.
    pub fn error(&self) -> Option<f64> {
        match self {
            Outcome::Estimate { relative_error, .. } => Some(*relative_error),
            _ => None,
        }
    }
}

/// Result of one estimator on one use case (or tracked intermediate).
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Use case id (`"B2.3"`), possibly suffixed with a tracked label
    /// (`"B3.3/PGG"`).
    pub case: String,
    /// Estimator display name.
    pub estimator: &'static str,
    /// True output sparsity.
    pub truth: f64,
    /// The estimator's outcome.
    pub outcome: Outcome,
}

fn classify(err: EstimatorError) -> Outcome {
    match err {
        EstimatorError::Unsupported { .. } => Outcome::Unsupported,
        EstimatorError::SynopsisTooLarge { .. } => Outcome::TooLarge,
        other => {
            // Internal or shape errors on valid DAGs indicate estimator
            // limits (e.g. a layered graph asked for a non-left-deep
            // product); report them as unsupported rather than crashing
            // the suite.
            debug_assert!(false, "estimator error on a valid DAG: {other}");
            Outcome::Unsupported
        }
    }
}

/// Runs the given estimators over the use case root, returning one result
/// per estimator. The ground truth is the use case's analytic value when
/// available, otherwise exact evaluation. One-shot: each estimate runs in a
/// throwaway session — see [`run_case_with_context`] to share synopses and
/// collect [`mnc_expr::EstimationStats`] across cases.
pub fn run_case(case: &UseCase, estimators: &[&dyn SparsityEstimator]) -> Vec<CaseResult> {
    let truth = case_truth(case);
    estimators
        .iter()
        .map(|est| one_result(case, &case.id, case.root, truth, *est, None))
        .collect()
}

/// [`run_case`] against a shared estimation session: leaf synopses (the
/// dominant cost for dataset-backed cases reusing the same matrices) come
/// from the context's cache, and the work is recorded in the context's
/// stats.
pub fn run_case_with_context(
    case: &UseCase,
    estimators: &[&dyn SparsityEstimator],
    ctx: &mut EstimationContext,
) -> Vec<CaseResult> {
    let truth = case_truth(case);
    estimators
        .iter()
        .map(|est| one_result(case, &case.id, case.root, truth, *est, Some(ctx)))
        .collect()
}

/// Runs the estimators over every tracked intermediate of a use case
/// (Figure 13-style reports). Ground truths are evaluated exactly with a
/// shared cache.
pub fn run_tracked(case: &UseCase, estimators: &[&dyn SparsityEstimator]) -> Vec<CaseResult> {
    run_tracked_inner(case, estimators, None)
}

/// [`run_tracked`] against a shared estimation session.
pub fn run_tracked_with_context(
    case: &UseCase,
    estimators: &[&dyn SparsityEstimator],
    ctx: &mut EstimationContext,
) -> Vec<CaseResult> {
    run_tracked_inner(case, estimators, Some(ctx))
}

fn run_tracked_inner(
    case: &UseCase,
    estimators: &[&dyn SparsityEstimator],
    mut ctx: Option<&mut EstimationContext>,
) -> Vec<CaseResult> {
    let mut ev = Evaluator::new();
    let mut out = Vec::new();
    for (label, node) in &case.tracked {
        let truth = ev
            .sparsity(&case.dag, *node)
            .expect("use case DAGs evaluate");
        let id = format!("{}/{}", case.id, label);
        for est in estimators {
            out.push(one_result(
                case,
                &id,
                *node,
                truth,
                *est,
                ctx.as_deref_mut(),
            ));
        }
    }
    out
}

fn case_truth(case: &UseCase) -> f64 {
    match case.known_truth {
        Some(t) => t,
        None => Evaluator::new()
            .sparsity(&case.dag, case.root)
            .expect("use case DAGs evaluate"),
    }
}

fn one_result(
    case: &UseCase,
    id: &str,
    node: mnc_expr::NodeId,
    truth: f64,
    est: &dyn SparsityEstimator,
    ctx: Option<&mut EstimationContext>,
) -> CaseResult {
    let (estimate, recorder) = match ctx {
        Some(ctx) => (
            ctx.estimate_root(est, &case.dag, node),
            ctx.recorder().clone(),
        ),
        None => (
            estimate_root(est, &case.dag, node),
            mnc_obs::Recorder::disabled(),
        ),
    };
    let outcome = match estimate {
        Ok(s) => Outcome::Estimate {
            estimate: s,
            relative_error: relative_error(truth, s),
        },
        Err(e) => classify(e),
    };
    // Accuracy telemetry: ground truth is available here, so every produced
    // estimate becomes one accuracy record on the session's recorder. The
    // relative error is passed through from the benchmark's own M1 metric.
    if recorder.is_enabled() {
        if let Outcome::Estimate {
            estimate,
            relative_error,
        } = &outcome
        {
            let op = match case.dag.node(node) {
                ExprNode::Op { op, .. } => op.name(),
                ExprNode::Leaf { .. } => "leaf",
            };
            recorder.record_accuracy(AccuracyRecord {
                case: id.to_string(),
                op: op.to_string(),
                estimator: est.name().to_string(),
                estimated_sparsity: *estimate,
                actual_sparsity: truth,
                relative_error: *relative_error,
                ts_ns: 0,
            });
        }
    }
    CaseResult {
        case: id.to_string(),
        estimator: est.name(),
        truth,
        outcome,
    }
}

/// The paper's Figure 10/11 estimator line-up, in legend order:
/// MetaWC, MetaAC, Sample, MNC Basic, MNC, DMap, Bitset, LGraph.
pub fn standard_estimators() -> Vec<Box<dyn SparsityEstimator>> {
    use mnc_estimators::*;
    vec![
        Box::new(MetaWcEstimator),
        Box::new(MetaAcEstimator),
        Box::new(BiasedSamplingEstimator::default()),
        Box::new(MncEstimator::basic()),
        Box::new(MncEstimator::new()),
        Box::new(DensityMapEstimator::default()),
        Box::new(BitsetEstimator::default()),
        Box::new(LayeredGraphEstimator::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::Datasets;
    use crate::usecases::{b1_suite, b2_suite, b3_suite};

    #[test]
    fn standard_lineup_has_eight_estimators() {
        let ests = standard_estimators();
        let names: Vec<_> = ests.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec![
                "MetaWC",
                "MetaAC",
                "Sample",
                "MNC Basic",
                "MNC",
                "DMap",
                "Bitset",
                "LGraph"
            ]
        );
    }

    #[test]
    fn b1_full_lineup_runs() {
        let ests = standard_estimators();
        let refs: Vec<&dyn SparsityEstimator> = ests.iter().map(|b| b.as_ref()).collect();
        for case in b1_suite(0.002, 3) {
            let results = run_case(&case, &refs);
            assert_eq!(results.len(), 8);
            // Bitset and MNC are exact on all B1 cases (Section 6.3).
            for r in &results {
                if r.estimator == "Bitset" || r.estimator == "MNC" {
                    let err = r.outcome.error().expect("supported");
                    assert!(err < 1.0 + 1e-9, "{} {} err {err}", r.case, r.estimator);
                }
            }
        }
    }

    #[test]
    fn b2_5_excludes_lgraph() {
        // Element-wise multiplication does not apply to the layered graph
        // (Section 6.4) — it must report Unsupported, not crash.
        let data = Datasets::with_scale(3, 0.01);
        let case = b2_suite(&data)
            .into_iter()
            .find(|c| c.id == "B2.5")
            .unwrap();
        let ests = standard_estimators();
        let refs: Vec<&dyn SparsityEstimator> = ests.iter().map(|b| b.as_ref()).collect();
        let results = run_case(&case, &refs);
        let lg = results.iter().find(|r| r.estimator == "LGraph").unwrap();
        assert_eq!(lg.outcome, Outcome::Unsupported);
        let mnc = results.iter().find(|r| r.estimator == "MNC").unwrap();
        assert!(mnc.outcome.error().unwrap() < 1.0 + 1e-9);
    }

    #[test]
    fn tracked_intermediates_report_per_label() {
        let data = Datasets::with_scale(3, 0.02);
        let case = b3_suite(&data)
            .into_iter()
            .find(|c| c.id == "B3.3")
            .unwrap();
        let mnc = mnc_estimators::MncEstimator::new();
        let ests: Vec<&dyn SparsityEstimator> = vec![&mnc];
        let results = run_tracked(&case, &ests);
        assert_eq!(results.len(), 4); // PG, PGG, PGGG, PGGGG
        assert!(results.iter().all(|r| r.case.starts_with("B3.3/")));
    }
}
