//! Synthetic substitutes for the paper's real datasets (Table 3).
//!
//! The paper evaluates on real data up to 25.1M x 2.5M. We run on a single
//! machine, so every dataset is replaced by a deterministic generator that
//! is smaller but preserves the structural property the experiments
//! exercise (the substitution table lives in `DESIGN.md`):
//!
//! | Paper dataset | Substitute | Preserved property |
//! |---|---|---|
//! | AMin A (token sequences) | [`Datasets::aminer_abstracts`] | exactly one non-zero per row, power-law token skew, heavy "unknown" column |
//! | AMin R (citation graph) | [`Datasets::aminer_refs`] | power-law out-degrees |
//! | Amazon (book ratings) | [`Datasets::amazon`] | ultra-sparse power-law bipartite graph |
//! | Cov (Covertype) | [`Datasets::covtype`] | 54 columns with drastic sparsity skew (dense numeric + one-hot) |
//! | Email-EuAll | [`Datasets::email`] | sparse communication graph with a small dense core |
//! | Mnist1m | [`Datasets::mnist`] | centre-concentrated pixels, overall sparsity ≈ 0.22 |

use rand::Rng;
use rand::SeedableRng;

use mnc_matrix::rand_ext::Zipf;
use mnc_matrix::{gen, CooMatrix, CsrMatrix};

/// Deterministic dataset factory. `scale` multiplies the default dimensions
/// (use small values in unit tests, 1.0 in benchmarks).
#[derive(Debug, Clone, Copy)]
pub struct Datasets {
    /// Master seed; every generator derives its own stream from it.
    pub seed: u64,
    /// Dimension scale factor in `(0, 1]`.
    pub scale: f64,
}

impl Default for Datasets {
    fn default() -> Self {
        Datasets {
            seed: 0xDA7A,
            scale: 1.0,
        }
    }
}

impl Datasets {
    /// Factory at full benchmark scale.
    pub fn new(seed: u64) -> Self {
        Datasets { seed, scale: 1.0 }
    }

    /// Factory with scaled-down dimensions (for tests).
    pub fn with_scale(seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0);
        Datasets { seed, scale }
    }

    fn rng(&self, stream: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(stream))
    }

    fn dim(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(min)
    }

    /// AMin A substitute: token-sequence matrix `X` (one non-zero per row —
    /// the Theorem 3.1 property) and word-embedding matrix `W` (dense except
    /// an empty last "unknown" row, as in Figure 1).
    ///
    /// `known_fraction` of rows map to a power-law-distributed real token;
    /// the rest (pads/out-of-dictionary) map to the last column.
    pub fn aminer_abstracts(&self) -> (CsrMatrix, CsrMatrix) {
        let rows = self.dim(50_000, 200);
        let vocab = self.dim(20_000, 100);
        let emb = self.dim(100, 8);
        let known_fraction = 0.01;
        let mut rng = self.rng(1);
        let zipf = Zipf::new(vocab - 1, 1.1);
        let mut coo = CooMatrix::with_capacity(rows, vocab, rows);
        for i in 0..rows {
            let col = if rng.gen::<f64>() < known_fraction {
                zipf.sample(&mut rng)
            } else {
                vocab - 1 // unknown / padding token
            };
            coo.push(i, col, 1.0).expect("in range");
        }
        let x = CsrMatrix::from_coo(coo);
        // W: dense embeddings with an empty last row.
        let mut w_coo = CooMatrix::with_capacity(vocab, emb, (vocab - 1) * emb);
        for r in 0..vocab - 1 {
            for c in 0..emb {
                w_coo.push(r, c, gen::nz_value(&mut rng)).expect("in range");
            }
        }
        (x, CsrMatrix::from_coo(w_coo))
    }

    /// AMin R substitute: a citation graph with power-law in-degrees.
    pub fn aminer_refs(&self) -> CsrMatrix {
        let n = self.dim(8_000, 100);
        let edges = n * 8;
        let mut rng = self.rng(2);
        // Power-law citation counts (in-degree skew), capped per paper node.
        let col_counts = gen::powerlaw_counts(&mut rng, n, edges, 1.4, (n / 4).max(32));
        gen::rand_with_col_counts(&mut rng, n, &col_counts)
    }

    /// Amazon substitute: ultra-sparse power-law user x item ratings.
    pub fn amazon(&self) -> CsrMatrix {
        let users = self.dim(20_000, 200);
        let items = self.dim(6_000, 60);
        let ratings = users * 3;
        let mut rng = self.rng(3);
        let item_counts = gen::powerlaw_counts(&mut rng, items, ratings, 1.2, users / 4 + 1);
        gen::rand_with_col_counts(&mut rng, users, &item_counts)
    }

    /// Covertype substitute: 10 dense numeric columns plus two one-hot
    /// encoded categoricals (4-ary and 40-ary) — 54 columns, 12 non-zeros
    /// per row, overall sparsity 12/54 ≈ 0.22 (the paper's value).
    pub fn covtype(&self) -> CsrMatrix {
        let rows = self.dim(60_000, 200);
        let mut rng = self.rng(4);
        let zipf4 = Zipf::new(4, 0.8);
        let zipf40 = Zipf::new(40, 1.2);
        let mut coo = CooMatrix::with_capacity(rows, 54, rows * 12);
        for i in 0..rows {
            for j in 0..10 {
                coo.push(i, j, gen::nz_value(&mut rng)).expect("in range");
            }
            coo.push(i, 10 + zipf4.sample(&mut rng), 1.0)
                .expect("in range");
            coo.push(i, 14 + zipf40.sample(&mut rng), 1.0)
                .expect("in range");
        }
        CsrMatrix::from_coo(coo)
    }

    /// Email-EuAll substitute: sparse directed communication graph with a
    /// small dense core of "local" addresses.
    pub fn email(&self) -> CsrMatrix {
        let n = self.dim(10_000, 150);
        let core = (n / 100).max(10);
        let mut rng = self.rng(5);
        let bulk = n * 8 / 5; // ≈1.6 emails per address, as in Email-EuAll
        let mut coo = CooMatrix::with_capacity(n, n, bulk + core * core / 8);
        let zipf = Zipf::new(n, 1.3);
        // Bulk traffic: power-law recipients.
        for _ in 0..bulk {
            let from = rng.gen_range(0..n);
            let to = zipf.sample(&mut rng);
            coo.push(from, to, 1.0).expect("in range");
        }
        // Dense-ish core traffic among local addresses.
        for _ in 0..core * core / 8 {
            let from = rng.gen_range(0..core);
            let to = rng.gen_range(0..core);
            coo.push(from, to, 1.0).expect("in range");
        }
        CsrMatrix::from_coo(coo)
    }

    /// Mnist substitute: `rows` images of 28x28 with centre-concentrated
    /// "digit" blobs, overall sparsity ≈ 0.2.
    pub fn mnist(&self) -> CsrMatrix {
        let rows = self.dim(20_000, 100);
        let mut rng = self.rng(6);
        let mut coo = CooMatrix::with_capacity(rows, 784, rows * 160);
        for i in 0..rows {
            // Blob centre near the image centre, radius parameter sigma.
            let cx = 13.5 + rng.gen_range(-3.0..3.0);
            let cy = 13.5 + rng.gen_range(-3.0..3.0);
            let sigma: f64 = rng.gen_range(3.8..6.0);
            for r in 0..28usize {
                for c in 0..28usize {
                    let d2 = (r as f64 - cy).powi(2) + (c as f64 - cx).powi(2);
                    let p = (-d2 / (2.0 * sigma * sigma)).exp();
                    if rng.gen::<f64>() < p {
                        // Intensity in (0, 1]; high near the centre.
                        let v = (p * 0.7 + 0.3 * rng.gen::<f64>()).min(1.0);
                        coo.push(i, r * 28 + c, v).expect("in range");
                    }
                }
            }
        }
        CsrMatrix::from_coo(coo)
    }

    /// The B2.5 mask: selects the 14x14 centre of every 28x28 image —
    /// full columns for centre pixels, empty columns elsewhere.
    pub fn mnist_center_mask(rows: usize) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(rows, 784, rows * 196);
        for i in 0..rows {
            for r in 7..21usize {
                for c in 7..21usize {
                    coo.push(i, r * 28 + c, 1.0).expect("in range");
                }
            }
        }
        CsrMatrix::from_coo(coo)
    }
}

/// Reference row for the Table 3 report: the paper's dataset next to the
/// substitute's measured statistics.
#[derive(Debug, Clone)]
pub struct DatasetInfo {
    /// Dataset name.
    pub name: &'static str,
    /// Paper-reported `(rows, cols, nnz, sparsity)`.
    pub paper: (u64, u64, u64, f64),
    /// The substitute's measured `(rows, cols, nnz, sparsity)`.
    pub ours: (u64, u64, u64, f64),
}

/// Builds the Table 3 comparison for all datasets at the given scale.
pub fn table3(d: &Datasets) -> Vec<DatasetInfo> {
    fn stat(m: &CsrMatrix) -> (u64, u64, u64, f64) {
        (
            m.nrows() as u64,
            m.ncols() as u64,
            m.nnz() as u64,
            m.sparsity(),
        )
    }
    let (amin_a, _) = d.aminer_abstracts();
    vec![
        DatasetInfo {
            name: "Amazon",
            paper: (8_000_000, 2_300_000, 22_400_000, 0.0000012),
            ours: stat(&d.amazon()),
        },
        DatasetInfo {
            name: "AMin A",
            paper: (25_100_000, 2_500_000, 25_100_000, 0.00000039),
            ours: stat(&amin_a),
        },
        DatasetInfo {
            name: "AMin R",
            paper: (3_100_000, 3_100_000, 25_200_000, 0.0000026),
            ours: stat(&d.aminer_refs()),
        },
        DatasetInfo {
            name: "Cov",
            paper: (581_000, 54, 6_900_000, 0.22),
            ours: stat(&d.covtype()),
        },
        DatasetInfo {
            name: "Email",
            paper: (265_000, 265_000, 420_000, 0.000006),
            ours: stat(&d.email()),
        },
        DatasetInfo {
            name: "Mnist1m",
            paper: (1_000_000, 784, 202_000_000, 0.25),
            ours: stat(&d.mnist()),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::stats;

    fn small() -> Datasets {
        Datasets::with_scale(7, 0.01)
    }

    #[test]
    fn aminer_abstracts_single_nnz_per_row() {
        let (x, w) = small().aminer_abstracts();
        let s = stats::NnzStats::compute(&x);
        assert!(s.row_counts.iter().all(|&c| c == 1));
        // The unknown column dominates.
        let last = *s.col_counts.last().unwrap() as f64;
        assert!(last / x.nnz() as f64 > 0.9);
        // W: dense except the empty last row.
        assert_eq!(w.row_nnz(w.nrows() - 1), 0);
        assert_eq!(w.nnz(), (w.nrows() - 1) * w.ncols());
    }

    #[test]
    fn covtype_structure() {
        let c = small().covtype();
        assert_eq!(c.ncols(), 54);
        let s = stats::NnzStats::compute(&c);
        assert!(s.row_counts.iter().all(|&r| r == 12));
        assert!((c.sparsity() - 12.0 / 54.0).abs() < 1e-12);
        // One-hot columns are much sparser than numeric columns.
        assert!(s.col_counts[0] as usize == c.nrows());
        let onehot_max = s.col_counts[14..].iter().max().unwrap();
        assert!((*onehot_max as usize) < c.nrows());
    }

    #[test]
    fn refs_graph_power_law() {
        let g = small().aminer_refs();
        assert_eq!(g.nrows(), g.ncols());
        let s = stats::NnzStats::compute(&g);
        let mut sorted: Vec<u32> = s.col_counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Heavy head: the top column holds far more than the median.
        assert!(sorted[0] > 3 * sorted[sorted.len() / 2].max(1));
    }

    #[test]
    fn email_has_dense_core() {
        let g = small().email();
        let core = (g.nrows() / 100).max(10);
        let core_nnz: usize = (0..core)
            .map(|i| {
                let (cols, _) = g.row(i);
                cols.iter().filter(|&&c| (c as usize) < core).count()
            })
            .sum();
        let core_density = core_nnz as f64 / (core * core) as f64;
        assert!(core_density > 5.0 * g.sparsity());
    }

    #[test]
    fn mnist_centre_concentrated() {
        let m = small().mnist();
        assert_eq!(m.ncols(), 784);
        let s = m.sparsity();
        assert!((0.1..0.35).contains(&s), "sparsity {s}");
        // Centre columns carry most of the mass.
        let counts = stats::col_nnz_counts(&m);
        let centre: u64 = (7..21)
            .flat_map(|r| (7..21).map(move |c| r * 28 + c))
            .map(|j: usize| counts[j] as u64)
            .sum();
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        assert!(centre as f64 / total as f64 > 0.6);
    }

    #[test]
    fn center_mask_shape() {
        let m = Datasets::mnist_center_mask(10);
        assert_eq!(m.shape(), (10, 784));
        assert_eq!(m.nnz(), 10 * 196);
    }

    #[test]
    fn determinism() {
        let a = small().amazon();
        let b = small().amazon();
        assert_eq!(a, b);
    }

    #[test]
    fn table3_reports_all_six() {
        let rows = table3(&small());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.ours.2 > 0, "{} is empty", r.name);
        }
    }
}
