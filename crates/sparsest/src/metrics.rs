//! Benchmark metrics (Section 5, "Benchmark Metrics").

/// M1 accuracy: the symmetric relative error
/// `max(s, ŝ) / min(s, ŝ)`, bounded by `[1, ∞)`.
///
/// Unlike the absolute ratio error, it penalizes over- and under-estimation
/// equally. Conventions for degenerate cases: both (near-)zero → perfect
/// (1.0); exactly one zero → `∞` (the estimator predicted an empty/non-empty
/// output that is the opposite).
///
/// Total over all `f64` inputs and never `NaN` (negative and `NaN` inputs
/// degrade to the zero conventions) — the same pinned contract as
/// `mnc_obs::symmetric_relative_error`, which the obsd drift monitor
/// consumes; keep the two implementations in lockstep.
pub fn relative_error(truth: f64, estimate: f64) -> f64 {
    const EPS: f64 = 1e-15;
    let t = truth.max(0.0);
    let e = estimate.max(0.0);
    if t < EPS && e < EPS {
        return 1.0;
    }
    if t < EPS || e < EPS {
        return f64::INFINITY;
    }
    if t == e {
        // Exact agreement without a division; also keeps the out-of-domain
        // pair (INF, INF) from producing INF/INF = NaN.
        return 1.0;
    }
    t.max(e) / t.min(e)
}

/// Additive aggregation over multiple experiments (Section 5): sums the
/// sparsities (equivalently, non-zeros) and compares the totals —
/// `max(Σŝ, Σs) / min(Σŝ, Σs)`.
pub fn aggregate_relative_error(pairs: &[(f64, f64)]) -> f64 {
    let truth: f64 = pairs.iter().map(|p| p.0).sum();
    let est: f64 = pairs.iter().map(|p| p.1).sum();
    relative_error(truth, est)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_estimate_is_one() {
        assert_eq!(relative_error(0.25, 0.25), 1.0);
        assert_eq!(relative_error(0.0, 0.0), 1.0);
    }

    #[test]
    fn symmetric_in_over_and_under_estimation() {
        let over = relative_error(0.1, 0.2);
        let under = relative_error(0.1, 0.05);
        assert_eq!(over, 2.0);
        assert_eq!(under, 2.0);
    }

    #[test]
    fn zero_mismatch_is_infinite() {
        assert_eq!(relative_error(0.5, 0.0), f64::INFINITY);
        assert_eq!(relative_error(0.0, 0.5), f64::INFINITY);
    }

    #[test]
    fn bounded_below_by_one() {
        for (t, e) in [(0.1, 0.9), (1e-8, 1e-3), (0.5, 0.5000001)] {
            assert!(relative_error(t, e) >= 1.0);
        }
    }

    /// Mirrors `mnc_obs::symmetric_relative_error`'s totality pin: every
    /// `f64` input pair maps to a non-NaN value `>= 1`.
    #[test]
    fn total_and_never_nan() {
        assert_eq!(relative_error(-0.3, -1.0), 1.0);
        assert_eq!(relative_error(f64::NAN, f64::NAN), 1.0);
        assert_eq!(relative_error(f64::NAN, 0.5), f64::INFINITY);
        let vals = [
            f64::NAN,
            f64::NEG_INFINITY,
            -1.0,
            0.0,
            1e-16,
            1e-8,
            0.5,
            1.0,
            f64::INFINITY,
        ];
        for &t in &vals {
            for &e in &vals {
                let r = relative_error(t, e);
                assert!(!r.is_nan(), "NaN for ({t}, {e})");
                assert!(r >= 1.0, "{r} < 1 for ({t}, {e})");
            }
        }
    }

    #[test]
    fn aggregation_sums_before_comparing() {
        // Individually exact and individually wrong in opposite directions
        // can cancel under additive aggregation — by design.
        let err = aggregate_relative_error(&[(0.1, 0.2), (0.2, 0.1)]);
        assert_eq!(err, 1.0);
        let err2 = aggregate_relative_error(&[(0.1, 0.2), (0.1, 0.2)]);
        assert_eq!(err2, 2.0);
    }
}
