//! # mnc-sparsest — the SparsEst benchmark (paper Section 5)
//!
//! A benchmark for sparsity estimators over matrix operations and
//! expressions, consisting of:
//!
//! * [`metrics`] — M1 accuracy (the symmetric relative error
//!   `max(s, ŝ)/min(s, ŝ)`) and M2 timing helpers;
//! * [`datasets`] — deterministic synthetic substitutes for the paper's
//!   real datasets (Table 3), scaled down but preserving the structural
//!   properties each experiment exercises (see `DESIGN.md` for the
//!   substitution table);
//! * [`usecases`] — the benchmark use cases: B1.1–B1.5 structured matrix
//!   products, B2.1–B2.5 real matrix operations, B3.1–B3.5 real matrix
//!   expressions, each built as an [`mnc_expr::ExprDag`];
//! * [`runner`] — drives a list of estimators over a use case, computing
//!   the exact ground truth and each estimator's outcome (estimate,
//!   `Unsupported` ✗, or out-of-memory ✗);
//! * [`runtime`] — wall-clock measurement of synopsis construction and
//!   estimation (Figures 7 and 8).

pub mod datasets;
pub mod metrics;
pub mod regression;
pub mod runner;
pub mod runtime;
pub mod usecases;

pub use datasets::Datasets;
pub use metrics::relative_error;
pub use regression::{
    b1_thresholds, b2_thresholds, b3_thresholds, check_thresholds, Threshold, Violation,
};
pub use runner::{run_case, CaseResult, Outcome};
pub use usecases::UseCase;
