//! M2 runtime measurement: synopsis construction and estimation times
//! (Figures 7 and 8), plus the matrix-multiplication baseline.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mnc_estimators::{OpKind, Result, SparsityEstimator, Synopsis};
use mnc_matrix::{ops, CsrMatrix};

/// Timed measurement of one estimator on a single matrix product:
/// construction of both input synopses and estimation, reported separately
/// (Figures 7(b)/7(c)).
#[derive(Debug, Clone, Copy)]
pub struct ProductTiming {
    /// Input synopsis construction time.
    pub construction: Duration,
    /// Estimation time given the synopses.
    pub estimation: Duration,
    /// The estimate produced.
    pub estimate: f64,
}

impl ProductTiming {
    /// Total estimation time (M2): construction + estimation.
    pub fn total(&self) -> Duration {
        self.construction + self.estimation
    }
}

/// Measures construction and estimation for `C = A B` under one estimator.
pub fn time_product(
    est: &dyn SparsityEstimator,
    a: &Arc<CsrMatrix>,
    b: &Arc<CsrMatrix>,
) -> Result<ProductTiming> {
    let t0 = Instant::now();
    let sa = est.build(a)?;
    let sb = est.build(b)?;
    let construction = t0.elapsed();
    let t1 = Instant::now();
    let estimate = est.estimate(&OpKind::MatMul, &[&sa, &sb])?;
    let estimation = t1.elapsed();
    Ok(ProductTiming {
        construction,
        estimation,
        estimate,
    })
}

/// Measures the actual FP64 sparse matrix multiplication — the baseline any
/// estimator overhead is compared against ("MM" in Figures 7/8).
pub fn time_matmul(a: &CsrMatrix, b: &CsrMatrix) -> (Duration, f64) {
    let t0 = Instant::now();
    let c = ops::matmul(a, b).expect("benchmark shapes agree");
    (t0.elapsed(), c.sparsity())
}

/// Repeats a measurement and returns the mean duration of `f`.
pub fn mean_duration<F: FnMut() -> Duration>(repetitions: usize, mut f: F) -> Duration {
    assert!(repetitions > 0);
    let total: Duration = (0..repetitions).map(|_| f()).sum();
    total / repetitions as u32
}

/// Builds only the synopses (used to time construction in isolation).
pub fn build_synopses(
    est: &dyn SparsityEstimator,
    mats: &[&Arc<CsrMatrix>],
) -> Result<Vec<Synopsis>> {
    mats.iter().map(|m| est.build(m)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_estimators::{MetaAcEstimator, MncEstimator};
    use mnc_matrix::gen;
    use rand::SeedableRng;

    #[test]
    fn timings_are_populated() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Arc::new(gen::rand_uniform(&mut rng, 200, 150, 0.05));
        let b = Arc::new(gen::rand_uniform(&mut rng, 150, 200, 0.05));
        let t = time_product(&MncEstimator::new(), &a, &b).unwrap();
        assert!(t.estimate > 0.0);
        assert!(t.total() >= t.construction);
        let (mm, s) = time_matmul(&a, &b);
        assert!(s > 0.0);
        assert!(mm > Duration::ZERO);
    }

    #[test]
    fn mean_duration_averages() {
        let d = mean_duration(4, || Duration::from_millis(2));
        assert_eq!(d, Duration::from_millis(2));
    }

    #[test]
    fn build_synopses_builds_all() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = Arc::new(gen::rand_uniform(&mut rng, 20, 20, 0.2));
        let b = Arc::new(gen::rand_uniform(&mut rng, 20, 20, 0.2));
        let syns = build_synopses(&MetaAcEstimator, &[&a, &b]).unwrap();
        assert_eq!(syns.len(), 2);
    }
}
