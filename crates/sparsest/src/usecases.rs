//! The SparsEst use cases (paper Section 5, Table 2; configurations from
//! Section 6.3).
//!
//! * **B1 Struct** — synthetic matrix products with specific structural
//!   properties (NLP encoding, scaling, permutation, outer/inner products).
//! * **B2 Real** — single operations over the dataset substitutes.
//! * **B3 Chain** — full matrix expressions mixing products, element-wise
//!   operations, and reorganizations.

use std::sync::Arc;

use rand::Rng;
use rand::SeedableRng;

use mnc_expr::{ExprDag, NodeId, OpKind};
use mnc_matrix::rand_ext::Zipf;
use mnc_matrix::{gen, CooMatrix, CsrMatrix};

use crate::datasets::Datasets;

/// One benchmark use case: an expression DAG with a designated root, plus
/// optionally tracked intermediates (e.g. the matrix powers of B3.3).
#[derive(Debug)]
pub struct UseCase {
    /// Identifier, e.g. `"B1.1"`.
    pub id: String,
    /// Short name, e.g. `"NLP"`.
    pub name: String,
    /// The expression.
    pub dag: ExprDag,
    /// The root node whose sparsity is benchmarked.
    pub root: NodeId,
    /// Labelled intermediates that are also reported (empty for most cases).
    pub tracked: Vec<(String, NodeId)>,
    /// Analytically known true output sparsity, when available (lets the
    /// runner skip materializing huge-but-trivial ground truths like the
    /// fully dense B1.4 output).
    pub known_truth: Option<f64>,
}

impl UseCase {
    fn simple(id: &str, name: &str, dag: ExprDag, root: NodeId) -> Self {
        UseCase {
            id: id.into(),
            name: name.into(),
            dag,
            root,
            tracked: Vec::new(),
            known_truth: None,
        }
    }
}

/// Builds the NLP pair of B1.1/Figure 1: a token-sequence matrix `X` with
/// exactly one non-zero per row (power-law over real tokens, the rest in
/// the last "unknown" column) and an embedding matrix `W`, dense except an
/// empty last row.
pub fn nlp_pair<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    vocab: usize,
    emb: usize,
    known_fraction: f64,
) -> (CsrMatrix, CsrMatrix) {
    let zipf = Zipf::new(vocab - 1, 1.1);
    let mut coo = CooMatrix::with_capacity(rows, vocab, rows);
    for i in 0..rows {
        let col = if rng.gen::<f64>() < known_fraction {
            zipf.sample(rng)
        } else {
            vocab - 1
        };
        coo.push(i, col, 1.0).expect("in range");
    }
    let x = CsrMatrix::from_coo(coo);
    let mut w_coo = CooMatrix::with_capacity(vocab, emb, (vocab - 1) * emb);
    for r in 0..vocab - 1 {
        for c in 0..emb {
            w_coo.push(r, c, gen::nz_value(rng)).expect("in range");
        }
    }
    (x, CsrMatrix::from_coo(w_coo))
}

/// Indices of the `k` rows with the most non-zeros (used by the selection
/// matrices of B3.3/B3.4).
pub fn top_rows_by_nnz(m: &CsrMatrix, k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..m.nrows()).collect();
    idx.sort_by_key(|&i| std::cmp::Reverse(m.row_nnz(i)));
    idx.truncate(k);
    idx
}

/// Filters a matrix to the entries with `value > threshold` (used to build
/// the data-dependent mask `T` of B3.5).
pub fn filter_gt(m: &CsrMatrix, threshold: f64) -> CsrMatrix {
    CsrMatrix::from_triples(
        m.nrows(),
        m.ncols(),
        m.iter_triples()
            .filter(|&(_, _, v)| v > threshold)
            .map(|(i, j, _)| (i, j, 1.0)),
    )
    .expect("indices from a valid matrix")
}

/// B1 — structured matrix products. `scale` multiplies the paper's base
/// dimension of 100K (e.g. `scale = 0.1` gives 10K).
pub fn b1_suite(scale: f64, seed: u64) -> Vec<UseCase> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let d = ((100_000.0 * scale) as usize).max(64);
    let mut out = Vec::new();

    // B1.1 NLP: X W with exactly one non-zero per X row; the known-token
    // fraction is the exact output sparsity.
    {
        let (x, w) = nlp_pair(&mut rng, d, d, 300.min(d), 0.001);
        let known_rows = (0..x.nrows())
            .filter(|&i| {
                let (cols, _) = x.row(i);
                (cols[0] as usize) < x.ncols() - 1
            })
            .count();
        let truth = known_rows as f64 / x.nrows() as f64;
        let mut dag = ExprDag::new();
        let nx = dag.leaf("X", Arc::new(x));
        let nw = dag.leaf("W", Arc::new(w));
        let root = dag.matmul(nx, nw).expect("shapes agree");
        let mut case = UseCase::simple("B1.1", "NLP", dag, root);
        case.known_truth = Some(truth);
        out.push(case);
    }

    // B1.2 Scale: diag(λ) X — a fully diagonal left operand preserves X.
    {
        let x = gen::rand_uniform(&mut rng, d, (d / 50).max(16), 0.01);
        let sx = x.sparsity();
        let mut dag = ExprDag::new();
        let nd = dag.leaf("diag", Arc::new(gen::scalar_diag(d, 2.5)));
        let nx = dag.leaf("X", Arc::new(x));
        let root = dag.matmul(nd, nx).expect("shapes agree");
        let mut case = UseCase::simple("B1.2", "Scale", dag, root);
        case.known_truth = Some(sx);
        out.push(case);
    }

    // B1.3 Perm: table(s1, s2) X — a permutation preserves X's sparsity.
    {
        let x = gen::rand_uniform(&mut rng, d, (d / 50).max(16), 0.5);
        let sx = x.sparsity();
        let mut dag = ExprDag::new();
        let np = dag.leaf("P", Arc::new(gen::permutation(&mut rng, d)));
        let nx = dag.leaf("X", Arc::new(x));
        let root = dag.matmul(np, nx).expect("shapes agree");
        let mut case = UseCase::simple("B1.3", "Perm", dag, root);
        case.known_truth = Some(sx);
        out.push(case);
    }

    // B1.4 Outer: C (single dense column) times R (aligned dense row)
    // yields a fully dense output.
    {
        let c =
            CsrMatrix::from_triples(d, d, (0..d).map(|i| (i, 0usize, 1.0))).expect("valid triples");
        let r =
            CsrMatrix::from_triples(d, d, (0..d).map(|j| (0usize, j, 1.0))).expect("valid triples");
        let mut dag = ExprDag::new();
        let nc = dag.leaf("C", Arc::new(c));
        let nr = dag.leaf("R", Arc::new(r));
        let root = dag.matmul(nc, nr).expect("shapes agree");
        let mut case = UseCase::simple("B1.4", "Outer", dag, root);
        case.known_truth = Some(1.0);
        out.push(case);
    }

    // B1.5 Inner: R C — a single output non-zero.
    {
        let r =
            CsrMatrix::from_triples(d, d, (0..d).map(|j| (0usize, j, 1.0))).expect("valid triples");
        let c =
            CsrMatrix::from_triples(d, d, (0..d).map(|i| (i, 0usize, 1.0))).expect("valid triples");
        let mut dag = ExprDag::new();
        let nr = dag.leaf("R", Arc::new(r));
        let nc = dag.leaf("C", Arc::new(c));
        let root = dag.matmul(nr, nc).expect("shapes agree");
        let mut case = UseCase::simple("B1.5", "Inner", dag, root);
        case.known_truth = Some(1.0 / (d as f64 * d as f64));
        out.push(case);
    }
    out
}

/// B2 — real matrix operations over the dataset substitutes.
pub fn b2_suite(data: &Datasets) -> Vec<UseCase> {
    let mut out = Vec::new();

    // B2.1 NLP: X W on the abstracts dataset.
    {
        let (x, w) = data.aminer_abstracts();
        let mut dag = ExprDag::new();
        let nx = dag.leaf("X", Arc::new(x));
        let nw = dag.leaf("W", Arc::new(w));
        let root = dag.matmul(nx, nw).expect("shapes agree");
        out.push(UseCase::simple("B2.1", "NLP", dag, root));
    }

    // B2.2 Project: X P — extract the ultra-sparse one-hot columns of Cov.
    {
        let x = data.covtype();
        let p = gen::col_projection(54, 14, 40);
        let mut dag = ExprDag::new();
        let nx = dag.leaf("X", Arc::new(x));
        let np = dag.leaf("P", Arc::new(p));
        let root = dag.matmul(nx, np).expect("shapes agree");
        out.push(UseCase::simple("B2.2", "Project", dag, root));
    }

    // B2.3 CoRefG: G Gᵀ — co-reference counting on the citation graph.
    // The transpose is materialized as an input leaf ("a matrix product of
    // AMin R with its transposed representation"), so single-product
    // estimators (sampling, layered graph) apply.
    {
        let g = data.aminer_refs();
        let gt = g.transpose();
        let mut dag = ExprDag::new();
        let ng = dag.leaf("G", Arc::new(g));
        let ngt = dag.leaf("Gt", Arc::new(gt));
        let root = dag.matmul(ng, ngt).expect("shapes agree");
        out.push(UseCase::simple("B2.3", "CoRefG", dag, root));
    }

    // B2.4 EmailG: G G — email network analysis.
    {
        let g = data.email();
        let mut dag = ExprDag::new();
        let ng = dag.leaf("G", Arc::new(g));
        let root = dag.matmul(ng, ng).expect("shapes agree");
        out.push(UseCase::simple("B2.4", "EmailG", dag, root));
    }

    // B2.5 Mask: M ⊙ X — centre-mask image masking on Mnist.
    {
        let x = data.mnist();
        let m = Datasets::mnist_center_mask(x.nrows());
        let mut dag = ExprDag::new();
        let nm = dag.leaf("M", Arc::new(m));
        let nx = dag.leaf("X", Arc::new(x));
        let root = dag.ew_mul(nm, nx).expect("shapes agree");
        out.push(UseCase::simple("B2.5", "Mask", dag, root));
    }
    out
}

/// Sentence length used by the B3.1 reshape (rows merged per sentence).
pub const B3_1_SENTENCE_LEN: usize = 10;

/// The materialized B3.2 chain `[Sᵀ, Xᵀ, diag(w), X, S, B]` — Figure 15
/// reports the errors of **all 15 subchains** of these six matrices
/// ("disregarding the leaf node reorganizations").
pub fn b3_2_chain(data: &Datasets) -> Vec<(String, Arc<CsrMatrix>)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(data.seed ^ 0xB3);
    let x = data.mnist();
    let m = x.nrows();
    let x = mnc_matrix::ops::cbind(&x, &gen::ones_vector(m)).expect("shapes agree");
    let n = x.ncols();
    let s = gen::scale_shift_matrix(&mut rng, n);
    let w = gen::ones_vector(m);
    let b = gen::rand_dense(&mut rng, n, 1);
    let st = s.transpose();
    let xt = x.transpose();
    let d = mnc_matrix::ops::diag_v2m(&w).expect("column vector");
    vec![
        ("St".into(), Arc::new(st)),
        ("Xt".into(), Arc::new(xt)),
        ("diag(w)".into(), Arc::new(d)),
        ("X".into(), Arc::new(x)),
        ("S".into(), Arc::new(s)),
        ("B".into(), Arc::new(b)),
    ]
}

/// B3 — real matrix expressions.
pub fn b3_suite(data: &Datasets) -> Vec<UseCase> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(data.seed ^ 0xB3);
    let mut out = Vec::new();

    // B3.1 NLP: reshape(X W) — token embeddings to sentence embeddings.
    {
        let (x, w) = data.aminer_abstracts();
        let emb = w.ncols();
        // Round the token count down to a multiple of the sentence length.
        let rows = x.nrows() / B3_1_SENTENCE_LEN * B3_1_SENTENCE_LEN;
        let p = gen::selection_matrix(&(0..rows).collect::<Vec<_>>(), x.nrows());
        let x = mnc_matrix::ops::matmul(&p, &x).expect("selection shapes agree");
        let mut dag = ExprDag::new();
        let nx = dag.leaf("X", Arc::new(x));
        let nw = dag.leaf("W", Arc::new(w));
        let xw = dag.matmul(nx, nw).expect("shapes agree");
        let root = dag
            .reshape(xw, rows / B3_1_SENTENCE_LEN, emb * B3_1_SENTENCE_LEN)
            .expect("cell counts agree");
        out.push(UseCase::simple("B3.1", "NLP", dag, root));
    }

    // B3.2 S&S: Sᵀ Xᵀ diag(w) X S B — deferred scaling and shifting.
    {
        let x = data.mnist();
        let m = x.nrows();
        // Append a column of ones (the intercept column).
        let x = mnc_matrix::ops::cbind(&x, &gen::ones_vector(m)).expect("shapes agree");
        let n = x.ncols();
        let s = gen::scale_shift_matrix(&mut rng, n);
        let w = gen::ones_vector(m);
        let b = gen::rand_dense(&mut rng, n, 1);
        let mut dag = ExprDag::new();
        let nx = dag.leaf("X", Arc::new(x));
        let ns = dag.leaf("S", Arc::new(s));
        let nw = dag.leaf("w", Arc::new(w));
        let nb = dag.leaf("B", Arc::new(b));
        let st = dag.transpose(ns).expect("shapes agree");
        let xt = dag.transpose(nx).expect("shapes agree");
        let dw = dag.op(OpKind::DiagV2M, &[nw]).expect("vector");
        let p1 = dag.matmul(st, xt).expect("shapes agree");
        let p2 = dag.matmul(p1, dw).expect("shapes agree");
        let p3 = dag.matmul(p2, nx).expect("shapes agree");
        let p4 = dag.matmul(p3, ns).expect("shapes agree");
        let root = dag.matmul(p4, nb).expect("shapes agree");
        let mut case = UseCase::simple("B3.2", "S&S", dag, root);
        case.tracked = vec![
            ("StXt".into(), p1),
            ("StXtD".into(), p2),
            ("StXtDX".into(), p3),
            ("StXtDXS".into(), p4),
            ("StXtDXSB".into(), root),
        ];
        out.push(case);
    }

    // B3.3 Graph: P G G G G — transitively referenced papers over 3 hops.
    {
        let g = Arc::new(data.aminer_refs());
        let top = top_rows_by_nnz(&g, 200.min(g.nrows()));
        let p = gen::selection_matrix(&top, g.nrows());
        let mut dag = ExprDag::new();
        let np = dag.leaf("P", Arc::new(p));
        let ng = dag.leaf("G", Arc::clone(&g));
        let pg = dag.matmul(np, ng).expect("shapes agree");
        let pgg = dag.matmul(pg, ng).expect("shapes agree");
        let pggg = dag.matmul(pgg, ng).expect("shapes agree");
        let root = dag.matmul(pggg, ng).expect("shapes agree");
        let mut case = UseCase::simple("B3.3", "Graph", dag, root);
        case.tracked = vec![
            ("PG".into(), pg),
            ("PGG".into(), pgg),
            ("PGGG".into(), pggg),
            ("PGGGG".into(), root),
        ];
        out.push(case);
    }

    // B3.4 Rec: (P X != 0) ⊙ (P L Rᵀ) — predicted recommendations for the
    // known ratings of the most active users.
    {
        let x = Arc::new(data.amazon());
        let (users, items) = x.shape();
        let rank = 20.min(users).min(items);
        let top = top_rows_by_nnz(&x, (users / 20).max(10).min(users));
        let p = gen::selection_matrix(&top, users);
        let l = gen::rand_uniform(&mut rng, users, rank, 0.95);
        let r = gen::rand_uniform(&mut rng, items, rank, 0.85);
        let mut dag = ExprDag::new();
        let np = dag.leaf("P", Arc::new(p));
        let nx = dag.leaf("X", x);
        let nl = dag.leaf("L", Arc::new(l));
        let nr = dag.leaf("R", Arc::new(r));
        let px = dag.matmul(np, nx).expect("shapes agree");
        let mask = dag.op(OpKind::Neq0, &[px]).expect("unary");
        let pl = dag.matmul(np, nl).expect("shapes agree");
        let rt = dag.transpose(nr).expect("unary");
        let plr = dag.matmul(pl, rt).expect("shapes agree");
        let root = dag.ew_mul(mask, plr).expect("shapes agree");
        out.push(UseCase::simple("B3.4", "Rec", dag, root));
    }

    // B3.5 Pred: X ⊙ ((R ⊙ S + T) != 0) — a compound boolean mask selecting
    // fully black pixels plus a random fraction of the centre area.
    {
        let x = Arc::new(data.mnist());
        let m = x.nrows();
        let r = Datasets::mnist_center_mask(m);
        let s = gen::rand_uniform(&mut rng, m, 784, 0.1);
        let t = filter_gt(&x, 0.9);
        let mut dag = ExprDag::new();
        let nx = dag.leaf("X", x);
        let nr = dag.leaf("R", Arc::new(r));
        let ns = dag.leaf("S", Arc::new(s));
        let nt = dag.leaf("T", Arc::new(t));
        let rs = dag.ew_mul(nr, ns).expect("shapes agree");
        let rst = dag.ew_add(rs, nt).expect("shapes agree");
        let mask = dag.op(OpKind::Neq0, &[rst]).expect("unary");
        let root = dag.ew_mul(nx, mask).expect("shapes agree");
        out.push(UseCase::simple("B3.5", "Pred", dag, root));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_estimators::{MncEstimator, SparsityEstimator};
    use mnc_expr::{estimate_root, Evaluator};

    fn small_data() -> Datasets {
        Datasets::with_scale(11, 0.01)
    }

    #[test]
    fn b1_known_truths_match_evaluation() {
        // At tiny scale the analytic truths must agree with real execution.
        for case in b1_suite(0.003, 5) {
            let truth = Evaluator::new().sparsity(&case.dag, case.root).unwrap();
            let known = case.known_truth.expect("B1 truths are analytic");
            assert!(
                (truth - known).abs() < 1e-12,
                "{}: analytic {known} vs evaluated {truth}",
                case.id
            );
        }
    }

    #[test]
    fn b1_mnc_is_exact_everywhere() {
        // Figure 10: MNC yields exact results for all B1 scenarios.
        let est = MncEstimator::new();
        for case in b1_suite(0.003, 6) {
            let s = estimate_root(&est, &case.dag, case.root).unwrap();
            let truth = case.known_truth.unwrap();
            assert!(
                crate::metrics::relative_error(truth, s) < 1.0 + 1e-9,
                "{}: est {s} truth {truth}",
                case.id
            );
        }
    }

    #[test]
    fn b2_cases_build_and_evaluate() {
        let data = small_data();
        for case in b2_suite(&data) {
            let truth = Evaluator::new().sparsity(&case.dag, case.root).unwrap();
            assert!(truth > 0.0 && truth <= 1.0, "{}: truth {truth}", case.id);
        }
    }

    #[test]
    fn b2_5_mask_mnc_exact() {
        // Column-structured mask ⇒ exact MNC estimate (Section 6.4).
        let data = small_data();
        let case = b2_suite(&data)
            .into_iter()
            .find(|c| c.id == "B2.5")
            .unwrap();
        let est = estimate_root(&MncEstimator::new(), &case.dag, case.root).unwrap();
        let truth = Evaluator::new().sparsity(&case.dag, case.root).unwrap();
        assert!((est - truth).abs() < 1e-9, "B2.5: est {est} truth {truth}");
    }

    #[test]
    fn b3_cases_build_and_evaluate() {
        let data = small_data();
        for case in b3_suite(&data) {
            let truth = Evaluator::new().sparsity(&case.dag, case.root).unwrap();
            assert!((0.0..=1.0).contains(&truth), "{}: truth {truth}", case.id);
            // Tracked intermediates evaluate too.
            let mut ev = Evaluator::new();
            for (label, node) in &case.tracked {
                let s = ev.sparsity(&case.dag, *node).unwrap();
                assert!((0.0..=1.0).contains(&s), "{} {label}: {s}", case.id);
            }
        }
    }

    #[test]
    fn b3_3_powers_densify() {
        // Matrix powers are densifying (Section 6.6): sparsity grows along
        // the chain.
        let data = Datasets::with_scale(11, 0.05);
        let case = b3_suite(&data)
            .into_iter()
            .find(|c| c.id == "B3.3")
            .unwrap();
        let mut ev = Evaluator::new();
        let s: Vec<f64> = case
            .tracked
            .iter()
            .map(|(_, n)| ev.sparsity(&case.dag, *n).unwrap())
            .collect();
        assert!(s.windows(2).all(|w| w[1] >= w[0]), "sparsities {s:?}");
    }

    #[test]
    fn top_rows_by_nnz_orders_correctly() {
        let m = CsrMatrix::from_triples(3, 3, vec![(1, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]).unwrap();
        assert_eq!(top_rows_by_nnz(&m, 2), vec![1, 2]);
    }

    #[test]
    fn filter_gt_keeps_pattern_subset() {
        let m = CsrMatrix::from_triples(2, 2, vec![(0, 0, 0.5), (1, 1, 0.95)]).unwrap();
        let f = filter_gt(&m, 0.9);
        assert_eq!(f.nnz(), 1);
        assert_eq!(f.get(1, 1), 1.0);
    }

    #[test]
    fn mnc_name_sanity() {
        assert_eq!(MncEstimator::new().name(), "MNC");
    }
}
