//! Proof of the shadow plane's hot-path isolation: the per-request
//! **sampling decision** — the only shadow code an unsampled request ever
//! executes — allocates **nothing**, at rate 0 (plane disabled, one branch)
//! and at rate 1 (counter fetch-add + SplitMix64 hash). Everything that
//! does allocate (job cloning, queue submission, the alternate estimator
//! runs) happens only on the sampled path, strictly after the response
//! body exists, and mostly off-thread.
//!
//! Requires the `alloc-track` feature (the counting global allocator) and
//! lives alone in its own integration binary: the allocation counters are
//! process-global, so any concurrently running test would attribute its
//! allocations to our measurement scope.

#![cfg(feature = "alloc-track")]

use mnc_obs::alloc::AllocScope;
use mnc_obsd::{ObsDaemon, ObsdConfig};
use mnc_served::{ServedConfig, ShadowPlane};

fn plane(rate: f64) -> (ShadowPlane, ObsDaemon) {
    let daemon = ObsDaemon::new(ObsdConfig {
        flight_capacity: 64,
        ..ObsdConfig::default()
    });
    let mut cfg = ServedConfig::new(std::env::temp_dir().join("mnc-shadow-alloc-unused"));
    cfg.shadow_rate = rate;
    (ShadowPlane::new(&cfg, &daemon), daemon)
}

#[test]
fn sampling_decision_allocates_nothing_at_any_rate() {
    for rate in [0.0, 0.5, 1.0] {
        let (plane, _daemon) = plane(rate);
        // Warm-up: fault in thread-locals and lazy state (there should be
        // none, but the measurement must not be the first call).
        let mut warm = 0u64;
        for _ in 0..64 {
            warm += u64::from(plane.should_sample());
        }

        let scope = AllocScope::start();
        let mut hits = 0u64;
        for _ in 0..10_000 {
            hits += u64::from(plane.should_sample());
        }
        let delta = scope.measure();
        assert_eq!(
            delta.gross_bytes, 0,
            "sampling decision at rate {rate} must not allocate \
             (delta: {delta:?})"
        );
        assert_eq!(delta.allocs, 0, "no allocation events either: {delta:?}");

        // The decisions really ran: rate 0 never samples, rate 1 always.
        match rate {
            r if r == 0.0 => assert_eq!(hits + warm, 0),
            r if r == 1.0 => assert_eq!(hits, 10_000),
            _ => assert!(hits > 0 && hits < 10_000, "rate {rate} hit {hits}"),
        }
    }
}
