//! Hostile-input coverage for the `traceparent` request header — the trace
//! plane's attacker-reachable surface. The contract under attack: a
//! malformed, truncated, oversized, or otherwise hostile header is
//! *ignored* (the request proceeds under a fresh, valid trace ID) and can
//! never turn into a 500 or a panic. Sits alongside the MNCS
//! `serialize_hostile` suite as the service's second parser fuzz wall.

use proptest::prelude::*;

use mnc_obs::parse_traceparent;
use mnc_obsd::{Handler, Request};
use mnc_served::{EstimationService, ServedConfig};

fn is_lower_hex(s: &str) -> bool {
    s.bytes()
        .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// A 16-byte trace id from two generator words, forced non-zero.
fn id_bytes(hi: u64, lo: u64) -> [u8; 16] {
    let mut id = [0u8; 16];
    id[..8].copy_from_slice(&hi.to_be_bytes());
    id[8..].copy_from_slice(&(lo | 1).to_be_bytes());
    id
}

/// A well-formed v00 traceparent for a given 16-byte trace id.
fn valid_traceparent(id: [u8; 16]) -> String {
    let hex: String = id.iter().map(|b| format!("{b:02x}")).collect();
    format!("00-{hex}-00f067aa0ba902b7-01")
}

/// In-process service + request plumbing (no TCP: each proptest case is one
/// direct `Handler::handle` call).
fn service_for(tag: &str) -> std::sync::Arc<EstimationService> {
    let dir = std::env::temp_dir().join(format!("mnc-tp-hostile-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    EstimationService::new(ServedConfig::new(&dir)).expect("service")
}

fn status_request(traceparent: &str) -> Request {
    Request {
        method: "GET".into(),
        path: "/v1/status".into(),
        query: String::new(),
        headers: vec![("traceparent".into(), traceparent.into())],
        body: Vec::new(),
    }
}

fn trace_header(resp: &mnc_obsd::Response) -> Option<String> {
    resp.headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("x-mnc-trace-id"))
        .map(|(_, v)| v.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Baseline: every well-formed non-zero traceparent is adopted exactly.
    #[test]
    fn valid_headers_are_adopted(hi in any::<u64>(), lo in any::<u64>()) {
        let tp = valid_traceparent(id_bytes(hi, lo));
        let parsed = parse_traceparent(&tp).expect("valid traceparent parses");
        prop_assert_eq!(parsed.to_hex(), tp[3..35].to_string());
    }

    /// Every strict prefix of a valid header is rejected — v00 requires all
    /// four fields, fully.
    #[test]
    fn truncated_headers_are_ignored(hi in any::<u64>(), lo in any::<u64>(), cut in 0usize..55) {
        let tp = valid_traceparent(id_bytes(hi, lo));
        prop_assert!(cut < tp.len());
        prop_assert!(parse_traceparent(&tp[..cut]).is_none());
    }

    /// Single-byte mutations anywhere in the header never panic, and any
    /// mutation that still parses yields a well-formed non-zero ID.
    #[test]
    fn mutated_headers_never_panic(
        hi in any::<u64>(),
        lo in any::<u64>(),
        pos in 0usize..55,
        byte in any::<u8>(),
    ) {
        let mut tp = valid_traceparent(id_bytes(hi, lo)).into_bytes();
        tp[pos] = byte;
        if let Ok(s) = std::str::from_utf8(&tp) {
            if let Some(t) = parse_traceparent(s) {
                prop_assert!(!t.is_zero());
                prop_assert_eq!(t.to_hex().len(), 32);
            }
        }
    }

    /// Arbitrary garbage — including oversized headers — parses to `None`
    /// or a valid ID; it never panics. Lengths beyond the 256-byte cap are
    /// rejected outright. Drawn from a traceparent-flavored alphabet so
    /// near-misses (hex runs, dashes) are common, not vanishing.
    #[test]
    fn arbitrary_garbage_is_safe(seed in any::<u64>(), len in 0usize..400) {
        const ALPHABET: &[u8] = b"0123456789abcdefABCDEF-xzZ \x00\x7f~";
        let mut state = seed | 1;
        let s: String = (0..len)
            .map(|_| {
                // splitmix-style scramble; deterministic per case.
                state = state.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
                ALPHABET[(state >> 32) as usize % ALPHABET.len()] as char
            })
            .collect();
        let parsed = parse_traceparent(&s);
        if s.len() > 256 {
            prop_assert!(parsed.is_none(), "oversized header must be rejected");
        }
        if let Some(t) = parsed {
            prop_assert!(!t.is_zero());
        }
    }
}

#[test]
fn hostile_headers_never_500_and_always_yield_fresh_ids() {
    let svc = service_for("service");
    let hostile: &[&str] = &[
        "",
        "-",
        "----",
        "00",
        "00-",
        "00-4bf92f3577b34da6a3ce929d0e0e4736", // truncated
        "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // no flags
        "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff
        "0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // short version
        "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
        "00-zzf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex
        "00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero id
        "00-4bf92f3577b34da6a3ce929d0e0e47367-0f067aa0ba902b7-01", // 33-char id
        "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span
        "\u{202e}00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
    ];
    let oversized = "00-".to_string() + &"a".repeat(4096);
    let mut cases: Vec<&str> = hostile.to_vec();
    cases.push(&oversized);

    let mut seen = std::collections::HashSet::new();
    for tp in cases {
        let resp = svc.handle(&status_request(tp));
        assert_eq!(
            resp.status, 200,
            "hostile traceparent {tp:?} must not fail the request"
        );
        let id = trace_header(&resp)
            .unwrap_or_else(|| panic!("response for {tp:?} must carry x-mnc-trace-id"));
        assert_eq!(id.len(), 32, "fresh id must be 32 hex chars");
        assert!(is_lower_hex(&id), "fresh id must be lowercase hex: {id}");
        assert_ne!(id, "4bf92f3577b34da6a3ce929d0e0e4736", "must not adopt");
        assert!(seen.insert(id), "fresh ids must be distinct per request");
    }
}
