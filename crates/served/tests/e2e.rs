//! End-to-end tests over a live listener: ingest → estimate bit-identity,
//! restart-without-rebuild, saturation shedding, and the error surface.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use mnc_estimators::MncEstimator;
use mnc_expr::{EstimationContext, ExprDag};
use mnc_matrix::{gen, CsrMatrix};
use mnc_served::{serve_with, EstimationService, ServeOptions, ServedConfig, ServerHandle};
use rand::SeedableRng;

/// One raw HTTP exchange: writes `head` + `body`, reads the full response.
/// The server may answer (413) and close before the body is fully written;
/// that close can surface client-side as EPIPE on write — tolerated — or,
/// under load, as ECONNRESET that discards the buffered response, in which
/// case the whole exchange is retried (the requests here are idempotent).
fn exchange(addr: &str, head: &str, body: &[u8]) -> (u16, HashMap<String, String>, Vec<u8>) {
    for _attempt in 0..8 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let _ = stream.write_all(head.as_bytes());
        let _ = stream.write_all(body);
        let mut raw = Vec::new();
        if stream.read_to_end(&mut raw).is_err() {
            continue;
        }
        let Some(split) = raw.windows(4).position(|w| w == b"\r\n\r\n") else {
            continue;
        };
        let head = std::str::from_utf8(&raw[..split]).expect("utf8 head");
        let mut lines = head.lines();
        let status: u16 = lines
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .expect("status");
        let headers: HashMap<String, String> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        return (status, headers, raw[split + 4..].to_vec());
    }
    panic!("no complete response after 8 attempts");
}

/// One HTTP exchange against `addr`; returns (status, headers, body).
fn http(
    addr: &str,
    method: &str,
    path: &str,
    content_type: Option<&str>,
    body: &[u8],
) -> (u16, HashMap<String, String>, Vec<u8>) {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: test\r\n");
    if let Some(ct) = content_type {
        head.push_str(&format!("Content-Type: {ct}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    exchange(addr, &head, body)
}

fn json_body(raw: &[u8]) -> mnc_obs::json::JsonValue {
    mnc_obs::json::parse(std::str::from_utf8(raw).expect("utf8 body")).expect("json body")
}

fn csr_json(m: &CsrMatrix) -> String {
    let fmt_usize = |xs: &[usize]| {
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let cols = m
        .col_indices()
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"nrows\":{},\"ncols\":{},\"row_ptr\":[{}],\"col_idx\":[{}]}}",
        m.nrows(),
        m.ncols(),
        fmt_usize(m.row_ptr()),
        cols
    )
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mnc-served-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn start(cfg: ServedConfig) -> (Arc<EstimationService>, ServerHandle, String) {
    let service = EstimationService::new(cfg).expect("service");
    let handle = serve_with(service.clone(), "127.0.0.1:0", ServeOptions::default()).expect("bind");
    let addr = handle.local_addr().to_string();
    (service, handle, addr)
}

/// Test matrices: a pattern-only chain A(50x40) B(40x60) C(60x30).
fn chain_matrices() -> (Arc<CsrMatrix>, Arc<CsrMatrix>, Arc<CsrMatrix>) {
    let mut r = rand::rngs::StdRng::seed_from_u64(0xE2E);
    (
        Arc::new(gen::rand_uniform(&mut r, 50, 40, 0.08).to_indicator()),
        Arc::new(gen::rand_uniform(&mut r, 40, 60, 0.12).to_indicator()),
        Arc::new(gen::rand_uniform(&mut r, 60, 30, 0.1).to_indicator()),
    )
}

fn put_chain(addr: &str, a: &CsrMatrix, b: &CsrMatrix, c: &CsrMatrix) {
    for (name, m) in [("A", a), ("B", b), ("C", c)] {
        let (status, _, body) = http(
            addr,
            "PUT",
            &format!("/v1/matrices/{name}"),
            None,
            csr_json(m).as_bytes(),
        );
        assert_eq!(status, 201, "{}", String::from_utf8_lossy(&body));
    }
}

/// The library answer for (A B) C through a cold context — what every HTTP
/// estimate below must reproduce bit-for-bit.
fn library_chain_answer(a: &Arc<CsrMatrix>, b: &Arc<CsrMatrix>, c: &Arc<CsrMatrix>) -> f64 {
    let mut dag = ExprDag::new();
    let la = dag.leaf("A", Arc::clone(a));
    let lb = dag.leaf("B", Arc::clone(b));
    let lc = dag.leaf("C", Arc::clone(c));
    let ab = dag.matmul(la, lb).unwrap();
    let root = dag.matmul(ab, lc).unwrap();
    EstimationContext::new()
        .estimate_root(&MncEstimator::new(), &dag, root)
        .unwrap()
}

const CHAIN_DAG: &str = r#"{"dag":[{"leaf":"A"},{"leaf":"B"},{"leaf":"C"},
    {"op":"matmul","inputs":[0,1]},{"op":"matmul","inputs":[3,2]}]}"#;

#[test]
fn estimate_over_http_is_bit_identical_to_library() {
    let dir = tmpdir("bitident");
    let (_svc, _handle, addr) = start(ServedConfig::new(&dir));
    let (a, b, c) = chain_matrices();
    put_chain(&addr, &a, &b, &c);

    let expected = library_chain_answer(&a, &b, &c);

    let (status, _, body) = http(&addr, "POST", "/v1/estimate", None, CHAIN_DAG.as_bytes());
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let v = json_body(&body);
    let got = v.get("sparsity").and_then(|s| s.as_f64()).unwrap();
    assert_eq!(
        got.to_bits(),
        expected.to_bits(),
        "HTTP answer must be bit-identical to the in-process context"
    );

    // Warm-cache repeat (same session) answers the same bits.
    let (_, _, body2) = http(&addr, "POST", "/v1/estimate", None, CHAIN_DAG.as_bytes());
    assert_eq!(body2, body);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_estimates_all_agree() {
    let dir = tmpdir("concurrent");
    let mut cfg = ServedConfig::new(&dir);
    cfg.workers = 4;
    cfg.queue = 32;
    let (_svc, _handle, addr) = start(cfg);
    let (a, b, c) = chain_matrices();
    put_chain(&addr, &a, &b, &c);
    let expected = library_chain_answer(&a, &b, &c);

    let answers: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let addr = &addr;
        (0..16)
            .map(|i| {
                scope.spawn(move || {
                    // Distinct clients, same expression.
                    let req = format!(
                        r#"{{"client":"c{i}","dag":[{{"leaf":"A"}},{{"leaf":"B"}},{{"leaf":"C"}},
                        {{"op":"matmul","inputs":[0,1]}},{{"op":"matmul","inputs":[3,2]}}]}}"#
                    );
                    let (status, _, body) =
                        http(addr, "POST", "/v1/estimate", None, req.as_bytes());
                    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
                    body
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for body in &answers {
        let got = json_body(body)
            .get("sparsity")
            .and_then(|s| s.as_f64())
            .unwrap();
        assert_eq!(got.to_bits(), expected.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn threaded_service_is_byte_identical_and_survives_a_bounce() {
    let (a, b, c) = chain_matrices();
    let expected = library_chain_answer(&a, &b, &c);

    // Reference body from a sequential (threads=1) service.
    let dir1 = tmpdir("threads-seq");
    let seq_body = {
        let (_svc, mut handle, addr) = start(ServedConfig::new(&dir1));
        put_chain(&addr, &a, &b, &c);
        let (status, _, body) = http(&addr, "POST", "/v1/estimate", None, CHAIN_DAG.as_bytes());
        assert_eq!(status, 200);
        handle.shutdown();
        body
    };

    // A threads=4 service must answer the same bytes: the default MNC
    // estimator is order-sensitive (probabilistic rounding), so the walk
    // stays on the sequential schedule no matter the pool size.
    let dir4 = tmpdir("threads-par");
    let mut cfg = ServedConfig::new(&dir4);
    cfg.threads = 4;
    let par_body = {
        let (_svc, mut handle, addr) = start(cfg);
        put_chain(&addr, &a, &b, &c);

        let (status, _, status_body) = http(&addr, "GET", "/v1/status", None, b"");
        assert_eq!(status, 200);
        assert!(
            String::from_utf8_lossy(&status_body).contains("\"threads\":4"),
            "status must report the thread budget"
        );

        let (status, _, body) = http(&addr, "POST", "/v1/estimate", None, CHAIN_DAG.as_bytes());
        assert_eq!(status, 200);
        handle.shutdown();
        body
    };
    assert_eq!(par_body, seq_body, "threads must not change a single byte");
    let got = json_body(&par_body)
        .get("sparsity")
        .and_then(|s| s.as_f64())
        .unwrap();
    assert_eq!(got.to_bits(), expected.to_bits());

    // Bounce the threaded service: catalog serves without rebuilds and the
    // answer bytes are unchanged.
    let mut cfg = ServedConfig::new(&dir4);
    cfg.threads = 4;
    let (svc, _handle, addr) = start(cfg);
    assert_eq!(svc.rebuilds(), 0, "bounce must not rebuild sketches");
    let (status, _, body) = http(&addr, "POST", "/v1/estimate", None, CHAIN_DAG.as_bytes());
    assert_eq!(status, 200);
    assert_eq!(body, seq_body);

    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
}

#[test]
fn restart_serves_from_catalog_without_rebuilding() {
    let dir = tmpdir("restart");
    let (a, b, c) = chain_matrices();
    let expected = library_chain_answer(&a, &b, &c);

    let first_answer = {
        let (svc, mut handle, addr) = start(ServedConfig::new(&dir));
        put_chain(&addr, &a, &b, &c);
        assert_eq!(svc.rebuilds(), 3, "three CSR ingests build three sketches");
        let (status, _, body) = http(&addr, "POST", "/v1/estimate", None, CHAIN_DAG.as_bytes());
        assert_eq!(status, 200);
        handle.shutdown();
        body
    };

    // Bounce: a fresh service over the same directory.
    let (svc, _handle, addr) = start(ServedConfig::new(&dir));
    assert_eq!(svc.rebuilds(), 0, "restart must not rebuild any sketch");

    let (status, _, listing) = http(&addr, "GET", "/v1/matrices", None, b"");
    assert_eq!(status, 200);
    let v = json_body(&listing);
    assert_eq!(v.get("rebuilds").and_then(|r| r.as_f64()), Some(0.0));

    let (status, _, body) = http(&addr, "POST", "/v1/estimate", None, CHAIN_DAG.as_bytes());
    assert_eq!(status, 200);
    assert_eq!(body, first_answer, "post-restart answers must be identical");
    let got = json_body(&body)
        .get("sparsity")
        .and_then(|s| s.as_f64())
        .unwrap();
    assert_eq!(got.to_bits(), expected.to_bits());
    assert_eq!(svc.rebuilds(), 0, "estimates must not trigger rebuilds");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sketch_ingest_and_export_roundtrip() {
    let dir = tmpdir("sketchio");
    let (_svc, _handle, addr) = start(ServedConfig::new(&dir));
    let (a, _, _) = chain_matrices();
    let bytes = mnc_core::to_bytes(&mnc_core::MncSketch::build(&a));

    // Ingest pre-built sketch bytes: no build happens.
    let (status, _, body) = http(
        &addr,
        "PUT",
        "/v1/matrices/A",
        Some("application/octet-stream"),
        &bytes,
    );
    assert_eq!(status, 201, "{}", String::from_utf8_lossy(&body));
    let v = json_body(&body);
    assert_eq!(v.get("nnz").and_then(|x| x.as_f64()), Some(a.nnz() as f64));

    let (status, _, status_body) = http(&addr, "GET", "/v1/status", None, b"");
    assert_eq!(status, 200);
    let sv = json_body(&status_body);
    assert_eq!(sv.get("rebuilds").and_then(|x| x.as_f64()), Some(0.0));

    // Export returns the exact bytes back.
    let (status, headers, exported) = http(&addr, "GET", "/v1/matrices/A/sketch", None, b"");
    assert_eq!(status, 200);
    assert!(headers["content-type"].starts_with("application/octet-stream"));
    assert_eq!(exported, bytes);

    // A leaf-only estimate over the ingested sketch is exact.
    let (status, _, body) = http(
        &addr,
        "POST",
        "/v1/estimate",
        None,
        br#"{"dag":[{"leaf":"A"}],"include_sketch":true}"#,
    );
    assert_eq!(status, 200);
    let v = json_body(&body);
    let got = v.get("sparsity").and_then(|s| s.as_f64()).unwrap();
    assert_eq!(got.to_bits(), a.sparsity().to_bits());
    let hex = v.get("sketch_hex").and_then(|s| s.as_str()).unwrap();
    assert_eq!(hex.len(), bytes.len() * 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn saturation_sheds_load_with_429_and_retry_after() {
    let dir = tmpdir("saturate");
    let mut cfg = ServedConfig::new(&dir);
    cfg.workers = 1;
    cfg.queue = 0;
    cfg.debug_estimate_delay = Some(Duration::from_millis(400));
    let (_svc, _handle, addr) = start(cfg);
    let (a, b, c) = chain_matrices();
    // PUTs go through the same gate; delay applies to estimates only, so
    // they are fine.
    put_chain(&addr, &a, &b, &c);

    let shorthand = br#"{"op":"matmul","inputs":["A","B"]}"#;
    let occupant = {
        let addr = addr.clone();
        std::thread::spawn(move || http(&addr, "POST", "/v1/estimate", None, shorthand))
    };
    // Let the occupant take the single slot, then overflow it.
    std::thread::sleep(Duration::from_millis(150));
    let (status, headers, _) = http(&addr, "POST", "/v1/estimate", None, shorthand);
    assert_eq!(status, 429, "saturated service must shed load");
    // The hint is the measured recent p99 service time, rounded up to whole
    // seconds with a 1s floor — so it is always a positive integer.
    let retry_after: u64 = headers
        .get("retry-after")
        .expect("429 must carry Retry-After")
        .parse()
        .expect("Retry-After must be integral seconds");
    assert!(retry_after >= 1, "hint floors at 1s, got {retry_after}");

    let (status, _, _) = occupant.join().unwrap();
    assert_eq!(status, 200, "the admitted request still completes");

    // With the slot free again, requests are admitted again.
    let (status, _, _) = http(&addr, "POST", "/v1/estimate", None, shorthand);
    assert_eq!(status, 200);

    let (_, _, status_body) = http(&addr, "GET", "/v1/status", None, b"");
    let v = json_body(&status_body);
    assert!(
        v.get("rejected").and_then(|x| x.as_f64()).unwrap() >= 1.0,
        "rejections must be counted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn error_surface_maps_to_statuses() {
    let dir = tmpdir("errors");
    let (_svc, _handle, addr) = start(ServedConfig::new(&dir));
    let (a, b, _) = chain_matrices();
    put_chain(&addr, &a, &b, &a);

    // 404: unknown matrix in an estimate; unknown catalog entry; bad path.
    let (status, _, body) = http(
        &addr,
        "POST",
        "/v1/estimate",
        None,
        br#"{"op":"matmul","inputs":["A","nope"]}"#,
    );
    assert_eq!(status, 404);
    assert_eq!(
        json_body(&body).get("error").and_then(|e| e.as_str()),
        Some("unknown_matrix")
    );
    assert_eq!(http(&addr, "GET", "/v1/matrices/nope", None, b"").0, 404);
    assert_eq!(http(&addr, "GET", "/v1/nothing", None, b"").0, 404);
    assert_eq!(http(&addr, "DELETE", "/v1/matrices/nope", None, b"").0, 404);

    // 400: bad JSON, bad name, dimension mismatch (B:40x60 times B).
    assert_eq!(http(&addr, "POST", "/v1/estimate", None, b"garbage").0, 400);
    assert_eq!(http(&addr, "PUT", "/v1/matrices/.bad", None, b"{}").0, 400);
    let (status, _, body) = http(
        &addr,
        "POST",
        "/v1/estimate",
        None,
        br#"{"op":"matmul","inputs":["B","B"]}"#,
    );
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    assert_eq!(
        json_body(&body).get("error").and_then(|e| e.as_str()),
        Some("estimator")
    );

    // 405: unsupported method on a known path.
    assert_eq!(http(&addr, "POST", "/v1/matrices/A", None, b"{}").0, 405);

    // 204: delete then miss.
    assert_eq!(http(&addr, "DELETE", "/v1/matrices/C", None, b"").0, 204);
    assert_eq!(http(&addr, "GET", "/v1/matrices/C", None, b"").0, 404);

    // Health plane is mounted on the same listener.
    let (status, _, metrics) = http(&addr, "GET", "/metrics", None, b"");
    assert_eq!(status, 200);
    assert!(!metrics.is_empty());
    assert_eq!(http(&addr, "GET", "/healthz", None, b"").0, 200);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Like [`http`] but with an extra request header.
fn http_with_header(
    addr: &str,
    method: &str,
    path: &str,
    header: (&str, &str),
    body: &[u8],
) -> (u16, HashMap<String, String>, Vec<u8>) {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\n{}: {}\r\nContent-Length: {}\r\n\r\n",
        header.0,
        header.1,
        body.len()
    );
    exchange(addr, &head, body)
}

fn assert_trace_id(headers: &HashMap<String, String>, what: &str) -> String {
    let id = headers
        .get("x-mnc-trace-id")
        .unwrap_or_else(|| panic!("{what}: response must carry x-mnc-trace-id"));
    assert_eq!(id.len(), 32, "{what}: trace id must be 32 hex chars: {id}");
    assert!(
        id.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b)),
        "{what}: trace id must be lowercase hex: {id}"
    );
    id.clone()
}

#[test]
fn every_endpoint_echoes_a_trace_id() {
    let dir = tmpdir("traceecho");
    let (_svc, _handle, addr) = start(ServedConfig::new(&dir));
    let (a, b, c) = chain_matrices();
    put_chain(&addr, &a, &b, &c);

    let calls: [(&str, &str, &[u8]); 10] = [
        ("GET", "/v1/status", b""),
        ("GET", "/v1/matrices", b""),
        ("GET", "/v1/matrices/A", b""),
        ("GET", "/v1/matrices/A/sketch", b""),
        ("POST", "/v1/estimate", CHAIN_DAG.as_bytes()),
        ("GET", "/v1/debug/requests", b""),
        ("GET", "/metrics", b""),
        ("GET", "/healthz", b""),
        ("GET", "/v1/nope", b""), // even 404s are traced
        ("DELETE", "/v1/matrices/C", b""),
    ];
    for (method, path, body) in calls {
        let (_, headers, _) = http(&addr, method, path, None, body);
        assert_trace_id(&headers, &format!("{method} {path}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_traceparent_is_adopted_and_hostile_ones_are_replaced() {
    let dir = tmpdir("traceparent");
    let (_svc, _handle, addr) = start(ServedConfig::new(&dir));

    // A valid W3C traceparent: the service adopts the trace-id field.
    let want = "4bf92f3577b34da6a3ce929d0e0e4736";
    let tp = format!("00-{want}-00f067aa0ba902b7-01");
    let (status, headers, _) =
        http_with_header(&addr, "GET", "/v1/status", ("traceparent", &tp), b"");
    assert_eq!(status, 200);
    assert_eq!(assert_trace_id(&headers, "valid traceparent"), want);

    // Hostile values are ignored: fresh ID, never an error.
    for hostile in [
        "garbage",
        "00-4bf92f3577b34da6a3ce929d0e0e4736", // truncated
        "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff
        "00-ZZf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex
        "00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero id
    ] {
        let (status, headers, _) =
            http_with_header(&addr, "GET", "/v1/status", ("traceparent", hostile), b"");
        assert_eq!(status, 200, "hostile traceparent must not fail requests");
        let got = assert_trace_id(&headers, "hostile traceparent");
        assert_ne!(got, want, "hostile header must not leak a stale adoption");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_requests_are_tail_captured_with_attributable_span_trees() {
    let dir = tmpdir("tailcapture");
    let log_path = dir.join("access.jsonl");
    let mut cfg = ServedConfig::new(&dir);
    cfg.slow_threshold = Duration::from_millis(50);
    cfg.debug_estimate_delay = Some(Duration::from_millis(150));
    cfg.access_log = Some(log_path.clone());
    let (_svc, _handle, addr) = start(cfg);
    let (a, b, c) = chain_matrices();
    put_chain(&addr, &a, &b, &c);

    let (status, headers, _) = http(&addr, "POST", "/v1/estimate", None, CHAIN_DAG.as_bytes());
    assert_eq!(status, 200);
    let trace_id = assert_trace_id(&headers, "slow estimate");

    // The slow request must appear in the debug ring, attributed to its
    // trace ID, with the full stage tree.
    let (status, headers, body) = http(&addr, "GET", "/v1/debug/requests", None, b"");
    assert_eq!(status, 200);
    assert!(headers["content-type"].starts_with("application/jsonl"));
    let text = String::from_utf8(body).unwrap();
    let line = text
        .lines()
        .find(|l| l.contains(&trace_id))
        .unwrap_or_else(|| panic!("trace {trace_id} not captured in:\n{text}"));
    let v = mnc_obs::json::parse(line).expect("captured line is json");
    assert_eq!(v.get("reason").and_then(|r| r.as_str()), Some("slow"));
    assert_eq!(
        v.get("endpoint").and_then(|e| e.as_str()),
        Some("/v1/estimate")
    );
    let service_ns = v.get("service_ns").and_then(|x| x.as_f64()).unwrap();
    assert!(
        service_ns >= 150_000_000.0,
        "the debug delay is inside service time"
    );

    // Span-tree accounting: a `request` root whose children (the stages,
    // admission → walk → serialize) cover the service time within 5%.
    let mnc_obs::json::JsonValue::Array(spans) = v.get("spans").unwrap() else {
        panic!("captured request must embed its span tree");
    };
    let root = &spans[0];
    assert_eq!(root.get("name").and_then(|n| n.as_str()), Some("request"));
    let root_id = root.get("id").and_then(|x| x.as_f64()).unwrap();
    let names: Vec<&str> = spans[1..]
        .iter()
        .map(|s| s.get("name").and_then(|n| n.as_str()).unwrap())
        .collect();
    for stage in [
        "parse",
        "admission",
        "debug_delay",
        "catalog",
        "session",
        "walk",
        "serialize",
    ] {
        assert!(names.contains(&stage), "missing stage {stage} in {names:?}");
    }
    let mut child_sum = 0.0;
    for s in &spans[1..] {
        assert_eq!(s.get("parent").and_then(|x| x.as_f64()), Some(root_id));
        child_sum += s.get("dur_ns").and_then(|x| x.as_f64()).unwrap();
    }
    let drift = (child_sum - service_ns).abs() / service_ns;
    assert!(
        drift <= 0.05,
        "stage durations ({child_sum}ns) must cover service time \
         ({service_ns}ns) within 5%, drift {drift:.4}"
    );

    // The same line landed in the access log.
    let logged = std::fs::read_to_string(&log_path).expect("access log written");
    assert!(
        logged.contains(&trace_id),
        "access log must carry the trace"
    );

    // The ring also exports as a Chrome trace for Perfetto.
    let (status, _, chrome) = http(&addr, "GET", "/v1/debug/requests?format=chrome", None, b"");
    assert_eq!(status, 200);
    let chrome = String::from_utf8(chrome).unwrap();
    assert!(chrome.contains("traceEvents") && chrome.contains("request"));

    // And the RED metrics on /metrics reflect the request.
    let (_, _, metrics) = http(&addr, "GET", "/metrics", None, b"");
    let metrics = String::from_utf8(metrics).unwrap();
    assert!(
        metrics.contains("mnc_served_requests_total{")
            && metrics.contains("endpoint=\"/v1/estimate\"")
            && metrics.contains("method=\"POST\"")
            && metrics.contains("status=\"200\""),
        "RED counter missing from /metrics:\n{metrics}"
    );
    assert!(
        metrics.contains("mnc_served_queue_wait_ns") && metrics.contains("mnc_served_service_ns"),
        "latency split histograms missing from /metrics"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tracing_off_is_bit_identical_and_headerless() {
    let (a, b, c) = chain_matrices();

    let traced_body = {
        let dir = tmpdir("traceon");
        let (_svc, _handle, addr) = start(ServedConfig::new(&dir));
        put_chain(&addr, &a, &b, &c);
        let (status, headers, body) =
            http(&addr, "POST", "/v1/estimate", None, CHAIN_DAG.as_bytes());
        assert_eq!(status, 200);
        assert_trace_id(&headers, "tracing on");
        let _ = std::fs::remove_dir_all(&dir);
        body
    };

    let dir = tmpdir("traceoff");
    let mut cfg = ServedConfig::new(&dir);
    cfg.tracing = false;
    let (_svc, _handle, addr) = start(cfg);
    put_chain(&addr, &a, &b, &c);
    let (status, headers, body) = http(&addr, "POST", "/v1/estimate", None, CHAIN_DAG.as_bytes());
    assert_eq!(status, 200);
    assert!(
        !headers.contains_key("x-mnc-trace-id"),
        "tracing off must not stamp trace headers"
    );
    assert_eq!(
        body, traced_body,
        "estimates must be byte-identical with tracing on and off"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shadowing_on_is_byte_identical_to_shadowing_off() {
    let (a, b, c) = chain_matrices();

    let plain_body = {
        let dir = tmpdir("shadowoff");
        let (_svc, _handle, addr) = start(ServedConfig::new(&dir));
        put_chain(&addr, &a, &b, &c);
        let (status, _, body) = http(&addr, "POST", "/v1/estimate", None, CHAIN_DAG.as_bytes());
        assert_eq!(status, 200);
        let _ = std::fs::remove_dir_all(&dir);
        body
    };

    let dir = tmpdir("shadowon");
    let mut cfg = ServedConfig::new(&dir);
    cfg.shadow_rate = 1.0;
    cfg.retain_csr = true;
    let (svc, _handle, addr) = start(cfg);
    put_chain(&addr, &a, &b, &c);
    for _ in 0..4 {
        let (status, _, body) = http(&addr, "POST", "/v1/estimate", None, CHAIN_DAG.as_bytes());
        assert_eq!(status, 200);
        assert_eq!(
            body, plain_body,
            "estimates must be byte-identical with shadowing on and off"
        );
    }
    svc.shadow_plane().drain();
    assert_eq!(
        svc.shadow_plane().sampled(),
        4,
        "rate 1.0 samples everything"
    );
    assert_eq!(
        svc.shadow_plane().completed() + svc.shadow_plane().dropped(),
        4
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shadow_plane_surfaces_divergence_metrics_and_exemplars() {
    let dir = tmpdir("shadowplane");
    let mut cfg = ServedConfig::new(&dir);
    cfg.shadow_rate = 1.0;
    cfg.retain_csr = true;
    let (svc, _handle, addr) = start(cfg);
    let (a, b, c) = chain_matrices();
    put_chain(&addr, &a, &b, &c);

    // A deep DAG (divergence only) and a single-op DAG (exact ground truth
    // from retained CSR).
    let single_op = br#"{"op":"matmul","inputs":["A","B"]}"#;
    for body in [CHAIN_DAG.as_bytes(), single_op.as_slice()] {
        let (status, _, resp) = http(&addr, "POST", "/v1/estimate", None, body);
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));
    }
    svc.shadow_plane().drain();

    // 1. The exemplar ring serves valid, labeled JSONL.
    let (status, headers, body) = http(&addr, "GET", "/v1/debug/shadow", None, b"");
    assert_eq!(status, 200);
    assert!(headers["content-type"].starts_with("application/jsonl"));
    let text = String::from_utf8(body).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "both sampled estimates leave exemplars");
    for line in &lines {
        let v = mnc_obs::json::parse(line).expect("exemplar line is json");
        assert_eq!(v.get("type").and_then(|t| t.as_str()), Some("shadow"));
        assert_eq!(v.get("op").and_then(|o| o.as_str()), Some("matmul"));
        assert!(v.get("primary").and_then(|p| p.as_f64()).is_some());
    }
    assert!(
        text.contains("\"truth\":"),
        "retained CSR must yield ground truth for the single-op request:\n{text}"
    );

    // 2. The shadow scoreboard is on /metrics.
    let (_, _, metrics) = http(&addr, "GET", "/metrics", None, b"");
    let metrics = String::from_utf8(metrics).unwrap();
    for needle in [
        "mnc_shadow_sampled_total",
        "mnc_shadow_completed_total",
        "mnc_shadow_dropped_total",
        "mnc_shadow_queue_depth",
        "mnc_shadow_runs_total{estimator=\"DMap\"}",
        "mnc_shadow_runs_total{estimator=\"Bitset\"}",
        "mnc_shadow_runs_total{estimator=\"MetaAC\"}",
        "mnc_shadow_divergence_milli_bucket{estimator=\"DMap\",op=\"matmul\"",
        "mnc_shadow_latency_ns_bucket{estimator=\"Bitset\"",
    ] {
        assert!(
            needle.is_empty() || metrics.contains(needle),
            "missing {needle} in:\n{metrics}"
        );
    }

    // 3. The drift monitor saw the shadow accuracy records — its live
    //    series are exported per (estimator, op).
    for needle in [
        "mnc_obsd_drift_geo_ewma_milli{estimator=\"DMap\",op=\"matmul\"}",
        "mnc_obsd_drift_p95_milli{estimator=\"Bitset\",op=\"matmul\"}",
        "mnc_obsd_drift_samples{estimator=\"MNC\",op=\"matmul\"}",
    ] {
        assert!(metrics.contains(needle), "missing {needle} in:\n{metrics}");
    }

    // 4. /v1/status carries the shadow and tracing counters.
    let (_, _, status_body) = http(&addr, "GET", "/v1/status", None, b"");
    let v = json_body(&status_body);
    let shadow = v.get("shadow").expect("status must embed shadow block");
    assert!(matches!(
        shadow.get("enabled"),
        Some(mnc_obs::json::JsonValue::Bool(true))
    ));
    assert_eq!(shadow.get("sampled").and_then(|x| x.as_f64()), Some(2.0));
    assert_eq!(shadow.get("sidecars").and_then(|x| x.as_f64()), Some(3.0));
    let tracing = v.get("tracing").expect("status must embed tracing block");
    assert!(matches!(
        tracing.get("enabled"),
        Some(mnc_obs::json::JsonValue::Bool(true))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shadow_sidecars_survive_restart_without_rebuilds() {
    let dir = tmpdir("shadowrestart");
    let (a, b, c) = chain_matrices();
    {
        // Ingest with shadowing off: sidecars are built & persisted anyway.
        let mut cfg = ServedConfig::new(&dir);
        cfg.retain_csr = true;
        let (_svc, mut handle, addr) = start(cfg);
        put_chain(&addr, &a, &b, &c);
        handle.shutdown();
    }
    // Bounce with shadowing on: alternates come from disk, zero rebuilds.
    let mut cfg = ServedConfig::new(&dir);
    cfg.shadow_rate = 1.0;
    let (svc, _handle, addr) = start(cfg);
    assert_eq!(svc.rebuilds(), 0);
    let (status, _, _) = http(
        &addr,
        "POST",
        "/v1/estimate",
        None,
        br#"{"op":"matmul","inputs":["A","B"]}"#,
    );
    assert_eq!(status, 200);
    svc.shadow_plane().drain();
    let ex = svc.shadow_plane().exemplars();
    assert_eq!(ex.len(), 1);
    assert_eq!(
        ex[0].estimates.len(),
        3,
        "persisted sidecars must feed all alternates after a bounce: {ex:?}"
    );
    assert!(
        ex[0].truth.is_some(),
        "retained CSR must survive the restart inside the sidecar"
    );
    assert_eq!(svc.rebuilds(), 0, "shadowing must never rebuild synopses");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_bodies_are_rejected_before_compute() {
    let dir = tmpdir("toolarge");
    let service = EstimationService::new(ServedConfig::new(&dir)).expect("service");
    let handle = serve_with(
        service,
        "127.0.0.1:0",
        ServeOptions {
            max_body_bytes: 1024,
        },
    )
    .expect("bind");
    let addr = handle.local_addr().to_string();
    let big = vec![b'x'; 4096];
    let (status, _, _) = http(&addr, "PUT", "/v1/matrices/A", None, &big);
    assert_eq!(status, 413);
    let _ = std::fs::remove_dir_all(&dir);
}
