//! Proof of the trace plane's zero-allocation steady state: once the
//! context pool and the RED metric handles are warm, a full per-request
//! cycle — acquire, stage spans, queue-wait stamp, RED recording, release —
//! allocates **nothing**. The tracing plane's overhead budget is a branch
//! and a few atomics, not the allocator.
//!
//! Requires the `alloc-track` feature (the counting global allocator) and
//! lives alone in its own integration binary: the allocation counters are
//! process-global, so any concurrently running test would attribute its
//! allocations to our measurement scope.

#![cfg(feature = "alloc-track")]

use mnc_obs::alloc::AllocScope;
use mnc_obsd::{ObsDaemon, ObsdConfig};
use mnc_served::{endpoint_of, ServedConfig, TracePlane};

/// One steady-state request through the plane: the exact call sequence
/// `EstimationService::handle` + `estimate` make, minus the estimator work
/// and the response body (which are not the plane's to account for).
fn one_request(plane: &TracePlane, traceparent: Option<&str>) {
    let mut ctx = plane.acquire(traceparent);
    let t = ctx.enter("parse");
    let t = ctx.transition(t, "admission");
    ctx.set_queue_wait(0);
    let t = ctx.transition(t, "catalog");
    let t = ctx.transition(t, "session");
    let t = ctx.transition(t, "walk");
    let t = ctx.transition(t, "serialize");
    ctx.exit(t);
    plane.complete(&mut ctx, "POST", endpoint_of("/v1/estimate"), 200);
    let _ = ctx.trace_hex();
    plane.release(ctx);
}

#[test]
fn steady_state_request_cycle_allocates_nothing() {
    let daemon = ObsDaemon::new(ObsdConfig {
        flight_capacity: 64,
        ..ObsdConfig::default()
    });
    let cfg = ServedConfig::new(std::env::temp_dir().join("mnc-trace-alloc-unused"));
    // slow_threshold stays at its 250ms default: these no-op requests run
    // in nanoseconds, so the tail-capture path (which does allocate, by
    // design) never triggers.
    let plane = TracePlane::new(&cfg, &daemon).expect("plane");

    // Warm-up: pool a context, register every RED handle this cycle
    // touches, and fault in thread-locals and lazy registry state.
    let tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
    for i in 0..64 {
        one_request(&plane, if i % 2 == 0 { None } else { Some(tp) });
    }

    // Measure: generated and adopted trace IDs both, through the full
    // acquire → stages → RED → release cycle.
    let scope = AllocScope::start();
    for i in 0..1000 {
        one_request(&plane, if i % 2 == 0 { None } else { Some(tp) });
    }
    let delta = scope.measure();
    assert_eq!(
        delta.gross_bytes, 0,
        "steady-state request tracing must not allocate (delta: {delta:?})"
    );
    assert_eq!(delta.allocs, 0, "no allocation events either: {delta:?}");

    // The cycles really went through the plane: nothing was tail-captured
    // (fast requests), and the retry hint is still readable.
    assert_eq!(plane.captured_total(), 0);
    assert!(plane.retry_after_secs() >= 1);
}
