//! The persistent synopsis catalog: named MNC sketches on disk.
//!
//! The paper's deployment story builds sketches once ("computed via
//! distributed operations and subsequently collected and used in the driver
//! for compilation") — so a serving daemon must never pay sketch
//! construction twice for the same matrix. The catalog makes that durable:
//! every named sketch is written to `<dir>/<name>.mncs` in the versioned
//! MNCS wire format ([`mnc_core::serialize`]) and decoded back on
//! [`SynopsisCatalog::open`], so a daemon bounce restores the full working
//! set without touching any base matrix.
//!
//! Durability discipline:
//!
//! * writes go to `<name>.mncs.tmp` and are renamed into place — a crash
//!   mid-write leaves a `.tmp` that the next `open` deletes, never a
//!   half-written `.mncs`;
//! * files that fail to decode on `open` are quarantined (renamed to
//!   `<name>.mncs.corrupt`) and reported, not silently dropped and never a
//!   panic — a damaged catalog serves what survives;
//! * [`SynopsisCatalog::rebuilds`] counts how many sketches were built from
//!   raw matrix data since `open` (ingest of pre-built sketch bytes does
//!   not count). A restart test asserting `rebuilds == 0` proves the bounce
//!   never re-built anything.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mnc_core::serialize::{from_bytes, to_bytes};
use mnc_core::MncSketch;

use crate::error::ServiceError;
use crate::sidecar::{self, ShadowSidecar};

/// File extension for catalog entries.
const EXT: &str = "mncs";
/// File extension for shadow sidecars (alternate synopses + optional CSR).
const SIDECAR_EXT: &str = "mncx";
/// Extension suffix for in-flight writes.
const TMP_SUFFIX: &str = ".tmp";
/// Extension suffix for quarantined (undecodable) entries.
const CORRUPT_SUFFIX: &str = ".corrupt";

/// Maximum accepted matrix-name length.
pub const MAX_NAME_LEN: usize = 128;

/// Validates a catalog name: 1–128 characters from `[A-Za-z0-9._-]`, not
/// `.` or `..`, not starting with a dot (keeps names safe as file stems and
/// URL segments).
pub fn validate_name(name: &str) -> Result<(), ServiceError> {
    let ok_len = !name.is_empty() && name.len() <= MAX_NAME_LEN;
    let ok_chars = name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-');
    if !ok_len || !ok_chars || name.starts_with('.') {
        return Err(ServiceError::BadRequest(format!(
            "invalid matrix name `{name}`: 1-{MAX_NAME_LEN} chars of [A-Za-z0-9._-], \
             not starting with `.`"
        )));
    }
    Ok(())
}

/// One resident catalog entry.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The decoded sketch, shared with sessions that load it.
    pub sketch: Arc<MncSketch>,
    /// Serialized size on disk in bytes.
    pub file_bytes: u64,
    /// Shadow sidecar (alternate synopses + optional retained CSR), present
    /// only for entries ingested from raw CSR data. Octet-stream ingests
    /// have no raw data, so they carry none.
    pub shadow: Option<Arc<ShadowSidecar>>,
}

/// A directory of named, persistent MNC sketches with an in-memory index.
#[derive(Debug)]
pub struct SynopsisCatalog {
    dir: PathBuf,
    entries: BTreeMap<String, CatalogEntry>,
    /// Sketches built from raw matrix data since `open` (not loads, not
    /// pre-serialized ingests).
    rebuilds: u64,
    /// Files quarantined by the last `open` (name stems).
    quarantined: Vec<String>,
}

impl SynopsisCatalog {
    /// Opens (creating if needed) the catalog at `dir` and loads every
    /// decodable `.mncs` file. Leftover `.tmp` files are removed; files
    /// that fail to decode are renamed to `.mncs.corrupt` and listed in
    /// [`Self::quarantined`].
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ServiceError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| ServiceError::Degraded(format!("create {}: {e}", dir.display())))?;
        let mut entries = BTreeMap::new();
        let mut quarantined = Vec::new();
        let mut sidecars: Vec<(String, PathBuf)> = Vec::new();
        let listing = fs::read_dir(&dir)
            .map_err(|e| ServiceError::Degraded(format!("read {}: {e}", dir.display())))?;
        for item in listing.flatten() {
            let path = item.path();
            let Some(fname) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
                continue;
            };
            if fname.ends_with(TMP_SUFFIX) {
                // A crash mid-write; the rename never happened, so the
                // durable state is simply "entry absent".
                let _ = fs::remove_file(&path);
                continue;
            }
            if let Some(stem) = fname.strip_suffix(&format!(".{SIDECAR_EXT}")) {
                if validate_name(stem).is_ok() {
                    // Decoded in a second pass, once the primary entries are
                    // known: a sidecar only makes sense next to its sketch.
                    sidecars.push((stem.to_string(), path));
                }
                continue;
            }
            let Some(stem) = fname.strip_suffix(&format!(".{EXT}")) else {
                continue; // foreign file (including `.corrupt` quarantines)
            };
            if validate_name(stem).is_err() {
                continue;
            }
            match fs::read(&path)
                .map_err(|e| e.to_string())
                .and_then(|bytes| {
                    from_bytes(&bytes)
                        .map(|s| (s, bytes.len() as u64))
                        .map_err(|e| e.to_string())
                }) {
                Ok((sketch, file_bytes)) => {
                    entries.insert(
                        stem.to_string(),
                        CatalogEntry {
                            sketch: Arc::new(sketch),
                            file_bytes,
                            shadow: None,
                        },
                    );
                }
                Err(_) => {
                    let mut quarantine = path.clone();
                    quarantine.set_file_name(format!("{fname}{CORRUPT_SUFFIX}"));
                    let _ = fs::rename(&path, &quarantine);
                    quarantined.push(stem.to_string());
                }
            }
        }
        // Second pass: attach shadow sidecars to their entries. Orphans
        // (sidecar without a sketch) are removed — their entry is gone, so
        // the alternate synopses describe nothing. Undecodable sidecars are
        // quarantined like sketches, listed under their full file name so
        // they never shadow a `.mncs` quarantine of the same stem.
        for (stem, path) in sidecars {
            let Some(entry) = entries.get_mut(&stem) else {
                let _ = fs::remove_file(&path);
                continue;
            };
            match fs::read(&path).ok().and_then(|b| sidecar::decode(&b)) {
                Some(shadow) => entry.shadow = Some(Arc::new(shadow)),
                None => {
                    let mut quarantine = path.clone();
                    let fname = format!("{stem}.{SIDECAR_EXT}");
                    quarantine.set_file_name(format!("{fname}{CORRUPT_SUFFIX}"));
                    let _ = fs::rename(&path, &quarantine);
                    quarantined.push(fname);
                }
            }
        }
        Ok(SynopsisCatalog {
            dir,
            entries,
            rebuilds: 0,
            quarantined,
        })
    }

    /// The catalog directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Stores `sketch` under `name`, persisting it atomically
    /// (tmp + rename). `built` says whether the sketch was constructed from
    /// raw matrix data just now (true increments the rebuild counter) or
    /// arrived pre-serialized. Replaces any existing entry.
    pub fn put(
        &mut self,
        name: &str,
        sketch: Arc<MncSketch>,
        built: bool,
    ) -> Result<&CatalogEntry, ServiceError> {
        validate_name(name)?;
        let bytes = to_bytes(&sketch);
        let final_path = self.entry_path(name);
        let tmp_path = self.dir.join(format!("{name}.{EXT}{TMP_SUFFIX}"));
        fs::write(&tmp_path, &bytes)
            .and_then(|()| fs::rename(&tmp_path, &final_path))
            .map_err(|e| ServiceError::Degraded(format!("persist {name}: {e}")))?;
        if built {
            self.rebuilds += 1;
        }
        // The new sketch replaces whatever was there; a sidecar built from
        // the *old* raw data would silently describe the wrong matrix.
        let _ = fs::remove_file(self.sidecar_path(name));
        let entry = CatalogEntry {
            sketch,
            file_bytes: bytes.len() as u64,
            shadow: None,
        };
        self.entries.insert(name.to_string(), entry);
        Ok(&self.entries[name])
    }

    /// Stores `name` like [`Self::put`] (raw-data build, so `built == true`)
    /// and persists the shadow sidecar next to it with the same tmp + rename
    /// discipline, so a restart restores both without rebuilding either.
    pub fn put_with_shadow(
        &mut self,
        name: &str,
        sketch: Arc<MncSketch>,
        shadow: ShadowSidecar,
    ) -> Result<&CatalogEntry, ServiceError> {
        self.put(name, sketch, true)?;
        let bytes = sidecar::encode(&shadow);
        let final_path = self.sidecar_path(name);
        let tmp_path = self.dir.join(format!("{name}.{SIDECAR_EXT}{TMP_SUFFIX}"));
        fs::write(&tmp_path, &bytes)
            .and_then(|()| fs::rename(&tmp_path, &final_path))
            .map_err(|e| ServiceError::Degraded(format!("persist {name} sidecar: {e}")))?;
        let entry = self.entries.get_mut(name).expect("just inserted");
        entry.shadow = Some(Arc::new(shadow));
        Ok(&self.entries[name])
    }

    /// The shadow sidecar under `name`, if one was ingested or restored.
    pub fn shadow(&self, name: &str) -> Option<Arc<ShadowSidecar>> {
        self.entries.get(name).and_then(|e| e.shadow.clone())
    }

    /// Number of entries carrying a shadow sidecar.
    pub fn shadow_count(&self) -> usize {
        self.entries.values().filter(|e| e.shadow.is_some()).count()
    }

    /// The entry under `name`, if present.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.get(name)
    }

    /// The sketch under `name`, shared.
    pub fn sketch(&self, name: &str) -> Option<Arc<MncSketch>> {
        self.entries.get(name).map(|e| Arc::clone(&e.sketch))
    }

    /// Serialized bytes for `name` (re-encoded from the resident sketch —
    /// bit-identical to the file contents by the round-trip guarantee).
    pub fn bytes(&self, name: &str) -> Option<Vec<u8>> {
        self.entries.get(name).map(|e| to_bytes(&e.sketch))
    }

    /// Removes `name` from the index and disk. Returns whether it existed.
    pub fn remove(&mut self, name: &str) -> Result<bool, ServiceError> {
        if self.entries.remove(name).is_none() {
            return Ok(false);
        }
        let _ = fs::remove_file(self.sidecar_path(name));
        match fs::remove_file(self.entry_path(name)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(true),
            Err(e) => Err(ServiceError::Degraded(format!("remove {name}: {e}"))),
        }
    }

    /// Entry names in sorted order with their entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CatalogEntry)> {
        self.entries.iter().map(|(n, e)| (n.as_str(), e))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sketches built from raw matrix data since `open`.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Name stems quarantined by `open` (undecodable files).
    pub fn quarantined(&self) -> &[String] {
        &self.quarantined
    }

    fn entry_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.{EXT}"))
    }

    fn sidecar_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.{SIDECAR_EXT}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::gen;
    use rand::SeedableRng;

    fn sketch(seed: u64) -> Arc<MncSketch> {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        Arc::new(MncSketch::build(&gen::rand_uniform(&mut r, 20, 16, 0.2)))
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mnc-catalog-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("A").is_ok());
        assert!(validate_name("weights_v2.block-3").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name(".hidden").is_err());
        assert!(validate_name("..").is_err());
        assert!(validate_name("a/b").is_err());
        assert!(validate_name("a b").is_err());
        assert!(validate_name(&"x".repeat(MAX_NAME_LEN + 1)).is_err());
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut cat = SynopsisCatalog::open(&dir).unwrap();
        let s = sketch(1);
        cat.put("A", Arc::clone(&s), true).unwrap();
        assert_eq!(cat.rebuilds(), 1);
        assert_eq!(&*cat.sketch("A").unwrap(), &*s);
        assert!(cat.remove("A").unwrap());
        assert!(!cat.remove("A").unwrap());
        assert!(cat.sketch("A").is_none());
        assert!(!dir.join("A.mncs").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_restores_without_rebuilds() {
        let dir = tmpdir("reopen");
        {
            let mut cat = SynopsisCatalog::open(&dir).unwrap();
            cat.put("A", sketch(2), true).unwrap();
            cat.put("B", sketch(3), false).unwrap();
            assert_eq!(cat.rebuilds(), 1);
        }
        let cat = SynopsisCatalog::open(&dir).unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.rebuilds(), 0, "reload must not count as rebuild");
        assert_eq!(&*cat.sketch("A").unwrap(), &*sketch(2));
        assert_eq!(&*cat.sketch("B").unwrap(), &*sketch(3));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_tmp_files_are_swept_on_open() {
        let dir = tmpdir("tmpsweep");
        {
            let mut cat = SynopsisCatalog::open(&dir).unwrap();
            cat.put("A", sketch(4), false).unwrap();
        }
        // Simulate a crash mid-write: a half-written tmp next to a good file.
        fs::write(dir.join("B.mncs.tmp"), b"partial").unwrap();
        let cat = SynopsisCatalog::open(&dir).unwrap();
        assert_eq!(cat.len(), 1);
        assert!(cat.get("A").is_some());
        assert!(!dir.join("B.mncs.tmp").exists(), "tmp must be swept");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_quarantined_not_fatal() {
        let dir = tmpdir("quarantine");
        {
            let mut cat = SynopsisCatalog::open(&dir).unwrap();
            cat.put("good", sketch(5), false).unwrap();
        }
        // Truncate one valid file and plant one garbage file.
        let good_bytes = fs::read(dir.join("good.mncs")).unwrap();
        fs::write(dir.join("cut.mncs"), &good_bytes[..good_bytes.len() / 2]).unwrap();
        fs::write(dir.join("junk.mncs"), b"not a sketch at all").unwrap();
        let cat = SynopsisCatalog::open(&dir).unwrap();
        assert_eq!(cat.len(), 1);
        assert!(cat.get("good").is_some());
        let mut q = cat.quarantined().to_vec();
        q.sort();
        assert_eq!(q, ["cut", "junk"]);
        assert!(dir.join("cut.mncs.corrupt").exists());
        assert!(dir.join("junk.mncs.corrupt").exists());
        // Quarantined files do not resurrect on the next open.
        let again = SynopsisCatalog::open(&dir).unwrap();
        assert_eq!(again.len(), 1);
        assert!(again.quarantined().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shadow_sidecar_persists_and_reopens() {
        let dir = tmpdir("sidecar");
        let mut r = rand::rngs::StdRng::seed_from_u64(40);
        let m = Arc::new(gen::rand_uniform(&mut r, 30, 24, 0.1));
        {
            let mut cat = SynopsisCatalog::open(&dir).unwrap();
            let sk = Arc::new(MncSketch::build(&m));
            cat.put_with_shadow("A", sk, ShadowSidecar::build(&m, true))
                .unwrap();
            assert_eq!(cat.shadow_count(), 1);
        }
        assert!(dir.join("A.mncx").exists());
        let cat = SynopsisCatalog::open(&dir).unwrap();
        assert_eq!(cat.rebuilds(), 0, "sidecar reload must not rebuild");
        let shadow = cat.shadow("A").expect("sidecar restored");
        assert_eq!(shadow.bitset.count_ones(), m.nnz() as u64);
        assert_eq!(shadow.csr.as_ref().unwrap().nnz(), m.nnz());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn plain_put_clears_stale_sidecar() {
        let dir = tmpdir("sidecar-stale");
        let mut r = rand::rngs::StdRng::seed_from_u64(41);
        let m = Arc::new(gen::rand_uniform(&mut r, 30, 24, 0.1));
        let mut cat = SynopsisCatalog::open(&dir).unwrap();
        cat.put_with_shadow(
            "A",
            Arc::new(MncSketch::build(&m)),
            ShadowSidecar::build(&m, false),
        )
        .unwrap();
        assert!(dir.join("A.mncx").exists());
        // A pre-serialized re-ingest has no raw data: the old sidecar would
        // describe the wrong matrix and must go.
        cat.put("A", sketch(42), false).unwrap();
        assert!(cat.shadow("A").is_none());
        assert!(!dir.join("A.mncx").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_deletes_sidecar_and_orphans_are_swept() {
        let dir = tmpdir("sidecar-orphan");
        let mut r = rand::rngs::StdRng::seed_from_u64(43);
        let m = Arc::new(gen::rand_uniform(&mut r, 20, 20, 0.2));
        let mut cat = SynopsisCatalog::open(&dir).unwrap();
        cat.put_with_shadow(
            "A",
            Arc::new(MncSketch::build(&m)),
            ShadowSidecar::build(&m, false),
        )
        .unwrap();
        assert!(cat.remove("A").unwrap());
        assert!(!dir.join("A.mncx").exists());
        // Plant an orphan sidecar with no matching sketch: open sweeps it.
        fs::write(
            dir.join("ghost.mncx"),
            crate::sidecar::encode(&ShadowSidecar::build(&m, false)),
        )
        .unwrap();
        let cat = SynopsisCatalog::open(&dir).unwrap();
        assert_eq!(cat.shadow_count(), 0);
        assert!(!dir.join("ghost.mncx").exists(), "orphan must be swept");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_sidecar_is_quarantined_entry_survives() {
        let dir = tmpdir("sidecar-corrupt");
        {
            let mut cat = SynopsisCatalog::open(&dir).unwrap();
            cat.put("A", sketch(44), false).unwrap();
        }
        fs::write(dir.join("A.mncx"), b"definitely not a sidecar").unwrap();
        let cat = SynopsisCatalog::open(&dir).unwrap();
        assert!(cat.get("A").is_some(), "primary entry must survive");
        assert!(cat.shadow("A").is_none());
        assert_eq!(cat.quarantined(), ["A.mncx"]);
        assert!(dir.join("A.mncx.corrupt").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn put_replaces_existing_entry() {
        let dir = tmpdir("replace");
        let mut cat = SynopsisCatalog::open(&dir).unwrap();
        cat.put("A", sketch(6), true).unwrap();
        cat.put("A", sketch(7), true).unwrap();
        assert_eq!(cat.len(), 1);
        assert_eq!(&*cat.sketch("A").unwrap(), &*sketch(7));
        assert_eq!(cat.rebuilds(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
