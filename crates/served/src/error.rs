//! The service error vocabulary and its single HTTP status mapping.
//!
//! Every `/v1` handler returns `Result<Response, ServiceError>`; the
//! dispatcher converts failures through [`ServiceError::into_response`] so
//! one table — not scattered handler code — decides which condition maps to
//! which status code.

use mnc_core::serialize::DecodeError;
use mnc_core::EstimatorError;
use mnc_obs::export::json_escape;
use mnc_obsd::Response;

/// Everything that can go wrong serving a `/v1` request.
#[derive(Debug)]
pub enum ServiceError {
    /// Malformed request: bad JSON, bad DAG, invalid name, bad sketch
    /// bytes, unknown operation (`400`).
    BadRequest(String),
    /// A referenced matrix is not in the catalog (`404`).
    UnknownMatrix(String),
    /// No route for the path (`404`).
    NotFound,
    /// The requested method is not supported on the path (`405`).
    MethodNotAllowed,
    /// Request payload exceeds a configured limit (`413`).
    TooLarge(String),
    /// Admission control rejected the request; retry after the hinted
    /// number of seconds (`429`).
    Busy {
        /// `Retry-After` hint in seconds.
        retry_after_secs: u64,
    },
    /// The catalog directory is unusable — I/O failure writing or removing
    /// a sketch (`503`: the caller can retry once the disk recovers).
    Degraded(String),
    /// An estimator failure. Known-condition variants (arity, dimensions,
    /// shape, unsupported op) are the client's fault (`400`); synopsis size
    /// limits map to `413`; anything else is a server bug (`500`).
    Estimator(EstimatorError),
}

impl From<EstimatorError> for ServiceError {
    fn from(e: EstimatorError) -> Self {
        ServiceError::Estimator(e)
    }
}

impl From<DecodeError> for ServiceError {
    fn from(e: DecodeError) -> Self {
        ServiceError::BadRequest(format!("sketch bytes: {e}"))
    }
}

impl ServiceError {
    /// The HTTP status code for this error.
    pub fn status(&self) -> u16 {
        match self {
            ServiceError::BadRequest(_) => 400,
            ServiceError::UnknownMatrix(_) | ServiceError::NotFound => 404,
            ServiceError::MethodNotAllowed => 405,
            ServiceError::TooLarge(_) => 413,
            ServiceError::Busy { .. } => 429,
            ServiceError::Degraded(_) => 503,
            ServiceError::Estimator(e) => match e {
                EstimatorError::ArityMismatch { .. }
                | EstimatorError::DimensionMismatch { .. }
                | EstimatorError::ShapeInvalid { .. }
                | EstimatorError::Unsupported { .. } => 400,
                EstimatorError::SynopsisTooLarge { .. } => 413,
                EstimatorError::Internal(_) => 500,
            },
        }
    }

    /// Short machine-readable error class, stable across messages.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceError::BadRequest(_) => "bad_request",
            ServiceError::UnknownMatrix(_) => "unknown_matrix",
            ServiceError::NotFound => "not_found",
            ServiceError::MethodNotAllowed => "method_not_allowed",
            ServiceError::TooLarge(_) => "too_large",
            ServiceError::Busy { .. } => "busy",
            ServiceError::Degraded(_) => "degraded",
            ServiceError::Estimator(_) => "estimator",
        }
    }

    /// Human-readable detail line.
    pub fn detail(&self) -> String {
        match self {
            ServiceError::BadRequest(m) => m.clone(),
            ServiceError::UnknownMatrix(n) => format!("matrix `{n}` is not in the catalog"),
            ServiceError::NotFound => "no such resource".to_string(),
            ServiceError::MethodNotAllowed => "method not allowed on this path".to_string(),
            ServiceError::TooLarge(m) => m.clone(),
            ServiceError::Busy { retry_after_secs } => {
                format!("service saturated; retry after {retry_after_secs}s")
            }
            ServiceError::Degraded(m) => format!("catalog degraded: {m}"),
            ServiceError::Estimator(e) => e.to_string(),
        }
    }

    /// Renders the error as the service's uniform JSON error body, adding
    /// `Retry-After` on `429`.
    pub fn into_response(self) -> Response {
        let body = format!(
            "{{\"error\":\"{}\",\"detail\":\"{}\"}}",
            self.kind(),
            json_escape(&self.detail())
        );
        let resp = Response::json(self.status(), body);
        match self {
            ServiceError::Busy { retry_after_secs } => {
                resp.with_header("Retry-After", retry_after_secs.to_string())
            }
            _ => resp,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.detail(), self.kind())
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_mapping_is_complete() {
        assert_eq!(ServiceError::BadRequest("x".into()).status(), 400);
        assert_eq!(ServiceError::UnknownMatrix("A".into()).status(), 404);
        assert_eq!(ServiceError::NotFound.status(), 404);
        assert_eq!(ServiceError::MethodNotAllowed.status(), 405);
        assert_eq!(ServiceError::TooLarge("x".into()).status(), 413);
        assert_eq!(
            ServiceError::Busy {
                retry_after_secs: 1
            }
            .status(),
            429
        );
        assert_eq!(ServiceError::Degraded("disk".into()).status(), 503);
    }

    #[test]
    fn estimator_errors_split_client_vs_server() {
        use mnc_core::OpKind;
        let client: ServiceError = EstimatorError::arity(&OpKind::MatMul, 1).into();
        assert_eq!(client.status(), 400);
        let server: ServiceError = EstimatorError::Internal("bug".into()).into();
        assert_eq!(server.status(), 500);
    }

    #[test]
    fn busy_response_carries_retry_after() {
        let resp = ServiceError::Busy {
            retry_after_secs: 2,
        }
        .into_response();
        assert_eq!(resp.status, 429);
        assert!(resp
            .headers
            .iter()
            .any(|(n, v)| *n == "Retry-After" && v == "2"));
    }

    #[test]
    fn error_bodies_are_valid_json() {
        let resp = ServiceError::BadRequest("quote \" and \\ slash".into()).into_response();
        let body = String::from_utf8(resp.body).unwrap();
        let v = mnc_obs::json::parse(&body).unwrap();
        assert_eq!(v.get("error").and_then(|e| e.as_str()), Some("bad_request"));
    }
}
