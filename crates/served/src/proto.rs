//! The `/v1` wire protocol: request parsing and response rendering.
//!
//! Bodies are JSON, parsed with the workspace's dependency-free
//! [`mnc_obs::json`] parser and rendered by hand. Floating-point results go
//! through [`json_f64`](mnc_obs::export::json_f64) — the shortest
//! round-trip representation — so a client parsing the response recovers
//! the **bit-exact** `f64` the estimator produced.
//!
//! Binary sketch payloads travel as raw MNCS bytes
//! (`application/octet-stream`) on ingest/export and as lowercase hex in
//! JSON responses (`"sketch_hex"`).

use mnc_core::OpKind;
use mnc_matrix::CsrMatrix;
use mnc_obs::export::{json_escape, json_f64};
use mnc_obs::json::{parse, JsonValue};

use crate::error::ServiceError;
use crate::walk::{DagSpec, EstimateOutcome, NodeSpec};

/// A parsed `POST /v1/estimate` body.
#[derive(Debug, Clone)]
pub struct EstimateRequest {
    /// Session identifier; requests without one share the `"default"`
    /// session.
    pub client: String,
    /// The expression to estimate.
    pub dag: DagSpec,
    /// Whether to return the propagated root sketch.
    pub include_sketch: bool,
}

fn bad(msg: impl Into<String>) -> ServiceError {
    ServiceError::BadRequest(msg.into())
}

fn parse_body(body: &[u8]) -> Result<JsonValue, ServiceError> {
    let text = std::str::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
    parse(text).map_err(|e| bad(format!("invalid JSON: {e}")))
}

/// An exactly-representable non-negative integer, or an error naming the
/// field.
fn as_index(v: &JsonValue, field: &str) -> Result<usize, ServiceError> {
    match v {
        JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 2f64.powi(53) => {
            Ok(*n as usize)
        }
        _ => Err(bad(format!("`{field}` must be a non-negative integer"))),
    }
}

fn as_array<'a>(v: &'a JsonValue, field: &str) -> Result<&'a [JsonValue], ServiceError> {
    match v {
        JsonValue::Array(items) => Ok(items),
        _ => Err(bad(format!("`{field}` must be an array"))),
    }
}

fn index_array(v: &JsonValue, field: &str) -> Result<Vec<usize>, ServiceError> {
    as_array(v, field)?
        .iter()
        .map(|x| as_index(x, field))
        .collect()
}

/// Parses an operation name plus optional `rows`/`cols` (for `reshape`)
/// from the fields of a node object.
fn parse_op(name: &str, node: &JsonValue) -> Result<OpKind, ServiceError> {
    Ok(match name {
        "matmul" | "mm" => OpKind::MatMul,
        "ew_add" | "ewadd" | "+" => OpKind::EwAdd,
        "ew_mul" | "ewmul" | "*" => OpKind::EwMul,
        "ew_max" | "ewmax" | "max" => OpKind::EwMax,
        "ew_min" | "ewmin" | "min" => OpKind::EwMin,
        "transpose" | "t" => OpKind::Transpose,
        "reshape" => {
            let rows = node
                .get("rows")
                .ok_or_else(|| bad("reshape needs `rows`"))
                .and_then(|v| as_index(v, "rows"))?;
            let cols = node
                .get("cols")
                .ok_or_else(|| bad("reshape needs `cols`"))
                .and_then(|v| as_index(v, "cols"))?;
            OpKind::Reshape { rows, cols }
        }
        "diag_v2m" => OpKind::DiagV2M,
        "diag_m2v" => OpKind::DiagM2V,
        "rbind" => OpKind::Rbind,
        "cbind" => OpKind::Cbind,
        "neq0" => OpKind::Neq0,
        "eq0" => OpKind::Eq0,
        other => return Err(bad(format!("unknown op `{other}`"))),
    })
}

/// Parses a `POST /v1/estimate` body. Two forms are accepted:
///
/// * shorthand — one operation over named matrices:
///   `{"op": "matmul", "inputs": ["A", "B"]}`;
/// * general — an explicit DAG with operation inputs referring to earlier
///   node indices:
///   `{"dag": [{"leaf": "A"}, {"leaf": "B"},
///             {"op": "matmul", "inputs": [0, 1]}], "root": 2}`
///   (`root` defaults to the last node).
///
/// Optional in both: `"client"` (session id) and `"include_sketch"`.
pub fn parse_estimate_request(body: &[u8]) -> Result<EstimateRequest, ServiceError> {
    let v = parse_body(body)?;
    let client = match v.get("client") {
        None => "default".to_string(),
        Some(c) => c
            .as_str()
            .ok_or_else(|| bad("`client` must be a string"))?
            .to_string(),
    };
    let include_sketch = match v.get("include_sketch") {
        None => false,
        Some(JsonValue::Bool(b)) => *b,
        Some(_) => return Err(bad("`include_sketch` must be a boolean")),
    };

    let dag = if let Some(nodes) = v.get("dag") {
        let items = as_array(nodes, "dag")?;
        let mut spec = Vec::with_capacity(items.len());
        for (idx, item) in items.iter().enumerate() {
            if let Some(leaf) = item.get("leaf") {
                let name = leaf
                    .as_str()
                    .ok_or_else(|| bad(format!("node {idx}: `leaf` must be a string")))?;
                spec.push(NodeSpec::Leaf(name.to_string()));
            } else if let Some(opname) = item.get("op") {
                let opname = opname
                    .as_str()
                    .ok_or_else(|| bad(format!("node {idx}: `op` must be a string")))?;
                let op = parse_op(opname, item)?;
                let inputs = item
                    .get("inputs")
                    .ok_or_else(|| bad(format!("node {idx}: missing `inputs`")))
                    .and_then(|v| index_array(v, "inputs"))?;
                spec.push(NodeSpec::Op { op, inputs });
            } else {
                return Err(bad(format!("node {idx}: need `leaf` or `op`")));
            }
        }
        let root = match v.get("root") {
            None => spec.len().saturating_sub(1),
            Some(r) => as_index(r, "root")?,
        };
        DagSpec { nodes: spec, root }
    } else if let Some(opname) = v.get("op") {
        // Shorthand: inputs are matrix *names*.
        let opname = opname
            .as_str()
            .ok_or_else(|| bad("`op` must be a string"))?;
        let op = parse_op(opname, &v)?;
        let inputs = v.get("inputs").ok_or_else(|| bad("missing `inputs`"))?;
        let names: Vec<String> = as_array(inputs, "inputs")?
            .iter()
            .map(|x| {
                x.as_str()
                    .map(String::from)
                    .ok_or_else(|| bad("`inputs` must be matrix names"))
            })
            .collect::<Result<_, _>>()?;
        let n = names.len();
        let mut nodes: Vec<NodeSpec> = names.into_iter().map(NodeSpec::Leaf).collect();
        nodes.push(NodeSpec::Op {
            op,
            inputs: (0..n).collect(),
        });
        DagSpec { nodes, root: n }
    } else {
        return Err(bad("need `op` + `inputs` or `dag`"));
    };

    dag.validate()?;
    Ok(EstimateRequest {
        client,
        dag,
        include_sketch,
    })
}

/// Parses a `PUT /v1/matrices/{name}` JSON body into a CSR matrix:
/// `{"nrows": m, "ncols": n, "row_ptr": [...], "col_idx": [...],
///   "values": [...]?}` — `values` defaults to all-ones (pattern-only
/// ingest; the sketch only sees the pattern anyway).
pub fn parse_csr_body(body: &[u8]) -> Result<CsrMatrix, ServiceError> {
    let v = parse_body(body)?;
    let nrows = v
        .get("nrows")
        .ok_or_else(|| bad("missing `nrows`"))
        .and_then(|x| as_index(x, "nrows"))?;
    let ncols = v
        .get("ncols")
        .ok_or_else(|| bad("missing `ncols`"))
        .and_then(|x| as_index(x, "ncols"))?;
    let row_ptr = v
        .get("row_ptr")
        .ok_or_else(|| bad("missing `row_ptr`"))
        .and_then(|x| index_array(x, "row_ptr"))?;
    let col_idx: Vec<u32> = v
        .get("col_idx")
        .ok_or_else(|| bad("missing `col_idx`"))
        .and_then(|x| index_array(x, "col_idx"))?
        .into_iter()
        .map(|c| u32::try_from(c).map_err(|_| bad("`col_idx` entry exceeds u32")))
        .collect::<Result<_, _>>()?;
    let values: Vec<f64> = match v.get("values") {
        None => vec![1.0; col_idx.len()],
        Some(arr) => as_array(arr, "values")?
            .iter()
            .map(|x| x.as_f64().ok_or_else(|| bad("`values` must be numbers")))
            .collect::<Result<_, _>>()?,
    };
    CsrMatrix::try_from_parts(nrows, ncols, row_ptr, col_idx, values)
        .map_err(|e| bad(format!("invalid CSR: {e}")))
}

/// Lowercase hex encoding for binary payloads embedded in JSON.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Inverse of [`to_hex`].
pub fn from_hex(text: &str) -> Result<Vec<u8>, ServiceError> {
    if !text.len().is_multiple_of(2) {
        return Err(bad("hex payload has odd length"));
    }
    (0..text.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&text[i..i + 2], 16).map_err(|_| bad("invalid hex payload")))
        .collect()
}

/// Renders one catalog entry's metadata object.
pub fn matrix_meta_json(name: &str, sketch: &mnc_core::MncSketch, file_bytes: u64) -> String {
    format!(
        "{{\"name\":\"{}\",\"nrows\":{},\"ncols\":{},\"nnz\":{},\"sparsity\":{},\"file_bytes\":{}}}",
        json_escape(name),
        sketch.nrows,
        sketch.ncols,
        sketch.meta.nnz,
        json_f64(sketch.sparsity()),
        file_bytes
    )
}

/// Renders the `POST /v1/estimate` success body.
pub fn estimate_json(out: &EstimateOutcome) -> String {
    let mut body = format!(
        "{{\"sparsity\":{},\"nnz\":{},\"shape\":[{},{}]",
        json_f64(out.sparsity),
        out.nnz,
        out.shape.0,
        out.shape.1
    );
    if let Some(bytes) = &out.sketch_bytes {
        body.push_str(&format!(",\"sketch_hex\":\"{}\"", to_hex(bytes)));
    }
    body.push('}');
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shorthand_desugars_to_dag() {
        let req =
            parse_estimate_request(br#"{"op":"matmul","inputs":["A","B"],"client":"c1"}"#).unwrap();
        assert_eq!(req.client, "c1");
        assert_eq!(req.dag.nodes.len(), 3);
        assert_eq!(req.dag.root, 2);
        assert!(!req.include_sketch);
        assert!(matches!(
            &req.dag.nodes[2],
            NodeSpec::Op { op: OpKind::MatMul, inputs } if inputs == &[0, 1]
        ));
    }

    #[test]
    fn explicit_dag_with_reshape() {
        let req = parse_estimate_request(
            br#"{"dag":[{"leaf":"X"},{"op":"transpose","inputs":[0]},
                 {"op":"reshape","inputs":[1],"rows":6,"cols":4}],
                 "include_sketch":true}"#,
        )
        .unwrap();
        assert_eq!(req.client, "default");
        assert!(req.include_sketch);
        assert_eq!(req.dag.root, 2);
        assert!(matches!(
            &req.dag.nodes[2],
            NodeSpec::Op {
                op: OpKind::Reshape { rows: 6, cols: 4 },
                ..
            }
        ));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(parse_estimate_request(b"not json").is_err());
        assert!(parse_estimate_request(b"{}").is_err());
        assert!(parse_estimate_request(br#"{"op":"launder","inputs":["A"]}"#).is_err());
        assert!(parse_estimate_request(br#"{"op":"matmul","inputs":["A"]}"#).is_err());
        assert!(
            parse_estimate_request(br#"{"dag":[{"op":"matmul","inputs":[0,1]}]}"#).is_err(),
            "forward/self references must be rejected"
        );
        assert!(parse_estimate_request(br#"{"op":"reshape","inputs":["A"]}"#).is_err());
    }

    #[test]
    fn csr_body_roundtrip_and_validation() {
        let m = parse_csr_body(
            br#"{"nrows":2,"ncols":3,"row_ptr":[0,2,3],"col_idx":[0,2,1],
                 "values":[1.5,-2.0,3.0]}"#,
        )
        .unwrap();
        assert_eq!((m.nrows(), m.ncols(), m.nnz()), (2, 3, 3));

        // Pattern-only: values default to ones.
        let p = parse_csr_body(br#"{"nrows":1,"ncols":2,"row_ptr":[0,1],"col_idx":[1]}"#).unwrap();
        assert_eq!(p.values(), &[1.0]);

        // Invariant violations surface as 400s, not panics.
        assert!(parse_csr_body(br#"{"nrows":1,"ncols":2,"row_ptr":[0,2],"col_idx":[1]}"#).is_err());
        assert!(parse_csr_body(br#"{"nrows":1,"ncols":2,"row_ptr":[0,1],"col_idx":[5]}"#).is_err());
    }

    #[test]
    fn hex_roundtrip() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn estimate_json_is_full_precision() {
        let out = EstimateOutcome {
            sparsity: 0.123_456_789_012_345_68,
            nnz: 42,
            shape: (7, 9),
            sketch_bytes: None,
        };
        let body = estimate_json(&out);
        let v = mnc_obs::json::parse(&body).unwrap();
        let got = v.get("sparsity").and_then(|s| s.as_f64()).unwrap();
        assert_eq!(got.to_bits(), out.sparsity.to_bits());
    }
}
