//! The `/v1` request handler.
//!
//! [`EstimationService`] mounts three planes on one listener:
//!
//! * **data plane** — `PUT/GET/DELETE /v1/matrices...` maintaining the
//!   persistent [`SynopsisCatalog`];
//! * **compute plane** — `POST /v1/estimate`, admission-controlled by an
//!   [`AdmissionGate`] and executed against per-client
//!   [`SessionPool`](mnc_expr::SessionPool) sessions;
//! * **health plane** — the PR-5 telemetry endpoints (`/healthz`,
//!   `/metrics`, `/flight`, `/attribution`) served from the embedded
//!   [`ObsDaemon`]; every session created by the pool is wired into it.
//!
//! Locking discipline: the catalog and the session pool sit behind separate
//! mutexes, taken one at a time and never across the propagation work —
//! leaf synopses are resolved under the locks, the (expensive) walk runs
//! lock-free under its admission permit.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mnc_core::serialize::from_bytes;
use mnc_core::MncSketch;
use mnc_estimators::mnc::MncSynopsis;
use mnc_estimators::{MncEstimator, SparsityEstimator, Synopsis};
use mnc_expr::{SessionPool, SessionPoolConfig};
use mnc_kernels::WorkerPool;
use mnc_obs::RequestContext;
use mnc_obsd::{
    telemetry_response, Handler, ObsDaemon, ObsdConfig, Request, Response, SloConfig,
    TimelineConfig,
};

use crate::catalog::{validate_name, SynopsisCatalog};
use crate::error::ServiceError;
use crate::gate::AdmissionGate;
use crate::proto;
use crate::shadow::ShadowPlane;
use crate::sidecar::ShadowSidecar;
use crate::trace::{endpoint_of, TracePlane};
use crate::walk::{self, NodeSpec};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServedConfig {
    /// Directory holding the persistent synopsis catalog.
    pub catalog_dir: PathBuf,
    /// Concurrent compute slots.
    pub workers: usize,
    /// Worker-thread budget for each estimation walk (propagation
    /// wavefronts and per-session contexts); 1 keeps every walk
    /// sequential. Responses are byte-identical at any setting.
    pub threads: usize,
    /// Bounded wait queue beyond the compute slots.
    pub queue: usize,
    /// Per-client session policy.
    pub sessions: SessionPoolConfig,
    /// Flight-ring capacity of the embedded telemetry daemon.
    pub flight_capacity: usize,
    /// Request-scoped tracing plane on/off (trace IDs, RED metrics, tail
    /// capture). Estimates are bit-identical either way.
    pub tracing: bool,
    /// Requests slower than this are tail-captured into the flight recorder,
    /// the `/v1/debug/requests` ring, and the access log.
    pub slow_threshold: Duration,
    /// How many captured requests `/v1/debug/requests` retains.
    pub capture_capacity: usize,
    /// Optional JSONL access log receiving every tail-captured request.
    pub access_log: Option<PathBuf>,
    /// Fraction of `POST /v1/estimate` requests re-run through the
    /// alternate estimators on the shadow plane (0.0 disables the plane
    /// entirely). Primary responses are byte-identical at any rate.
    pub shadow_rate: f64,
    /// Retain raw CSR data inside shadow sidecars, letting the shadow plane
    /// compute exact ground truth for single-op estimates.
    pub retain_csr: bool,
    /// Test hook: hold each admitted estimate's compute slot for this long
    /// before working, making saturation deterministic to provoke.
    pub debug_estimate_delay: Option<Duration>,
    /// Test hook: apply `debug_estimate_delay` only while service uptime is
    /// under this window — the CI SLO e2e injects a degradation that then
    /// clears by itself, exercising hysteresis recovery.
    pub debug_delay_for: Option<Duration>,
    /// Timeline-plane frames retained per resolution; `0` disables the
    /// plane (and the SLO engine riding it).
    pub timeline_capacity: usize,
    /// Availability SLO target in `(0, 1)`; `0.0` disables the objective.
    pub slo_availability: f64,
    /// p99 latency SLO ceiling for `/v1/estimate` service time, in
    /// milliseconds; `0` disables the objective.
    pub slo_latency_ms: u64,
    /// SLO fast alert window, seconds.
    pub slo_fast_window_s: u64,
    /// SLO slow alert window, seconds.
    pub slo_slow_window_s: u64,
    /// Size-based access-log rotation threshold in bytes; `0` disables
    /// rotation (the log grows unbounded, pre-rotation behavior).
    pub access_log_max_bytes: u64,
    /// Rotated access-log files kept (`path.1` .. `path.N`).
    pub access_log_keep: usize,
}

impl ServedConfig {
    /// Defaults rooted at `catalog_dir`: 4 workers, queue of 8, tracing on
    /// with a 250 ms slow threshold.
    pub fn new(catalog_dir: impl Into<PathBuf>) -> Self {
        ServedConfig {
            catalog_dir: catalog_dir.into(),
            workers: 4,
            threads: 1,
            queue: 8,
            sessions: SessionPoolConfig::default(),
            flight_capacity: 1024,
            tracing: true,
            slow_threshold: Duration::from_millis(250),
            capture_capacity: 64,
            access_log: None,
            shadow_rate: 0.0,
            retain_csr: false,
            debug_estimate_delay: None,
            debug_delay_for: None,
            timeline_capacity: 360,
            slo_availability: 0.999,
            slo_latency_ms: 0,
            slo_fast_window_s: 60,
            slo_slow_window_s: 300,
            access_log_max_bytes: 0,
            access_log_keep: 3,
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    estimates: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
}

/// The versioned estimation service. Mount with
/// [`mnc_obsd::serve_with`].
pub struct EstimationService {
    catalog: Mutex<SynopsisCatalog>,
    pool: WorkerPool,
    sessions: Mutex<SessionPool>,
    gate: AdmissionGate,
    daemon: ObsDaemon,
    trace: TracePlane,
    shadow: ShadowPlane,
    retain_csr: bool,
    counters: Counters,
    started: Instant,
    delay: Option<Duration>,
    delay_for: Option<Duration>,
}

impl EstimationService {
    /// Opens the catalog and assembles the service.
    pub fn new(cfg: ServedConfig) -> Result<Arc<Self>, ServiceError> {
        let catalog = SynopsisCatalog::open(&cfg.catalog_dir)?;
        let daemon = ObsDaemon::new(ObsdConfig {
            flight_capacity: cfg.flight_capacity,
            timeline: TimelineConfig {
                enabled: cfg.timeline_capacity > 0,
                capacity: cfg.timeline_capacity.max(1),
                slo: SloConfig {
                    availability_target: cfg.slo_availability,
                    latency_p99_ms: cfg.slo_latency_ms,
                    fast_window_s: cfg.slo_fast_window_s.max(1),
                    slow_window_s: cfg.slo_slow_window_s.max(cfg.slo_fast_window_s).max(1),
                    ..SloConfig::default()
                },
                ..TimelineConfig::default()
            },
            ..ObsdConfig::default()
        });
        let trace = TracePlane::new(&cfg, &daemon)?;
        let shadow = ShadowPlane::new(&cfg, &daemon);
        let sessions = SessionPoolConfig {
            threads: cfg.threads,
            ..cfg.sessions
        };
        Ok(Arc::new(EstimationService {
            catalog: Mutex::new(catalog),
            pool: WorkerPool::new(cfg.threads),
            sessions: Mutex::new(SessionPool::new(sessions)),
            gate: AdmissionGate::new(cfg.workers, cfg.queue),
            daemon,
            trace,
            shadow,
            retain_csr: cfg.retain_csr,
            counters: Counters::default(),
            started: Instant::now(),
            delay: cfg.debug_estimate_delay,
            delay_for: cfg.debug_delay_for,
        }))
    }

    /// The embedded telemetry daemon (for panic hooks, external installs).
    pub fn daemon(&self) -> &ObsDaemon {
        &self.daemon
    }

    /// The request-scoped tracing plane (RED metrics, tail capture).
    pub fn trace_plane(&self) -> &TracePlane {
        &self.trace
    }

    /// The shadow estimation plane (alternate-estimator divergence).
    pub fn shadow_plane(&self) -> &ShadowPlane {
        &self.shadow
    }

    /// Sketches built from raw matrix data since the catalog was opened —
    /// the restart test's star witness: after a bounce it must stay 0.
    pub fn rebuilds(&self) -> u64 {
        self.catalog.lock().expect("catalog poisoned").rebuilds()
    }

    fn route(&self, req: &Request, ctx: &mut RequestContext) -> Result<Response, ServiceError> {
        // Health plane first: these paths predate /v1 and stay unversioned
        // so existing telemetry scrapers keep working.
        if req.method == "GET" {
            if let Some(resp) = telemetry_response(&self.daemon, req) {
                return Ok(resp);
            }
        }

        let rest = req.path.strip_prefix("/v1").ok_or(ServiceError::NotFound)?;
        match (req.method.as_str(), rest) {
            ("GET", "/status") => Ok(self.status()),
            ("GET", "/matrices") => Ok(self.list_matrices()),
            ("GET", "/debug/requests") => Ok(self.trace.debug_requests(req.query_param("format"))),
            ("GET", "/debug/shadow") => Ok(self.shadow.debug_shadow()),
            ("POST", "/estimate") => self.estimate(&req.body, ctx),
            (method, path) => {
                let name = path
                    .strip_prefix("/matrices/")
                    .ok_or(ServiceError::NotFound)?;
                if let Some(stem) = name.strip_suffix("/sketch") {
                    return match method {
                        "GET" => self.export_sketch(stem),
                        _ => Err(ServiceError::MethodNotAllowed),
                    };
                }
                match method {
                    "PUT" => self.put_matrix(name, req, ctx),
                    "GET" => self.get_matrix(name),
                    "DELETE" => self.delete_matrix(name),
                    _ => Err(ServiceError::MethodNotAllowed),
                }
            }
        }
    }

    fn status(&self) -> Response {
        let (n_matrices, rebuilds, quarantined, sidecars) = {
            let cat = self.catalog.lock().expect("catalog poisoned");
            (
                cat.len(),
                cat.rebuilds(),
                cat.quarantined().len(),
                cat.shadow_count(),
            )
        };
        let (active_sessions, pstats) = {
            let pool = self.sessions.lock().expect("sessions poisoned");
            (pool.len(), pool.stats())
        };
        let tl = self.daemon.timeline();
        let tstats = tl.stats();
        let body = format!(
            "{{\"uptime_secs\":{},\"uptime_s\":{},\"requests\":{},\"estimates\":{},\
             \"rejected\":{},\
             \"errors\":{},\"matrices\":{},\"rebuilds\":{},\"quarantined\":{},\
             \"workers\":{},\"threads\":{},\"queue\":{},\"active\":{},\
             \"sessions\":{{\"active\":{},\"created\":{},\"evicted_idle\":{},\
             \"evicted_lru\":{}}},\
             \"tracing\":{{\"enabled\":{},\"captured\":{},\"retry_after_secs\":{}}},\
             \"shadow\":{{\"enabled\":{},\"sampled\":{},\"completed\":{},\
             \"dropped\":{},\"queue_depth\":{},\"sidecars\":{}}},\
             \"timeline\":{{\"enabled\":{},\"capacity\":{},\"series\":{},\
             \"dropped_series\":{},\"samples\":{},\"contended_samples\":{},\
             \"frames\":{{\"1s\":{},\"10s\":{},\"60s\":{}}}}},\
             \"slo\":{}}}",
            self.started.elapsed().as_secs(),
            self.started.elapsed().as_secs(),
            self.counters.requests.load(Ordering::Relaxed),
            self.counters.estimates.load(Ordering::Relaxed),
            self.counters.rejected.load(Ordering::Relaxed),
            self.counters.errors.load(Ordering::Relaxed),
            n_matrices,
            rebuilds,
            quarantined,
            self.gate.workers(),
            self.pool.threads(),
            self.gate.queue(),
            self.gate.active(),
            active_sessions,
            pstats.created,
            pstats.evicted_idle,
            pstats.evicted_lru,
            self.trace.enabled(),
            self.trace.captured_total(),
            self.trace.retry_after_secs(),
            self.shadow.enabled(),
            self.shadow.sampled(),
            self.shadow.completed(),
            self.shadow.dropped(),
            self.shadow.queue_depth(),
            sidecars,
            tstats.enabled,
            tstats.capacity,
            tstats.series,
            tstats.dropped_series,
            tstats.samples,
            tstats.contended_samples,
            tstats.frames[0],
            tstats.frames[1],
            tstats.frames[2],
            tl.slo_json(),
        );
        Response::json(200, body)
    }

    fn list_matrices(&self) -> Response {
        let cat = self.catalog.lock().expect("catalog poisoned");
        let items: Vec<String> = cat
            .iter()
            .map(|(name, e)| proto::matrix_meta_json(name, &e.sketch, e.file_bytes))
            .collect();
        Response::json(
            200,
            format!(
                "{{\"matrices\":[{}],\"rebuilds\":{}}}",
                items.join(","),
                cat.rebuilds()
            ),
        )
    }

    fn put_matrix(
        &self,
        name: &str,
        req: &Request,
        ctx: &mut RequestContext,
    ) -> Result<Response, ServiceError> {
        validate_name(name)?;
        let is_binary = req
            .header("content-type")
            .is_some_and(|ct| ct.starts_with("application/octet-stream"));
        let (sketch, sidecar): (_, Option<ShadowSidecar>) = if is_binary {
            // Pre-built sketch: decode, never build. No raw data means no
            // shadow sidecar — the shadow plane skips these leaves.
            (Arc::new(from_bytes(&req.body)?), None)
        } else {
            // Raw CSR: building a sketch is compute — it goes through the
            // admission gate like any estimate.
            let t = ctx.enter("parse");
            let matrix = Arc::new(proto::parse_csr_body(&req.body)?);
            let t = ctx.transition(t, "admission");
            let permit = self.admit()?;
            ctx.set_queue_wait(permit.queue_wait_ns());
            let t = ctx.transition(t, "build");
            let est = MncEstimator::new();
            let syn = est.build(&matrix)?;
            ctx.exit(t);
            drop(permit);
            let Synopsis::Mnc(s) = syn else {
                return Err(ServiceError::Estimator(mnc_core::EstimatorError::Internal(
                    "MNC estimator built a foreign synopsis".into(),
                )));
            };
            // Alternate synopses are always built at ingest time —
            // whatever today's shadow rate, a later restart with shadowing
            // enabled must never rebuild them.
            let sidecar = ShadowSidecar::build(&matrix, self.retain_csr);
            (Arc::new(s.sketch), Some(sidecar))
        };
        let body = {
            let mut cat = self.catalog.lock().expect("catalog poisoned");
            let entry = match sidecar {
                Some(sc) => cat.put_with_shadow(name, sketch, sc)?,
                None => cat.put(name, sketch, false)?,
            };
            proto::matrix_meta_json(name, &entry.sketch, entry.file_bytes)
        };
        // The name may be re-bound to different data: drop every session so
        // no cached synopsis survives under the stale name.
        self.sessions.lock().expect("sessions poisoned").clear();
        Ok(Response::json(201, body))
    }

    fn get_matrix(&self, name: &str) -> Result<Response, ServiceError> {
        let cat = self.catalog.lock().expect("catalog poisoned");
        let entry = cat
            .get(name)
            .ok_or_else(|| ServiceError::UnknownMatrix(name.to_string()))?;
        Ok(Response::json(
            200,
            proto::matrix_meta_json(name, &entry.sketch, entry.file_bytes),
        ))
    }

    fn export_sketch(&self, name: &str) -> Result<Response, ServiceError> {
        let cat = self.catalog.lock().expect("catalog poisoned");
        let bytes = cat
            .bytes(name)
            .ok_or_else(|| ServiceError::UnknownMatrix(name.to_string()))?;
        Ok(Response {
            status: 200,
            content_type: "application/octet-stream",
            headers: Vec::new(),
            body: bytes,
        })
    }

    fn delete_matrix(&self, name: &str) -> Result<Response, ServiceError> {
        let removed = self
            .catalog
            .lock()
            .expect("catalog poisoned")
            .remove(name)?;
        if !removed {
            return Err(ServiceError::UnknownMatrix(name.to_string()));
        }
        self.sessions.lock().expect("sessions poisoned").clear();
        Ok(Response::text(204, ""))
    }

    fn estimate(&self, body: &[u8], ctx: &mut RequestContext) -> Result<Response, ServiceError> {
        // Stage boundaries use `transition`, not exit+enter pairs: the
        // stages are contiguous, so one clock read serves both sides.
        let t = ctx.enter("parse");
        let req = proto::parse_estimate_request(body)?;

        // Admission before any compute. The permit spans leaf resolution
        // and the walk.
        let mut t = ctx.transition(t, "admission");
        let permit = self.admit()?;
        ctx.set_queue_wait(permit.queue_wait_ns());
        if let Some(delay) = self.delay {
            // A delay window (debug_delay_for) makes the injected
            // degradation clear by itself — the SLO e2e's recovery half.
            if self.delay_for.is_none_or(|w| self.started.elapsed() < w) {
                t = ctx.transition(t, "debug_delay");
                std::thread::sleep(delay);
            }
        }

        // Fresh estimator per request: propagation consumes its RNG, and a
        // fresh sequence per walk makes answers independent of request
        // interleaving — and bit-identical to a cold in-process context.
        let est = MncEstimator::new();

        // Resolve catalog sketches (catalog lock only).
        let t = ctx.transition(t, "catalog");
        let mut raw: Vec<Option<Arc<MncSketch>>> = vec![None; req.dag.nodes.len()];
        {
            let cat = self.catalog.lock().expect("catalog poisoned");
            for (i, node) in req.dag.nodes.iter().enumerate() {
                if let NodeSpec::Leaf(name) = node {
                    raw[i] = Some(
                        cat.sketch(name)
                            .ok_or_else(|| ServiceError::UnknownMatrix(name.clone()))?,
                    );
                }
            }
        }
        // Wrap them as session-cached synopses (session lock only).
        let t = ctx.transition(t, "session");
        let daemon = self.daemon.clone();
        let mut leaves: Vec<Option<Arc<Synopsis>>> = vec![None; req.dag.nodes.len()];
        {
            let mut pool = self.sessions.lock().expect("sessions poisoned");
            let sctx =
                pool.session_init_at(&req.client, Instant::now(), |ctx| ctx.with_obsd(&daemon));
            for (i, node) in req.dag.nodes.iter().enumerate() {
                if let NodeSpec::Leaf(name) = node {
                    let sketch = raw[i].as_ref().expect("resolved above");
                    let syn = sctx.named_synopsis(&est, name, || {
                        Ok(Synopsis::Mnc(MncSynopsis {
                            sketch: (**sketch).clone(),
                        }))
                    })?;
                    leaves[i] = Some(syn);
                }
            }
        }
        // The walk itself runs without any service lock.
        let t = ctx.transition(t, "walk");
        let out =
            walk::estimate_dag_pooled(&est, &req.dag, &leaves, req.include_sketch, &self.pool)?;
        self.counters.estimates.fetch_add(1, Ordering::Relaxed);
        let t = ctx.transition(t, "serialize");
        let resp = Response::json(200, proto::estimate_json(&out));
        ctx.exit(t);
        // Shadow sampling happens strictly after the response body exists:
        // the decision is one atomic + hash (zero-alloc, see the plane
        // docs), and even a sampled request only clones inputs for the
        // background queue — the bytes above are already final.
        if self.shadow.should_sample() {
            self.shadow
                .submit(ctx.trace_hex(), &req.dag, out.sparsity, &raw, || {
                    let cat = self.catalog.lock().expect("catalog poisoned");
                    req.dag
                        .nodes
                        .iter()
                        .map(|n| match n {
                            NodeSpec::Leaf(name) => cat.shadow(name),
                            NodeSpec::Op { .. } => None,
                        })
                        .collect()
                });
        }
        Ok(resp)
    }

    fn admit(&self) -> Result<crate::gate::Permit<'_>, ServiceError> {
        self.gate
            .admit(self.trace.retry_after_secs())
            .inspect_err(|_| {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            })
    }
}

impl Handler for EstimationService {
    fn handle(&self, req: &Request) -> Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let mut ctx = self.trace.acquire(req.header("traceparent"));
        let endpoint = endpoint_of(&req.path);
        let mut resp = self.route(req, &mut ctx).unwrap_or_else(|e| {
            if e.status() >= 400 && e.status() != 429 {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
            }
            e.into_response()
        });
        self.trace
            .complete(&mut ctx, &req.method, endpoint, resp.status);
        if self.trace.enabled() {
            // Every response names its trace, whether client-supplied via
            // `traceparent` or freshly generated.
            resp = resp.with_header("x-mnc-trace-id", ctx.trace_hex().to_string());
        }
        self.trace.release(ctx);
        resp
    }

    fn tick(&self) {
        self.sessions.lock().expect("sessions poisoned").sweep();
        self.trace.tick(&self.gate);
        self.daemon.refresh();
    }
}
