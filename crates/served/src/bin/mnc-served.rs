//! `mnc-served` — the standalone estimation daemon.
//!
//! ```text
//! mnc-served --catalog <dir> [--addr 127.0.0.1:9419] [--workers 4]
//!            [--threads 1] [--queue 8] [--max-body 4194304] [--flight-capacity 1024]
//!            [--slow-threshold MS] [--access-log PATH] [--access-log-max-bytes N]
//!            [--access-log-keep N] [--no-tracing]
//!            [--shadow-rate FRACTION] [--retain-csr]
//!            [--timeline-capacity N] [--slo-availability TARGET]
//!            [--slo-latency-ms MS] [--slo-fast-window S] [--slo-slow-window S]
//! ```
//!
//! Serves the `/v1` estimation API plus the telemetry health plane on one
//! listener. The catalog directory persists ingested sketches across
//! restarts; a bounce re-serves them without rebuilding.

use std::process::ExitCode;

use mnc_served::{serve_with, EstimationService, ServeOptions, ServedConfig};

const USAGE: &str = "usage: mnc-served --catalog <dir> [--addr HOST:PORT] [--workers N] \
                     [--threads N] [--queue N] [--max-body BYTES] [--flight-capacity N] \
                     [--slow-threshold MS] [--access-log PATH] [--access-log-max-bytes N] \
                     [--access-log-keep N] [--no-tracing] \
                     [--shadow-rate FRACTION] [--retain-csr] \
                     [--timeline-capacity N] [--slo-availability TARGET] \
                     [--slo-latency-ms MS] [--slo-fast-window S] [--slo-slow-window S]";

struct Args {
    addr: String,
    max_body: usize,
    cfg: ServedConfig,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut catalog: Option<String> = None;
    let mut addr = "127.0.0.1:9419".to_string();
    let mut workers = 4usize;
    let mut threads = 1usize;
    let mut queue = 8usize;
    let mut max_body = 4 << 20;
    let mut flight_capacity = 1024usize;
    let mut slow_threshold_ms: Option<u64> = None;
    let mut access_log: Option<String> = None;
    let mut tracing = true;
    let mut shadow_rate = 0.0f64;
    let mut retain_csr = false;
    let mut timeline_capacity: Option<usize> = None;
    let mut slo_availability: Option<f64> = None;
    let mut slo_latency_ms: Option<u64> = None;
    let mut slo_fast_window_s: Option<u64> = None;
    let mut slo_slow_window_s: Option<u64> = None;
    let mut access_log_max_bytes: Option<u64> = None;
    let mut access_log_keep: Option<usize> = None;

    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--catalog" => catalog = Some(value("--catalog")?.clone()),
            "--addr" => addr = value("--addr")?.clone(),
            "--workers" => {
                workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers: not a number".to_string())?
            }
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads: not a number".to_string())?
            }
            "--queue" => {
                queue = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue: not a number".to_string())?
            }
            "--max-body" => {
                max_body = value("--max-body")?
                    .parse()
                    .map_err(|_| "--max-body: not a number".to_string())?
            }
            "--flight-capacity" => {
                flight_capacity = value("--flight-capacity")?
                    .parse()
                    .map_err(|_| "--flight-capacity: not a number".to_string())?
            }
            "--slow-threshold" => {
                slow_threshold_ms = Some(
                    value("--slow-threshold")?
                        .parse()
                        .map_err(|_| "--slow-threshold: not a number (milliseconds)".to_string())?,
                )
            }
            "--access-log" => access_log = Some(value("--access-log")?.clone()),
            "--no-tracing" => tracing = false,
            "--shadow-rate" => {
                shadow_rate = value("--shadow-rate")?
                    .parse()
                    .map_err(|_| "--shadow-rate: not a number".to_string())?;
                if !(0.0..=1.0).contains(&shadow_rate) {
                    return Err("--shadow-rate must be in [0, 1]".to_string());
                }
            }
            "--retain-csr" => retain_csr = true,
            "--timeline-capacity" => {
                timeline_capacity = Some(
                    value("--timeline-capacity")?
                        .parse()
                        .map_err(|_| "--timeline-capacity: not a number".to_string())?,
                )
            }
            "--slo-availability" => {
                let v: f64 = value("--slo-availability")?
                    .parse()
                    .map_err(|_| "--slo-availability: not a number".to_string())?;
                if !(0.0..1.0).contains(&v) {
                    return Err("--slo-availability must be in [0, 1) (0 disables)".to_string());
                }
                slo_availability = Some(v);
            }
            "--slo-latency-ms" => {
                slo_latency_ms = Some(
                    value("--slo-latency-ms")?
                        .parse()
                        .map_err(|_| "--slo-latency-ms: not a number (milliseconds)".to_string())?,
                )
            }
            "--slo-fast-window" => {
                slo_fast_window_s = Some(
                    value("--slo-fast-window")?
                        .parse()
                        .map_err(|_| "--slo-fast-window: not a number (seconds)".to_string())?,
                )
            }
            "--slo-slow-window" => {
                slo_slow_window_s = Some(
                    value("--slo-slow-window")?
                        .parse()
                        .map_err(|_| "--slo-slow-window: not a number (seconds)".to_string())?,
                )
            }
            "--access-log-max-bytes" => {
                access_log_max_bytes = Some(
                    value("--access-log-max-bytes")?
                        .parse()
                        .map_err(|_| "--access-log-max-bytes: not a number".to_string())?,
                )
            }
            "--access-log-keep" => {
                access_log_keep = Some(
                    value("--access-log-keep")?
                        .parse()
                        .map_err(|_| "--access-log-keep: not a number".to_string())?,
                )
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let catalog = catalog.ok_or_else(|| format!("--catalog is required\n{USAGE}"))?;
    let mut cfg = ServedConfig::new(catalog);
    cfg.workers = workers;
    cfg.threads = threads;
    cfg.queue = queue;
    cfg.flight_capacity = flight_capacity;
    cfg.tracing = tracing;
    if let Some(ms) = slow_threshold_ms {
        cfg.slow_threshold = std::time::Duration::from_millis(ms);
    }
    cfg.access_log = access_log.map(std::path::PathBuf::from);
    cfg.shadow_rate = shadow_rate;
    cfg.retain_csr = retain_csr;
    if let Some(n) = timeline_capacity {
        cfg.timeline_capacity = n;
    }
    if let Some(v) = slo_availability {
        cfg.slo_availability = v;
    }
    if let Some(ms) = slo_latency_ms {
        cfg.slo_latency_ms = ms;
    }
    if let Some(s) = slo_fast_window_s {
        cfg.slo_fast_window_s = s.max(1);
    }
    if let Some(s) = slo_slow_window_s {
        cfg.slo_slow_window_s = s.max(1);
    }
    if let Some(b) = access_log_max_bytes {
        cfg.access_log_max_bytes = b;
    }
    if let Some(k) = access_log_keep {
        cfg.access_log_keep = k.max(1);
    }
    // Test hook: hold each estimate inside its admission permit for a fixed
    // delay, so saturation tests can trigger 429 sheds deterministically
    // instead of racing microsecond-fast estimates.
    if let Some(ms) = std::env::var("MNC_SERVED_DEBUG_DELAY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        cfg.debug_estimate_delay = Some(std::time::Duration::from_millis(ms));
    }
    // Companion hook: the delay only applies while uptime is under this
    // window, so an injected degradation clears by itself (the SLO e2e's
    // hysteresis-recovery half).
    if let Some(s) = std::env::var("MNC_SERVED_DEBUG_DELAY_FOR_S")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        cfg.debug_delay_for = Some(std::time::Duration::from_secs(s));
    }
    Ok(Args {
        addr,
        max_body,
        cfg,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let catalog_dir = args.cfg.catalog_dir.clone();
    let service = match EstimationService::new(args.cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = match serve_with(
        service.clone(),
        args.addr.as_str(),
        ServeOptions {
            max_body_bytes: args.max_body,
        },
    ) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "mnc-served listening on http://{} (catalog {})",
        handle.local_addr(),
        catalog_dir.display()
    );
    // Serve until killed; the accept loop lives in background threads.
    loop {
        std::thread::park();
    }
}
