//! The request-scoped tracing plane.
//!
//! [`TracePlane`] owns everything per-request observability needs beyond the
//! process-wide recorders of PR 2/5:
//!
//! * a **context pool** of reusable [`RequestContext`]s — trace-ID parsing /
//!   generation and stage-span buffers with their storage retained across
//!   requests, so the steady-state path performs **zero allocations**
//!   (proven under `alloc-track` in `tests/trace_alloc.rs`);
//! * **RED metrics** — per-`(endpoint, method, status)` request counters and
//!   per-endpoint log₂ latency histograms split into `queue_wait_ns` vs
//!   `service_ns`, recorded into a dedicated [`Recorder`] registry that the
//!   embedded `ObsDaemon` aggregates onto `/metrics` (series labels ride in
//!   the registry name, `served.requests{endpoint=...,method=...,status=...}`,
//!   decoded by the Prometheus renderer). Handles live in lazily-initialized
//!   `OnceLock` grids: the first request to a series allocates its name, every
//!   later hit is one atomic;
//! * **tail-based capture** — requests slower than the configured threshold,
//!   or failing server-side (status ≥ 500), get their full stage tree pushed
//!   into the flight recorder, retained in a bounded ring served by
//!   `GET /v1/debug/requests` (JSONL, or Chrome trace with `?format=chrome`),
//!   and appended to the optional JSONL access log. Fast requests leave no
//!   trace beyond the metrics — that is the sampling policy;
//! * the **`Retry-After` feedback loop** — a once-a-tick refresh of the
//!   measured recent p99 service time, rounded up to whole seconds (min 1),
//!   handed to saturated clients instead of a constant.
//!
//! Bit-invariance: nothing here touches estimator state — the plane wraps
//! the request flow, so answers with tracing on equal answers with it off.

use std::collections::VecDeque;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use mnc_obs::export::{json_escape, span_json};
use mnc_obs::{Counter, Histogram, MetricSnapshot, Recorder, RequestContext, SpanRecord};
use mnc_obsd::{ObsDaemon, Response};

use crate::error::ServiceError;
use crate::service::ServedConfig;

/// Normalized endpoint labels: bounded cardinality no matter what clients
/// put on the wire (matrix names collapse into `{name}`).
const ENDPOINTS: [&str; 12] = [
    "/v1/estimate",
    "/v1/status",
    "/v1/matrices",
    "/v1/matrices/{name}",
    "/v1/matrices/{name}/sketch",
    "/v1/debug/requests",
    "/v1/debug/shadow",
    "/metrics",
    "/healthz",
    "/flight",
    "/attribution",
    "other",
];

const METHODS: [&str; 5] = ["GET", "PUT", "POST", "DELETE", "other"];

const STATUSES: [&str; 12] = [
    "200", "201", "204", "400", "404", "405", "409", "413", "429", "500", "503", "other",
];

/// Maps a request path to its `(grid index, endpoint label)`.
pub fn endpoint_of(path: &str) -> (usize, &'static str) {
    let idx = match path {
        "/v1/estimate" => 0,
        "/v1/status" => 1,
        "/v1/matrices" => 2,
        "/v1/debug/requests" => 5,
        "/v1/debug/shadow" => 6,
        "/metrics" => 7,
        "/healthz" => 8,
        "/flight" => 9,
        "/attribution" => 10,
        p => match p.strip_prefix("/v1/matrices/") {
            Some(rest) if !rest.is_empty() => {
                if rest.ends_with("/sketch") {
                    4
                } else {
                    3
                }
            }
            _ => 11,
        },
    };
    (idx, ENDPOINTS[idx])
}

fn method_index(method: &str) -> usize {
    METHODS
        .iter()
        .position(|m| *m == method)
        .unwrap_or(METHODS.len() - 1)
}

fn status_index(status: u16) -> usize {
    match status {
        200 => 0,
        201 => 1,
        204 => 2,
        400 => 3,
        404 => 4,
        405 => 5,
        409 => 6,
        413 => 7,
        429 => 8,
        500 => 9,
        503 => 10,
        _ => 11,
    }
}

/// The `Retry-After` rounding: p99 service nanoseconds to whole seconds,
/// rounded up, never below 1s (a 0 p99 — cold service — still hints 1s).
pub fn retry_after_from_p99(p99_ns: u64) -> u64 {
    p99_ns.div_ceil(1_000_000_000).max(1)
}

// ---------------------------------------------------------------------------
// RED metric grids
// ---------------------------------------------------------------------------

/// Lazily-registered metric handles, one slot per label combination. The
/// registry itself is behind a mutex, so the grids exist to keep the hot
/// path at one `OnceLock` load + one atomic instead of a name lookup under
/// a lock (and to keep it allocation-free after first use).
struct RedMetrics {
    /// `[endpoint][method][status]`, flattened.
    requests: Box<[OnceLock<Counter>]>,
    queue_wait: Box<[OnceLock<Histogram>]>,
    service: Box<[OnceLock<Histogram>]>,
}

impl RedMetrics {
    fn new() -> RedMetrics {
        let cells = ENDPOINTS.len() * METHODS.len() * STATUSES.len();
        RedMetrics {
            requests: (0..cells).map(|_| OnceLock::new()).collect(),
            queue_wait: (0..ENDPOINTS.len()).map(|_| OnceLock::new()).collect(),
            service: (0..ENDPOINTS.len()).map(|_| OnceLock::new()).collect(),
        }
    }

    fn request_counter(&self, rec: &Recorder, ei: usize, mi: usize, si: usize) -> &Counter {
        let slot = &self.requests[(ei * METHODS.len() + mi) * STATUSES.len() + si];
        slot.get_or_init(|| {
            rec.counter(&format!(
                "served.requests{{endpoint={},method={},status={}}}",
                ENDPOINTS[ei], METHODS[mi], STATUSES[si]
            ))
        })
    }

    fn queue_wait_histo(&self, rec: &Recorder, ei: usize) -> &Histogram {
        self.queue_wait[ei].get_or_init(|| {
            rec.histogram(&format!(
                "served.queue_wait_ns{{endpoint={}}}",
                ENDPOINTS[ei]
            ))
        })
    }

    fn service_histo(&self, rec: &Recorder, ei: usize) -> &Histogram {
        self.service[ei].get_or_init(|| {
            rec.histogram(&format!("served.service_ns{{endpoint={}}}", ENDPOINTS[ei]))
        })
    }
}

// ---------------------------------------------------------------------------
// Tail capture
// ---------------------------------------------------------------------------

/// One tail-sampled request: summary plus its full span tree (already
/// converted to [`SpanRecord`]s on the plane recorder's clock).
#[derive(Debug, Clone)]
pub struct CapturedRequest {
    /// 32-hex trace ID.
    pub trace_hex: String,
    /// Normalized endpoint label.
    pub endpoint: &'static str,
    /// Request method.
    pub method: String,
    /// Response status.
    pub status: u16,
    /// Why it was captured: `"slow"` or `"error"`.
    pub reason: &'static str,
    /// End-to-end duration.
    pub total_ns: u64,
    /// Admission-queue wait.
    pub queue_wait_ns: u64,
    /// `total_ns - queue_wait_ns`.
    pub service_ns: u64,
    /// The `request` root span plus one span per stage.
    pub spans: Vec<SpanRecord>,
}

impl CapturedRequest {
    /// One JSONL line: request summary with the span tree embedded (spans
    /// rendered by the workspace's canonical span serializer).
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self.spans.iter().map(span_json).collect();
        format!(
            "{{\"type\":\"request\",\"trace\":\"{}\",\"endpoint\":\"{}\",\
             \"method\":\"{}\",\"status\":{},\"reason\":\"{}\",\"total_ns\":{},\
             \"queue_wait_ns\":{},\"service_ns\":{},\"spans\":[{}]}}",
            json_escape(&self.trace_hex),
            json_escape(self.endpoint),
            json_escape(&self.method),
            self.status,
            self.reason,
            self.total_ns,
            self.queue_wait_ns,
            self.service_ns,
            spans.join(",")
        )
    }
}

// ---------------------------------------------------------------------------
// Rotating access log
// ---------------------------------------------------------------------------

/// A size-rotated JSONL sink: the live file at `path`, rotated generations
/// at `path.1` (newest) .. `path.keep` (oldest). Rotation happens strictly
/// *between* lines — a line is always written whole to exactly one file
/// before sizes are re-checked — so no rotation can ever split or lose a
/// partially-written line. `max_bytes = 0` disables rotation (the
/// pre-rotation unbounded behavior).
pub struct RotatingLog {
    path: std::path::PathBuf,
    max_bytes: u64,
    keep: usize,
    state: Mutex<RotatingState>,
}

struct RotatingState {
    file: std::fs::File,
    /// Bytes in the live file (seeded from its on-disk size, so an
    /// append-reopened log rotates on schedule).
    written: u64,
    rotations: u64,
}

impl RotatingLog {
    /// Opens (appending) the live file at `path`.
    pub fn open(
        path: impl Into<std::path::PathBuf>,
        max_bytes: u64,
        keep: usize,
    ) -> std::io::Result<RotatingLog> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(RotatingLog {
            path,
            max_bytes,
            keep: keep.max(1),
            state: Mutex::new(RotatingState {
                file,
                written,
                rotations: 0,
            }),
        })
    }

    /// Appends one line (newline added here), rotating first when the line
    /// would push a non-empty live file past `max_bytes`. A single line
    /// larger than the threshold still lands whole in its own fresh file.
    pub fn write_line(&self, line: &str) -> std::io::Result<()> {
        let mut st = self.state.lock().expect("access log poisoned");
        let incoming = line.len() as u64 + 1;
        if self.max_bytes > 0 && st.written > 0 && st.written + incoming > self.max_bytes {
            self.rotate(&mut st)?;
        }
        st.file.write_all(line.as_bytes())?;
        st.file.write_all(b"\n")?;
        st.file.flush()?;
        st.written += incoming;
        Ok(())
    }

    /// Shifts `path.k → path.k+1` (dropping the oldest), renames the live
    /// file to `path.1`, and reopens a fresh live file.
    fn rotate(&self, st: &mut RotatingState) -> std::io::Result<()> {
        st.file.flush()?;
        let gen = |k: usize| {
            let mut p = self.path.clone().into_os_string();
            p.push(format!(".{k}"));
            std::path::PathBuf::from(p)
        };
        let _ = std::fs::remove_file(gen(self.keep));
        for k in (1..self.keep).rev() {
            let from = gen(k);
            if from.exists() {
                let _ = std::fs::rename(&from, gen(k + 1));
            }
        }
        std::fs::rename(&self.path, gen(1))?;
        st.file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        st.written = 0;
        st.rotations += 1;
        Ok(())
    }

    /// Rotations performed since open.
    pub fn rotations(&self) -> u64 {
        self.state.lock().expect("access log poisoned").rotations
    }
}

// ---------------------------------------------------------------------------
// TracePlane
// ---------------------------------------------------------------------------

/// How many pooled contexts to retain (matches a plausible worker+queue
/// bound; extra concurrent requests fall back to a fresh context).
const POOL_CAP: usize = 64;
/// Per-request stage-span buffer bound.
const SPAN_CAP: usize = 64;

/// The service's request-observability plane. See the module docs.
pub struct TracePlane {
    enabled: bool,
    slow_threshold_ns: u64,
    recorder: Recorder,
    daemon: ObsDaemon,
    metrics: RedMetrics,
    pool: Mutex<Vec<RequestContext>>,
    captured: Mutex<VecDeque<CapturedRequest>>,
    capture_capacity: usize,
    access_log: Option<RotatingLog>,
    /// Span-ID allocator for captured trees (plane-level, distinct from any
    /// recorder's own IDs).
    span_ids: AtomicU64,
    /// Current `Retry-After` hint in seconds, refreshed on tick.
    retry_after: AtomicU64,
    /// Requests captured (tail-sampled) since start.
    captured_total: AtomicU64,
}

impl TracePlane {
    /// Assembles the plane per `cfg` and wires its metrics registry into
    /// `daemon` so the RED series ride the existing `/metrics` exposition.
    pub fn new(cfg: &ServedConfig, daemon: &ObsDaemon) -> Result<TracePlane, ServiceError> {
        let enabled = cfg.tracing;
        let recorder = if enabled {
            // Bounded storage: the plane only uses the registry, but a
            // bounded ring keeps any stray span usage O(1) forever.
            let rec = Recorder::enabled_with_capacity(cfg.flight_capacity.max(1));
            daemon.install(&rec);
            rec
        } else {
            Recorder::disabled()
        };
        let access_log = match (&cfg.access_log, enabled) {
            (Some(path), true) => Some(
                RotatingLog::open(path, cfg.access_log_max_bytes, cfg.access_log_keep).map_err(
                    |e| {
                        ServiceError::Degraded(format!(
                            "access log {}: {e}",
                            path.to_string_lossy()
                        ))
                    },
                )?,
            ),
            _ => None,
        };
        Ok(TracePlane {
            enabled,
            slow_threshold_ns: u64::try_from(cfg.slow_threshold.as_nanos()).unwrap_or(u64::MAX),
            recorder,
            daemon: daemon.clone(),
            metrics: RedMetrics::new(),
            pool: Mutex::new(Vec::with_capacity(POOL_CAP)),
            captured: Mutex::new(VecDeque::with_capacity(cfg.capture_capacity)),
            capture_capacity: cfg.capture_capacity.max(1),
            access_log,
            span_ids: AtomicU64::new(1),
            retry_after: AtomicU64::new(1),
            captured_total: AtomicU64::new(0),
        })
    }

    /// Whether request tracing is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The slow-capture threshold in nanoseconds.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns
    }

    /// Checks out a context for one request: pooled storage, fresh trace ID
    /// (or the one from a valid `traceparent` header). With tracing off the
    /// context comes back inert — every later call on it is a no-op branch.
    pub fn acquire(&self, traceparent: Option<&str>) -> RequestContext {
        let mut ctx = self
            .pool
            .lock()
            .expect("trace pool poisoned")
            .pop()
            .unwrap_or_else(|| RequestContext::new(SPAN_CAP));
        if self.enabled {
            ctx.reset(traceparent);
        } else {
            ctx.reset_disabled();
        }
        ctx
    }

    /// Returns a context to the pool (dropping it if the pool is full).
    pub fn release(&self, ctx: RequestContext) {
        let mut pool = self.pool.lock().expect("trace pool poisoned");
        if pool.len() < POOL_CAP {
            pool.push(ctx);
        }
    }

    /// Finishes the request: stamps the total, records RED metrics, and —
    /// when the request was slow or a server error — captures its span tree.
    /// Returns the total request nanoseconds.
    pub fn complete(
        &self,
        ctx: &mut RequestContext,
        method: &str,
        endpoint: (usize, &'static str),
        status: u16,
    ) -> u64 {
        let total_ns = ctx.finish();
        if !self.enabled {
            return total_ns;
        }
        let (ei, ep) = endpoint;
        let mi = method_index(method);
        let si = status_index(status);
        self.metrics
            .request_counter(&self.recorder, ei, mi, si)
            .incr();
        let queue_wait_ns = ctx.queue_wait_ns();
        let service_ns = total_ns.saturating_sub(queue_wait_ns);
        self.metrics
            .queue_wait_histo(&self.recorder, ei)
            .record(queue_wait_ns);
        self.metrics
            .service_histo(&self.recorder, ei)
            .record(service_ns);
        if status >= 500 || total_ns > self.slow_threshold_ns {
            self.capture(ctx, method, ep, status, total_ns, queue_wait_ns, service_ns);
        }
        total_ns
    }

    /// The tail path: allocation is fine here, it only runs for slow or
    /// failing requests.
    #[allow(clippy::too_many_arguments)]
    fn capture(
        &self,
        ctx: &RequestContext,
        method: &str,
        endpoint: &'static str,
        status: u16,
        total_ns: u64,
        queue_wait_ns: u64,
        service_ns: u64,
    ) {
        let n_spans = ctx.spans().len() as u64 + 1;
        let first_id = self.span_ids.fetch_add(n_spans, Ordering::Relaxed);
        // Land the tree on the plane recorder's clock so flight-dump
        // ordering interleaves correctly with session spans.
        let epoch_offset = self.recorder.elapsed_ns().saturating_sub(total_ns);
        let spans = ctx.to_span_records(first_id, epoch_offset, endpoint);
        for s in &spans {
            self.daemon.flight().record_span(s);
        }
        let cap = CapturedRequest {
            trace_hex: ctx.trace_hex().to_string(),
            endpoint,
            method: method.to_string(),
            status,
            reason: if status >= 500 { "error" } else { "slow" },
            total_ns,
            queue_wait_ns,
            service_ns,
            spans,
        };
        if let Some(log) = &self.access_log {
            let _ = log.write_line(&cap.to_json());
        }
        let mut ring = self.captured.lock().expect("capture ring poisoned");
        if ring.len() >= self.capture_capacity {
            ring.pop_front();
        }
        ring.push_back(cap);
        self.captured_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests captured since start.
    pub fn captured_total(&self) -> u64 {
        self.captured_total.load(Ordering::Relaxed)
    }

    /// The retained captured requests, oldest first.
    pub fn captured(&self) -> Vec<CapturedRequest> {
        self.captured
            .lock()
            .expect("capture ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// `GET /v1/debug/requests`: the captured ring as JSONL, or as a Chrome
    /// `trace_event` file with `?format=chrome` (open in Perfetto).
    pub fn debug_requests(&self, format: Option<&str>) -> Response {
        let caps = self.captured();
        match format {
            Some("chrome") => {
                let report = mnc_obs::Report {
                    spans: caps.into_iter().flat_map(|c| c.spans).collect(),
                    metrics: MetricSnapshot::default(),
                    accuracy: Vec::new(),
                };
                Response::json(200, report.to_chrome_trace())
            }
            _ => {
                let mut body = String::new();
                for c in &caps {
                    body.push_str(&c.to_json());
                    body.push('\n');
                }
                Response {
                    status: 200,
                    content_type: "application/jsonl; charset=utf-8",
                    headers: Vec::new(),
                    body: body.into_bytes(),
                }
            }
        }
    }

    /// The current `Retry-After` hint for shed requests, in seconds.
    pub fn retry_after_secs(&self) -> u64 {
        if self.enabled {
            self.retry_after.load(Ordering::Relaxed)
        } else {
            1
        }
    }

    /// Tick work (250 ms cadence): refreshes the queue-depth/active gauges
    /// from the admission gate and re-derives the `Retry-After` hint from
    /// the measured `/v1/estimate` p99 service time.
    pub fn tick(&self, gate: &crate::gate::AdmissionGate) {
        if !self.enabled {
            return;
        }
        self.recorder
            .gauge("served.queue_depth")
            .set(i64::try_from(gate.waiting()).unwrap_or(i64::MAX));
        self.recorder
            .gauge("served.active")
            .set(i64::try_from(gate.active()).unwrap_or(i64::MAX));
        let p99 = self
            .metrics
            .service_histo(&self.recorder, 0) // endpoint 0 = /v1/estimate
            .snapshot()
            .quantile(0.99);
        self.retry_after
            .store(retry_after_from_p99(p99), Ordering::Relaxed);
    }

    /// Snapshot of the plane's own metric registry (RED series, gauges) —
    /// the bench harness reads queue-wait/service quantiles from here.
    pub fn metrics_snapshot(&self) -> Option<MetricSnapshot> {
        self.recorder.registry().map(|r| r.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_normalization_bounds_cardinality() {
        assert_eq!(endpoint_of("/v1/estimate"), (0, "/v1/estimate"));
        assert_eq!(endpoint_of("/v1/status"), (1, "/v1/status"));
        assert_eq!(endpoint_of("/v1/matrices"), (2, "/v1/matrices"));
        assert_eq!(endpoint_of("/v1/matrices/A"), (3, "/v1/matrices/{name}"));
        assert_eq!(
            endpoint_of("/v1/matrices/A/sketch"),
            (4, "/v1/matrices/{name}/sketch")
        );
        assert_eq!(endpoint_of("/v1/debug/requests"), (5, "/v1/debug/requests"));
        assert_eq!(endpoint_of("/v1/debug/shadow"), (6, "/v1/debug/shadow"));
        assert_eq!(endpoint_of("/metrics"), (7, "/metrics"));
        assert_eq!(endpoint_of("/healthz"), (8, "/healthz"));
        assert_eq!(endpoint_of("/nope"), (11, "other"));
        assert_eq!(endpoint_of("/v1/matrices/"), (11, "other"));
        assert_eq!(endpoint_of("/v1/unknown"), (11, "other"));
    }

    #[test]
    fn retry_after_rounding_is_pinned() {
        // The satellite contract: measured p99 rounded *up* to whole
        // seconds, floored at 1s.
        assert_eq!(retry_after_from_p99(0), 1);
        assert_eq!(retry_after_from_p99(1), 1);
        assert_eq!(retry_after_from_p99(999_999_999), 1);
        assert_eq!(retry_after_from_p99(1_000_000_000), 1);
        assert_eq!(retry_after_from_p99(1_000_000_001), 2);
        assert_eq!(retry_after_from_p99(2_500_000_000), 3);
        assert_eq!(retry_after_from_p99(u64::MAX), u64::MAX / 1_000_000_000 + 1);
    }

    #[test]
    fn method_and_status_fall_back_to_other() {
        assert_eq!(method_index("GET"), 0);
        assert_eq!(method_index("POST"), 2);
        assert_eq!(method_index("PATCH"), METHODS.len() - 1);
        assert_eq!(status_index(200), 0);
        assert_eq!(status_index(503), 10);
        assert_eq!(status_index(418), 11);
    }

    #[test]
    fn rotation_never_loses_or_splits_a_line() {
        let dir = std::env::temp_dir().join(format!("mnc-rotlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.jsonl");
        // ~3 lines of 40 bytes per 128-byte generation; keep enough
        // generations that nothing ages out during the test.
        let log = RotatingLog::open(&path, 128, 50).unwrap();
        let n = 100usize;
        for i in 0..n {
            log.write_line(&format!("{{\"seq\":{i},\"pad\":\"0123456789abcdef\"}}"))
                .unwrap();
        }
        assert!(log.rotations() > 10, "rotation never kicked in");

        // Collect every retained line: live file + all generations.
        let mut lines = Vec::new();
        let mut read = |p: &std::path::Path| {
            if let Ok(body) = std::fs::read_to_string(p) {
                assert!(
                    body.is_empty() || body.ends_with('\n'),
                    "partial trailing line in {p:?}: {body:?}"
                );
                lines.extend(body.lines().map(str::to_string));
            }
        };
        read(&path);
        for k in 1..=50 {
            read(&dir.join(format!("access.jsonl.{k}")));
        }
        // Every written line survives, whole: parseable with its sequence
        // number, each exactly once.
        assert_eq!(lines.len(), n, "lines lost or duplicated by rotation");
        let mut seqs: Vec<u64> = lines
            .iter()
            .map(|l| {
                let v = mnc_obs::json::parse(l).unwrap_or_else(|e| panic!("split line {l:?}: {e}"));
                v.get("seq").and_then(|s| s.as_f64()).unwrap() as u64
            })
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..n as u64).collect::<Vec<_>>());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_drops_only_the_oldest_generation() {
        let dir = std::env::temp_dir().join(format!("mnc-rotlog-keep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.jsonl");
        let log = RotatingLog::open(&path, 16, 2).unwrap();
        for i in 0..10 {
            log.write_line(&format!("{{\"i\":{i}}}")).unwrap();
        }
        // keep=2: exactly the live file plus two generations exist.
        assert!(path.exists());
        assert!(dir.join("a.jsonl.1").exists());
        assert!(dir.join("a.jsonl.2").exists());
        assert!(!dir.join("a.jsonl.3").exists());
        // Newest generation holds strictly newer lines than the older one.
        let g1 = std::fs::read_to_string(dir.join("a.jsonl.1")).unwrap();
        let g2 = std::fs::read_to_string(dir.join("a.jsonl.2")).unwrap();
        let last = |s: &str| {
            s.lines()
                .last()
                .and_then(|l| mnc_obs::json::parse(l).ok())
                .and_then(|v| v.get("i").and_then(|i| i.as_f64()))
                .unwrap() as u64
        };
        assert!(last(&g1) > last(&g2), "generation order inverted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unbounded_log_never_rotates() {
        let dir = std::env::temp_dir().join(format!("mnc-rotlog-unb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("u.jsonl");
        let log = RotatingLog::open(&path, 0, 3).unwrap();
        for i in 0..50 {
            log.write_line(&format!("{{\"i\":{i}}}")).unwrap();
        }
        assert_eq!(log.rotations(), 0);
        assert!(!dir.join("u.jsonl.1").exists());
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 50);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn captured_request_json_embeds_spans() {
        let mut ctx = RequestContext::new(8);
        ctx.reset(None);
        let t = ctx.enter("walk");
        ctx.exit(t);
        let total = ctx.finish();
        let spans = ctx.to_span_records(1, 0, "/v1/estimate");
        let cap = CapturedRequest {
            trace_hex: ctx.trace_hex().to_string(),
            endpoint: "/v1/estimate",
            method: "POST".into(),
            status: 200,
            reason: "slow",
            total_ns: total,
            queue_wait_ns: 0,
            service_ns: total,
            spans,
        };
        let line = cap.to_json();
        let v = mnc_obs::json::parse(&line).expect("valid json");
        assert_eq!(v.get("type").and_then(|t| t.as_str()), Some("request"));
        assert_eq!(
            v.get("trace").and_then(|t| t.as_str()),
            Some(ctx.trace_hex())
        );
        let mnc_obs::json::JsonValue::Array(spans) = v.get("spans").unwrap() else {
            panic!("spans must be an array");
        };
        assert_eq!(spans.len(), 2, "root + one stage");
        assert_eq!(
            spans[0].get("name").and_then(|n| n.as_str()),
            Some("request")
        );
    }
}
