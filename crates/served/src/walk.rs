//! The service-side estimation walk.
//!
//! `POST /v1/estimate` carries a small expression DAG over *named* catalog
//! matrices. This module evaluates it exactly the way the in-process
//! library does — [`mnc_expr::EstimationContext::estimate_root`] — so a
//! client talking HTTP gets **bit-identical** numbers to one linking the
//! crates directly:
//!
//! * leaves resolve to catalog synopses (built once by deterministic
//!   [`MncSketch::build`](mnc_core::MncSketch::build), so loading equals
//!   building);
//! * intermediates are propagated depth-first, inputs in order, memoized
//!   per walk — the exact order the context's `materialize` uses, which
//!   matters because MNC propagation consumes the estimator's internal
//!   RNG sequence;
//! * the root is *estimated* directly from its input synopses, never
//!   propagated — unless the caller also asked for the root sketch, in
//!   which case the extra propagate happens strictly **after** the
//!   estimate so the reported sparsity is unchanged.
//!
//! Each request runs against a fresh estimator, which pins the RNG
//! sequence to the walk and makes responses independent of request
//! ordering under concurrency.

use std::sync::Arc;

use mnc_core::serialize::to_bytes;
use mnc_core::OpKind;
use mnc_estimators::{SparsityEstimator, Synopsis};
use mnc_kernels::WorkerPool;

use crate::error::ServiceError;

/// Cap on nodes per request DAG — keeps recursion and per-request work
/// bounded (requests beyond it are `413`, not truncated).
pub const MAX_DAG_NODES: usize = 256;

/// One node of a request DAG. Operation inputs refer to *earlier* node
/// indices, so a well-formed spec is topologically ordered by construction.
#[derive(Debug, Clone)]
pub enum NodeSpec {
    /// A named catalog matrix.
    Leaf(String),
    /// An operation over earlier nodes.
    Op {
        /// The operation.
        op: OpKind,
        /// Indices of input nodes (each `<` this node's own index).
        inputs: Vec<usize>,
    },
}

/// A validated request DAG.
#[derive(Debug, Clone)]
pub struct DagSpec {
    /// Topologically ordered nodes.
    pub nodes: Vec<NodeSpec>,
    /// Index of the node whose sparsity is requested.
    pub root: usize,
}

impl DagSpec {
    /// Structural validation: non-empty, bounded, indices in order, arity
    /// correct. Shape errors surface later from the estimator itself.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.nodes.is_empty() {
            return Err(ServiceError::BadRequest("empty dag".into()));
        }
        if self.nodes.len() > MAX_DAG_NODES {
            return Err(ServiceError::TooLarge(format!(
                "dag has {} nodes; the limit is {MAX_DAG_NODES}",
                self.nodes.len()
            )));
        }
        if self.root >= self.nodes.len() {
            return Err(ServiceError::BadRequest(format!(
                "root {} out of bounds ({} nodes)",
                self.root,
                self.nodes.len()
            )));
        }
        for (idx, node) in self.nodes.iter().enumerate() {
            if let NodeSpec::Op { op, inputs } = node {
                if inputs.len() != op.arity() {
                    return Err(mnc_core::EstimatorError::arity(op, inputs.len()).into());
                }
                for &i in inputs {
                    if i >= idx {
                        return Err(ServiceError::BadRequest(format!(
                            "node {idx} references node {i}; inputs must point at \
                             earlier nodes"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// The distinct leaf names, in first-reference order.
    pub fn leaf_names(&self) -> Vec<&str> {
        let mut names = Vec::new();
        for node in &self.nodes {
            if let NodeSpec::Leaf(name) = node {
                if !names.contains(&name.as_str()) {
                    names.push(name.as_str());
                }
            }
        }
        names
    }
}

/// Result of one estimation walk.
#[derive(Debug, Clone)]
pub struct EstimateOutcome {
    /// Estimated sparsity of the root in `[0, 1]`.
    pub sparsity: f64,
    /// Implied non-zero count `round(sparsity * rows * cols)`.
    pub nnz: u64,
    /// Output shape of the root.
    pub shape: (usize, usize),
    /// Serialized root sketch (MNCS bytes), when requested.
    pub sketch_bytes: Option<Vec<u8>>,
}

/// Runs the walk. `leaves[i]` must hold the synopsis for every
/// [`NodeSpec::Leaf`] at index `i` (the service resolves them from the
/// per-client session before calling, so propagation runs lock-free).
pub fn estimate_dag<E: SparsityEstimator + ?Sized>(
    est: &E,
    dag: &DagSpec,
    leaves: &[Option<Arc<Synopsis>>],
    want_sketch: bool,
) -> Result<EstimateOutcome, ServiceError> {
    estimate_dag_pooled(est, dag, leaves, want_sketch, &WorkerPool::new(1))
}

/// [`estimate_dag`] with a worker-pool budget: when the pool is parallel
/// *and* the estimator declares order-invariance with a [`Sync`] view
/// ([`SparsityEstimator::order_invariant`] /
/// [`SparsityEstimator::as_sync`]), reachable intermediates are propagated
/// in topological wavefronts before the sequential tail runs. Every other
/// estimator — including the service's default probabilistic MNC, whose
/// RNG stream makes propagation order-sensitive — keeps the exact
/// depth-first schedule, so responses are byte-identical under any
/// `threads` setting.
pub fn estimate_dag_pooled<E: SparsityEstimator + ?Sized>(
    est: &E,
    dag: &DagSpec,
    leaves: &[Option<Arc<Synopsis>>],
    want_sketch: bool,
    pool: &WorkerPool,
) -> Result<EstimateOutcome, ServiceError> {
    debug_assert_eq!(leaves.len(), dag.nodes.len());
    let mut memo: Vec<Option<Arc<Synopsis>>> = vec![None; dag.nodes.len()];
    if pool.is_parallel() && est.order_invariant() {
        if let Some(sync_est) = est.as_sync() {
            let mut roots: Vec<usize> = match &dag.nodes[dag.root] {
                NodeSpec::Leaf(_) => vec![dag.root],
                NodeSpec::Op { inputs, .. } => inputs.clone(),
            };
            if want_sketch {
                // Pure estimators are indifferent to propagating the root
                // before or after the estimate, so fold it into the
                // wavefront instead of paying a sequential tail propagate.
                roots.push(dag.root);
            }
            prefill_wavefront(sync_est, dag, leaves, &roots, &mut memo, pool)?;
        }
    }

    let (sparsity, shape) = match &dag.nodes[dag.root] {
        // A leaf root answers its own (exact) sparsity — the estimate_root
        // contract.
        NodeSpec::Leaf(_) => {
            let syn = materialize(est, dag, leaves, dag.root, &mut memo)?;
            (syn.sparsity(), syn.shape())
        }
        NodeSpec::Op { op, inputs } => {
            for &i in inputs {
                materialize(est, dag, leaves, i, &mut memo)?;
            }
            let ins: Vec<&Synopsis> = inputs
                .iter()
                .map(|&i| &**memo[i].as_ref().expect("just materialized"))
                .collect();
            let shapes: Vec<(usize, usize)> = ins.iter().map(|s| s.shape()).collect();
            let shape = op.output_shape(&shapes)?;
            let sparsity = est.estimate(op, &ins)?;
            (sparsity, shape)
        }
    };
    let nnz = (sparsity * shape.0 as f64 * shape.1 as f64).round() as u64;

    // The optional root sketch is propagated only after the estimate so the
    // extra RNG consumption cannot perturb the reported sparsity.
    let sketch_bytes = if want_sketch {
        let syn = materialize(est, dag, leaves, dag.root, &mut memo)?;
        match &*syn {
            Synopsis::Mnc(s) => Some(to_bytes(&s.sketch)),
            _ => {
                return Err(ServiceError::BadRequest(
                    "sketch output is only available from the MNC estimator".into(),
                ))
            }
        }
    } else {
        None
    };

    Ok(EstimateOutcome {
        sparsity,
        nnz,
        shape,
        sketch_bytes,
    })
}

/// Wavefront prefill for order-invariant estimators: resolves reachable
/// leaves, then propagates scheduled ops level by level on pool workers,
/// merging results into `memo` in ascending node order. Request DAGs are
/// validated to reference only earlier indices, so ascending index *is*
/// topological order.
fn prefill_wavefront(
    est: &(dyn SparsityEstimator + Sync),
    dag: &DagSpec,
    leaves: &[Option<Arc<Synopsis>>],
    roots: &[usize],
    memo: &mut [Option<Arc<Synopsis>>],
    pool: &WorkerPool,
) -> Result<(), ServiceError> {
    let mut scheduled: Vec<usize> = Vec::new();
    let mut seen = vec![false; dag.nodes.len()];
    let mut stack: Vec<usize> = roots.iter().rev().copied().collect();
    while let Some(i) = stack.pop() {
        if memo[i].is_some() || seen[i] {
            continue;
        }
        seen[i] = true;
        match &dag.nodes[i] {
            NodeSpec::Leaf(name) => {
                let syn = leaves[i]
                    .as_ref()
                    .map(Arc::clone)
                    .ok_or_else(|| ServiceError::UnknownMatrix(name.clone()))?;
                memo[i] = Some(syn);
            }
            NodeSpec::Op { inputs, .. } => {
                scheduled.push(i);
                stack.extend(inputs.iter().rev());
            }
        }
    }
    if scheduled.is_empty() {
        return Ok(());
    }
    scheduled.sort_unstable();

    // A node's level is one past its deepest scheduled input; leaves and
    // already-memoized nodes are data, not work.
    let mut level = vec![0usize; dag.nodes.len()];
    let mut in_sched = vec![false; dag.nodes.len()];
    let mut max_level = 0usize;
    for &i in &scheduled {
        if let NodeSpec::Op { inputs, .. } = &dag.nodes[i] {
            let l = inputs
                .iter()
                .map(|&j| if in_sched[j] { level[j] + 1 } else { 0 })
                .max()
                .unwrap_or(0);
            level[i] = l;
            in_sched[i] = true;
            max_level = max_level.max(l);
        }
    }

    for l in 0..=max_level {
        let batch: Vec<usize> = scheduled
            .iter()
            .copied()
            .filter(|&i| level[i] == l)
            .collect();
        let memo_ref: &[Option<Arc<Synopsis>>] = memo;
        let results = pool.run(batch.len(), |k| {
            let NodeSpec::Op { op, inputs } = &dag.nodes[batch[k]] else {
                unreachable!("only ops are scheduled");
            };
            let ins: Vec<&Synopsis> = inputs
                .iter()
                .map(|&j| &**memo_ref[j].as_ref().expect("lower wavefront level"))
                .collect();
            est.propagate(op, &ins)
        });
        for (k, res) in results.into_iter().enumerate() {
            memo[batch[k]] = Some(Arc::new(res?));
        }
    }
    Ok(())
}

/// Depth-first, memoized materialization — the same order
/// `EstimationContext::materialize` walks, which keeps the estimator's RNG
/// consumption identical to the in-process path.
fn materialize<E: SparsityEstimator + ?Sized>(
    est: &E,
    dag: &DagSpec,
    leaves: &[Option<Arc<Synopsis>>],
    idx: usize,
    memo: &mut Vec<Option<Arc<Synopsis>>>,
) -> Result<Arc<Synopsis>, ServiceError> {
    if let Some(syn) = &memo[idx] {
        return Ok(Arc::clone(syn));
    }
    let syn = match &dag.nodes[idx] {
        NodeSpec::Leaf(name) => leaves[idx]
            .as_ref()
            .map(Arc::clone)
            .ok_or_else(|| ServiceError::UnknownMatrix(name.clone()))?,
        NodeSpec::Op { op, inputs } => {
            for &i in inputs {
                materialize(est, dag, leaves, i, memo)?;
            }
            let ins: Vec<&Synopsis> = inputs
                .iter()
                .map(|&i| &**memo[i].as_ref().expect("just materialized"))
                .collect();
            Arc::new(est.propagate(op, &ins)?)
        }
    };
    memo[idx] = Some(Arc::clone(&syn));
    Ok(syn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_estimators::MncEstimator;
    use mnc_expr::ExprDag;
    use mnc_matrix::gen;
    use rand::SeedableRng;

    fn leaf(name: &str) -> NodeSpec {
        NodeSpec::Leaf(name.to_string())
    }

    fn op(kind: OpKind, inputs: &[usize]) -> NodeSpec {
        NodeSpec::Op {
            op: kind,
            inputs: inputs.to_vec(),
        }
    }

    #[test]
    fn validation_rejects_malformed_specs() {
        let empty = DagSpec {
            nodes: vec![],
            root: 0,
        };
        assert!(matches!(empty.validate(), Err(ServiceError::BadRequest(_))));

        let fwd = DagSpec {
            nodes: vec![op(OpKind::MatMul, &[0, 1]), leaf("A")],
            root: 0,
        };
        assert!(fwd.validate().is_err(), "forward reference must fail");

        let arity = DagSpec {
            nodes: vec![leaf("A"), op(OpKind::MatMul, &[0])],
            root: 1,
        };
        assert!(matches!(
            arity.validate(),
            Err(ServiceError::Estimator(
                mnc_core::EstimatorError::ArityMismatch { .. }
            ))
        ));

        let big = DagSpec {
            nodes: (0..=MAX_DAG_NODES).map(|_| leaf("A")).collect(),
            root: 0,
        };
        assert!(matches!(big.validate(), Err(ServiceError::TooLarge(_))));
    }

    /// The whole point of the module: the service walk answers exactly what
    /// the in-process `EstimationContext` answers, bit for bit.
    #[test]
    fn walk_is_bit_identical_to_estimation_context() {
        let mut r = rand::rngs::StdRng::seed_from_u64(42);
        let a = Arc::new(gen::rand_uniform(&mut r, 50, 40, 0.08));
        let b = Arc::new(gen::rand_uniform(&mut r, 40, 60, 0.12));
        let c = Arc::new(gen::rand_uniform(&mut r, 60, 30, 0.1));

        // In-process path: an ExprDag through a cold context.
        let mut lib_dag = ExprDag::new();
        let la = lib_dag.leaf("A", Arc::clone(&a));
        let lb = lib_dag.leaf("B", Arc::clone(&b));
        let lc = lib_dag.leaf("C", Arc::clone(&c));
        let ab = lib_dag.matmul(la, lb).unwrap();
        let root = lib_dag.matmul(ab, lc).unwrap();
        let expected = mnc_expr::EstimationContext::new()
            .estimate_root(&MncEstimator::new(), &lib_dag, root)
            .unwrap();

        // Service path: catalog sketches + the request walk.
        let est = MncEstimator::new();
        let syn = |m| Arc::new(est.build(m).unwrap());
        let dag = DagSpec {
            nodes: vec![
                leaf("A"),
                leaf("B"),
                leaf("C"),
                op(OpKind::MatMul, &[0, 1]),
                op(OpKind::MatMul, &[3, 2]),
            ],
            root: 4,
        };
        dag.validate().unwrap();
        let leaves = vec![Some(syn(&a)), Some(syn(&b)), Some(syn(&c)), None, None];
        let got = estimate_dag(&MncEstimator::new(), &dag, &leaves, false).unwrap();

        assert_eq!(got.sparsity.to_bits(), expected.to_bits());
        assert_eq!(got.shape, (50, 30));
    }

    #[test]
    fn shared_nodes_propagate_once() {
        // (A B) + (A B): the product must be propagated once, like the
        // context memo does — double propagation would double-advance the
        // RNG and diverge from the library answer.
        let mut r = rand::rngs::StdRng::seed_from_u64(7);
        let a = Arc::new(gen::rand_uniform(&mut r, 30, 30, 0.1));
        let b = Arc::new(gen::rand_uniform(&mut r, 30, 30, 0.1));

        let mut lib_dag = ExprDag::new();
        let la = lib_dag.leaf("A", Arc::clone(&a));
        let lb = lib_dag.leaf("B", Arc::clone(&b));
        let ab = lib_dag.matmul(la, lb).unwrap();
        let root = lib_dag.op(OpKind::EwAdd, &[ab, ab]).unwrap();
        let expected = mnc_expr::EstimationContext::new()
            .estimate_root(&MncEstimator::new(), &lib_dag, root)
            .unwrap();

        let est = MncEstimator::new();
        let dag = DagSpec {
            nodes: vec![
                leaf("A"),
                leaf("B"),
                op(OpKind::MatMul, &[0, 1]),
                op(OpKind::EwAdd, &[2, 2]),
            ],
            root: 3,
        };
        let leaves = vec![
            Some(Arc::new(est.build(&a).unwrap())),
            Some(Arc::new(est.build(&b).unwrap())),
            None,
            None,
        ];
        let got = estimate_dag(&MncEstimator::new(), &dag, &leaves, false).unwrap();
        assert_eq!(got.sparsity.to_bits(), expected.to_bits());
    }

    #[test]
    fn sketch_request_does_not_perturb_the_estimate() {
        let mut r = rand::rngs::StdRng::seed_from_u64(9);
        let a = Arc::new(gen::rand_uniform(&mut r, 25, 35, 0.15));
        let b = Arc::new(gen::rand_uniform(&mut r, 35, 20, 0.15));
        let est = MncEstimator::new();
        let dag = DagSpec {
            nodes: vec![leaf("A"), leaf("B"), op(OpKind::MatMul, &[0, 1])],
            root: 2,
        };
        let leaves = vec![
            Some(Arc::new(est.build(&a).unwrap())),
            Some(Arc::new(est.build(&b).unwrap())),
            None,
        ];
        let plain = estimate_dag(&MncEstimator::new(), &dag, &leaves, false).unwrap();
        let with_sketch = estimate_dag(&MncEstimator::new(), &dag, &leaves, true).unwrap();
        assert_eq!(plain.sparsity.to_bits(), with_sketch.sparsity.to_bits());
        let bytes = with_sketch.sketch_bytes.unwrap();
        let sk = mnc_core::from_bytes(&bytes).unwrap();
        assert_eq!((sk.nrows, sk.ncols), plain.shape);
    }

    #[test]
    fn pooled_walk_is_byte_identical_across_thread_counts() {
        let mut r = rand::rngs::StdRng::seed_from_u64(13);
        let a = Arc::new(gen::rand_uniform(&mut r, 40, 30, 0.1));
        let b = Arc::new(gen::rand_uniform(&mut r, 30, 40, 0.1));
        let c = Arc::new(gen::rand_uniform(&mut r, 40, 30, 0.12));
        let d = Arc::new(gen::rand_uniform(&mut r, 30, 40, 0.12));
        // Two independent matmul branches: a real level-1 wavefront.
        let dag = DagSpec {
            nodes: vec![
                leaf("A"),
                leaf("B"),
                leaf("C"),
                leaf("D"),
                op(OpKind::MatMul, &[0, 1]),
                op(OpKind::MatMul, &[2, 3]),
                op(OpKind::EwAdd, &[4, 5]),
            ],
            root: 6,
        };
        dag.validate().unwrap();

        let det = || {
            MncEstimator::with_config(
                "MNC",
                mnc_core::MncConfig {
                    probabilistic_rounding: false,
                    ..mnc_core::MncConfig::default()
                },
            )
        };
        let est = det();
        let leaves: Vec<Option<Arc<Synopsis>>> = [&a, &b, &c, &d]
            .iter()
            .map(|m| Some(Arc::new(est.build(m).unwrap())))
            .chain([None, None, None])
            .collect();

        for want_sketch in [false, true] {
            let seq = estimate_dag(&det(), &dag, &leaves, want_sketch).unwrap();
            for threads in [2, 8] {
                let par = estimate_dag_pooled(
                    &det(),
                    &dag,
                    &leaves,
                    want_sketch,
                    &WorkerPool::new(threads),
                )
                .unwrap();
                assert_eq!(seq.sparsity.to_bits(), par.sparsity.to_bits());
                assert_eq!(seq.nnz, par.nnz);
                assert_eq!(seq.sketch_bytes, par.sketch_bytes, "threads={threads}");
            }
        }

        // The default probabilistic estimator stays on the sequential
        // schedule, so a parallel pool changes nothing.
        let seq = estimate_dag(&MncEstimator::new(), &dag, &leaves, true).unwrap();
        let par = estimate_dag_pooled(
            &MncEstimator::new(),
            &dag,
            &leaves,
            true,
            &WorkerPool::new(8),
        )
        .unwrap();
        assert_eq!(seq.sparsity.to_bits(), par.sparsity.to_bits());
        assert_eq!(seq.sketch_bytes, par.sketch_bytes);
    }

    #[test]
    fn leaf_root_returns_exact_sparsity() {
        let mut r = rand::rngs::StdRng::seed_from_u64(11);
        let a = Arc::new(gen::rand_uniform(&mut r, 12, 18, 0.3));
        let est = MncEstimator::new();
        let dag = DagSpec {
            nodes: vec![leaf("A")],
            root: 0,
        };
        let leaves = vec![Some(Arc::new(est.build(&a).unwrap()))];
        let got = estimate_dag(&MncEstimator::new(), &dag, &leaves, false).unwrap();
        assert_eq!(got.sparsity.to_bits(), a.sparsity().to_bits());
        assert_eq!(got.nnz, a.nnz() as u64);
    }
}
