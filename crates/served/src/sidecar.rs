//! Wire format for shadow-estimation sidecars — the alternate synopses the
//! shadow plane compares against the primary MNC sketch, persisted next to
//! each `.mncs` catalog entry so a daemon bounce never rebuilds them.
//!
//! One sidecar (`<name>.mncx`) holds the DMap density grid and the bitset
//! pattern built at CSR-ingest time, plus — only when the daemon runs with
//! `--retain-csr` — the raw CSR triples, which let the shadow plane compute
//! *exact* ground truth for single-op requests and turn cross-estimator
//! divergence into true relative error.
//!
//! The format follows the MNCS discipline ([`mnc_core::serialize`]): a
//! magic + version header, little-endian fixed-width integers, explicit
//! lengths validated before allocation, and a hard "no trailing bytes"
//! rule so truncation and extension are both detected.

use std::sync::Arc;

use mnc_estimators::bitset::BitsetSynopsis;
use mnc_estimators::density_map::DmSynopsis;
use mnc_matrix::CsrMatrix;

/// Magic prefix of the sidecar wire format.
const MAGIC: &[u8; 4] = b"MNCX";
/// Current wire-format version.
const VERSION: u16 = 1;
/// Flag bit: the sidecar embeds retained CSR triples.
const FLAG_CSR: u16 = 1;

/// The alternate synopses (and optional raw data) for one catalog entry.
#[derive(Debug, Clone)]
pub struct ShadowSidecar {
    /// Density map built from the ingested CSR (paper default block size).
    pub dm: DmSynopsis,
    /// Exact bit pattern of the ingested CSR.
    pub bitset: BitsetSynopsis,
    /// The ingested matrix itself, retained only under `--retain-csr` —
    /// the shadow plane's source of exact ground truth.
    pub csr: Option<Arc<CsrMatrix>>,
}

impl ShadowSidecar {
    /// Builds a sidecar from freshly ingested CSR data. `retain_csr`
    /// controls whether the raw triples ride along for ground truth.
    pub fn build(m: &Arc<CsrMatrix>, retain_csr: bool) -> Self {
        ShadowSidecar {
            dm: DmSynopsis::from_matrix(m, mnc_estimators::density_map::DEFAULT_BLOCK),
            bitset: BitsetSynopsis::from_matrix(m),
            csr: retain_csr.then(|| Arc::clone(m)),
        }
    }

    /// Serialized size of this sidecar in bytes.
    pub fn encoded_len(&self) -> usize {
        encode(self).len()
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encodes a sidecar into its versioned wire format.
pub fn encode(s: &ShadowSidecar) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let flags = if s.csr.is_some() { FLAG_CSR } else { 0 };
    out.extend_from_slice(&flags.to_le_bytes());
    put_u64(&mut out, s.dm.nrows as u64);
    put_u64(&mut out, s.dm.ncols as u64);
    put_u64(&mut out, s.dm.block as u64);
    let dens = s.dm.densities();
    put_u64(&mut out, dens.len() as u64);
    for &d in dens {
        put_f64(&mut out, d);
    }
    let words = s.bitset.words();
    put_u64(&mut out, words.len() as u64);
    for &w in words {
        put_u64(&mut out, w);
    }
    if let Some(csr) = &s.csr {
        put_u64(&mut out, csr.nnz() as u64);
        for (i, j, v) in csr.iter_triples() {
            put_u64(&mut out, i as u64);
            put_u64(&mut out, j as u64);
            put_f64(&mut out, v);
        }
    }
    out
}

/// A cursor that refuses to read past the end.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// A length prefix, rejected when the remaining buffer cannot possibly
    /// hold `len * elem_bytes` more bytes (stops hostile-length allocation).
    fn len_prefix(&mut self, elem_bytes: usize) -> Option<usize> {
        let len = usize::try_from(self.u64()?).ok()?;
        let need = len.checked_mul(elem_bytes)?;
        if self.buf.len() - self.pos < need {
            return None;
        }
        Some(len)
    }
}

/// Decodes a sidecar, or `None` for anything malformed: wrong magic or
/// version, shape/length mismatches, hostile length prefixes, truncation,
/// or trailing bytes.
pub fn decode(bytes: &[u8]) -> Option<ShadowSidecar> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return None;
    }
    if r.u16()? != VERSION {
        return None;
    }
    let flags = r.u16()?;
    if flags & !FLAG_CSR != 0 {
        return None;
    }
    let nrows = usize::try_from(r.u64()?).ok()?;
    let ncols = usize::try_from(r.u64()?).ok()?;
    let block = usize::try_from(r.u64()?).ok()?;
    let dens_len = r.len_prefix(8)?;
    let mut dens = Vec::with_capacity(dens_len);
    for _ in 0..dens_len {
        let d = r.f64()?;
        if !(0.0..=1.0).contains(&d) {
            return None;
        }
        dens.push(d);
    }
    let dm = DmSynopsis::from_densities(nrows, ncols, block, dens)?;
    let words_len = r.len_prefix(8)?;
    let mut words = Vec::with_capacity(words_len);
    for _ in 0..words_len {
        words.push(r.u64()?);
    }
    let bitset = BitsetSynopsis::from_words(nrows, ncols, words)?;
    let csr = if flags & FLAG_CSR != 0 {
        let nnz = r.len_prefix(24)?;
        let mut triples = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            let i = usize::try_from(r.u64()?).ok()?;
            let j = usize::try_from(r.u64()?).ok()?;
            let v = r.f64()?;
            triples.push((i, j, v));
        }
        Some(Arc::new(
            CsrMatrix::from_triples(nrows, ncols, triples).ok()?,
        ))
    } else {
        None
    };
    if r.pos != bytes.len() {
        return None; // trailing bytes
    }
    Some(ShadowSidecar { dm, bitset, csr })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::gen;
    use rand::SeedableRng;

    fn matrix(seed: u64) -> Arc<CsrMatrix> {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        Arc::new(gen::rand_uniform(&mut r, 70, 50, 0.08))
    }

    #[test]
    fn roundtrip_without_csr() {
        let m = matrix(1);
        let s = ShadowSidecar::build(&m, false);
        let back = decode(&encode(&s)).expect("decode");
        assert!(back.csr.is_none());
        assert_eq!(back.dm.nrows, s.dm.nrows);
        assert_eq!(back.dm.densities(), s.dm.densities());
        assert_eq!(back.bitset.words(), s.bitset.words());
        assert_eq!(back.bitset.count_ones(), m.nnz() as u64);
    }

    #[test]
    fn roundtrip_with_csr_preserves_triples() {
        let m = matrix(2);
        let s = ShadowSidecar::build(&m, true);
        let back = decode(&encode(&s)).expect("decode");
        let csr = back.csr.expect("csr retained");
        assert_eq!(csr.nnz(), m.nnz());
        assert!(csr.iter_triples().eq(m.iter_triples()));
    }

    #[test]
    fn truncation_extension_and_garbage_never_decode() {
        let bytes = encode(&ShadowSidecar::build(&matrix(3), true));
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_none(), "truncated at {cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode(&extended).is_none(), "trailing byte accepted");
        assert!(decode(b"not a sidecar").is_none());
        let mut wrong_magic = bytes;
        wrong_magic[0] = b'X';
        assert!(decode(&wrong_magic).is_none());
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut bytes = encode(&ShadowSidecar::build(&matrix(4), false));
        // The dens length prefix sits right after magic+version+flags+3 u64s.
        let off = 4 + 2 + 2 + 24;
        bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode(&bytes).is_none());
    }
}
