//! Admission control for the compute plane.
//!
//! The server spawns one thread per connection; the gate turns that
//! unbounded concurrency into a **bounded worker pool**: at most `workers`
//! requests compute simultaneously, at most `queue` more wait for a slot,
//! and everything beyond is shed immediately with `429` + `Retry-After`
//! instead of piling latency onto every in-flight request.

use std::sync::{Condvar, Mutex};

use crate::error::ServiceError;

/// Retry hint handed to rejected clients.
const RETRY_AFTER_SECS: u64 = 1;

#[derive(Debug, Default)]
struct GateState {
    /// Requests currently holding a compute slot.
    active: usize,
    /// Requests blocked waiting for a slot.
    waiting: usize,
}

/// Counting gate: `workers` concurrent slots, a bounded wait queue, and
/// immediate rejection beyond both.
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<GateState>,
    freed: Condvar,
    workers: usize,
    queue: usize,
}

impl AdmissionGate {
    /// A gate with `workers` compute slots (clamped to ≥ 1) and `queue`
    /// waiting slots.
    pub fn new(workers: usize, queue: usize) -> Self {
        AdmissionGate {
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            workers: workers.max(1),
            queue,
        }
    }

    /// Acquires a compute slot, waiting in the bounded queue if necessary.
    /// Returns [`ServiceError::Busy`] when both the slots and the queue are
    /// full. The permit releases its slot on drop.
    pub fn admit(&self) -> Result<Permit<'_>, ServiceError> {
        let mut st = self.state.lock().expect("gate poisoned");
        if st.active < self.workers {
            st.active += 1;
            return Ok(Permit { gate: self });
        }
        if st.waiting >= self.queue {
            return Err(ServiceError::Busy {
                retry_after_secs: RETRY_AFTER_SECS,
            });
        }
        st.waiting += 1;
        while st.active >= self.workers {
            st = self.freed.wait(st).expect("gate poisoned");
        }
        st.waiting -= 1;
        st.active += 1;
        Ok(Permit { gate: self })
    }

    /// Requests currently computing.
    pub fn active(&self) -> usize {
        self.state.lock().expect("gate poisoned").active
    }

    /// Configured compute slots.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Configured queue depth.
    pub fn queue(&self) -> usize {
        self.queue
    }

    fn release(&self) {
        let mut st = self.state.lock().expect("gate poisoned");
        st.active -= 1;
        drop(st);
        self.freed.notify_one();
    }
}

/// An admitted request's compute slot; released on drop.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn slots_are_granted_and_released() {
        let gate = AdmissionGate::new(2, 0);
        let p1 = gate.admit().unwrap();
        let p2 = gate.admit().unwrap();
        assert_eq!(gate.active(), 2);
        assert!(matches!(gate.admit(), Err(ServiceError::Busy { .. })));
        drop(p1);
        let _p3 = gate.admit().unwrap();
        assert!(matches!(gate.admit(), Err(ServiceError::Busy { .. })));
        drop(p2);
        assert_eq!(gate.active(), 1);
    }

    #[test]
    fn queue_admits_after_release() {
        let gate = Arc::new(AdmissionGate::new(1, 1));
        let p = gate.admit().unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let gate = Arc::clone(&gate);
            let ran = Arc::clone(&ran);
            std::thread::spawn(move || {
                let _p = gate.admit().unwrap();
                ran.fetch_add(1, Ordering::SeqCst);
            })
        };
        // Give the waiter time to enqueue, then verify overflow is shed.
        std::thread::sleep(Duration::from_millis(50));
        assert!(matches!(gate.admit(), Err(ServiceError::Busy { .. })));
        assert_eq!(ran.load(Ordering::SeqCst), 0, "waiter must still be queued");
        drop(p);
        waiter.join().unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(gate.active(), 0);
    }

    #[test]
    fn workers_clamped_to_one() {
        let gate = AdmissionGate::new(0, 0);
        assert_eq!(gate.workers(), 1);
        let _p = gate.admit().unwrap();
        assert!(gate.admit().is_err());
    }
}
