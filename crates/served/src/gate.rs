//! Admission control for the compute plane.
//!
//! The server spawns one thread per connection; the gate turns that
//! unbounded concurrency into a **bounded worker pool**: at most `workers`
//! requests compute simultaneously, at most `queue` more wait for a slot,
//! and everything beyond is shed immediately with `429` + `Retry-After`
//! instead of piling latency onto every in-flight request.

use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::error::ServiceError;

#[derive(Debug, Default)]
struct GateState {
    /// Requests currently holding a compute slot.
    active: usize,
    /// Requests blocked waiting for a slot.
    waiting: usize,
}

/// Counting gate: `workers` concurrent slots, a bounded wait queue, and
/// immediate rejection beyond both.
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<GateState>,
    freed: Condvar,
    workers: usize,
    queue: usize,
}

impl AdmissionGate {
    /// A gate with `workers` compute slots (clamped to ≥ 1) and `queue`
    /// waiting slots.
    pub fn new(workers: usize, queue: usize) -> Self {
        AdmissionGate {
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            workers: workers.max(1),
            queue,
        }
    }

    /// Acquires a compute slot, waiting in the bounded queue if necessary.
    /// Returns [`ServiceError::Busy`] carrying `retry_after_secs` (the
    /// caller's measured hint — recent p99 service time) when both the
    /// slots and the queue are full. The permit releases its slot on drop
    /// and reports how long the request queued: the fast path takes no
    /// clock reading at all, so uncontended admissions report exactly 0.
    pub fn admit(&self, retry_after_secs: u64) -> Result<Permit<'_>, ServiceError> {
        let mut st = self.state.lock().expect("gate poisoned");
        if st.active < self.workers {
            st.active += 1;
            return Ok(Permit {
                gate: self,
                queue_wait_ns: 0,
            });
        }
        if st.waiting >= self.queue {
            return Err(ServiceError::Busy { retry_after_secs });
        }
        let enqueued = Instant::now();
        st.waiting += 1;
        while st.active >= self.workers {
            st = self.freed.wait(st).expect("gate poisoned");
        }
        st.waiting -= 1;
        st.active += 1;
        let queue_wait_ns = u64::try_from(enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Ok(Permit {
            gate: self,
            queue_wait_ns,
        })
    }

    /// Requests currently computing.
    pub fn active(&self) -> usize {
        self.state.lock().expect("gate poisoned").active
    }

    /// Requests currently blocked in the wait queue (the live queue-depth
    /// gauge reads this).
    pub fn waiting(&self) -> usize {
        self.state.lock().expect("gate poisoned").waiting
    }

    /// Configured compute slots.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Configured queue depth.
    pub fn queue(&self) -> usize {
        self.queue
    }

    fn release(&self) {
        let mut st = self.state.lock().expect("gate poisoned");
        st.active -= 1;
        drop(st);
        self.freed.notify_one();
    }
}

/// An admitted request's compute slot; released on drop.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
    queue_wait_ns: u64,
}

impl Permit<'_> {
    /// Time spent enqueued before the slot was granted (0 on the
    /// uncontended fast path).
    pub fn queue_wait_ns(&self) -> u64 {
        self.queue_wait_ns
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn slots_are_granted_and_released() {
        let gate = AdmissionGate::new(2, 0);
        let p1 = gate.admit(1).unwrap();
        let p2 = gate.admit(1).unwrap();
        assert_eq!(gate.active(), 2);
        assert!(matches!(gate.admit(1), Err(ServiceError::Busy { .. })));
        drop(p1);
        let _p3 = gate.admit(1).unwrap();
        assert!(matches!(gate.admit(1), Err(ServiceError::Busy { .. })));
        drop(p2);
        assert_eq!(gate.active(), 1);
    }

    #[test]
    fn queue_admits_after_release_and_measures_the_wait() {
        let gate = Arc::new(AdmissionGate::new(1, 1));
        let p = gate.admit(1).unwrap();
        assert_eq!(p.queue_wait_ns(), 0, "fast path never reads the clock");
        let ran = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let gate = Arc::clone(&gate);
            let ran = Arc::clone(&ran);
            std::thread::spawn(move || {
                let p = gate.admit(1).unwrap();
                assert!(
                    p.queue_wait_ns() >= 25_000_000,
                    "queued ≥50ms but measured {}ns",
                    p.queue_wait_ns()
                );
                ran.fetch_add(1, Ordering::SeqCst);
            })
        };
        // Give the waiter time to enqueue, then verify overflow is shed.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(gate.waiting(), 1);
        assert!(matches!(gate.admit(1), Err(ServiceError::Busy { .. })));
        assert_eq!(ran.load(Ordering::SeqCst), 0, "waiter must still be queued");
        drop(p);
        waiter.join().unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(gate.active(), 0);
        assert_eq!(gate.waiting(), 0);
    }

    #[test]
    fn busy_carries_the_callers_retry_hint() {
        let gate = AdmissionGate::new(1, 0);
        let _p = gate.admit(1).unwrap();
        match gate.admit(7) {
            Err(ServiceError::Busy { retry_after_secs }) => assert_eq!(retry_after_secs, 7),
            other => panic!("expected Busy, got {other:?}"),
        };
    }

    #[test]
    fn workers_clamped_to_one() {
        let gate = AdmissionGate::new(0, 0);
        assert_eq!(gate.workers(), 1);
        let _p = gate.admit(1).unwrap();
        assert!(gate.admit(1).is_err());
    }
}
