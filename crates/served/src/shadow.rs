//! The shadow estimation plane.
//!
//! On a sampled fraction of `POST /v1/estimate` requests ([`--shadow-rate`]),
//! the same op/DAG is re-run through **alternate estimators** — `MetaAC`
//! (free, derived from the MNC sketch's own metadata), `DMap`, and `Bitset`
//! (from the [`ShadowSidecar`] synopses persisted at CSR-ingest time) — and
//! the disagreement between each alternate and the primary MNC answer is
//! recorded as **cross-estimator divergence**. When the catalog retains raw
//! CSR data (`--retain-csr`) and the request is shallow enough to evaluate
//! exactly (a leaf root, or one op over leaf inputs), the plane also
//! computes the **true** output sparsity and records genuine relative error
//! for every estimator, primary included.
//!
//! Isolation contract (CI-gated):
//!
//! * the request thread only ever runs the **sampling decision** — one
//!   atomic fetch-add and a SplitMix64 hash, zero allocations (proven under
//!   `alloc-track` in `tests/shadow_alloc.rs`); job construction happens
//!   only for sampled requests, strictly *after* the response body exists;
//! * shadow work runs on a small background worker pool fed by a bounded
//!   **drop-on-full** queue — a slow shadow estimator sheds shadow jobs,
//!   never delays a response;
//! * primary responses are byte-identical with shadowing on vs off: the
//!   plane re-runs alternates against its *own* estimator instances and
//!   never touches the request's estimator or its RNG.
//!
//! Results flow three ways:
//!
//! 1. [`AccuracyRecord`]s into the plane's recorder, whose daemon sink
//!    feeds the flight ring **and the [`DriftMonitor`]** — the live drift
//!    series the ROADMAP's adaptive-routing item needs;
//! 2. a `shadow.*` scoreboard on `/metrics` (runs/errors per estimator,
//!    log₂ divergence histograms per `(estimator, op)`, shadow latency,
//!    live queue depth);
//! 3. a bounded worst-divergence exemplar ring behind
//!    `GET /v1/debug/shadow` (JSONL, worst first).
//!
//! [`--shadow-rate`]: crate::service::ServedConfig::shadow_rate
//! [`--retain-csr`]: crate::service::ServedConfig::retain_csr
//! [`DriftMonitor`]: mnc_obsd::DriftMonitor

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use mnc_core::{MncSketch, OpKind};
use mnc_estimators::meta::MetaSynopsis;
use mnc_estimators::{BitsetEstimator, DensityMapEstimator, MetaAcEstimator, Synopsis};
use mnc_matrix::{ops, CsrMatrix};
use mnc_obs::accuracy::symmetric_relative_error;
use mnc_obs::export::json_escape;
use mnc_obs::{AccuracyRecord, Counter, Gauge, Histogram, MetricSnapshot, Recorder};
use mnc_obsd::{ObsDaemon, Response};

use crate::service::ServedConfig;
use crate::sidecar::ShadowSidecar;
use crate::walk::{self, DagSpec, NodeSpec};

/// The alternate estimators the plane runs, in run order.
pub const SHADOW_ESTIMATORS: [&str; 3] = ["MetaAC", "DMap", "Bitset"];

/// Normalized root-op labels (the `proto` op vocabulary plus `leaf`) —
/// bounded cardinality for the per-`(estimator, op)` metric grid.
const OPS: [&str; 14] = [
    "matmul",
    "ew_add",
    "ew_mul",
    "ew_max",
    "ew_min",
    "transpose",
    "reshape",
    "diag_v2m",
    "diag_m2v",
    "rbind",
    "cbind",
    "neq0",
    "eq0",
    "leaf",
];

/// Bounded shadow-job queue: submissions beyond it are dropped (and
/// counted), never blocked on.
const QUEUE_CAP: usize = 64;
/// Background workers draining the queue.
const WORKERS: usize = 2;
/// Worst-divergence exemplars retained for `GET /v1/debug/shadow`.
const EXEMPLAR_CAP: usize = 32;

/// Maps a root op to its grid index and label.
fn op_index(dag: &DagSpec) -> usize {
    match &dag.nodes[dag.root] {
        NodeSpec::Leaf(_) => 13,
        NodeSpec::Op { op, .. } => match op {
            OpKind::MatMul => 0,
            OpKind::EwAdd => 1,
            OpKind::EwMul => 2,
            OpKind::EwMax => 3,
            OpKind::EwMin => 4,
            OpKind::Transpose => 5,
            OpKind::Reshape { .. } => 6,
            OpKind::DiagV2M => 7,
            OpKind::DiagM2V => 8,
            OpKind::Rbind => 9,
            OpKind::Cbind => 10,
            OpKind::Neq0 => 11,
            OpKind::Eq0 => 12,
        },
    }
}

/// SplitMix64 finalizer — the sampling hash. Pure arithmetic, no state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One sampled request, cloned off the hot path for background re-runs.
struct ShadowJob {
    trace_hex: String,
    dag: DagSpec,
    /// The primary (MNC) answer the response carried.
    primary: f64,
    /// Per-node raw sketches for leaf nodes (MetaAC derives from these).
    sketches: Vec<Option<Arc<MncSketch>>>,
    /// Per-node shadow sidecars for leaf nodes (DMap/Bitset synopses,
    /// optionally retained CSR). Absent for octet-stream ingests.
    sidecars: Vec<Option<Arc<ShadowSidecar>>>,
}

/// One worst-divergence exemplar served by `GET /v1/debug/shadow`.
#[derive(Debug, Clone)]
pub struct ShadowExemplar {
    /// 32-hex trace ID of the sampled request.
    pub trace_hex: String,
    /// Normalized root-op label.
    pub op: &'static str,
    /// The primary (MNC) sparsity the client received.
    pub primary: f64,
    /// `(estimator, sparsity)` for every alternate that ran.
    pub estimates: Vec<(&'static str, f64)>,
    /// Worst symmetric divergence across the alternates.
    pub divergence: f64,
    /// Exact output sparsity, when ground truth was computable.
    pub truth: Option<f64>,
}

impl ShadowExemplar {
    /// One JSONL line.
    pub fn to_json(&self) -> String {
        let est: Vec<String> = self
            .estimates
            .iter()
            .map(|(n, s)| format!("\"{}\":{}", json_escape(n), fmt_f64(*s)))
            .collect();
        let truth = match self.truth {
            Some(t) => format!(",\"truth\":{}", fmt_f64(t)),
            None => String::new(),
        };
        format!(
            "{{\"type\":\"shadow\",\"trace\":\"{}\",\"op\":\"{}\",\"primary\":{},\
             \"estimates\":{{{}}},\"divergence\":{}{}}}",
            json_escape(&self.trace_hex),
            self.op,
            fmt_f64(self.primary),
            est.join(","),
            fmt_f64(self.divergence),
            truth
        )
    }
}

/// Shortest-round-trip float formatting that stays valid JSON (`inf` has no
/// JSON literal; divergence against a zero estimate is clamped huge).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "1e308".to_string()
    }
}

/// Pre-registered metric handles, one slot per label combination —
/// the `RedMetrics` discipline: first hit allocates the series name, every
/// later hit is one atomic.
struct ShadowMetrics {
    /// `[estimator]` completed alternate runs.
    runs: Box<[OnceLock<Counter>]>,
    /// `[estimator]` failed alternate runs.
    errors: Box<[OnceLock<Counter>]>,
    /// `[estimator]` shadow-run latency (log₂ ns buckets).
    latency: Box<[OnceLock<Histogram>]>,
    /// `[estimator][op]` symmetric divergence in milli-units (log₂ buckets;
    /// perfect agreement = 1000).
    divergence: Box<[OnceLock<Histogram>]>,
}

impl ShadowMetrics {
    fn new() -> ShadowMetrics {
        let n = SHADOW_ESTIMATORS.len();
        ShadowMetrics {
            runs: (0..n).map(|_| OnceLock::new()).collect(),
            errors: (0..n).map(|_| OnceLock::new()).collect(),
            latency: (0..n).map(|_| OnceLock::new()).collect(),
            divergence: (0..n * OPS.len()).map(|_| OnceLock::new()).collect(),
        }
    }

    fn runs(&self, rec: &Recorder, ei: usize) -> &Counter {
        self.runs[ei].get_or_init(|| {
            rec.counter(&format!(
                "shadow.runs{{estimator={}}}",
                SHADOW_ESTIMATORS[ei]
            ))
        })
    }

    fn errors(&self, rec: &Recorder, ei: usize) -> &Counter {
        self.errors[ei].get_or_init(|| {
            rec.counter(&format!(
                "shadow.errors{{estimator={}}}",
                SHADOW_ESTIMATORS[ei]
            ))
        })
    }

    fn latency(&self, rec: &Recorder, ei: usize) -> &Histogram {
        self.latency[ei].get_or_init(|| {
            rec.histogram(&format!(
                "shadow.latency_ns{{estimator={}}}",
                SHADOW_ESTIMATORS[ei]
            ))
        })
    }

    fn divergence(&self, rec: &Recorder, ei: usize, oi: usize) -> &Histogram {
        self.divergence[ei * OPS.len() + oi].get_or_init(|| {
            rec.histogram(&format!(
                "shadow.divergence_milli{{estimator={},op={}}}",
                SHADOW_ESTIMATORS[ei], OPS[oi]
            ))
        })
    }
}

/// State shared between the submitting side and the workers.
struct ShadowShared {
    recorder: Recorder,
    metrics: ShadowMetrics,
    sampled: Counter,
    completed: Counter,
    dropped: Counter,
    queue_gauge: Gauge,
    /// Live queue depth (the gauge mirrors it; this is the status() source).
    depth: AtomicU64,
    sampled_n: AtomicU64,
    completed_n: AtomicU64,
    dropped_n: AtomicU64,
    /// Worst-divergence exemplars, sorted worst-first, truncated to cap.
    exemplars: Mutex<Vec<ShadowExemplar>>,
}

/// The service's shadow-estimation plane. See the module docs.
pub struct ShadowPlane {
    enabled: bool,
    /// Sampling threshold in SplitMix64 output space: sample when
    /// `hash <= threshold` (`u64::MAX` at rate 1.0 — always).
    threshold: u64,
    sample_clock: AtomicU64,
    shared: Arc<ShadowShared>,
    tx: Option<SyncSender<ShadowJob>>,
    workers: Vec<JoinHandle<()>>,
}

impl ShadowPlane {
    /// Assembles the plane per `cfg`. At rate 0 the plane is fully inert:
    /// no recorder, no workers, and the sampling decision is one branch.
    pub fn new(cfg: &ServedConfig, daemon: &ObsDaemon) -> ShadowPlane {
        let rate = cfg.shadow_rate.clamp(0.0, 1.0);
        let enabled = rate > 0.0;
        let recorder = if enabled {
            let rec = Recorder::enabled_with_capacity(cfg.flight_capacity.max(1));
            daemon.install(&rec);
            rec
        } else {
            Recorder::disabled()
        };
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * (u64::MAX as f64)) as u64
        };
        // The scoreboard counters are pre-registered so `mnc_shadow_*`
        // series exist on `/metrics` from the first scrape.
        let shared = Arc::new(ShadowShared {
            sampled: recorder.counter("shadow.sampled"),
            completed: recorder.counter("shadow.completed"),
            dropped: recorder.counter("shadow.dropped"),
            queue_gauge: recorder.gauge("shadow.queue_depth"),
            recorder,
            metrics: ShadowMetrics::new(),
            depth: AtomicU64::new(0),
            sampled_n: AtomicU64::new(0),
            completed_n: AtomicU64::new(0),
            dropped_n: AtomicU64::new(0),
            exemplars: Mutex::new(Vec::new()),
        });
        let (tx, workers) = if enabled {
            let (tx, rx) = sync_channel::<ShadowJob>(QUEUE_CAP);
            let rx = Arc::new(Mutex::new(rx));
            let workers: Vec<JoinHandle<()>> = (0..WORKERS)
                .map(|i| {
                    let rx = Arc::clone(&rx);
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("mnc-shadow-{i}"))
                        .spawn(move || worker_loop(&rx, &shared))
                        .expect("spawn shadow worker")
                })
                .collect();
            (Some(tx), workers)
        } else {
            (None, Vec::new())
        };
        ShadowPlane {
            enabled,
            threshold,
            sample_clock: AtomicU64::new(0),
            shared,
            tx,
            workers,
        }
    }

    /// Whether shadowing is on (rate > 0).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The hot-path sampling decision: one atomic fetch-add plus a
    /// SplitMix64 hash — **no allocation, no lock, no clock** (proven in
    /// `tests/shadow_alloc.rs`). At rate 0 it is a single branch.
    #[inline]
    pub fn should_sample(&self) -> bool {
        if !self.enabled {
            return false;
        }
        let n = self.sample_clock.fetch_add(1, Ordering::Relaxed);
        splitmix64(n) <= self.threshold
    }

    /// Builds and enqueues a shadow job for an already-answered request.
    /// Runs only on the sampled path — allocation is fine here. `sidecars`
    /// is lazy so the catalog lock is only retaken when actually sampled.
    pub fn submit(
        &self,
        trace_hex: &str,
        dag: &DagSpec,
        primary: f64,
        sketches: &[Option<Arc<MncSketch>>],
        sidecars: impl FnOnce() -> Vec<Option<Arc<ShadowSidecar>>>,
    ) {
        let Some(tx) = &self.tx else { return };
        self.shared.sampled.incr();
        self.shared.sampled_n.fetch_add(1, Ordering::Relaxed);
        let job = ShadowJob {
            trace_hex: trace_hex.to_string(),
            dag: dag.clone(),
            primary,
            sketches: sketches.to_vec(),
            sidecars: sidecars(),
        };
        // Depth goes up before the send: a worker may dequeue (and
        // decrement) the instant `try_send` returns, so incrementing after
        // would race the counter below zero.
        let d = self.shared.depth.fetch_add(1, Ordering::Relaxed) + 1;
        match tx.try_send(job) {
            Ok(()) => {
                self.shared
                    .queue_gauge
                    .set(i64::try_from(d).unwrap_or(i64::MAX));
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.shared.depth.fetch_sub(1, Ordering::Relaxed);
                self.shared.dropped.incr();
                self.shared.dropped_n.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Requests sampled for shadowing since start.
    pub fn sampled(&self) -> u64 {
        self.shared.sampled_n.load(Ordering::Relaxed)
    }

    /// Shadow jobs fully processed since start.
    pub fn completed(&self) -> u64 {
        self.shared.completed_n.load(Ordering::Relaxed)
    }

    /// Shadow jobs dropped to backpressure since start.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped_n.load(Ordering::Relaxed)
    }

    /// Live shadow-queue depth.
    pub fn queue_depth(&self) -> u64 {
        self.shared.depth.load(Ordering::Relaxed)
    }

    /// The retained worst-divergence exemplars, worst first.
    pub fn exemplars(&self) -> Vec<ShadowExemplar> {
        self.shared
            .exemplars
            .lock()
            .expect("exemplar ring poisoned")
            .clone()
    }

    /// Snapshot of the plane's own metric registry (the `shadow.*` series) —
    /// the bench harness reads shadow latency quantiles from here. `None`
    /// when the plane is disabled (rate 0).
    pub fn metrics_snapshot(&self) -> Option<MetricSnapshot> {
        self.shared.recorder.registry().map(|r| r.snapshot())
    }

    /// `GET /v1/debug/shadow`: the exemplar ring as JSONL, worst first.
    pub fn debug_shadow(&self) -> Response {
        let mut body = String::new();
        for e in self.exemplars() {
            body.push_str(&e.to_json());
            body.push('\n');
        }
        Response {
            status: 200,
            content_type: "application/jsonl; charset=utf-8",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Blocks until every queued job has been processed (test support; the
    /// production path never waits on the shadow plane).
    pub fn drain(&self) {
        while self.queue_depth() > 0 || self.sampled() > self.completed() + self.dropped() {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
}

impl Drop for ShadowPlane {
    fn drop(&mut self) {
        // Closing the channel ends the worker loops; join for a clean exit.
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<ShadowJob>>, shared: &ShadowShared) {
    loop {
        // Holding the lock across the blocking recv is deliberate: the
        // other worker waits on the mutex instead of the channel, and takes
        // over the moment this one leaves to process a job.
        let job = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        let d = shared
            .depth
            .fetch_sub(1, Ordering::Relaxed)
            .saturating_sub(1);
        shared.queue_gauge.set(i64::try_from(d).unwrap_or(i64::MAX));
        process(shared, job);
        shared.completed.incr();
        shared.completed_n.fetch_add(1, Ordering::Relaxed);
    }
}

/// Runs every alternate estimator over one sampled request and records the
/// divergence (and, when ground truth is computable, the true error).
fn process(shared: &ShadowShared, job: ShadowJob) {
    let oi = op_index(&job.dag);
    let truth = exact_truth(&job);
    let mut estimates: Vec<(&'static str, f64)> = Vec::new();
    let mut worst = 1.0_f64;

    for (ei, name) in SHADOW_ESTIMATORS.iter().enumerate() {
        let Some(leaves) = alternate_leaves(&job, ei) else {
            continue; // no sidecar for some leaf (octet-stream ingest)
        };
        let start = Instant::now();
        let outcome = match ei {
            0 => walk::estimate_dag(&MetaAcEstimator, &job.dag, &leaves, false),
            1 => walk::estimate_dag(&DensityMapEstimator::default(), &job.dag, &leaves, false),
            _ => walk::estimate_dag(&BitsetEstimator::default(), &job.dag, &leaves, false),
        };
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        match outcome {
            Ok(out) => {
                shared.metrics.runs(&shared.recorder, ei).incr();
                shared.metrics.latency(&shared.recorder, ei).record(elapsed);
                let div = symmetric_relative_error(job.primary, out.sparsity);
                shared
                    .metrics
                    .divergence(&shared.recorder, ei, oi)
                    .record(divergence_milli(div));
                worst = worst.max(div);
                estimates.push((name, out.sparsity));
                // Divergence feeds the accuracy channel with the primary as
                // the reference — the drift monitor watches estimator
                // *disagreement* continuously, truth or not.
                shared.recorder.record_accuracy(AccuracyRecord::new(
                    "shadow-divergence",
                    OPS[oi],
                    *name,
                    out.sparsity,
                    job.primary,
                ));
                if let Some(t) = truth {
                    shared.recorder.record_accuracy(AccuracyRecord::new(
                        "shadow-truth",
                        OPS[oi],
                        *name,
                        out.sparsity,
                        t,
                    ));
                }
            }
            Err(_) => {
                shared.metrics.errors(&shared.recorder, ei).incr();
            }
        }
    }
    if let Some(t) = truth {
        // The primary gets a true-error record too: the whole point of the
        // retained-CSR path is validating MNC itself, not just alternates.
        shared.recorder.record_accuracy(AccuracyRecord::new(
            "shadow-truth",
            OPS[oi],
            "MNC",
            job.primary,
            t,
        ));
    }

    let exemplar = ShadowExemplar {
        trace_hex: job.trace_hex,
        op: OPS[oi],
        primary: job.primary,
        estimates,
        divergence: worst,
        truth,
    };
    let mut ring = shared.exemplars.lock().expect("exemplar ring poisoned");
    let pos = ring
        .binary_search_by(|e| {
            exemplar
                .divergence
                .partial_cmp(&e.divergence)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or_else(|p| p);
    if pos < EXEMPLAR_CAP {
        ring.insert(pos, exemplar);
        ring.truncate(EXEMPLAR_CAP);
    }
}

/// Symmetric divergence in milli-units for the log₂ histograms: perfect
/// agreement records 1000; an infinite divergence (one side exactly zero)
/// saturates instead of poisoning the histogram.
fn divergence_milli(div: f64) -> u64 {
    if div.is_finite() {
        (div * 1000.0).min(1e18) as u64
    } else {
        u64::MAX
    }
}

/// Builds the per-node leaf synopses for alternate estimator `ei`, or
/// `None` when a required sidecar is missing.
fn alternate_leaves(job: &ShadowJob, ei: usize) -> Option<Vec<Option<Arc<Synopsis>>>> {
    let mut leaves: Vec<Option<Arc<Synopsis>>> = vec![None; job.dag.nodes.len()];
    for (i, node) in job.dag.nodes.iter().enumerate() {
        if !matches!(node, NodeSpec::Leaf(_)) {
            continue;
        }
        let syn = match ei {
            // MetaAC is free: shape + nnz straight off the MNC sketch.
            0 => {
                let sk = job.sketches[i].as_ref()?;
                Synopsis::Meta(MetaSynopsis {
                    nrows: sk.nrows,
                    ncols: sk.ncols,
                    nnz: sk.meta.nnz as f64,
                })
            }
            1 => Synopsis::DensityMap(job.sidecars[i].as_ref()?.dm.clone()),
            _ => Synopsis::Bitset(job.sidecars[i].as_ref()?.bitset.clone()),
        };
        leaves[i] = Some(Arc::new(syn));
    }
    Some(leaves)
}

/// Exact output sparsity, when computable: every leaf must carry retained
/// CSR, and the root must be a leaf or a single op whose inputs are all
/// leaves (the opportunistic single-op contract — deep DAGs are estimated,
/// not recomputed).
fn exact_truth(job: &ShadowJob) -> Option<f64> {
    let csr_of = |i: usize| -> Option<&Arc<CsrMatrix>> {
        match &job.dag.nodes[i] {
            NodeSpec::Leaf(_) => job.sidecars[i].as_ref()?.csr.as_ref(),
            NodeSpec::Op { .. } => None,
        }
    };
    match &job.dag.nodes[job.dag.root] {
        NodeSpec::Leaf(_) => Some(csr_of(job.dag.root)?.sparsity()),
        NodeSpec::Op { op, inputs } => {
            let a = csr_of(*inputs.first()?)?;
            let out = match op {
                // Pattern-exact product: the estimators' ground truth is the
                // non-zero structure, value cancellation excluded (paper §6).
                OpKind::MatMul => ops::bool_matmul(a, csr_of(inputs[1])?).ok()?,
                OpKind::EwAdd => ops::ew_add(a, csr_of(inputs[1])?).ok()?,
                OpKind::EwMul => ops::ew_mul(a, csr_of(inputs[1])?).ok()?,
                OpKind::EwMax => ops::ew_max(a, csr_of(inputs[1])?).ok()?,
                OpKind::EwMin => ops::ew_min(a, csr_of(inputs[1])?).ok()?,
                OpKind::Transpose => a.transpose(),
                OpKind::Reshape { rows, cols } => ops::reshape(a, *rows, *cols).ok()?,
                OpKind::DiagV2M => ops::diag_v2m(a).ok()?,
                OpKind::DiagM2V => ops::diag_extract(a).ok()?,
                OpKind::Rbind => ops::rbind(a, csr_of(inputs[1])?).ok()?,
                OpKind::Cbind => ops::cbind(a, csr_of(inputs[1])?).ok()?,
                OpKind::Neq0 => ops::neq_zero(a),
                OpKind::Eq0 => ops::eq_zero(a),
            };
            Some(out.sparsity())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_estimators::{MncEstimator, SparsityEstimator};
    use mnc_matrix::gen;
    use mnc_obsd::ObsdConfig;
    use rand::SeedableRng;

    fn plane(rate: f64) -> (ShadowPlane, ObsDaemon) {
        let daemon = ObsDaemon::new(ObsdConfig {
            flight_capacity: 256,
            ..ObsdConfig::default()
        });
        let mut cfg = ServedConfig::new(std::env::temp_dir().join("mnc-shadow-unused"));
        cfg.shadow_rate = rate;
        (ShadowPlane::new(&cfg, &daemon), daemon)
    }

    #[allow(clippy::type_complexity)]
    fn job_parts(
        retain: bool,
    ) -> (
        DagSpec,
        f64,
        Vec<Option<Arc<MncSketch>>>,
        Vec<Option<Arc<ShadowSidecar>>>,
    ) {
        let mut r = rand::rngs::StdRng::seed_from_u64(0xCAFE);
        let a = Arc::new(gen::rand_uniform(&mut r, 60, 50, 0.08));
        let b = Arc::new(gen::rand_uniform(&mut r, 50, 40, 0.1));
        let dag = DagSpec {
            nodes: vec![
                NodeSpec::Leaf("A".into()),
                NodeSpec::Leaf("B".into()),
                NodeSpec::Op {
                    op: OpKind::MatMul,
                    inputs: vec![0, 1],
                },
            ],
            root: 2,
        };
        let est = MncEstimator::new();
        let syn = |m: &Arc<CsrMatrix>| match est.build(m).unwrap() {
            Synopsis::Mnc(s) => Arc::new(s.sketch),
            _ => unreachable!(),
        };
        let (ska, skb) = (syn(&a), syn(&b));
        let leaves = vec![
            Some(Arc::new(Synopsis::Mnc(mnc_estimators::mnc::MncSynopsis {
                sketch: (*ska).clone(),
            }))),
            Some(Arc::new(Synopsis::Mnc(mnc_estimators::mnc::MncSynopsis {
                sketch: (*skb).clone(),
            }))),
            None,
        ];
        let primary = walk::estimate_dag(&MncEstimator::new(), &dag, &leaves, false)
            .unwrap()
            .sparsity;
        let sketches = vec![Some(ska), Some(skb), None];
        let sidecars = vec![
            Some(Arc::new(ShadowSidecar::build(&a, retain))),
            Some(Arc::new(ShadowSidecar::build(&b, retain))),
            None,
        ];
        (dag, primary, sketches, sidecars)
    }

    #[test]
    fn rate_zero_never_samples_and_rate_one_always_does() {
        let (p0, _d0) = plane(0.0);
        assert!(!p0.enabled());
        assert!((0..1000).all(|_| !p0.should_sample()));
        let (p1, _d1) = plane(1.0);
        assert!((0..1000).all(|_| p1.should_sample()));
    }

    #[test]
    fn fractional_rate_samples_roughly_that_fraction() {
        let (p, _d) = plane(0.25);
        let hits = (0..10_000).filter(|_| p.should_sample()).count();
        assert!(
            (1_800..3_200).contains(&hits),
            "0.25 rate sampled {hits}/10000"
        );
    }

    #[test]
    fn shadow_run_records_divergence_and_exemplars() {
        let (p, daemon) = plane(1.0);
        let (dag, primary, sketches, sidecars) = job_parts(false);
        p.submit("cafe".repeat(8).as_str(), &dag, primary, &sketches, || {
            sidecars.clone()
        });
        p.drain();
        assert_eq!(p.sampled(), 1);
        assert_eq!(p.completed(), 1);
        assert_eq!(p.dropped(), 0);
        let ex = p.exemplars();
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].op, "matmul");
        assert_eq!(ex[0].estimates.len(), 3, "all three alternates ran");
        assert!(ex[0].truth.is_none(), "no CSR retained, no truth");
        assert!(ex[0].divergence >= 1.0);
        // The accuracy channel reached the daemon's drift monitor.
        let stats = daemon.drift().stats();
        assert!(
            stats
                .iter()
                .any(|s| s.estimator == "DMap" && s.op == "matmul"),
            "drift series missing: {stats:?}"
        );
        // And the metric scoreboard is live.
        let text = daemon.metrics_text();
        assert!(text.contains("mnc_shadow_runs_total"), "{text}");
        assert!(text.contains("estimator=\"Bitset\""), "{text}");
        assert!(text.contains("mnc_shadow_divergence_milli"), "{text}");
    }

    #[test]
    fn retained_csr_yields_true_error_records() {
        let (p, daemon) = plane(1.0);
        let (dag, primary, sketches, sidecars) = job_parts(true);
        p.submit("beef".repeat(8).as_str(), &dag, primary, &sketches, || {
            sidecars.clone()
        });
        p.drain();
        let ex = p.exemplars();
        let truth = ex[0].truth.expect("truth computed from retained CSR");
        assert!(truth > 0.0 && truth <= 1.0);
        // The Bitset alternate is exact: its estimate must equal the truth.
        let bitset = ex[0]
            .estimates
            .iter()
            .find(|(n, _)| *n == "Bitset")
            .expect("bitset ran");
        assert_eq!(bitset.1.to_bits(), truth.to_bits());
        // Drift series for the primary appear under the truth case.
        let stats = daemon.drift().stats();
        assert!(
            stats.iter().any(|s| s.estimator == "MNC"),
            "primary truth series missing: {stats:?}"
        );
    }

    #[test]
    fn missing_sidecars_skip_alternates_but_meta_still_runs() {
        let (p, _daemon) = plane(1.0);
        let (dag, primary, sketches, _) = job_parts(false);
        let no_sidecars: Vec<Option<Arc<ShadowSidecar>>> = vec![None, None, None];
        p.submit("0123".repeat(8).as_str(), &dag, primary, &sketches, || {
            no_sidecars.clone()
        });
        p.drain();
        let ex = p.exemplars();
        assert_eq!(ex.len(), 1);
        let names: Vec<&str> = ex[0].estimates.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["MetaAC"], "only the metadata estimator is free");
    }

    #[test]
    fn exemplar_ring_keeps_the_worst_and_stays_bounded() {
        let (p, _daemon) = plane(1.0);
        let (dag, primary, sketches, sidecars) = job_parts(false);
        for _ in 0..(EXEMPLAR_CAP + 8) {
            p.submit("dead".repeat(8).as_str(), &dag, primary, &sketches, || {
                sidecars.clone()
            });
            p.drain();
        }
        let ex = p.exemplars();
        assert!(ex.len() <= EXEMPLAR_CAP);
        assert!(
            ex.windows(2).all(|w| w[0].divergence >= w[1].divergence),
            "exemplars must be sorted worst-first"
        );
    }

    #[test]
    fn exemplar_json_is_valid_and_labeled() {
        let ex = ShadowExemplar {
            trace_hex: "ab".repeat(16),
            op: "matmul",
            primary: 0.25,
            estimates: vec![("MetaAC", 0.2), ("Bitset", 0.25)],
            divergence: 1.25,
            truth: Some(0.24),
        };
        let v = mnc_obs::json::parse(&ex.to_json()).expect("valid json");
        assert_eq!(v.get("type").and_then(|t| t.as_str()), Some("shadow"));
        assert_eq!(v.get("op").and_then(|t| t.as_str()), Some("matmul"));
        assert!(v.get("estimates").is_some());
        assert!(v.get("truth").is_some());
    }

    #[test]
    fn divergence_milli_saturates_instead_of_poisoning() {
        assert_eq!(divergence_milli(1.0), 1000);
        assert_eq!(divergence_milli(2.5), 2500);
        assert_eq!(divergence_milli(f64::INFINITY), u64::MAX);
    }
}
