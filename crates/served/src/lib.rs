//! # mnc-served — the versioned estimation service
//!
//! A request/response daemon over the MNC estimator: clients ingest named
//! matrices (or pre-built sketches) once, then estimate sparsity for
//! operations and small expression DAGs over them — over HTTP, with the
//! same bit-exact numbers the in-process library produces.
//!
//! The pieces:
//!
//! * [`catalog`] — the **persistent synopsis catalog**: named sketches in
//!   the MNCS wire format under a directory, written atomically, reloaded
//!   on restart so a daemon bounce never rebuilds a sketch;
//! * [`walk`] — the request-DAG estimation walk, mirroring
//!   `EstimationContext::estimate_root` order exactly (the bit-identity
//!   contract);
//! * [`proto`] — `/v1` JSON parsing/rendering (full-precision floats via
//!   shortest round-trip formatting);
//! * [`gate`] — the bounded worker pool's admission control (`429` +
//!   `Retry-After` under saturation, the hint tracking the measured recent
//!   p99 service time);
//! * [`trace`] — the request-scoped tracing plane: W3C trace IDs on every
//!   response (`x-mnc-trace-id`), per-endpoint RED metrics with the latency
//!   split into queue wait vs service time, and tail-sampled slow-request
//!   capture behind `GET /v1/debug/requests`;
//! * [`sidecar`] + [`shadow`] — the **shadow estimation plane**: alternate
//!   synopses (DMap, Bitset) persisted next to each catalog entry, and a
//!   bounded background worker that re-runs a sampled fraction of estimates
//!   through the alternate estimators, recording cross-estimator divergence
//!   (and true error where retained CSR gives exact ground truth) into the
//!   accuracy channel, `/metrics`, and `GET /v1/debug/shadow` — never the
//!   hot path;
//! * [`service`] — the [`Handler`](mnc_obsd::Handler) tying it together,
//!   with per-client sessions ([`mnc_expr::SessionPool`]) and the PR-5
//!   telemetry endpoints mounted as the health plane.
//!
//! ## Endpoints
//!
//! | Method & path | Purpose |
//! |---|---|
//! | `PUT /v1/matrices/{name}` | ingest CSR JSON (builds the sketch) or raw MNCS bytes |
//! | `GET /v1/matrices` | list catalog entries |
//! | `GET /v1/matrices/{name}` | one entry's metadata |
//! | `GET /v1/matrices/{name}/sketch` | export MNCS bytes |
//! | `DELETE /v1/matrices/{name}` | drop an entry |
//! | `POST /v1/estimate` | estimate an op or DAG over named matrices |
//! | `GET /v1/status` | service counters |
//! | `GET /v1/debug/requests` | tail-captured slow/error requests (JSONL, `?format=chrome`) |
//! | `GET /v1/debug/shadow` | worst cross-estimator divergence exemplars (JSONL) |
//! | `GET /healthz`, `/metrics`, `/flight`, `/attribution` | health plane |
//!
//! Run the daemon with the `mnc-served` binary; see the repository README
//! for a quickstart.

pub mod catalog;
pub mod error;
pub mod gate;
pub mod proto;
pub mod service;
pub mod shadow;
pub mod sidecar;
pub mod trace;
pub mod walk;

pub use catalog::{validate_name, CatalogEntry, SynopsisCatalog};
pub use error::ServiceError;
pub use gate::AdmissionGate;
pub use proto::EstimateRequest;
pub use service::{EstimationService, ServedConfig};
pub use shadow::{ShadowExemplar, ShadowPlane};
pub use sidecar::ShadowSidecar;
pub use trace::{endpoint_of, retry_after_from_p99, CapturedRequest, TracePlane};
pub use walk::{DagSpec, EstimateOutcome, NodeSpec, MAX_DAG_NODES};

// Server plumbing re-exported so embedders need only this crate.
pub use mnc_obsd::{serve_with, ServeOptions, ServerHandle};
