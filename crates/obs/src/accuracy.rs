//! Accuracy telemetry: estimated-vs-actual sparsity records, emitted
//! wherever ground truth is available (the SparsEst runner, eval paths),
//! plus per-estimator summaries for reports.

use std::collections::BTreeMap;

/// One estimated-vs-actual observation.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRecord {
    /// Use-case or site label (`"B1.1"`, `"B3.3/PGG"`), possibly empty.
    pub case: String,
    /// Root operation estimated (`"matmul"`, `"leaf"`).
    pub op: String,
    /// Estimator display name (`"MNC"`).
    pub estimator: String,
    /// The estimator's output sparsity.
    pub estimated_sparsity: f64,
    /// Ground-truth output sparsity.
    pub actual_sparsity: f64,
    /// Symmetric relative error `max(s, ŝ)/min(s, ŝ)` (≥ 1, `INF` when
    /// exactly one side is zero, 1 when both are).
    pub relative_error: f64,
    /// Emission time in ns since the recorder epoch (stamped by the
    /// recorder when left at 0).
    pub ts_ns: u64,
}

impl AccuracyRecord {
    /// Builds a record, computing the symmetric relative error with the
    /// SparsEst conventions (both near-zero → 1, exactly one zero → `INF`).
    pub fn new(
        case: impl Into<String>,
        op: impl Into<String>,
        estimator: impl Into<String>,
        estimated_sparsity: f64,
        actual_sparsity: f64,
    ) -> AccuracyRecord {
        AccuracyRecord {
            case: case.into(),
            op: op.into(),
            estimator: estimator.into(),
            estimated_sparsity,
            actual_sparsity,
            relative_error: symmetric_relative_error(actual_sparsity, estimated_sparsity),
            ts_ns: 0,
        }
    }
}

/// The SparsEst M1 metric: `max(s, ŝ)/min(s, ŝ)`, with both-zero → 1 and
/// one-zero → `INF`. (Duplicated from `mnc-sparsest` so the dependency-free
/// telemetry layer can stamp records on its own; the runner passes its own
/// value through unchanged.)
///
/// # Totality contract (pinned)
///
/// The obsd drift monitor folds this value into an online EWMA, so the
/// function must be **total over all `f64` inputs** and never `NaN`:
///
/// * result is always `>= 1.0`; a perfect estimate yields exactly `1.0`;
/// * `truth = 0, estimate = 0` (both below `EPS = 1e-15`, the zero
///   threshold for a sparsity in `[0, 1]`) yields **`1.0`, finite** — a
///   correctly-predicted empty output is a perfect estimate, not an error;
/// * exactly one side zero yields **`+INF`**, never `NaN` — the ratio is
///   genuinely unbounded, and consumers must branch on
///   [`f64::is_finite`] (the summaries count these separately, the drift
///   monitor clamps them to its configured ceiling);
/// * negative inputs clamp to 0 and `NaN` inputs are treated as 0 (both
///   via [`f64::max`], whose IEEE-754 semantics return the non-NaN
///   operand) — garbage upstream degrades to the zero conventions above
///   instead of poisoning every downstream aggregate with `NaN`.
///
/// These cases are locked by `relative_error_is_total_and_never_nan`
/// below; `mnc-sparsest` pins its duplicate to the same table.
pub fn symmetric_relative_error(truth: f64, estimate: f64) -> f64 {
    const EPS: f64 = 1e-15;
    let t = truth.max(0.0);
    let e = estimate.max(0.0);
    if t < EPS && e < EPS {
        return 1.0;
    }
    if t < EPS || e < EPS {
        return f64::INFINITY;
    }
    if t == e {
        // Exact agreement is 1.0 without a division; this also keeps the
        // out-of-domain pair (INF, INF) from producing INF/INF = NaN.
        return 1.0;
    }
    t.max(e) / t.min(e)
}

/// Per-estimator aggregate over a batch of records.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracySummary {
    /// Estimator display name.
    pub estimator: String,
    /// Number of records.
    pub count: usize,
    /// Records with non-finite relative error (zero/non-zero mismatches).
    pub infinite: usize,
    /// Geometric mean of the finite relative errors (the natural average
    /// for a ratio metric; 0 when no finite records).
    pub geo_mean_error: f64,
    /// Worst finite relative error and the case it came from.
    pub worst: Option<(String, f64)>,
}

/// Groups records by estimator (sorted by name) and aggregates.
pub fn summarize(records: &[AccuracyRecord]) -> Vec<AccuracySummary> {
    let mut by_est: BTreeMap<&str, Vec<&AccuracyRecord>> = BTreeMap::new();
    for r in records {
        by_est.entry(&r.estimator).or_default().push(r);
    }
    by_est
        .into_iter()
        .map(|(est, rs)| {
            let finite: Vec<&&AccuracyRecord> =
                rs.iter().filter(|r| r.relative_error.is_finite()).collect();
            let geo_mean_error = if finite.is_empty() {
                0.0
            } else {
                let log_sum: f64 = finite.iter().map(|r| r.relative_error.ln()).sum();
                (log_sum / finite.len() as f64).exp()
            };
            let worst = finite
                .iter()
                .max_by(|a, b| {
                    a.relative_error
                        .partial_cmp(&b.relative_error)
                        .expect("finite errors compare")
                })
                .map(|r| (r.case.clone(), r.relative_error));
            AccuracySummary {
                estimator: est.to_string(),
                count: rs.len(),
                infinite: rs.len() - finite.len(),
                geo_mean_error,
                worst,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_conventions() {
        assert_eq!(symmetric_relative_error(0.0, 0.0), 1.0);
        assert_eq!(symmetric_relative_error(0.5, 0.0), f64::INFINITY);
        assert_eq!(symmetric_relative_error(0.0, 0.5), f64::INFINITY);
        assert_eq!(symmetric_relative_error(0.1, 0.2), 2.0);
        assert_eq!(symmetric_relative_error(0.2, 0.1), 2.0);
    }

    /// Pins the totality contract the drift monitor depends on: every
    /// `f64` input pair maps to a non-NaN value `>= 1`, with both-zero
    /// finite (`1.0`) and one-zero infinite.
    #[test]
    fn relative_error_is_total_and_never_nan() {
        // Both sides zero (or sub-threshold): perfect, finite.
        assert_eq!(symmetric_relative_error(0.0, 0.0), 1.0);
        assert_eq!(symmetric_relative_error(1e-16, 1e-16), 1.0);
        // Negative garbage clamps to zero.
        assert_eq!(symmetric_relative_error(-0.3, -1.0), 1.0);
        assert_eq!(symmetric_relative_error(-0.3, 0.5), f64::INFINITY);
        // NaN inputs degrade to the zero conventions, never propagate.
        assert_eq!(symmetric_relative_error(f64::NAN, f64::NAN), 1.0);
        assert_eq!(symmetric_relative_error(f64::NAN, 0.5), f64::INFINITY);
        assert_eq!(symmetric_relative_error(0.5, f64::NAN), f64::INFINITY);
        // Infinite inputs stay total (ratio of INF to finite is INF).
        assert_eq!(symmetric_relative_error(f64::INFINITY, 0.5), f64::INFINITY);
        // Exhaustive sweep over a grid of awkward values: never NaN,
        // always >= 1.
        let vals = [
            f64::NAN,
            f64::NEG_INFINITY,
            -1.0,
            -1e-300,
            0.0,
            1e-16,
            1e-15,
            1e-8,
            0.5,
            1.0,
            f64::INFINITY,
        ];
        for &t in &vals {
            for &e in &vals {
                let r = symmetric_relative_error(t, e);
                assert!(!r.is_nan(), "NaN for ({t}, {e})");
                assert!(r >= 1.0, "{r} < 1 for ({t}, {e})");
            }
        }
    }

    #[test]
    fn summaries_group_and_aggregate() {
        let records = vec![
            AccuracyRecord::new("B1.1", "matmul", "MNC", 0.1, 0.1),
            AccuracyRecord::new("B1.2", "matmul", "MNC", 0.2, 0.1),
            AccuracyRecord::new("B1.1", "matmul", "Sample", 0.0, 0.1),
        ];
        let sums = summarize(&records);
        assert_eq!(sums.len(), 2);
        let mnc = sums.iter().find(|s| s.estimator == "MNC").unwrap();
        assert_eq!(mnc.count, 2);
        assert_eq!(mnc.infinite, 0);
        // Geometric mean of {1, 2} = sqrt(2).
        assert!((mnc.geo_mean_error - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(mnc.worst.as_ref().unwrap().0, "B1.2");
        let sample = sums.iter().find(|s| s.estimator == "Sample").unwrap();
        assert_eq!(sample.infinite, 1);
        assert_eq!(sample.geo_mean_error, 0.0);
        assert!(sample.worst.is_none());
    }
}
