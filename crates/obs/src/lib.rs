//! # mnc-obs — observability for estimation sessions
//!
//! A zero-external-dependency, thread-safe observability layer for the MNC
//! workspace. The paper's whole value proposition is quantitative —
//! estimator accuracy (Section 5's SparsEst suite) versus construction and
//! estimation overhead (Figures 8–16) — so every estimation session can be
//! traced, metered, and accuracy-audited through three channels:
//!
//! * **spans** ([`span`]) — hierarchical wall-clock spans recording the op,
//!   nnz in/out, and synopsis bytes. Spans are finished per-thread and merged
//!   into the shared [`Recorder`] with a single lock-free push on drop;
//! * **metrics** ([`metrics`]) — a named registry of monotone counters,
//!   gauges, and log₂-bucketed histograms (build/estimate/propagate
//!   latencies, cache hit/miss, synopsis memory), safe to update from any
//!   thread without locks on the hot path;
//! * **accuracy telemetry** ([`accuracy`]) — `(case, op, estimator,
//!   estimated, actual, relative error)` records emitted whenever ground
//!   truth is available (the SparsEst runner, eval paths), feeding the
//!   accuracy-regression check in `mnc-sparsest`.
//!
//! Everything funnels into a [`Report`] that the [`export`] module renders
//! as a human table, a JSONL event stream, or a Chrome `trace_event` JSON
//! loadable in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev).
//!
//! ## Cost when disabled
//!
//! A [`Recorder::disabled()`] recorder is a `None` behind a cheap handle:
//! spans skip the clock read entirely, metric handles skip the atomic, and
//! no allocation happens anywhere. Instrumented code pays one branch — the
//! ≤2 % overhead budget asserted by `cache_bench --check-overhead` holds
//! even with the recorder *enabled*, because enabled spans cost two `Instant`
//! reads plus one lock-free push.
//!
//! ```
//! use mnc_obs::{span, Recorder};
//!
//! let rec = Recorder::enabled();
//! {
//!     let _outer = span!(rec, "estimate", op = "matmul");
//!     let _inner = span!(rec, "build").nnz_in(42);
//! } // both spans merge into the recorder here
//! let report = rec.report();
//! assert_eq!(report.spans.len(), 2);
//! assert!(report.to_chrome_trace().contains("traceEvents"));
//! ```

pub mod accuracy;
pub mod alloc;
pub mod attribution;
pub mod export;
pub mod metrics;
pub mod prometheus;
pub mod span;

pub use accuracy::AccuracyRecord;
pub use alloc::{AllocDelta, AllocScope, AllocSnapshot};
pub use attribution::{attribute, render_attribution, AttributionRow};
pub use export::{ObsFormat, Report};
pub use metrics::{Counter, Gauge, Histogram, LatencyHisto, MetricSnapshot, MetricsRegistry};
pub use prometheus::render_prometheus;
pub use span::{SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Lock-free record list (Treiber stack)
// ---------------------------------------------------------------------------

struct ListNode<T> {
    value: T,
    next: *mut ListNode<T>,
}

/// An append-only lock-free list: finished spans and accuracy records are
/// pushed with one compare-exchange; snapshots traverse without blocking
/// writers (nodes are only freed when the list is dropped).
pub(crate) struct LockFreeList<T> {
    head: AtomicPtr<ListNode<T>>,
}

// SAFETY: nodes are heap-allocated, reachable only through `head`, pushed
// with release ordering and read with acquire ordering; nothing is freed
// before `Drop`, so concurrent push + traverse never observes a dangling
// pointer.
unsafe impl<T: Send> Send for LockFreeList<T> {}
unsafe impl<T: Send + Sync> Sync for LockFreeList<T> {}

impl<T> LockFreeList<T> {
    fn new() -> Self {
        LockFreeList {
            head: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(ListNode {
            value,
            next: std::ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: `node` is exclusively ours until the CAS succeeds.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// Clones every record, newest first (callers re-sort by timestamp).
    fn collect(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::new();
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: nodes are never freed while the list is alive.
            let node = unsafe { &*cur };
            out.push(node.value.clone());
            cur = node.next;
        }
        out
    }

    fn len(&self) -> usize {
        let mut n = 0;
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            n += 1;
            cur = unsafe { (*cur).next };
        }
        n
    }
}

impl<T> Drop for LockFreeList<T> {
    fn drop(&mut self) {
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: `&mut self` means no concurrent access remains.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next;
        }
    }
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

static RECORDER_TOKENS: AtomicU64 = AtomicU64::new(1);

pub(crate) struct RecorderShared {
    /// Unique token distinguishing this recorder's spans in the per-thread
    /// parent tracking (two interleaved sessions must not cross-link).
    pub(crate) token: u64,
    pub(crate) epoch: Instant,
    pub(crate) next_span_id: AtomicU64,
    pub(crate) spans: LockFreeList<SpanRecord>,
    pub(crate) accuracy: LockFreeList<AccuracyRecord>,
    pub(crate) registry: MetricsRegistry,
}

/// The entry point: a cheap, cloneable handle that is either enabled (shared
/// state behind an `Arc`) or a no-op. All instrumented code takes a
/// `&Recorder` and works identically either way.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<RecorderShared>>,
}

impl Recorder {
    /// A recorder that records: spans, metrics, and accuracy telemetry all
    /// collect into shared, thread-safe state.
    pub fn enabled() -> Recorder {
        Recorder {
            inner: Some(Arc::new(RecorderShared {
                token: RECORDER_TOKENS.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                next_span_id: AtomicU64::new(1),
                spans: LockFreeList::new(),
                accuracy: LockFreeList::new(),
                registry: MetricsRegistry::new(),
            })),
        }
    }

    /// The no-op recorder: every call is a branch on `None` and nothing
    /// else — no clock reads, no allocation, no atomics.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether this recorder collects anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Two handles to the same underlying recorder?
    pub fn same_as(&self, other: &Recorder) -> bool {
        match (&self.inner, &other.inner) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Opens a span; finish it by dropping the guard. Prefer the [`span!`]
    /// macro, which reads like the field list it sets.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard::open(self.inner.clone(), name)
    }

    /// Nanoseconds since the recorder was created (0 when disabled).
    pub fn elapsed_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| {
            u64::try_from(s.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
    }

    /// Records one accuracy observation (no-op when disabled). The record's
    /// `ts_ns` is stamped with the recorder clock if left at 0.
    pub fn record_accuracy(&self, mut rec: AccuracyRecord) {
        if let Some(shared) = &self.inner {
            if rec.ts_ns == 0 {
                rec.ts_ns = self.elapsed_ns();
            }
            shared.accuracy.push(rec);
        }
    }

    /// Handle to the named monotone counter (a no-op handle when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(s) => s.registry.counter(name),
            None => Counter::noop(),
        }
    }

    /// Handle to the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(s) => s.registry.gauge(name),
            None => Gauge::noop(),
        }
    }

    /// Handle to the named log-scale histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(s) => s.registry.histogram(name),
            None => Histogram::noop(),
        }
    }

    /// The metrics registry, when enabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|s| &s.registry)
    }

    /// All finished spans, in start order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(s) => {
                let mut v = s.spans.collect();
                v.sort_by_key(|r| (r.start_ns, r.id));
                v
            }
            None => Vec::new(),
        }
    }

    /// Number of finished spans (cheap-ish; walks the list).
    pub fn span_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |s| s.spans.len())
    }

    /// All accuracy records, in emission order.
    pub fn accuracy(&self) -> Vec<AccuracyRecord> {
        match &self.inner {
            Some(s) => {
                let mut v = s.accuracy.collect();
                v.reverse(); // list is newest-first
                v
            }
            None => Vec::new(),
        }
    }

    /// Snapshot of spans, metrics, and accuracy records, ready to export.
    pub fn report(&self) -> Report {
        Report {
            spans: self.spans(),
            metrics: self.registry().map(|r| r.snapshot()).unwrap_or_default(),
            accuracy: self.accuracy(),
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(s) => write!(f, "Recorder(enabled, {} spans)", s.spans.len()),
            None => write!(f, "Recorder(disabled)"),
        }
    }
}

/// Opens a span on a recorder, optionally presetting fields:
/// `span!(rec, "estimate", op = "matmul", nnz_in = 42)`. Accepted fields are
/// the [`SpanGuard`] builder methods: `op`, `nnz_in`, `nnz_out`, `bytes`.
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr $(,)?) => {
        $rec.span($name)
    };
    ($rec:expr, $name:expr, $($field:ident = $value:expr),+ $(,)?) => {{
        #[allow(unused_mut)]
        let mut guard = $rec.span($name);
        $(guard = guard.$field($value);)+
        guard
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_free_and_empty() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        {
            let _g = span!(rec, "estimate", op = "matmul", nnz_in = 3);
        }
        rec.counter("x").incr();
        rec.histogram("h").record(5);
        rec.record_accuracy(AccuracyRecord::new("B1.1", "matmul", "MNC", 0.5, 0.5));
        assert!(rec.spans().is_empty());
        assert!(rec.accuracy().is_empty());
        assert!(rec.registry().is_none());
        let report = rec.report();
        assert!(report.spans.is_empty() && report.accuracy.is_empty());
    }

    #[test]
    fn spans_record_fields_and_order() {
        let rec = Recorder::enabled();
        {
            let _g = span!(
                rec,
                "build",
                op = "MNC",
                nnz_in = 10,
                nnz_out = 10,
                bytes = 80
            );
        }
        {
            let _g = span!(rec, "estimate", op = "matmul");
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "build");
        assert_eq!(spans[0].op.as_deref(), Some("MNC"));
        assert_eq!(spans[0].nnz_in, Some(10));
        assert_eq!(spans[0].synopsis_bytes, Some(80));
        assert_eq!(spans[1].name, "estimate");
        assert!(spans[1].start_ns >= spans[0].start_ns);
    }

    #[test]
    fn nesting_links_parents_within_a_thread() {
        let rec = Recorder::enabled();
        {
            let outer = rec.span("outer");
            let outer_id = outer.id();
            {
                let inner = rec.span("inner");
                assert_eq!(inner.parent(), outer_id);
                let inner_id = inner.id();
                let leaf = rec.span("leaf");
                assert_eq!(leaf.parent(), inner_id);
            }
            // Back at outer depth: a sibling of "inner".
            let sibling = rec.span("sibling");
            assert_eq!(sibling.parent(), outer_id);
        }
        let spans = rec.spans();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(outer.parent, 0, "top-level span has no parent");
    }

    #[test]
    fn two_recorders_do_not_cross_link() {
        let a = Recorder::enabled();
        let b = Recorder::enabled();
        let _ga = a.span("a-outer");
        let gb = b.span("b-inner");
        // b's span must not claim a's span as parent: different recorders.
        assert_eq!(gb.parent(), 0);
    }

    #[test]
    fn accuracy_channel_round_trips() {
        let rec = Recorder::enabled();
        rec.record_accuracy(AccuracyRecord::new("B1.2", "matmul", "MNC", 0.1, 0.2));
        rec.record_accuracy(AccuracyRecord::new("B1.3", "ew_add", "DMap", 0.3, 0.3));
        let acc = rec.accuracy();
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[0].case, "B1.2");
        assert!(acc[0].relative_error > 1.9 && acc[0].relative_error < 2.1);
        assert_eq!(acc[1].relative_error, 1.0);
    }

    #[test]
    fn lock_free_list_survives_concurrent_pushes() {
        let list = LockFreeList::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let list = &list;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        list.push(t * 1000 + i);
                    }
                });
            }
        });
        let mut all = list.collect();
        assert_eq!(all.len(), 4000);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "no push may be lost or duplicated");
    }

    #[test]
    fn recorder_identity() {
        let a = Recorder::enabled();
        let b = a.clone();
        assert!(a.same_as(&b));
        assert!(!a.same_as(&Recorder::enabled()));
        assert!(Recorder::disabled().same_as(&Recorder::disabled()));
    }
}
