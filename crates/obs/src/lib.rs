//! # mnc-obs — observability for estimation sessions
//!
//! A zero-external-dependency, thread-safe observability layer for the MNC
//! workspace. The paper's whole value proposition is quantitative —
//! estimator accuracy (Section 5's SparsEst suite) versus construction and
//! estimation overhead (Figures 8–16) — so every estimation session can be
//! traced, metered, and accuracy-audited through three channels:
//!
//! * **spans** ([`span`]) — hierarchical wall-clock spans recording the op,
//!   nnz in/out, and synopsis bytes. Spans are finished per-thread and merged
//!   into the shared [`Recorder`] with a single lock-free push on drop;
//! * **metrics** ([`metrics`]) — a named registry of monotone counters,
//!   gauges, and log₂-bucketed histograms (build/estimate/propagate
//!   latencies, cache hit/miss, synopsis memory), safe to update from any
//!   thread without locks on the hot path;
//! * **accuracy telemetry** ([`accuracy`]) — `(case, op, estimator,
//!   estimated, actual, relative error)` records emitted whenever ground
//!   truth is available (the SparsEst runner, eval paths), feeding the
//!   accuracy-regression check in `mnc-sparsest`.
//!
//! Everything funnels into a [`Report`] that the [`export`] module renders
//! as a human table, a JSONL event stream, or a Chrome `trace_event` JSON
//! loadable in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev).
//!
//! ## Cost when disabled
//!
//! A [`Recorder::disabled()`] recorder is a `None` behind a cheap handle:
//! spans skip the clock read entirely, metric handles skip the atomic, and
//! no allocation happens anywhere. Instrumented code pays one branch — the
//! ≤2 % overhead budget asserted by `cache_bench --check-overhead` holds
//! even with the recorder *enabled*, because enabled spans cost two `Instant`
//! reads plus one lock-free push.
//!
//! ```
//! use mnc_obs::{span, Recorder};
//!
//! let rec = Recorder::enabled();
//! {
//!     let _outer = span!(rec, "estimate", op = "matmul");
//!     let _inner = span!(rec, "build").nnz_in(42);
//! } // both spans merge into the recorder here
//! let report = rec.report();
//! assert_eq!(report.spans.len(), 2);
//! assert!(report.to_chrome_trace().contains("traceEvents"));
//! ```

pub mod accuracy;
pub mod alloc;
pub mod attribution;
pub mod export;
pub mod json;
pub mod metrics;
pub mod prometheus;
pub mod request;
pub mod ring;
pub mod span;

pub use accuracy::AccuracyRecord;
pub use alloc::{AllocDelta, AllocScope, AllocSnapshot};
pub use attribution::{attribute, render_attribution, AttributionRow};
pub use export::{ObsFormat, Report};
pub use metrics::{Counter, Gauge, Histogram, LatencyHisto, MetricSnapshot, MetricsRegistry};
pub use prometheus::render_prometheus;
pub use request::{parse_traceparent, RequestContext, RequestSpan, TraceId};
pub use ring::RecordRing;
pub use span::{SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A live tap on the record streams of an enabled [`Recorder`]: every
/// finished span and every accuracy record is offered to the sink *before*
/// it reaches the recorder's own storage. This is the feed for always-on
/// telemetry services (`mnc-obsd`'s flight recorder and accuracy-drift
/// monitor) — implementations must be cheap and non-blocking, they run on
/// the estimation hot path.
pub trait RecordSink: Send + Sync + 'static {
    /// Called with each finished span.
    fn on_span(&self, _span: &SpanRecord) {}
    /// Called with each accuracy record (after `ts_ns` stamping).
    fn on_accuracy(&self, _rec: &AccuracyRecord) {}
}

// ---------------------------------------------------------------------------
// Lock-free record list (Treiber stack)
// ---------------------------------------------------------------------------

struct ListNode<T> {
    value: T,
    next: *mut ListNode<T>,
}

/// An append-only lock-free list: finished spans and accuracy records are
/// pushed with one compare-exchange; snapshots traverse without blocking
/// writers (nodes are only freed when the list is dropped).
pub(crate) struct LockFreeList<T> {
    head: AtomicPtr<ListNode<T>>,
}

// SAFETY: nodes are heap-allocated, reachable only through `head`, pushed
// with release ordering and read with acquire ordering; nothing is freed
// before `Drop`, so concurrent push + traverse never observes a dangling
// pointer.
unsafe impl<T: Send> Send for LockFreeList<T> {}
unsafe impl<T: Send + Sync> Sync for LockFreeList<T> {}

impl<T> LockFreeList<T> {
    fn new() -> Self {
        LockFreeList {
            head: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(ListNode {
            value,
            next: std::ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: `node` is exclusively ours until the CAS succeeds.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// Clones every record, newest first (callers re-sort by timestamp).
    fn collect(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::new();
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: nodes are never freed while the list is alive.
            let node = unsafe { &*cur };
            out.push(node.value.clone());
            cur = node.next;
        }
        out
    }

    fn len(&self) -> usize {
        let mut n = 0;
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            n += 1;
            cur = unsafe { (*cur).next };
        }
        n
    }
}

impl<T> Drop for LockFreeList<T> {
    fn drop(&mut self) {
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: `&mut self` means no concurrent access remains.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next;
        }
    }
}

// ---------------------------------------------------------------------------
// Record storage: unbounded (batch) or ring-bounded (services)
// ---------------------------------------------------------------------------

/// Backing storage for one record stream. Batch runs keep every record
/// (the append-only list); long-running services cap retention with a
/// [`RecordRing`] so memory stays O(capacity) forever.
pub(crate) enum RecordStore<T> {
    Unbounded(LockFreeList<T>),
    Bounded(RecordRing<T>),
}

impl<T: Clone + Send> RecordStore<T> {
    fn new(capacity: Option<usize>) -> Self {
        match capacity {
            Some(cap) => RecordStore::Bounded(RecordRing::new(cap)),
            None => RecordStore::Unbounded(LockFreeList::new()),
        }
    }

    fn push(&self, value: T) {
        match self {
            RecordStore::Unbounded(list) => list.push(value),
            RecordStore::Bounded(ring) => {
                ring.push(value);
            }
        }
    }

    /// Retained records, oldest first.
    fn collect(&self) -> Vec<T> {
        match self {
            RecordStore::Unbounded(list) => {
                let mut v = list.collect();
                v.reverse(); // the list is newest-first
                v
            }
            RecordStore::Bounded(ring) => ring.collect(),
        }
    }

    fn len(&self) -> usize {
        match self {
            RecordStore::Unbounded(list) => list.len(),
            RecordStore::Bounded(ring) => ring.len(),
        }
    }
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

static RECORDER_TOKENS: AtomicU64 = AtomicU64::new(1);

pub(crate) struct RecorderShared {
    /// Unique token distinguishing this recorder's spans in the per-thread
    /// parent tracking (two interleaved sessions must not cross-link).
    pub(crate) token: u64,
    pub(crate) epoch: Instant,
    pub(crate) next_span_id: AtomicU64,
    pub(crate) spans: RecordStore<SpanRecord>,
    pub(crate) accuracy: RecordStore<AccuracyRecord>,
    pub(crate) registry: MetricsRegistry,
    /// Ring capacity when bounded (`None` = keep everything).
    pub(crate) capacity: Option<usize>,
    /// Optional live tap, set once (see [`Recorder::set_sink`]).
    pub(crate) sink: OnceLock<Arc<dyn RecordSink>>,
}

/// The entry point: a cheap, cloneable handle that is either enabled (shared
/// state behind an `Arc`) or a no-op. All instrumented code takes a
/// `&Recorder` and works identically either way.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<RecorderShared>>,
}

impl Recorder {
    /// A recorder that records: spans, metrics, and accuracy telemetry all
    /// collect into shared, thread-safe state. Storage is unbounded — right
    /// for batch runs that export a full report at the end; long-running
    /// services should use [`Recorder::enabled_with_capacity`].
    pub fn enabled() -> Recorder {
        Self::build(None)
    }

    /// A recorder whose span and accuracy storage is a fixed-capacity
    /// overwrite ring ([`RecordRing`]): the most recent `capacity` records
    /// of each stream are retained in O(capacity) memory, forever. This is
    /// the mode for long-running services, where the unbounded recorder
    /// would grow without limit. Metrics are unaffected (the registry is
    /// bounded by its name set by construction).
    pub fn enabled_with_capacity(capacity: usize) -> Recorder {
        Self::build(Some(capacity.max(1)))
    }

    fn build(capacity: Option<usize>) -> Recorder {
        Recorder {
            inner: Some(Arc::new(RecorderShared {
                token: RECORDER_TOKENS.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                next_span_id: AtomicU64::new(1),
                spans: RecordStore::new(capacity),
                accuracy: RecordStore::new(capacity),
                registry: MetricsRegistry::new(),
                capacity,
                sink: OnceLock::new(),
            })),
        }
    }

    /// The no-op recorder: every call is a branch on `None` and nothing
    /// else — no clock reads, no allocation, no atomics.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether this recorder collects anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The span/accuracy ring capacity, or `None` for an unbounded (or
    /// disabled) recorder.
    pub fn ring_capacity(&self) -> Option<usize> {
        self.inner.as_ref().and_then(|s| s.capacity)
    }

    /// Installs a live [`RecordSink`] tap: every finished span and accuracy
    /// record is offered to the sink before it reaches storage. The sink
    /// can be set **once** per recorder; returns `false` when the recorder
    /// is disabled or a sink is already installed.
    pub fn set_sink(&self, sink: Arc<dyn RecordSink>) -> bool {
        match &self.inner {
            Some(s) => s.sink.set(sink).is_ok(),
            None => false,
        }
    }

    /// Whether a [`RecordSink`] is installed.
    pub fn has_sink(&self) -> bool {
        self.inner.as_ref().is_some_and(|s| s.sink.get().is_some())
    }

    /// Two handles to the same underlying recorder?
    pub fn same_as(&self, other: &Recorder) -> bool {
        match (&self.inner, &other.inner) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Opens a span; finish it by dropping the guard. Prefer the [`span!`]
    /// macro, which reads like the field list it sets.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard::open(self.inner.clone(), name)
    }

    /// Nanoseconds since the recorder was created (0 when disabled).
    pub fn elapsed_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| {
            u64::try_from(s.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
    }

    /// Records one accuracy observation (no-op when disabled). The record's
    /// `ts_ns` is stamped with the recorder clock if left at 0, and an
    /// installed [`RecordSink`] sees the record before storage.
    pub fn record_accuracy(&self, mut rec: AccuracyRecord) {
        if let Some(shared) = &self.inner {
            if rec.ts_ns == 0 {
                rec.ts_ns = self.elapsed_ns();
            }
            if let Some(sink) = shared.sink.get() {
                sink.on_accuracy(&rec);
            }
            shared.accuracy.push(rec);
        }
    }

    /// Handle to the named monotone counter (a no-op handle when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(s) => s.registry.counter(name),
            None => Counter::noop(),
        }
    }

    /// Handle to the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(s) => s.registry.gauge(name),
            None => Gauge::noop(),
        }
    }

    /// Handle to the named log-scale histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(s) => s.registry.histogram(name),
            None => Histogram::noop(),
        }
    }

    /// The metrics registry, when enabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|s| &s.registry)
    }

    /// All retained finished spans, in start order (the newest `capacity`
    /// for a bounded recorder).
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(s) => {
                let mut v = s.spans.collect();
                v.sort_by_key(|r| (r.start_ns, r.id));
                v
            }
            None => Vec::new(),
        }
    }

    /// Number of retained finished spans (cheap-ish; walks the list).
    pub fn span_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |s| s.spans.len())
    }

    /// All retained accuracy records, in emission order.
    pub fn accuracy(&self) -> Vec<AccuracyRecord> {
        match &self.inner {
            Some(s) => s.accuracy.collect(),
            None => Vec::new(),
        }
    }

    /// Snapshot of spans, metrics, and accuracy records, ready to export.
    pub fn report(&self) -> Report {
        Report {
            spans: self.spans(),
            metrics: self.registry().map(|r| r.snapshot()).unwrap_or_default(),
            accuracy: self.accuracy(),
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(s) => write!(f, "Recorder(enabled, {} spans)", s.spans.len()),
            None => write!(f, "Recorder(disabled)"),
        }
    }
}

/// Opens a span on a recorder, optionally presetting fields:
/// `span!(rec, "estimate", op = "matmul", nnz_in = 42)`. Accepted fields are
/// the [`SpanGuard`] builder methods: `op`, `nnz_in`, `nnz_out`, `bytes`.
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr $(,)?) => {
        $rec.span($name)
    };
    ($rec:expr, $name:expr, $($field:ident = $value:expr),+ $(,)?) => {{
        #[allow(unused_mut)]
        let mut guard = $rec.span($name);
        $(guard = guard.$field($value);)+
        guard
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_free_and_empty() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        {
            let _g = span!(rec, "estimate", op = "matmul", nnz_in = 3);
        }
        rec.counter("x").incr();
        rec.histogram("h").record(5);
        rec.record_accuracy(AccuracyRecord::new("B1.1", "matmul", "MNC", 0.5, 0.5));
        assert!(rec.spans().is_empty());
        assert!(rec.accuracy().is_empty());
        assert!(rec.registry().is_none());
        let report = rec.report();
        assert!(report.spans.is_empty() && report.accuracy.is_empty());
    }

    #[test]
    fn spans_record_fields_and_order() {
        let rec = Recorder::enabled();
        {
            let _g = span!(
                rec,
                "build",
                op = "MNC",
                nnz_in = 10,
                nnz_out = 10,
                bytes = 80
            );
        }
        {
            let _g = span!(rec, "estimate", op = "matmul");
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "build");
        assert_eq!(spans[0].op.as_deref(), Some("MNC"));
        assert_eq!(spans[0].nnz_in, Some(10));
        assert_eq!(spans[0].synopsis_bytes, Some(80));
        assert_eq!(spans[1].name, "estimate");
        assert!(spans[1].start_ns >= spans[0].start_ns);
    }

    #[test]
    fn nesting_links_parents_within_a_thread() {
        let rec = Recorder::enabled();
        {
            let outer = rec.span("outer");
            let outer_id = outer.id();
            {
                let inner = rec.span("inner");
                assert_eq!(inner.parent(), outer_id);
                let inner_id = inner.id();
                let leaf = rec.span("leaf");
                assert_eq!(leaf.parent(), inner_id);
            }
            // Back at outer depth: a sibling of "inner".
            let sibling = rec.span("sibling");
            assert_eq!(sibling.parent(), outer_id);
        }
        let spans = rec.spans();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(outer.parent, 0, "top-level span has no parent");
    }

    #[test]
    fn two_recorders_do_not_cross_link() {
        let a = Recorder::enabled();
        let b = Recorder::enabled();
        let _ga = a.span("a-outer");
        let gb = b.span("b-inner");
        // b's span must not claim a's span as parent: different recorders.
        assert_eq!(gb.parent(), 0);
    }

    #[test]
    fn accuracy_channel_round_trips() {
        let rec = Recorder::enabled();
        rec.record_accuracy(AccuracyRecord::new("B1.2", "matmul", "MNC", 0.1, 0.2));
        rec.record_accuracy(AccuracyRecord::new("B1.3", "ew_add", "DMap", 0.3, 0.3));
        let acc = rec.accuracy();
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[0].case, "B1.2");
        assert!(acc[0].relative_error > 1.9 && acc[0].relative_error < 2.1);
        assert_eq!(acc[1].relative_error, 1.0);
    }

    #[test]
    fn lock_free_list_survives_concurrent_pushes() {
        let list = LockFreeList::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let list = &list;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        list.push(t * 1000 + i);
                    }
                });
            }
        });
        let mut all = list.collect();
        assert_eq!(all.len(), 4000);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "no push may be lost or duplicated");
    }

    #[test]
    fn bounded_recorder_retains_the_newest_spans() {
        let rec = Recorder::enabled_with_capacity(8);
        assert_eq!(rec.ring_capacity(), Some(8));
        for i in 0..100u64 {
            let _g = span!(rec, "work", nnz_in = i);
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 8, "ring caps retention");
        // Span ids are 1-based and monotone: the retained ones are 93..=100.
        assert!(spans.iter().all(|s| s.id > 92), "{spans:?}");
        assert_eq!(rec.span_count(), 8);
        // Accuracy is bounded by the same capacity.
        for i in 0..20 {
            rec.record_accuracy(AccuracyRecord::new(
                format!("c{i}"),
                "matmul",
                "MNC",
                0.1,
                0.1,
            ));
        }
        let acc = rec.accuracy();
        assert_eq!(acc.len(), 8);
        assert_eq!(acc.last().unwrap().case, "c19", "newest records retained");
        // Unbounded recorders report no capacity.
        assert_eq!(Recorder::enabled().ring_capacity(), None);
        assert_eq!(Recorder::disabled().ring_capacity(), None);
    }

    #[test]
    fn sink_sees_spans_and_accuracy_before_storage() {
        use std::sync::atomic::AtomicUsize;

        #[derive(Default)]
        struct CountingSink {
            spans: AtomicUsize,
            accuracy: AtomicUsize,
        }
        impl RecordSink for CountingSink {
            fn on_span(&self, span: &SpanRecord) {
                assert!(span.dur_ns > 0 || span.start_ns > 0 || span.id > 0);
                self.spans.fetch_add(1, Ordering::Relaxed);
            }
            fn on_accuracy(&self, rec: &AccuracyRecord) {
                assert!(rec.ts_ns > 0, "sink runs after ts stamping");
                self.accuracy.fetch_add(1, Ordering::Relaxed);
            }
        }

        let rec = Recorder::enabled();
        assert!(!rec.has_sink());
        let sink = Arc::new(CountingSink::default());
        assert!(rec.set_sink(Arc::clone(&sink) as Arc<dyn RecordSink>));
        assert!(rec.has_sink());
        // Second install is rejected (set-once semantics).
        assert!(!rec.set_sink(Arc::new(CountingSink::default())));
        {
            let _a = rec.span("estimate");
            let _b = rec.span("build");
        }
        rec.record_accuracy(AccuracyRecord::new("B1.1", "matmul", "MNC", 0.5, 0.25));
        assert_eq!(sink.spans.load(Ordering::Relaxed), 2);
        assert_eq!(sink.accuracy.load(Ordering::Relaxed), 1);
        // The recorder's own storage still has everything.
        assert_eq!(rec.spans().len(), 2);
        assert_eq!(rec.accuracy().len(), 1);
        // A disabled recorder rejects sinks.
        assert!(!Recorder::disabled().set_sink(Arc::new(CountingSink::default())));
    }

    #[test]
    fn recorder_identity() {
        let a = Recorder::enabled();
        let b = a.clone();
        assert!(a.same_as(&b));
        assert!(!a.same_as(&Recorder::enabled()));
        assert!(Recorder::disabled().same_as(&Recorder::disabled()));
    }
}
