//! Hierarchical spans: RAII guards that measure wall time plus estimation
//! payload (op, nnz in/out, synopsis bytes) and merge into the shared
//! recorder with one lock-free push on drop.
//!
//! Parent links are tracked per thread with a thread-local `(recorder token,
//! span id)` cell: opening a span saves the cell and installs itself;
//! dropping restores it. Spans of *different* recorders interleaved on one
//! thread never cross-link (the token mismatch yields a root span), and
//! spans on different threads are roots of their own trees — exactly what
//! the Chrome trace view renders as per-thread tracks.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::RecorderShared;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Recorder-unique span id (1-based).
    pub id: u64,
    /// Id of the enclosing span on the same thread and recorder, or 0.
    pub parent: u64,
    /// Static span name (`"build"`, `"estimate"`, `"propagate"`, ...).
    pub name: &'static str,
    /// Operation or estimator label (`"matmul"`, `"MNC"`).
    pub op: Option<String>,
    /// Small dense per-thread index (stable within a process).
    pub thread: u64,
    /// Start, in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Non-zeros consumed (sum over inputs), when known.
    pub nnz_in: Option<u64>,
    /// Non-zeros produced (or implied by the estimate), when known.
    pub nnz_out: Option<u64>,
    /// Bytes of the synopsis built/propagated, when known.
    pub synopsis_bytes: Option<u64>,
    /// Net live-heap change over the span (allocation tracking builds only).
    pub alloc_net: Option<i64>,
    /// Gross bytes allocated inside the span (allocation tracking builds
    /// only).
    pub alloc_bytes: Option<u64>,
    /// Trace ID of the request this span belongs to, inherited from the
    /// thread's active [`RequestContext`](crate::RequestContext). `Copy`,
    /// so carrying it keeps span clones allocation-free.
    pub trace: Option<crate::request::TraceId>,
}

static THREAD_SEQ: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Dense per-thread index for trace tracks (OS thread ids are neither
    /// small nor stable across platforms).
    static THREAD_INDEX: u64 = THREAD_SEQ.fetch_add(1, Ordering::Relaxed);
    /// `(recorder token, span id)` of the innermost open span on this
    /// thread; `(0, 0)` at top level.
    static CURRENT_SPAN: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

fn thread_index() -> u64 {
    THREAD_INDEX.with(|t| *t)
}

/// An open span. Closing happens on drop; the builder methods annotate the
/// payload and are no-ops on a disabled recorder (no allocation either).
pub struct SpanGuard {
    shared: Option<Arc<RecorderShared>>,
    start: Option<Instant>,
    record: Option<SpanRecord>,
    /// Thread-local state to restore on drop.
    saved: (u64, u64),
    /// Allocation counters at open (alloc-track builds only; the branch on
    /// [`crate::alloc::tracking_active`] is a compile-time constant).
    alloc0: Option<crate::alloc::AllocScope>,
}

impl SpanGuard {
    pub(crate) fn open(shared: Option<Arc<RecorderShared>>, name: &'static str) -> SpanGuard {
        let Some(shared) = shared else {
            return SpanGuard {
                shared: None,
                start: None,
                record: None,
                saved: (0, 0),
                alloc0: None,
            };
        };
        let id = shared.next_span_id.fetch_add(1, Ordering::Relaxed);
        let saved = CURRENT_SPAN.with(|c| c.replace((shared.token, id)));
        let parent = if saved.0 == shared.token { saved.1 } else { 0 };
        let now = Instant::now();
        let start_ns =
            u64::try_from(now.duration_since(shared.epoch).as_nanos()).unwrap_or(u64::MAX);
        SpanGuard {
            record: Some(SpanRecord {
                id,
                parent,
                name,
                op: None,
                thread: thread_index(),
                start_ns,
                dur_ns: 0,
                nnz_in: None,
                nnz_out: None,
                synopsis_bytes: None,
                alloc_net: None,
                alloc_bytes: None,
                trace: crate::request::current_trace(),
            }),
            shared: Some(shared),
            start: Some(now),
            saved,
            alloc0: if crate::alloc::tracking_active() {
                Some(crate::alloc::AllocScope::start())
            } else {
                None
            },
        }
    }

    /// Labels the span with an operation or estimator name.
    pub fn op(mut self, op: impl Into<String>) -> Self {
        if let Some(r) = &mut self.record {
            r.op = Some(op.into());
        }
        self
    }

    /// Non-zeros consumed.
    pub fn nnz_in(mut self, nnz: u64) -> Self {
        if let Some(r) = &mut self.record {
            r.nnz_in = Some(nnz);
        }
        self
    }

    /// Non-zeros produced.
    pub fn nnz_out(mut self, nnz: u64) -> Self {
        if let Some(r) = &mut self.record {
            r.nnz_out = Some(nnz);
        }
        self
    }

    /// Synopsis bytes.
    pub fn bytes(mut self, bytes: u64) -> Self {
        if let Some(r) = &mut self.record {
            r.synopsis_bytes = Some(bytes);
        }
        self
    }

    /// Sets the produced non-zeros after the fact (for results only known
    /// once the work inside the span finished).
    pub fn set_nnz_out(&mut self, nnz: u64) {
        if let Some(r) = &mut self.record {
            r.nnz_out = Some(nnz);
        }
    }

    /// Sets the synopsis bytes after the fact.
    pub fn set_bytes(&mut self, bytes: u64) {
        if let Some(r) = &mut self.record {
            r.synopsis_bytes = Some(bytes);
        }
    }

    /// The span's id (0 when the recorder is disabled).
    pub fn id(&self) -> u64 {
        self.record.as_ref().map_or(0, |r| r.id)
    }

    /// The span's parent id (0 when root or disabled).
    pub fn parent(&self) -> u64 {
        self.record.as_ref().map_or(0, |r| r.parent)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let (Some(shared), Some(start), Some(mut record)) =
            (self.shared.take(), self.start, self.record.take())
        else {
            return; // disabled recorder: nothing was opened
        };
        CURRENT_SPAN.with(|c| c.set(self.saved));
        record.dur_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(scope) = &self.alloc0 {
            let delta = scope.measure();
            record.alloc_net = Some(delta.net_bytes);
            record.alloc_bytes = Some(delta.gross_bytes);
        }
        if let Some(sink) = shared.sink.get() {
            sink.on_span(&record);
        }
        shared.spans.push(record);
    }
}

#[cfg(test)]
mod tests {
    use crate::Recorder;

    #[test]
    fn duration_covers_the_guard_lifetime() {
        let rec = Recorder::enabled();
        {
            let _g = rec.span("work");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert!(
            spans[0].dur_ns >= 1_000_000,
            "slept 2ms, got {}",
            spans[0].dur_ns
        );
    }

    #[test]
    fn late_setters_apply() {
        let rec = Recorder::enabled();
        {
            let mut g = rec.span("propagate").op("matmul");
            g.set_nnz_out(99);
            g.set_bytes(1024);
        }
        let s = &rec.spans()[0];
        assert_eq!(s.nnz_out, Some(99));
        assert_eq!(s.synopsis_bytes, Some(1024));
    }

    #[test]
    fn alloc_deltas_follow_the_feature_gate() {
        let rec = Recorder::enabled();
        {
            let _g = rec.span("allocating");
            let _kept: Vec<u64> = vec![0; 2048];
        }
        let s = &rec.spans()[0];
        if crate::alloc::tracking_active() {
            assert!(s.alloc_bytes.expect("tracked builds stamp gross bytes") >= 2048 * 8);
            assert!(s.alloc_net.is_some());
        } else {
            assert_eq!(s.alloc_bytes, None, "untracked builds stamp nothing");
            assert_eq!(s.alloc_net, None);
        }
    }

    #[test]
    fn threads_get_distinct_tracks_and_local_nesting() {
        let rec = Recorder::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = rec.clone();
                scope.spawn(move || {
                    let outer = rec.span("outer");
                    let outer_id = outer.id();
                    let inner = rec.span("inner");
                    assert_eq!(inner.parent(), outer_id);
                });
            }
        });
        let spans = rec.spans();
        assert_eq!(spans.len(), 8);
        let threads: std::collections::HashSet<u64> = spans
            .iter()
            .filter(|s| s.name == "outer")
            .map(|s| s.thread)
            .collect();
        assert_eq!(threads.len(), 4, "each worker thread has its own track");
        for inner in spans.iter().filter(|s| s.name == "inner") {
            let parent = spans.iter().find(|s| s.id == inner.parent).unwrap();
            assert_eq!(parent.name, "outer");
            assert_eq!(parent.thread, inner.thread, "nesting is thread-local");
        }
    }
}
