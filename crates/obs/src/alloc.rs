//! Heap-allocation tracking: a counting [`GlobalAlloc`] wrapper around the
//! system allocator, feature-gated behind `alloc-track`.
//!
//! The paper's Figure 9 argues synopsis *size* is the deciding constraint at
//! scale; the analytic formulas in `mnc_estimators::analysis` state what the
//! sizes should be, and this module lets the benchmark harness *measure*
//! them: with the `alloc-track` feature enabled, every allocation in the
//! process updates four atomic counters (live bytes, peak live bytes, gross
//! allocated bytes, allocation count), and every [`crate::span::SpanRecord`]
//! additionally carries the net and gross allocation delta over its
//! lifetime.
//!
//! ## Zero cost when disabled
//!
//! The [`CountingAlloc`] type always exists, but the `#[global_allocator]`
//! static is only emitted under `cfg(feature = "alloc-track")`. With the
//! feature off, [`tracking_active`] is a `const false`: the span fast path
//! branches on a compile-time constant, the counters are never touched, and
//! allocation goes straight to the system allocator — bit-invariance and the
//! ≤2 % overhead budget are unaffected (asserted by the `obs_invariance`
//! property tests, which CI also runs with the feature enabled).
//!
//! Counter updates use relaxed atomics: totals are exact, and `peak` is
//! exact under single-threaded allocation (the benchmark harness measures
//! single-threaded phases); under concurrency it is a lower bound within one
//! racing allocation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live (currently allocated) heap bytes.
static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`CURRENT_BYTES`].
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
/// Gross bytes ever allocated (monotone).
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
/// Number of allocations ever made (monotone).
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

#[inline]
fn on_alloc(size: usize) {
    let size = size as u64;
    TOTAL_BYTES.fetch_add(size, Ordering::Relaxed);
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    let live = CURRENT_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn on_dealloc(size: usize) {
    CURRENT_BYTES.fetch_sub(size as u64, Ordering::Relaxed);
}

/// A [`GlobalAlloc`] that counts every allocation before delegating to
/// [`System`]. Install it as the global allocator (the `alloc-track`
/// feature does this inside `mnc-obs`) to activate the counters.
pub struct CountingAlloc;

// SAFETY: every method delegates to `System` with the caller's layout
// unchanged; the counter updates have no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // Account as free-then-alloc so gross bytes reflect the copy.
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

#[cfg(feature = "alloc-track")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Whether allocation tracking is compiled in (the `alloc-track` feature).
/// A compile-time constant, so `if tracking_active()` fast paths vanish in
/// untracked builds.
#[inline]
pub const fn tracking_active() -> bool {
    cfg!(feature = "alloc-track")
}

/// Live heap bytes right now (0 in untracked builds).
#[inline]
pub fn current_bytes() -> u64 {
    if tracking_active() {
        CURRENT_BYTES.load(Ordering::Relaxed)
    } else {
        0
    }
}

/// High-water mark of live heap bytes (0 in untracked builds). Reset with
/// [`reset_peak`].
#[inline]
pub fn peak_bytes() -> u64 {
    if tracking_active() {
        PEAK_BYTES.load(Ordering::Relaxed)
    } else {
        0
    }
}

/// Gross bytes ever allocated — monotone (0 in untracked builds).
#[inline]
pub fn total_allocated_bytes() -> u64 {
    if tracking_active() {
        TOTAL_BYTES.load(Ordering::Relaxed)
    } else {
        0
    }
}

/// Number of allocations ever made — monotone (0 in untracked builds).
#[inline]
pub fn total_allocations() -> u64 {
    if tracking_active() {
        TOTAL_ALLOCS.load(Ordering::Relaxed)
    } else {
        0
    }
}

/// Resets the peak to the current live level, so a following measurement
/// observes the high-water mark of *its* region only.
pub fn reset_peak() {
    if tracking_active() {
        PEAK_BYTES.store(CURRENT_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Snapshot of the counters at one instant (all zero in untracked builds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Live heap bytes.
    pub current_bytes: u64,
    /// Peak live heap bytes since start (or the last [`reset_peak`]).
    pub peak_bytes: u64,
    /// Gross bytes ever allocated.
    pub total_bytes: u64,
    /// Allocations ever made.
    pub total_allocs: u64,
}

/// Takes a counter snapshot.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        current_bytes: current_bytes(),
        peak_bytes: peak_bytes(),
        total_bytes: total_allocated_bytes(),
        total_allocs: total_allocations(),
    }
}

/// Allocation delta over a region of code, from an [`AllocScope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocDelta {
    /// Net live-byte change (allocations minus frees); negative when the
    /// region released more than it kept.
    pub net_bytes: i64,
    /// Gross bytes allocated inside the region.
    pub gross_bytes: u64,
    /// Allocations made inside the region.
    pub allocs: u64,
}

/// Measures the allocation delta of a code region:
///
/// ```
/// let scope = mnc_obs::alloc::AllocScope::start();
/// let v: Vec<u64> = (0..100).collect();
/// let delta = scope.measure();
/// if mnc_obs::alloc::tracking_active() {
///     assert!(delta.gross_bytes >= 800);
/// } else {
///     assert_eq!(delta.gross_bytes, 0);
/// }
/// drop(v);
/// ```
///
/// In untracked builds every measurement is zero. Deltas are exact for
/// single-threaded regions; concurrent allocator traffic from other threads
/// is attributed to whichever scope is open on *any* thread (the counters
/// are process-global).
#[derive(Debug, Clone, Copy)]
pub struct AllocScope {
    start_current: u64,
    start_total_bytes: u64,
    start_total_allocs: u64,
}

impl AllocScope {
    /// Opens a measurement scope at the current counter values.
    pub fn start() -> AllocScope {
        AllocScope {
            start_current: current_bytes(),
            start_total_bytes: total_allocated_bytes(),
            start_total_allocs: total_allocations(),
        }
    }

    /// The allocation delta since [`AllocScope::start`].
    pub fn measure(&self) -> AllocDelta {
        AllocDelta {
            net_bytes: current_bytes() as i64 - self.start_current as i64,
            gross_bytes: total_allocated_bytes().saturating_sub(self.start_total_bytes),
            allocs: total_allocations().saturating_sub(self.start_total_allocs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "alloc-track")]
    #[test]
    fn counters_observe_allocations() {
        let before = snapshot();
        let v: Vec<u64> = Vec::with_capacity(1 << 12);
        let after = snapshot();
        assert!(tracking_active());
        assert!(
            after.total_bytes >= before.total_bytes + (1 << 12) * 8,
            "gross bytes must cover the 32 KiB vector"
        );
        assert!(after.total_allocs > before.total_allocs);
        assert!(after.current_bytes >= before.current_bytes + (1 << 12) * 8);
        assert!(after.peak_bytes >= after.current_bytes);
        drop(v);
        assert!(current_bytes() < after.current_bytes, "dealloc subtracts");
    }

    #[cfg(feature = "alloc-track")]
    #[test]
    fn scope_measures_net_and_gross() {
        let scope = AllocScope::start();
        let kept: Vec<u64> = vec![0; 1000];
        {
            let dropped: Vec<u64> = vec![0; 500];
            assert_eq!(dropped.len(), 500);
        }
        let d = scope.measure();
        assert!(d.gross_bytes >= 1500 * 8, "gross {}", d.gross_bytes);
        assert!(d.net_bytes >= 1000 * 8, "net {}", d.net_bytes);
        assert!(
            (d.net_bytes as u64) < d.gross_bytes,
            "dropped vec is gross-only"
        );
        assert!(d.allocs >= 2);
        drop(kept);
    }

    #[cfg(feature = "alloc-track")]
    #[test]
    fn peak_resets_to_current() {
        let _big: Vec<u64> = vec![0; 4096];
        drop(_big);
        reset_peak();
        assert_eq!(peak_bytes(), current_bytes());
        let _bigger: Vec<u64> = vec![0; 8192];
        assert!(peak_bytes() >= current_bytes());
    }

    #[cfg(not(feature = "alloc-track"))]
    #[test]
    fn untracked_builds_report_zero() {
        assert!(!tracking_active());
        let scope = AllocScope::start();
        let _v: Vec<u64> = vec![0; 1000];
        let d = scope.measure();
        assert_eq!(d, AllocDelta::default());
        assert_eq!(snapshot(), AllocSnapshot::default());
    }
}
