//! Time attribution: "where the microseconds go", computed from the span
//! tree.
//!
//! A span's *total* time includes everything nested under it, so summing
//! totals across a tree double-counts. Attribution instead charges each span
//! its **self time** — duration minus the duration of its direct children —
//! and aggregates by `(name, op)`. Self times over one tree sum to the
//! root's wall clock (modulo clock jitter), so the rendered percentages
//! answer the question the flat table cannot: which *phase* actually spends
//! the time, not which phase merely encloses it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::span::SpanRecord;

/// Aggregated attribution for one `(name, op)` group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributionRow {
    /// Span name (`"build"`, `"estimate"`, ...).
    pub name: String,
    /// Operation/estimator label, empty when unlabeled.
    pub op: String,
    /// Spans in the group.
    pub count: u64,
    /// Total (inclusive) nanoseconds.
    pub total_ns: u64,
    /// Self (exclusive) nanoseconds: total minus direct children.
    pub self_ns: u64,
    /// Gross bytes allocated in the group's spans (tracked builds only).
    pub alloc_bytes: u64,
}

/// Computes per-`(name, op)` attribution rows, sorted by descending self
/// time. Children whose recorded duration exceeds the parent's (clock
/// jitter on very short spans) saturate the parent's self time at 0 instead
/// of going negative.
pub fn attribute(spans: &[SpanRecord]) -> Vec<AttributionRow> {
    let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
    for s in spans {
        if s.parent != 0 {
            *child_ns.entry(s.parent).or_default() += s.dur_ns;
        }
    }
    let mut groups: BTreeMap<(String, String), AttributionRow> = BTreeMap::new();
    for s in spans {
        let self_ns = s
            .dur_ns
            .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
        let row = groups
            .entry((s.name.to_string(), s.op.clone().unwrap_or_default()))
            .or_insert_with(|| AttributionRow {
                name: s.name.to_string(),
                op: s.op.clone().unwrap_or_default(),
                count: 0,
                total_ns: 0,
                self_ns: 0,
                alloc_bytes: 0,
            });
        row.count += 1;
        row.total_ns += s.dur_ns;
        row.self_ns += self_ns;
        row.alloc_bytes += s.alloc_bytes.unwrap_or(0);
    }
    let mut rows: Vec<AttributionRow> = groups.into_values().collect();
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
    rows
}

/// Renders the attribution table. Percentages are of the summed self time
/// (= the wall clock actually attributed).
pub fn render_attribution(spans: &[SpanRecord]) -> String {
    let rows = attribute(spans);
    let total_self: u64 = rows.iter().map(|r| r.self_ns).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:<14} {:>7} {:>12} {:>12} {:>6} {:>12}",
        "phase", "op", "count", "total µs", "self µs", "self%", "alloc KiB"
    );
    for r in &rows {
        let pct = if total_self == 0 {
            0.0
        } else {
            100.0 * r.self_ns as f64 / total_self as f64
        };
        let _ = writeln!(
            out,
            "{:<14} {:<14} {:>7} {:>12.1} {:>12.1} {:>5.1}% {:>12.1}",
            r.name,
            if r.op.is_empty() { "-" } else { &r.op },
            r.count,
            r.total_ns as f64 / 1e3,
            r.self_ns as f64 / 1e3,
            pct,
            r.alloc_bytes as f64 / 1024.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, name: &'static str, op: Option<&str>, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            op: op.map(String::from),
            thread: 0,
            start_ns: id * 10,
            dur_ns,
            nnz_in: None,
            nnz_out: None,
            synopsis_bytes: None,
            alloc_net: None,
            alloc_bytes: None,
            trace: None,
        }
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        // root(100) -> child(60) -> leaf(25): self = 40 / 35 / 25.
        let spans = vec![
            span(1, 0, "root", None, 100),
            span(2, 1, "child", None, 60),
            span(3, 2, "leaf", None, 25),
        ];
        let rows = attribute(&spans);
        let find = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert_eq!(find("root").self_ns, 40);
        assert_eq!(find("child").self_ns, 35);
        assert_eq!(find("leaf").self_ns, 25);
        // Self times re-assemble the root's wall clock.
        assert_eq!(rows.iter().map(|r| r.self_ns).sum::<u64>(), 100);
    }

    #[test]
    fn groups_by_name_and_op_and_sorts_by_self_time() {
        let spans = vec![
            span(1, 0, "build", Some("MNC"), 10),
            span(2, 0, "build", Some("MNC"), 30),
            span(3, 0, "build", Some("Bitset"), 5),
            span(4, 0, "estimate", Some("MNC"), 100),
        ];
        let rows = attribute(&spans);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].name, "estimate");
        assert_eq!(rows[1].op, "MNC");
        assert_eq!(rows[1].count, 2);
        assert_eq!(rows[1].total_ns, 40);
    }

    #[test]
    fn jittered_child_saturates_instead_of_underflowing() {
        let spans = vec![span(1, 0, "root", None, 10), span(2, 1, "child", None, 15)];
        let rows = attribute(&spans);
        let root = rows.iter().find(|r| r.name == "root").unwrap();
        assert_eq!(root.self_ns, 0);
    }

    #[test]
    fn render_includes_percentages() {
        let spans = vec![
            span(1, 0, "root", Some("chain"), 100),
            span(2, 1, "step", None, 75),
        ];
        let table = render_attribution(&spans);
        assert!(table.contains("self%"));
        assert!(table.contains("75.0%"));
        assert!(table.contains("25.0%"));
        // Empty input still renders a header.
        assert!(render_attribution(&[]).contains("phase"));
    }
}
