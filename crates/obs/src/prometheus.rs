//! Prometheus text-format exposition for [`MetricSnapshot`] — the fourth
//! exporter next to the human table, JSONL, and Chrome trace.
//!
//! Rendering follows the [text exposition format 0.0.4]: one `# TYPE` line
//! per metric, counters suffixed `_total`, histograms exposed as cumulative
//! `_bucket{le="..."}` series with `_sum`/`_count`. Metric names are
//! sanitized to the `[a-zA-Z_:][a-zA-Z0-9_:]*` grammar (the registry uses
//! dotted names like `cache.hit`), and label values are escaped per the
//! spec (`\\`, `\"`, `\n`).
//!
//! The same [`MetricsRegistry`](crate::metrics::MetricsRegistry) a session
//! records into can therefore be scraped by a future serving layer without
//! any re-instrumentation: render the snapshot on each scrape.
//!
//! [text exposition format 0.0.4]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use std::fmt::Write as _;

use crate::metrics::{bucket_upper_bound, LatencyHisto, MetricSnapshot, NBUCKETS};

/// Sanitizes a registry metric name into the Prometheus grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every invalid character becomes `_`, and a
/// leading digit gets a `_` prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if valid {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Splits a registry name carrying encoded labels — `base{k=v,k=v}` — into
/// the base name and its label pairs. The registry itself is label-unaware
/// (a labeled series is just a distinct name), so this is where per-series
/// labels such as `served.requests{endpoint=/v1/estimate,method=POST}`
/// become real Prometheus labels. A name without a well-formed trailing
/// block is returned whole with no labels (and the sanitizer then mangles
/// any stray braces, as before).
pub fn split_labeled_name(name: &str) -> (&str, Vec<(&str, &str)>) {
    let Some(open) = name.find('{') else {
        return (name, Vec::new());
    };
    let Some(stripped) = name.strip_suffix('}') else {
        return (name, Vec::new());
    };
    let base = &name[..open];
    let inner = &stripped[open + 1..];
    if base.is_empty() {
        return (name, Vec::new());
    }
    let mut labels = Vec::new();
    if inner.is_empty() {
        return (base, labels);
    }
    for pair in inner.split(',') {
        match pair.split_once('=') {
            Some((k, v)) if !k.is_empty() => labels.push((k, v)),
            _ => return (name, Vec::new()),
        }
    }
    (base, labels)
}

/// Global labels followed by the series' own encoded labels, as one block.
fn merged_label_block(global: &[(&str, &str)], encoded: &[(&str, &str)]) -> String {
    if encoded.is_empty() {
        return label_block(global);
    }
    let mut all: Vec<(&str, &str)> = Vec::with_capacity(global.len() + encoded.len());
    all.extend_from_slice(global);
    all.extend_from_slice(encoded);
    label_block(&all)
}

/// Renders a `{k="v",...}` label block (empty string for no labels).
fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_metric_name(k), escape_label_value(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Like [`label_block`] but with an extra `le` label appended (histogram
/// bucket lines).
fn label_block_with_le(labels: &[(&str, &str)], le: &str) -> String {
    let mut inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_metric_name(k), escape_label_value(v)))
        .collect();
    inner.push(format!("le=\"{le}\""));
    format!("{{{}}}", inner.join(","))
}

fn render_histogram(out: &mut String, name: &str, labels: &[(&str, &str)], h: &LatencyHisto) {
    // Cumulative counts over the log₂ buckets; empty buckets are elided
    // (cumulativeness is preserved — `le` bounds stay increasing), the
    // mandatory `+Inf` bucket always closes the series.
    let mut cum = 0u64;
    for k in 0..NBUCKETS {
        let c = h.buckets()[k];
        if c == 0 {
            continue;
        }
        cum += c;
        let _ = writeln!(
            out,
            "{name}_bucket{} {cum}",
            label_block_with_le(labels, &bucket_upper_bound(k).to_string())
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        label_block_with_le(labels, "+Inf"),
        h.count()
    );
    let _ = writeln!(out, "{name}_sum{} {}", label_block(labels), h.sum());
    let _ = writeln!(out, "{name}_count{} {}", label_block(labels), h.count());
}

/// Renders a snapshot in the Prometheus text exposition format. `prefix` is
/// prepended to every (sanitized) metric name; `labels` are attached to
/// every sample. Registry names of the form `base{k=v,...}` become labeled
/// series of `base` (see [`split_labeled_name`]); their `# TYPE` line is
/// emitted once per base name (the snapshot's BTreeMap ordering keeps a
/// base's series adjacent).
pub fn render_prometheus(snap: &MetricSnapshot, prefix: &str, labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    let mut last_type: Option<String> = None;
    let mut type_line = |out: &mut String, n: &str, kind: &str| {
        if last_type.as_deref() != Some(n) {
            let _ = writeln!(out, "# TYPE {n} {kind}");
            last_type = Some(n.to_string());
        }
    };
    for (name, v) in &snap.counters {
        let (base, encoded) = split_labeled_name(name);
        let mut n = format!("{prefix}{}", sanitize_metric_name(base));
        // Counters conventionally end in `_total`.
        if !n.ends_with("_total") {
            n.push_str("_total");
        }
        type_line(&mut out, &n, "counter");
        let _ = writeln!(out, "{n}{} {v}", merged_label_block(labels, &encoded));
    }
    for (name, v) in &snap.gauges {
        let (base, encoded) = split_labeled_name(name);
        let n = format!("{prefix}{}", sanitize_metric_name(base));
        type_line(&mut out, &n, "gauge");
        let _ = writeln!(out, "{n}{} {v}", merged_label_block(labels, &encoded));
    }
    for (name, h) in &snap.histograms {
        let (base, encoded) = split_labeled_name(name);
        let n = format!("{prefix}{}", sanitize_metric_name(base));
        type_line(&mut out, &n, "histogram");
        if encoded.is_empty() {
            render_histogram(&mut out, &n, labels, h);
        } else {
            let mut all: Vec<(&str, &str)> = Vec::with_capacity(labels.len() + encoded.len());
            all.extend_from_slice(labels);
            all.extend_from_slice(&encoded);
            render_histogram(&mut out, &n, &all, h);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_snapshot() -> MetricSnapshot {
        let reg = MetricsRegistry::new();
        reg.counter("cache.hit").add(7);
        reg.gauge("cache.bytes_resident").set(-12);
        let h = reg.histogram("estimate_ns");
        h.record(0);
        h.record(3);
        h.record(3);
        h.record(900);
        reg.snapshot()
    }

    #[test]
    fn name_sanitization() {
        assert_eq!(sanitize_metric_name("cache.hit"), "cache_hit");
        assert_eq!(sanitize_metric_name("b2/MNC err"), "b2_MNC_err");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_metric_name("µs"), "_s");
    }

    #[test]
    fn label_value_escaping() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let block = label_block(&[("run id", "x\"1\"")]);
        assert_eq!(block, "{run_id=\"x\\\"1\\\"\"}");
    }

    #[test]
    fn counters_are_total_suffixed_and_monotone_across_snapshots() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("cache.hit");
        c.add(3);
        let first = render_prometheus(&reg.snapshot(), "mnc_", &[]);
        assert!(first.contains("# TYPE mnc_cache_hit_total counter"));
        assert!(first.contains("mnc_cache_hit_total 3"));
        c.add(2);
        let second = render_prometheus(&reg.snapshot(), "mnc_", &[]);
        let value = |s: &str| -> u64 {
            s.lines()
                .find(|l| l.starts_with("mnc_cache_hit_total "))
                .and_then(|l| l.split(' ').nth(1))
                .and_then(|v| v.parse().ok())
                .expect("counter sample present")
        };
        assert!(value(&second) > value(&first), "counter went backwards");
        assert_eq!(value(&second), 5);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_with_inf() {
        let text = render_prometheus(&sample_snapshot(), "mnc_", &[]);
        let bucket_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("mnc_estimate_ns_bucket"))
            .collect();
        assert!(bucket_lines.len() >= 2);
        // Cumulative counts must be non-decreasing, ending at the total.
        let counts: Vec<u64> = bucket_lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 4);
        assert!(bucket_lines.last().unwrap().contains("le=\"+Inf\""));
        // `le` bounds (excluding +Inf) strictly increase.
        let les: Vec<u64> = bucket_lines
            .iter()
            .filter(|l| !l.contains("+Inf"))
            .map(|l| {
                let start = l.find("le=\"").unwrap() + 4;
                let end = l[start..].find('"').unwrap() + start;
                l[start..end].parse().unwrap()
            })
            .collect();
        assert!(les.windows(2).all(|w| w[0] < w[1]), "{les:?}");
        assert!(text.contains("mnc_estimate_ns_sum 906"));
        assert!(text.contains("mnc_estimate_ns_count 4"));
    }

    #[test]
    fn golden_output_line_by_line() {
        let text = render_prometheus(&sample_snapshot(), "mnc_", &[("suite", "perf")]);
        let expected = [
            "# TYPE mnc_cache_hit_total counter",
            "mnc_cache_hit_total{suite=\"perf\"} 7",
            "# TYPE mnc_cache_bytes_resident gauge",
            "mnc_cache_bytes_resident{suite=\"perf\"} -12",
            "# TYPE mnc_estimate_ns histogram",
            "mnc_estimate_ns_bucket{suite=\"perf\",le=\"0\"} 1",
            "mnc_estimate_ns_bucket{suite=\"perf\",le=\"3\"} 3",
            "mnc_estimate_ns_bucket{suite=\"perf\",le=\"1023\"} 4",
            "mnc_estimate_ns_bucket{suite=\"perf\",le=\"+Inf\"} 4",
            "mnc_estimate_ns_sum{suite=\"perf\"} 906",
            "mnc_estimate_ns_count{suite=\"perf\"} 4",
        ];
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), expected.len(), "{text}");
        for (got, want) in lines.iter().zip(expected.iter()) {
            assert_eq!(got, want);
        }
        // Every sample line parses as `name{labels} value`.
        for line in lines.iter().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
            assert!(series.contains("{suite=\"perf\""), "missing label: {line}");
        }
    }

    #[test]
    fn labeled_name_splitting() {
        assert_eq!(
            split_labeled_name("served.requests{endpoint=/v1/estimate,method=POST,status=200}"),
            (
                "served.requests",
                vec![
                    ("endpoint", "/v1/estimate"),
                    ("method", "POST"),
                    ("status", "200")
                ]
            )
        );
        assert_eq!(split_labeled_name("plain.name"), ("plain.name", vec![]));
        assert_eq!(split_labeled_name("empty{}"), ("empty", vec![]));
        // Malformed blocks stay part of the name (then get sanitized).
        assert_eq!(split_labeled_name("bad{novalue}"), ("bad{novalue}", vec![]));
        assert_eq!(split_labeled_name("bad{=v}"), ("bad{=v}", vec![]));
        assert_eq!(split_labeled_name("{k=v}"), ("{k=v}", vec![]));
        assert_eq!(split_labeled_name("open{k=v"), ("open{k=v", vec![]));
    }

    #[test]
    fn labeled_series_share_one_type_line() {
        let reg = MetricsRegistry::new();
        reg.counter("served.requests{endpoint=/v1/estimate,method=POST,status=200}")
            .add(5);
        reg.counter("served.requests{endpoint=/v1/status,method=GET,status=200}")
            .add(2);
        reg.histogram("served.service_ns{endpoint=/v1/estimate}")
            .record(800);
        let text = render_prometheus(&reg.snapshot(), "mnc_", &[]);
        let type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE")).collect();
        assert_eq!(
            type_lines,
            vec![
                "# TYPE mnc_served_requests_total counter",
                "# TYPE mnc_served_service_ns histogram"
            ],
            "{text}"
        );
        assert!(text.contains(
            "mnc_served_requests_total{endpoint=\"/v1/estimate\",method=\"POST\",status=\"200\"} 5"
        ));
        assert!(text.contains(
            "mnc_served_requests_total{endpoint=\"/v1/status\",method=\"GET\",status=\"200\"} 2"
        ));
        assert!(
            text.contains("mnc_served_service_ns_bucket{endpoint=\"/v1/estimate\",le=\"+Inf\"} 1")
        );
        assert!(text.contains("mnc_served_service_ns_sum{endpoint=\"/v1/estimate\"} 800"));
    }

    #[test]
    fn labeled_series_merge_with_global_labels() {
        let reg = MetricsRegistry::new();
        reg.counter("served.requests{endpoint=/v1/estimate}").add(1);
        let text = render_prometheus(&reg.snapshot(), "mnc_", &[("suite", "perf")]);
        assert!(
            text.contains("mnc_served_requests_total{suite=\"perf\",endpoint=\"/v1/estimate\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(
            render_prometheus(&MetricSnapshot::default(), "mnc_", &[]),
            ""
        );
    }
}
