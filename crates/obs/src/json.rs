//! A minimal recursive-descent JSON parser — just enough for the two
//! dependency-free consumers in the workspace: `mnc-bench` reading
//! `BENCH_MNC.json` baselines back in, and `mnc-served` parsing `/v1`
//! request bodies. Accepts strict RFC 8259 JSON; numbers parse as `f64`,
//! which is lossless for everything both emit.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the benchmark never exceeds f64 precision).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with sorted keys.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup for objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("bad number `{s}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not emitted by our writers;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("empty char")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": 1.5, "b": [true, null, "x\"y"], "c": {"d": -2e3}}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_f64), Some(1.5));
        let b = match v.get("b") {
            Some(JsonValue::Array(items)) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(b[0], JsonValue::Bool(true));
        assert_eq!(b[1], JsonValue::Null);
        assert_eq!(b[2].as_str(), Some("x\"y"));
        assert_eq!(
            v.get("c")
                .and_then(|c| c.get("d"))
                .and_then(JsonValue::as_f64),
            Some(-2000.0)
        );
    }

    #[test]
    fn round_trips_the_obs_escapes() {
        use crate::export::json_escape;
        let original = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"s\": \"{}\"}}", json_escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some(original));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"open", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(BTreeMap::new()));
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(Vec::new()));
        assert_eq!(parse("  42 ").unwrap(), JsonValue::Number(42.0));
    }
}
