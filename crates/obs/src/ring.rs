//! A fixed-capacity, lock-free overwrite ring for telemetry records.
//!
//! Long-running services cannot afford the append-only [`LockFreeList`]
//! (crate-private) that batch runs use: a process serving millions of
//! estimates would grow its span storage without bound. [`RecordRing`]
//! instead retains the **most recent** `capacity` records in O(capacity)
//! memory, with a push that never allocates — new records are moved into
//! pre-allocated slots, overwriting the oldest.
//!
//! ## Concurrency design
//!
//! Each slot carries a seqlock-style version word: even = stable, odd =
//! claimed. A writer claims its slot (chosen by a global `fetch_add`
//! cursor, so concurrent writers target distinct slots until the ring
//! wraps) with one compare-exchange, moves the record in, and releases
//! with a version bump. Readers claim a slot the same way before cloning,
//! so no clone ever races a concurrent overwrite. Every operation is
//! non-blocking: a writer that loses a (wrap-around) claim race **drops
//! the record and counts it** in [`RecordRing::dropped`] rather than
//! spinning — for a flight recorder, losing one record under astronomical
//! contention beats ever stalling the estimation hot path.
//!
//! [`LockFreeList`]: crate::LockFreeList

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

struct Slot<T> {
    /// Seqlock word: even = stable, odd = claimed by a writer or reader.
    seq: AtomicU64,
    /// `(push index, record)`; the index restores global push order in
    /// [`RecordRing::collect`].
    value: UnsafeCell<Option<(u64, T)>>,
}

/// A fixed-capacity, lock-free, overwriting ring buffer. See the module
/// docs for the concurrency design.
pub struct RecordRing<T> {
    slots: Box<[Slot<T>]>,
    /// Total push attempts (monotone); `cursor % capacity` picks the slot.
    cursor: AtomicU64,
    /// Pushes abandoned because the target slot was claimed concurrently.
    dropped: AtomicU64,
}

// SAFETY: slot values are only touched while the slot's seqlock word is
// held odd (claimed via compare-exchange), so `&self` access from many
// threads never produces a data race on the `UnsafeCell` contents.
unsafe impl<T: Send> Send for RecordRing<T> {}
unsafe impl<T: Send> Sync for RecordRing<T> {}

impl<T> RecordRing<T> {
    /// A ring retaining the most recent `capacity` records (minimum 1).
    /// All slot memory is allocated here, up front; pushes allocate
    /// nothing.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        RecordRing {
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    value: UnsafeCell::new(None),
                })
                .collect(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed (including dropped ones) — monotone.
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records abandoned under claim contention — monotone, expected 0 in
    /// practice.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records currently retained (saturating estimate).
    pub fn len(&self) -> usize {
        let landed = self.pushed().saturating_sub(self.dropped());
        usize::try_from(landed.min(self.slots.len() as u64)).unwrap_or(self.slots.len())
    }

    /// Whether nothing was ever retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes a record, overwriting the oldest once the ring is full.
    /// Never blocks and never allocates; returns `false` (and counts the
    /// drop) if the slot was claimed by a racing writer or reader.
    pub fn push(&self, value: T) -> bool {
        let n = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq & 1 == 1
            || slot
                .seq
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // SAFETY: the odd seq word claims exclusive slot access; replacing
        // the Option drops the overwritten record in place.
        unsafe { *slot.value.get() = Some((n, value)) };
        slot.seq.store(seq + 2, Ordering::Release);
        true
    }

    /// Clones the retained records, oldest first (global push order). A
    /// slot being written while the dump runs is skipped after a bounded
    /// number of claim attempts — the dump never blocks a writer.
    pub fn collect(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out: Vec<(u64, T)> = Vec::with_capacity(self.slots.len());
        'slots: for slot in self.slots.iter() {
            for _ in 0..64 {
                let seq = slot.seq.load(Ordering::Acquire);
                if seq & 1 == 1 {
                    std::hint::spin_loop();
                    continue;
                }
                if slot
                    .seq
                    .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                // SAFETY: the claim gives exclusive access for the clone.
                let cloned = unsafe { (*slot.value.get()).clone() };
                slot.seq.store(seq + 2, Ordering::Release);
                if let Some(entry) = cloned {
                    out.push(entry);
                }
                continue 'slots;
            }
            // Claim contention exhausted the retry budget: skip the slot.
        }
        out.sort_by_key(|(i, _)| *i);
        out.into_iter().map(|(_, v)| v).collect()
    }
}

impl<T> std::fmt::Debug for RecordRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RecordRing(cap {}, pushed {}, dropped {})",
            self.capacity(),
            self.pushed(),
            self.dropped()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_the_newest_records_in_order() {
        let ring = RecordRing::new(4);
        assert!(ring.is_empty());
        for i in 0..10u64 {
            assert!(ring.push(i));
        }
        assert_eq!(ring.collect(), vec![6, 7, 8, 9]);
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let ring = RecordRing::new(8);
        ring.push("a");
        ring.push("b");
        assert_eq!(ring.collect(), vec!["a", "b"]);
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ring = RecordRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(1u64);
        ring.push(2u64);
        assert_eq!(ring.collect(), vec![2]);
    }

    #[test]
    fn overwriting_drops_the_old_record() {
        // Drop bookkeeping through an Arc: overwritten records must be
        // dropped in place, not leaked until the ring dies.
        use std::sync::Arc;
        let witness = Arc::new(());
        let ring = RecordRing::new(2);
        for _ in 0..6 {
            ring.push(Arc::clone(&witness));
        }
        assert_eq!(Arc::strong_count(&witness), 3, "2 retained + 1 local");
        drop(ring);
        assert_eq!(Arc::strong_count(&witness), 1);
    }

    #[test]
    fn concurrent_pushes_land_without_tearing() {
        let ring = RecordRing::new(128);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        ring.push(t * 10_000 + i);
                    }
                });
            }
        });
        let got = ring.collect();
        // Every retained record is one of the pushed values, intact.
        assert!(got.iter().all(|v| v % 10_000 < 1000 && v / 10_000 < 8));
        assert_eq!(ring.pushed(), 8000);
        // A slot only ends empty when every push targeting it lost a
        // wrap-around claim race, and each such loss is counted — so the
        // retained count is bounded by capacity and short of it by at
        // most the drop count.
        assert!(got.len() <= 128);
        assert!(got.len() as u64 + ring.dropped() >= 128);
    }

    #[test]
    fn collect_during_writes_is_consistent() {
        let ring = RecordRing::new(64);
        std::thread::scope(|scope| {
            let r = &ring;
            scope.spawn(move || {
                for i in 0..20_000u64 {
                    r.push(i);
                }
            });
            for _ in 0..50 {
                let snap = r.collect();
                // Oldest-first order within one snapshot.
                assert!(snap.windows(2).all(|w| w[0] < w[1]), "unordered: {snap:?}");
            }
        });
    }
}
