//! Exporters: one [`Report`] snapshot, four renderings.
//!
//! * [`Report::render_table`] — the human summary printed by CLIs;
//! * [`Report::to_jsonl`] — one JSON object per line (`span`, `counter`,
//!   `gauge`, `histogram`, `accuracy` events), machine-parseable without a
//!   JSON-streaming library;
//! * [`Report::to_chrome_trace`] — Chrome `trace_event` JSON (`"X"`
//!   complete events on per-thread tracks, `"i"` instants for accuracy
//!   records, `"C"` counters), loadable in `chrome://tracing` and
//!   [Perfetto](https://ui.perfetto.dev);
//! * [`ObsFormat::Prometheus`] — the metrics snapshot in Prometheus text
//!   exposition format (see [`crate::prometheus`]).
//!
//! JSON is hand-rolled (the workspace is offline and dependency-free):
//! strings are escaped per RFC 8259, non-finite floats — legal in our
//! accuracy metric, illegal in JSON — serialize as `null` next to a
//! `"finite":false` marker where they can occur.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::accuracy::{summarize, AccuracyRecord};
use crate::metrics::{LatencyHisto, MetricSnapshot};
use crate::span::SpanRecord;

/// Output format selector shared by every CLI (`--obs-format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsFormat {
    /// Human-readable summary table.
    #[default]
    Table,
    /// One JSON event per line.
    Jsonl,
    /// Chrome `trace_event` JSON.
    Chrome,
    /// Prometheus text exposition format (metrics only).
    Prometheus,
}

impl std::str::FromStr for ObsFormat {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "table" => Ok(ObsFormat::Table),
            "jsonl" => Ok(ObsFormat::Jsonl),
            "chrome" => Ok(ObsFormat::Chrome),
            "prom" | "prometheus" => Ok(ObsFormat::Prometheus),
            other => Err(format!(
                "unknown obs format `{other}` (expected table|jsonl|chrome|prometheus)"
            )),
        }
    }
}

/// A consistent snapshot of one recorder: spans, metrics, accuracy.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Finished spans, in start order.
    pub spans: Vec<SpanRecord>,
    /// Metric snapshot.
    pub metrics: MetricSnapshot,
    /// Accuracy records, in emission order.
    pub accuracy: Vec<AccuracyRecord>,
}

// ---------------------------------------------------------------------------
// JSON building blocks
// ---------------------------------------------------------------------------

/// Escapes a string per RFC 8259 (quotes, backslash, control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON number token for an `f64`: `null` when non-finite (JSON has no
/// `Infinity`/`NaN`).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` for integral floats omits the point; that is still a
        // valid JSON number, so pass it through.
        s
    } else {
        "null".to_string()
    }
}

/// The one `SpanRecord → JSON` serializer: every exporter of span events —
/// [`Report::to_jsonl`] here, the `mnc-obsd` flight-recorder dump — renders
/// through this function, so a new span payload field can never silently
/// diverge between exporters. Returns one `{"type":"span",...}` object
/// without a trailing newline.
pub fn span_json(s: &SpanRecord) -> String {
    format!(
        "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\
         \"thread\":{},\"start_ns\":{},\"dur_ns\":{},\"args\":{}}}",
        s.id,
        s.parent,
        json_escape(s.name),
        s.thread,
        s.start_ns,
        s.dur_ns,
        span_args_json(s)
    )
}

/// The one `AccuracyRecord → JSON` serializer (see [`span_json`]); non-
/// finite relative errors serialize as `null` beside `"finite":false`.
/// Returns one `{"type":"accuracy",...}` object without a trailing newline.
pub fn accuracy_json(a: &AccuracyRecord) -> String {
    format!(
        "{{\"type\":\"accuracy\",\"case\":\"{}\",\"op\":\"{}\",\
         \"estimator\":\"{}\",\"estimated_sparsity\":{},\
         \"actual_sparsity\":{},\"relative_error\":{},\
         \"finite\":{},\"ts_ns\":{}}}",
        json_escape(&a.case),
        json_escape(&a.op),
        json_escape(&a.estimator),
        json_f64(a.estimated_sparsity),
        json_f64(a.actual_sparsity),
        json_f64(a.relative_error),
        a.relative_error.is_finite(),
        a.ts_ns
    )
}

fn span_args_json(s: &SpanRecord) -> String {
    let mut fields = Vec::new();
    if let Some(op) = &s.op {
        fields.push(format!("\"op\":\"{}\"", json_escape(op)));
    }
    if let Some(v) = s.nnz_in {
        fields.push(format!("\"nnz_in\":{v}"));
    }
    if let Some(v) = s.nnz_out {
        fields.push(format!("\"nnz_out\":{v}"));
    }
    if let Some(v) = s.synopsis_bytes {
        fields.push(format!("\"synopsis_bytes\":{v}"));
    }
    if let Some(v) = s.alloc_net {
        fields.push(format!("\"alloc_net\":{v}"));
    }
    if let Some(v) = s.alloc_bytes {
        fields.push(format!("\"alloc_bytes\":{v}"));
    }
    if let Some(t) = s.trace {
        fields.push(format!("\"trace\":\"{}\"", t.to_hex()));
    }
    format!("{{{}}}", fields.join(","))
}

fn histo_json_fields(h: &LatencyHisto) -> String {
    format!(
        "\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"max\":{}",
        h.count(),
        h.sum(),
        json_f64(h.mean()),
        h.quantile(0.5),
        h.quantile(0.95),
        h.max()
    )
}

impl Report {
    // -- JSONL ---------------------------------------------------------------

    /// One JSON object per line: every span, metric, and accuracy record.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let _ = writeln!(out, "{}", span_json(s));
        }
        for (name, v) in &self.metrics.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
                json_escape(name)
            );
        }
        for (name, v) in &self.metrics.gauges {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{v}}}",
                json_escape(name)
            );
        }
        for (name, h) in &self.metrics.histograms {
            let _ = writeln!(
                out,
                "{{\"type\":\"histogram\",\"name\":\"{}\",{}}}",
                json_escape(name),
                histo_json_fields(h)
            );
        }
        for a in &self.accuracy {
            let _ = writeln!(out, "{}", accuracy_json(a));
        }
        out
    }

    // -- Chrome trace --------------------------------------------------------

    /// Chrome `trace_event` JSON: open the file in `chrome://tracing` or
    /// drag it into [Perfetto](https://ui.perfetto.dev). Timestamps are
    /// microseconds (fractional, preserving ns resolution) since the
    /// recorder epoch; each thread gets its own track.
    pub fn to_chrome_trace(&self) -> String {
        let mut events = Vec::new();
        for s in &self.spans {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"mnc\",\"ph\":\"X\",\"ts\":{},\
                 \"dur\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
                json_escape(&match &s.op {
                    Some(op) => format!("{} [{}]", s.name, op),
                    None => s.name.to_string(),
                }),
                us(s.start_ns),
                us(s.dur_ns),
                s.thread,
                span_args_json(s)
            ));
        }
        for a in &self.accuracy {
            events.push(format!(
                "{{\"name\":\"accuracy {} {}\",\"cat\":\"accuracy\",\"ph\":\"i\",\
                 \"ts\":{},\"pid\":1,\"tid\":0,\"s\":\"g\",\"args\":{{\
                 \"estimator\":\"{}\",\"estimated_sparsity\":{},\
                 \"actual_sparsity\":{},\"relative_error\":{}}}}}",
                json_escape(&a.case),
                json_escape(&a.estimator),
                us(a.ts_ns),
                json_escape(&a.estimator),
                json_f64(a.estimated_sparsity),
                json_f64(a.actual_sparsity),
                json_f64(a.relative_error)
            ));
        }
        // Final counter values as one "C" sample each, stamped at the end of
        // the trace so the counter tracks are visible next to the spans.
        let end_ts = self
            .spans
            .iter()
            .map(|s| s.start_ns.saturating_add(s.dur_ns))
            .max()
            .unwrap_or(0);
        for (name, v) in &self.metrics.counters {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"mnc\",\"ph\":\"C\",\"ts\":{},\
                 \"pid\":1,\"args\":{{\"value\":{v}}}}}",
                json_escape(name),
                us(end_ts)
            ));
        }
        format!(
            "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{}]}}",
            events.join(",\n")
        )
    }

    // -- Human table ---------------------------------------------------------

    /// The human-readable summary: spans aggregated by `(name, op)` with
    /// count/total/p50/p95/max, then counters, gauges, histograms, and the
    /// per-estimator accuracy summary.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            let mut groups: BTreeMap<(String, String), LatencyHisto> = BTreeMap::new();
            for s in &self.spans {
                groups
                    .entry((s.name.to_string(), s.op.clone().unwrap_or_default()))
                    .or_default()
                    .record(s.dur_ns);
            }
            let _ = writeln!(
                out,
                "{:<12} {:<12} {:>8} {:>12} {:>10} {:>10} {:>10}",
                "span", "op", "count", "total µs", "p50 µs", "p95 µs", "max µs"
            );
            for ((name, op), h) in &groups {
                let _ = writeln!(
                    out,
                    "{:<12} {:<12} {:>8} {:>12.1} {:>10.1} {:>10.1} {:>10.1}",
                    name,
                    if op.is_empty() { "-" } else { op },
                    h.count(),
                    h.sum() as f64 / 1e3,
                    h.quantile(0.5) as f64 / 1e3,
                    h.quantile(0.95) as f64 / 1e3,
                    h.max() as f64 / 1e3
                );
            }
        }
        if !self.metrics.is_empty() {
            let _ = writeln!(out, "\nmetrics:");
            for (name, v) in &self.metrics.counters {
                let _ = writeln!(out, "  {name:<28} {v}");
            }
            for (name, v) in &self.metrics.gauges {
                let _ = writeln!(out, "  {name:<28} {v}");
            }
            for (name, h) in &self.metrics.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<28} n={} p50={} p95={} max={} ns",
                    h.count(),
                    h.quantile(0.5),
                    h.quantile(0.95),
                    h.max()
                );
            }
        }
        if !self.accuracy.is_empty() {
            let _ = writeln!(out, "\naccuracy (by estimator):");
            let _ = writeln!(
                out,
                "  {:<12} {:>6} {:>8} {:>14} {:>20}",
                "estimator", "cases", "inf", "geo-mean err", "worst (case)"
            );
            for s in summarize(&self.accuracy) {
                let worst = s
                    .worst
                    .map(|(case, e)| format!("{e:.3} ({case})"))
                    .unwrap_or_else(|| "-".into());
                let _ = writeln!(
                    out,
                    "  {:<12} {:>6} {:>8} {:>14.4} {:>20}",
                    s.estimator, s.count, s.infinite, s.geo_mean_error, worst
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no observability data recorded)\n");
        }
        out
    }

    /// Per-phase time attribution ("where the microseconds go") from the
    /// span tree: self time per `(name, op)` group, descending.
    pub fn render_attribution(&self) -> String {
        crate::attribution::render_attribution(&self.spans)
    }

    /// Renders in the requested format.
    pub fn render(&self, format: ObsFormat) -> String {
        match format {
            ObsFormat::Table => self.render_table(),
            ObsFormat::Jsonl => self.to_jsonl(),
            ObsFormat::Chrome => self.to_chrome_trace(),
            ObsFormat::Prometheus => {
                crate::prometheus::render_prometheus(&self.metrics, "mnc_", &[])
            }
        }
    }
}

/// Nanoseconds → microsecond JSON number with ns resolution preserved.
fn us(ns: u64) -> String {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        format!("{whole}.{frac:03}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, Recorder};

    fn sample_report() -> Report {
        let rec = Recorder::enabled();
        {
            let _outer = span!(rec, "estimate", op = "matmul", nnz_in = 12);
            let _inner = span!(rec, "build", op = "MNC\"quoted\"", bytes = 256);
        }
        rec.counter("cache.hit").add(3);
        rec.gauge("cache.bytes_resident").set(4096);
        rec.histogram("estimate_ns").record(1500);
        rec.record_accuracy(AccuracyRecord::new("B1.1", "matmul", "MNC", 0.1, 0.2));
        rec.record_accuracy(AccuracyRecord::new("B1.2", "matmul", "MNC", 0.0, 0.2));
        rec.report()
    }

    #[test]
    fn format_parsing() {
        assert_eq!("table".parse::<ObsFormat>().unwrap(), ObsFormat::Table);
        assert_eq!("jsonl".parse::<ObsFormat>().unwrap(), ObsFormat::Jsonl);
        assert_eq!("chrome".parse::<ObsFormat>().unwrap(), ObsFormat::Chrome);
        assert_eq!(
            "prometheus".parse::<ObsFormat>().unwrap(),
            ObsFormat::Prometheus
        );
        assert_eq!("prom".parse::<ObsFormat>().unwrap(), ObsFormat::Prometheus);
        assert!("xml".parse::<ObsFormat>().is_err());
    }

    #[test]
    fn escaping_and_float_tokens() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn jsonl_has_one_event_per_line() {
        let report = sample_report();
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        // 2 spans + 1 counter + 1 gauge + 1 histogram + 2 accuracy.
        assert_eq!(lines.len(), 7);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(jsonl.contains("\"type\":\"span\""));
        assert!(jsonl.contains("\"type\":\"histogram\""));
        // The INF error serializes as null with an explicit finite marker.
        assert!(jsonl.contains("\"relative_error\":null,\"finite\":false"));
    }

    #[test]
    fn chrome_trace_has_complete_events_and_counters() {
        let trace = sample_report().to_chrome_trace();
        assert!(trace.starts_with('{') && trace.ends_with('}'));
        assert!(trace.contains("\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"i\""));
        assert!(trace.contains("\"ph\":\"C\""));
        assert!(trace.contains("estimate [matmul]"));
        // Escaped quote from the op label survives.
        assert!(trace.contains("MNC\\\"quoted\\\""));
    }

    #[test]
    fn table_summarizes_spans_metrics_and_accuracy() {
        let table = sample_report().render_table();
        assert!(table.contains("span"));
        assert!(table.contains("estimate"));
        assert!(table.contains("p95"));
        assert!(table.contains("cache.hit"));
        assert!(table.contains("accuracy (by estimator)"));
        assert!(table.contains("MNC"));
        // Empty report still renders something.
        assert!(Report::default()
            .render_table()
            .contains("no observability"));
    }

    #[test]
    fn microsecond_conversion_preserves_ns() {
        assert_eq!(us(1_500), "1.500");
        assert_eq!(us(2_000), "2");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(0), "0");
    }
}
