//! Request-scoped tracing: W3C trace IDs and a bounded, pooled per-request
//! span buffer.
//!
//! A service front-end owns one [`RequestContext`] per worker (pooled and
//! reused, so steady-state requests allocate nothing) and drives it through
//! the request lifecycle: [`RequestContext::reset`] at admission parses or
//! generates the trace ID, [`RequestContext::enter`]/[`RequestContext::exit`]
//! bracket the coarse stages (admission, catalog load, DAG walk,
//! serialization), and [`RequestContext::finish`] stamps the total. While a
//! context is active it installs its [`TraceId`] in a thread-local that
//! [`SpanGuard`](crate::SpanGuard) picks up, so *recorder* spans opened
//! anywhere below the request (session estimators, kernels) carry the same
//! trace ID into the flight recorder — the whole tree is attributable to one
//! request.
//!
//! Trace IDs follow the W3C Trace Context `traceparent` wire format
//! (`version-traceid-spanid-flags`, lowercase hex). Parsing is hostile-safe:
//! truncated, oversized, non-hex, wrong-version, or all-zero inputs yield
//! `None` and the caller generates a fresh ID — a malformed header can never
//! fail a request.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::span::SpanRecord;

// ---------------------------------------------------------------------------
// TraceId
// ---------------------------------------------------------------------------

/// A 128-bit W3C trace ID. `Copy`, so span records can carry it without
/// allocating (the flight recorder's zero-allocation-per-span guarantee
/// survives tracing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub [u8; 16]);

const HEX: &[u8; 16] = b"0123456789abcdef";

impl TraceId {
    /// The invalid all-zero ID (the W3C spec forbids it on the wire).
    pub const ZERO: TraceId = TraceId([0; 16]);

    /// Whether this is the forbidden all-zero ID.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 16]
    }

    /// Writes the 32-char lowercase-hex form into a caller-owned buffer
    /// (no allocation).
    pub fn write_hex(&self, out: &mut [u8; 32]) {
        for (i, b) in self.0.iter().enumerate() {
            out[2 * i] = HEX[usize::from(b >> 4)];
            out[2 * i + 1] = HEX[usize::from(b & 0xf)];
        }
    }

    /// The 32-char lowercase-hex form (allocates; prefer [`write_hex`] on
    /// hot paths).
    ///
    /// [`write_hex`]: TraceId::write_hex
    pub fn to_hex(&self) -> String {
        let mut buf = [0u8; 32];
        self.write_hex(&mut buf);
        String::from_utf8_lossy(&buf).into_owned()
    }

    /// Parses exactly 32 lowercase hex chars; `None` otherwise (uppercase
    /// is rejected — the W3C wire format is lowercase-only).
    pub fn from_hex(s: &str) -> Option<TraceId> {
        let bytes = s.as_bytes();
        if bytes.len() != 32 {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, pair) in bytes.chunks_exact(2).enumerate() {
            out[i] = (hex_val(pair[0])? << 4) | hex_val(pair[1])?;
        }
        Some(TraceId(out))
    }

    /// Generates a fresh process-unique trace ID (seeded from wall clock,
    /// pid, and ASLR; mixed through splitmix64 with a monotone counter).
    /// Never returns the all-zero ID.
    pub fn generate() -> TraceId {
        static SEED: OnceLock<u64> = OnceLock::new();
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let seed = *SEED.get_or_init(|| {
            let t = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0))
                .unwrap_or(0);
            let pid = u64::from(std::process::id());
            let aslr = &COUNTER as *const AtomicU64 as u64;
            splitmix64(t ^ pid.rotate_left(32) ^ aslr)
        });
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let hi = splitmix64(seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let lo = splitmix64(hi ^ n ^ 0xD1B5_4A32_D192_ED03);
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&hi.to_be_bytes());
        b[8..].copy_from_slice(&lo.to_be_bytes());
        if b == [0; 16] {
            b[15] = 1;
        }
        TraceId(b)
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        _ => None,
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn is_lower_hex(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// Longest `traceparent` value we bother parsing. The W3C version-00 format
/// is exactly 55 chars; future versions may append `-`-separated fields, but
/// anything past this cap is garbage and is ignored wholesale.
const MAX_TRACEPARENT_LEN: usize = 256;

/// Parses a W3C `traceparent` header value, returning the trace ID or `None`
/// for anything malformed. Total function: no input panics or errors —
/// hostile headers simply mean a fresh ID gets generated downstream.
///
/// Accepted shape: `vv-tttttttttttttttttttttttttttttttt-pppppppppppppppp-ff`
/// with lowercase hex only, version `vv != "ff"`, and non-zero trace and
/// parent-span IDs. Version `00` must have exactly those four fields;
/// unknown future versions may carry extra `-`-separated suffix fields.
pub fn parse_traceparent(value: &str) -> Option<TraceId> {
    if value.len() > MAX_TRACEPARENT_LEN {
        return None;
    }
    let mut parts = value.split('-');
    let version = parts.next()?;
    let trace = parts.next()?;
    let parent = parts.next()?;
    let flags = parts.next()?;
    if version.len() != 2 || !is_lower_hex(version) || version == "ff" {
        return None;
    }
    // Version 00 is exactly four fields; later versions may append more.
    if version == "00" && parts.next().is_some() {
        return None;
    }
    if parent.len() != 16 || !is_lower_hex(parent) || parent.bytes().all(|b| b == b'0') {
        return None;
    }
    if flags.len() != 2 || !is_lower_hex(flags) {
        return None;
    }
    let id = TraceId::from_hex(trace)?;
    if id.is_zero() {
        return None;
    }
    Some(id)
}

// ---------------------------------------------------------------------------
// Thread-local trace propagation
// ---------------------------------------------------------------------------

thread_local! {
    /// The trace ID of the request being served on this thread, if any.
    /// Installed by [`RequestContext::reset`], restored by
    /// [`RequestContext::finish`], and read by `SpanGuard::open` so recorder
    /// spans inherit the request's identity.
    static CURRENT_TRACE: Cell<Option<TraceId>> = const { Cell::new(None) };
}

/// The trace ID active on this thread (set by a live [`RequestContext`]).
pub fn current_trace() -> Option<TraceId> {
    CURRENT_TRACE.with(Cell::get)
}

/// Installs `trace` as this thread's active trace ID, returning the previous
/// value so callers can restore it. Prefer [`RequestContext`], which does
/// the save/restore dance for you.
pub fn set_current_trace(trace: Option<TraceId>) -> Option<TraceId> {
    CURRENT_TRACE.with(|c| c.replace(trace))
}

// ---------------------------------------------------------------------------
// RequestContext
// ---------------------------------------------------------------------------

/// One stage of a request, relative to the request's own clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSpan {
    /// Static stage name (`"admission"`, `"walk"`, ...).
    pub name: &'static str,
    /// 1-based index of the enclosing stage, or 0 for top level.
    pub parent: u32,
    /// Start offset from the request's start, in nanoseconds.
    pub start_ns: u64,
    /// Stage duration in nanoseconds (stamped at [`RequestContext::exit`]).
    pub dur_ns: u64,
}

/// A pooled, bounded per-request trace: the trace ID plus a capped buffer of
/// stage spans. All storage is retained across [`reset`] calls, so a reused
/// context serves requests without allocating.
///
/// [`reset`]: RequestContext::reset
#[derive(Debug)]
pub struct RequestContext {
    active: bool,
    trace: TraceId,
    hex: [u8; 32],
    t0: Instant,
    spans: Vec<RequestSpan>,
    stack: Vec<u32>,
    cap: usize,
    dropped: u64,
    queue_wait_ns: u64,
    total_ns: u64,
    prev_trace: Option<TraceId>,
}

impl RequestContext {
    /// A context whose span buffer holds at most `cap` stages per request
    /// (further [`enter`] calls count as dropped). Buffers are allocated up
    /// front; the context is inactive until [`reset`].
    ///
    /// [`enter`]: RequestContext::enter
    /// [`reset`]: RequestContext::reset
    pub fn new(cap: usize) -> RequestContext {
        let cap = cap.clamp(1, 4096);
        RequestContext {
            active: false,
            trace: TraceId::ZERO,
            hex: [b'0'; 32],
            t0: Instant::now(),
            spans: Vec::with_capacity(cap),
            stack: Vec::with_capacity(16),
            cap,
            dropped: 0,
            queue_wait_ns: 0,
            total_ns: 0,
            prev_trace: None,
        }
    }

    /// Arms the context for a new request: clears the span buffer (keeping
    /// its capacity), adopts the trace ID from `traceparent` (or generates a
    /// fresh one when the header is absent or malformed), starts the request
    /// clock, and installs the trace ID in the thread-local for recorder
    /// spans to inherit.
    pub fn reset(&mut self, traceparent: Option<&str>) {
        self.spans.clear();
        self.stack.clear();
        self.dropped = 0;
        self.queue_wait_ns = 0;
        self.total_ns = 0;
        self.trace = traceparent
            .and_then(parse_traceparent)
            .unwrap_or_else(TraceId::generate);
        self.trace.write_hex(&mut self.hex);
        self.t0 = Instant::now();
        self.prev_trace = set_current_trace(Some(self.trace));
        self.active = true;
    }

    /// Arms the context as a no-op: every call is a branch and nothing else
    /// (no clock reads, no trace generation). For services running with
    /// tracing disabled.
    pub fn reset_disabled(&mut self) {
        self.spans.clear();
        self.stack.clear();
        self.dropped = 0;
        self.queue_wait_ns = 0;
        self.total_ns = 0;
        self.active = false;
    }

    /// Whether this context is recording the current request.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The request's trace ID (zero before the first
    /// [`reset`](RequestContext::reset)).
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// The trace ID as 32 lowercase hex chars, borrowed from the context's
    /// own buffer (no allocation).
    pub fn trace_hex(&self) -> &str {
        // The buffer only ever holds ASCII hex digits.
        std::str::from_utf8(&self.hex).unwrap_or("00000000000000000000000000000000")
    }

    /// Opens a stage span, returning a token for [`exit`]. Returns 0 (a
    /// no-op token) when inactive or when the buffer is full — in the latter
    /// case the drop is counted.
    ///
    /// [`exit`]: RequestContext::exit
    pub fn enter(&mut self, name: &'static str) -> u32 {
        if !self.active {
            return 0;
        }
        let now = self.elapsed_ns();
        self.open_at(name, now)
    }

    /// Closes the stage opened by `token`, stamping its duration. Also
    /// closes any deeper stages still open (so early returns via `?` leave
    /// no dangling stage). Token 0 is a no-op.
    pub fn exit(&mut self, token: u32) {
        if !self.active || token == 0 {
            return;
        }
        let now = self.elapsed_ns();
        self.close_at(token, now);
    }

    /// Closes the stage opened by `token` and opens the next one at the
    /// same instant — **one** clock read where an `exit` + `enter` pair
    /// would take two. Back-to-back stages are the common case on a service
    /// hot path, and clock reads are the plane's dominant per-request cost.
    /// A zero `token` only opens. Returns the new stage's token.
    pub fn transition(&mut self, token: u32, name: &'static str) -> u32 {
        if !self.active {
            return 0;
        }
        let now = self.elapsed_ns();
        if token != 0 {
            self.close_at(token, now);
        }
        self.open_at(name, now)
    }

    fn open_at(&mut self, name: &'static str, now: u64) -> u32 {
        if self.spans.len() >= self.cap {
            self.dropped += 1;
            return 0;
        }
        let parent = self.stack.last().copied().unwrap_or(0);
        self.spans.push(RequestSpan {
            name,
            parent,
            start_ns: now,
            dur_ns: 0,
        });
        let token = u32::try_from(self.spans.len()).unwrap_or(u32::MAX);
        self.stack.push(token);
        token
    }

    fn close_at(&mut self, token: u32, now: u64) {
        while let Some(top) = self.stack.pop() {
            if let Some(span) = self.spans.get_mut(top as usize - 1) {
                span.dur_ns = now.saturating_sub(span.start_ns);
            }
            if top == token {
                return;
            }
        }
    }

    /// Records how long the request waited in the admission queue.
    pub fn set_queue_wait(&mut self, ns: u64) {
        self.queue_wait_ns = ns;
    }

    /// Admission-queue wait recorded for this request.
    pub fn queue_wait_ns(&self) -> u64 {
        self.queue_wait_ns
    }

    /// Ends the request: closes stages left open, stamps the total duration,
    /// and restores the thread-local trace ID. Returns the total request
    /// nanoseconds (0 when the context was inactive). The span buffer stays
    /// readable until the next [`reset`](RequestContext::reset).
    pub fn finish(&mut self) -> u64 {
        if !self.active {
            return 0;
        }
        let now = self.elapsed_ns();
        while let Some(top) = self.stack.pop() {
            if let Some(span) = self.spans.get_mut(top as usize - 1) {
                span.dur_ns = now.saturating_sub(span.start_ns);
            }
        }
        self.total_ns = now;
        set_current_trace(self.prev_trace.take());
        self.active = false;
        self.total_ns
    }

    /// Total request duration stamped by [`finish`](RequestContext::finish).
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Service time: total minus admission-queue wait.
    pub fn service_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.queue_wait_ns)
    }

    /// The recorded stage spans, in open order.
    pub fn spans(&self) -> &[RequestSpan] {
        &self.spans
    }

    /// Stages dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Nanoseconds since [`reset`](RequestContext::reset).
    fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Converts the stage tree into [`SpanRecord`]s for the flight recorder
    /// and the Chrome/JSONL exporters: a synthetic root span named
    /// `"request"` (labelled `op`, duration = total) plus one child per
    /// stage. IDs are `first_id..`; `start_ns` offsets are shifted by
    /// `epoch_offset_ns` to land on the destination recorder's clock.
    pub fn to_span_records(
        &self,
        first_id: u64,
        epoch_offset_ns: u64,
        op: &str,
    ) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.spans.len() + 1);
        out.push(SpanRecord {
            id: first_id,
            parent: 0,
            name: "request",
            op: Some(op.to_string()),
            thread: 0,
            start_ns: epoch_offset_ns,
            dur_ns: self.total_ns,
            nnz_in: None,
            nnz_out: None,
            synopsis_bytes: None,
            alloc_net: None,
            alloc_bytes: None,
            trace: Some(self.trace),
        });
        for (i, s) in self.spans.iter().enumerate() {
            out.push(SpanRecord {
                id: first_id + 1 + i as u64,
                parent: if s.parent == 0 {
                    first_id
                } else {
                    first_id + u64::from(s.parent)
                },
                name: s.name,
                op: None,
                thread: 0,
                start_ns: epoch_offset_ns.saturating_add(s.start_ns),
                dur_ns: s.dur_ns,
                nnz_in: None,
                nnz_out: None,
                synopsis_bytes: None,
                alloc_net: None,
                alloc_bytes: None,
                trace: Some(self.trace),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_hex_round_trips() {
        let id = TraceId::generate();
        assert!(!id.is_zero());
        let hex = id.to_hex();
        assert_eq!(hex.len(), 32);
        assert!(is_lower_hex(&hex));
        assert_eq!(TraceId::from_hex(&hex), Some(id));
        let mut buf = [0u8; 32];
        id.write_hex(&mut buf);
        assert_eq!(std::str::from_utf8(&buf).unwrap(), hex);
    }

    #[test]
    fn generated_ids_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(TraceId::generate()), "collision");
        }
    }

    #[test]
    fn traceparent_happy_path() {
        let id = parse_traceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
            .expect("valid header");
        assert_eq!(id.to_hex(), "0af7651916cd43dd8448eb211c80319c");
        // Future version with extra fields is accepted.
        assert!(
            parse_traceparent("01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra")
                .is_some()
        );
    }

    #[test]
    fn traceparent_hostile_inputs_are_rejected() {
        let cases: &[&str] = &[
            "",
            "00",
            "00-0af7651916cd43dd8448eb211c80319c", // truncated
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331", // no flags
            "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // version ff
            "0-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // short version
            "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", // uppercase
            "00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace
            "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero parent
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0g", // non-hex flags
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", // v00 extra
            "zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // non-hex version
        ];
        for c in cases {
            assert_eq!(parse_traceparent(c), None, "should reject {c:?}");
        }
        let oversized = "0".repeat(MAX_TRACEPARENT_LEN + 1);
        assert_eq!(parse_traceparent(&oversized), None);
    }

    #[test]
    fn context_records_nested_stages() {
        let mut ctx = RequestContext::new(64);
        ctx.reset(None);
        assert!(ctx.is_active());
        assert_eq!(current_trace(), Some(ctx.trace()));
        let outer = ctx.enter("estimate");
        let inner = ctx.enter("walk");
        std::thread::sleep(std::time::Duration::from_millis(1));
        ctx.exit(inner);
        ctx.exit(outer);
        let total = ctx.finish();
        assert!(!ctx.is_active());
        assert_eq!(current_trace(), None);
        assert!(total >= 1_000_000);
        let spans = ctx.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "estimate");
        assert_eq!(spans[0].parent, 0);
        assert_eq!(spans[1].name, "walk");
        assert_eq!(spans[1].parent, 1);
        assert!(spans[0].dur_ns >= spans[1].dur_ns);
    }

    #[test]
    fn transition_shares_the_boundary_timestamp() {
        let mut ctx = RequestContext::new(8);
        ctx.reset(None);
        let t = ctx.enter("parse");
        std::thread::sleep(std::time::Duration::from_millis(1));
        let t = ctx.transition(t, "walk");
        let t = ctx.transition(t, "serialize");
        ctx.exit(t);
        ctx.finish();
        let spans = ctx.spans();
        assert_eq!(spans.len(), 3);
        // Adjacent stages meet exactly: end of one IS the start of the next,
        // so stage durations tile the request with no gaps at boundaries.
        assert_eq!(spans[0].start_ns + spans[0].dur_ns, spans[1].start_ns);
        assert_eq!(spans[1].start_ns + spans[1].dur_ns, spans[2].start_ns);
        assert!(spans.iter().all(|s| s.parent == 0), "siblings, not nested");
        assert!(spans[0].dur_ns >= 1_000_000);
        // From a zero token, transition degrades to a plain enter.
        let mut ctx = RequestContext::new(8);
        ctx.reset(None);
        let t = ctx.transition(0, "first");
        assert_eq!(t, 1);
        ctx.exit(t);
        ctx.finish();
        assert_eq!(ctx.spans().len(), 1);
        // Inactive contexts still hand out the no-op token.
        let mut off = RequestContext::new(8);
        off.reset_disabled();
        assert_eq!(off.transition(0, "x"), 0);
    }

    #[test]
    fn finish_closes_dangling_stages_and_restores_trace() {
        let prev = TraceId::generate();
        set_current_trace(Some(prev));
        let mut ctx = RequestContext::new(8);
        ctx.reset(Some(
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
        ));
        assert_eq!(ctx.trace_hex(), "0af7651916cd43dd8448eb211c80319c");
        let _open = ctx.enter("admission"); // never exited: early return path
        ctx.finish();
        assert!(ctx.spans()[0].dur_ns <= ctx.total_ns());
        assert_eq!(current_trace(), Some(prev), "outer trace restored");
        set_current_trace(None);
    }

    #[test]
    fn buffer_cap_counts_drops() {
        let mut ctx = RequestContext::new(2);
        ctx.reset(None);
        let a = ctx.enter("a");
        ctx.exit(a);
        let b = ctx.enter("b");
        ctx.exit(b);
        let c = ctx.enter("c");
        assert_eq!(c, 0, "full buffer hands out the no-op token");
        ctx.exit(c);
        ctx.finish();
        assert_eq!(ctx.spans().len(), 2);
        assert_eq!(ctx.dropped(), 1);
    }

    #[test]
    fn reset_reuses_buffers_without_reallocating() {
        let mut ctx = RequestContext::new(16);
        ctx.reset(None);
        for _ in 0..16 {
            let t = ctx.enter("stage");
            ctx.exit(t);
        }
        ctx.finish();
        let cap_before = ctx.spans.capacity();
        ctx.reset(None);
        let t = ctx.enter("stage");
        ctx.exit(t);
        ctx.finish();
        assert_eq!(ctx.spans.capacity(), cap_before, "capacity retained");
        assert_eq!(ctx.spans().len(), 1);
    }

    #[test]
    fn inactive_context_is_free() {
        let mut ctx = RequestContext::new(8);
        ctx.reset_disabled();
        let t = ctx.enter("stage");
        assert_eq!(t, 0);
        ctx.exit(t);
        assert_eq!(ctx.finish(), 0);
        assert!(ctx.spans().is_empty());
    }

    #[test]
    fn span_records_form_a_rooted_tree() {
        let mut ctx = RequestContext::new(8);
        ctx.reset(None);
        let a = ctx.enter("admission");
        ctx.exit(a);
        let w = ctx.enter("walk");
        let p = ctx.enter("propagate");
        ctx.exit(p);
        ctx.exit(w);
        ctx.finish();
        let recs = ctx.to_span_records(100, 5_000, "/v1/estimate");
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].name, "request");
        assert_eq!(recs[0].id, 100);
        assert_eq!(recs[0].op.as_deref(), Some("/v1/estimate"));
        assert_eq!(recs[0].dur_ns, ctx.total_ns());
        assert_eq!(recs[1].parent, 100);
        assert_eq!(recs[2].parent, 100);
        assert_eq!(recs[3].parent, recs[2].id, "propagate nests under walk");
        assert!(recs.iter().all(|r| r.trace == Some(ctx.trace())));
        assert!(recs.iter().all(|r| r.start_ns >= 5_000));
    }
}
