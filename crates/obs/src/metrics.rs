//! The metrics registry: named monotone counters, gauges, and log₂-scale
//! latency histograms.
//!
//! Registration (first use of a name) takes a short mutex; every subsequent
//! update goes through a cloned handle that touches one atomic — callers on
//! hot paths hold handles instead of looking names up per event. Histograms
//! bucket by bit width (`bucket k` holds `[2^(k-1), 2^k)`), which gives
//! ~2× relative resolution over the full `u64` nanosecond range in
//! `65 × 8` bytes — the same trick as HdrHistogram's coarsest setting, but
//! dependency-free. Quantiles are read from bucket upper bounds (clamped to
//! the exact, separately-tracked max), so `p50/p95` are upper estimates
//! within one octave and `max` is exact.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log₂ buckets: index 0 for zero, 1..=64 by bit width.
pub const NBUCKETS: usize = 65;

/// Bucket index of a value: 0 for 0, else `64 - leading_zeros` (bucket `k`
/// holds `[2^(k-1), 2^k)`).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (used as the quantile representative).
#[inline]
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        64.. => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

// ---------------------------------------------------------------------------
// Plain (single-writer) histogram — also used by `EstimationStats`
// ---------------------------------------------------------------------------

/// A plain, cheaply mergeable log₂ histogram. This is the value type:
/// session stats (`mnc_core::EstimationStats`) embed it directly, and
/// [`AtomicHisto`] snapshots into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHisto {
    buckets: [u64; NBUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHisto {
    fn default() -> Self {
        LatencyHisto {
            buckets: [0; NBUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LatencyHisto {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Bucket-wise merge. Because buckets add, quantiles of the merged
    /// histogram are computed over the union of the observations — *not*
    /// a mean of per-session quantiles (the mean-of-means artifact).
    pub fn merge(&mut self, other: &LatencyHisto) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts (index = [`bucket_of`]).
    pub fn buckets(&self) -> &[u64; NBUCKETS] {
        &self.buckets
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper bound of the bucket
    /// containing that rank, clamped to the exact max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper_bound(k).min(self.max);
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------------
// Atomic histogram + handles
// ---------------------------------------------------------------------------

/// Thread-safe histogram behind [`Histogram`] handles.
pub struct AtomicHisto {
    buckets: [AtomicU64; NBUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicHisto {
    fn new() -> Self {
        AtomicHisto {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LatencyHisto {
        LatencyHisto {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Handle to a monotone counter; `Default`/[`Counter::noop`] is a no-op.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that drops every update (disabled recorder).
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Handle to a gauge (a settable signed level, e.g. resident bytes).
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A handle that drops every update.
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the level by `d`.
    #[inline]
    pub fn add(&self, d: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current level (0 for a no-op handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// Handle to a log-scale histogram.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<AtomicHisto>>);

impl Histogram {
    /// A handle that drops every update.
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Plain snapshot (empty for a no-op handle).
    pub fn snapshot(&self) -> LatencyHisto {
        self.0
            .as_ref()
            .map_or_else(LatencyHisto::new, |h| h.snapshot())
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Everything the registry knows at one instant, with stable (sorted) order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → level.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram name → plain histogram.
    pub histograms: BTreeMap<String, LatencyHisto>,
}

impl MetricSnapshot {
    /// Whether nothing was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges another snapshot in: counters and gauges add, histograms
    /// merge bucket-wise (see [`LatencyHisto::merge`]). Used by multi-source
    /// exporters (the obsd `/metrics` endpoint aggregates the session
    /// registry with the daemon's service registry).
    pub fn merge(&mut self, other: &MetricSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }
}

/// A named metric registry. Per-session registries hang off
/// `Recorder::enabled()`; a process-wide one is available via
/// [`MetricsRegistry::global`].
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<AtomicHisto>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry (for consumers outside any session).
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Handle to the named counter, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("registry poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Some(Arc::clone(cell)))
    }

    /// Handle to the named gauge, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("registry poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)));
        Gauge(Some(Arc::clone(cell)))
    }

    /// Handle to the named histogram, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().expect("registry poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicHisto::new()));
        Histogram(Some(Arc::clone(cell)))
    }

    /// Snapshots every metric (sorted by name).
    pub fn snapshot(&self) -> MetricSnapshot {
        MetricSnapshot {
            counters: self
                .counters
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        for k in 1..64usize {
            // The upper bound of bucket k is the largest value mapping to k.
            assert_eq!(bucket_of(bucket_upper_bound(k)), k);
            assert_eq!(bucket_of(bucket_upper_bound(k) + 1), k + 1);
        }
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_counts_sum_max_and_quantiles() {
        let mut h = LatencyHisto::new();
        for v in [0u64, 1, 1, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1105);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[2], 1); // value 3
        assert_eq!(h.buckets()[7], 1); // value 100 in [64,128)
        assert_eq!(h.buckets()[10], 1); // value 1000 in [512,1024)
                                        // p50 of 6 obs = rank 3 -> bucket 1 -> upper bound 1.
        assert_eq!(h.quantile(0.5), 1);
        // p100 is the exact max, not the bucket bound 1023.
        assert_eq!(h.quantile(1.0), 1000);
        // Empty histogram.
        assert_eq!(LatencyHisto::new().quantile(0.5), 0);
    }

    #[test]
    fn merge_is_bucket_additive_not_mean_of_means() {
        // Session A: 99 fast ops. Session B: 1 slow op. The merged p95 must
        // still be fast (rank 95 of 100 lands in the fast bucket); a
        // mean-of-quantiles would report ~half the slow latency.
        let mut a = LatencyHisto::new();
        for _ in 0..99 {
            a.record(10);
        }
        let mut b = LatencyHisto::new();
        b.record(1_000_000);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 100);
        assert_eq!(merged.max(), 1_000_000);
        assert!(merged.quantile(0.95) <= 15, "p95 {}", merged.quantile(0.95));
        assert_eq!(merged.quantile(1.0), 1_000_000);
        assert_eq!(merged.sum(), a.sum() + b.sum());
    }

    #[test]
    fn registry_handles_share_state_and_snapshot_sorted() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("cache.hit");
        let c2 = reg.counter("cache.hit");
        c1.add(2);
        c2.incr();
        assert_eq!(c1.get(), 3);
        reg.gauge("bytes").set(-5);
        reg.histogram("lat").record(7);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["cache.hit"], 3);
        assert_eq!(snap.gauges["bytes"], -5);
        assert_eq!(snap.histograms["lat"].count(), 1);
        assert!(!snap.is_empty());
        assert!(MetricSnapshot::default().is_empty());
    }

    #[test]
    fn snapshot_merge_adds_scalars_and_unions_histograms() {
        let a_reg = MetricsRegistry::new();
        a_reg.counter("hits").add(3);
        a_reg.gauge("bytes").set(10);
        a_reg.histogram("lat").record(8);
        let b_reg = MetricsRegistry::new();
        b_reg.counter("hits").add(4);
        b_reg.counter("misses").add(1);
        b_reg.gauge("bytes").set(-2);
        b_reg.histogram("lat").record(64);
        let mut merged = a_reg.snapshot();
        merged.merge(&b_reg.snapshot());
        assert_eq!(merged.counters["hits"], 7);
        assert_eq!(merged.counters["misses"], 1);
        assert_eq!(merged.gauges["bytes"], 8);
        assert_eq!(merged.histograms["lat"].count(), 2);
        assert_eq!(merged.histograms["lat"].max(), 64);
    }

    #[test]
    fn noop_handles_drop_updates() {
        let c = Counter::noop();
        c.incr();
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.set(9);
        assert_eq!(g.get(), 0);
        let h = Histogram::noop();
        h.record(5);
        assert_eq!(h.snapshot().count(), 0);
    }

    #[test]
    fn atomic_histogram_is_consistent_under_concurrency() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let h = h.clone();
                scope.spawn(move || {
                    for v in 1..=1000u64 {
                        h.record(v);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), 8000);
        assert_eq!(snap.max(), 1000);
        assert_eq!(snap.sum(), 8 * 500500);
        assert_eq!(snap.buckets().iter().sum::<u64>(), 8000);
    }
}
