//! Offline stand-in for the `rand` crate, covering exactly the API surface
//! this workspace uses: `Rng::{gen, gen_range, gen_bool}`, `SeedableRng`,
//! `rngs::StdRng`, and `seq::SliceRandom::{shuffle, partial_shuffle}`.
//!
//! The build environment has no crates.io access, so the workspace resolves
//! `rand` to this crate by path (see `[workspace.dependencies]` in the root
//! manifest). The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic, seedable, and statistically strong enough for the seeded
//! test/benchmark generators in this repo. The streams differ from upstream
//! `rand`, which is fine: every consumer treats the RNG as an opaque seeded
//! source, never as a golden sequence.

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their "standard" domain (`[0,1)` for
/// floats, the full range for integers).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo with a 64-bit draw: bias is < 2^-32 for every span
                // used in this workspace, far below statistical test noise.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// The user-facing random-value interface (blanket-implemented for every
/// `RngCore`, matching upstream `rand`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (xoshiro256++ core, SplitMix64-seeded).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            // Stream-selection constant: decorrelates this stub's streams
            // from the raw SplitMix64 sequence used elsewhere in the repo.
            state ^= 0x9E6C_63D0_876A_68EE;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates), mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Shuffles `amount` randomly chosen elements to the front; returns
        /// `(chosen, rest)`.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let len = self.len();
            let amount = amount.min(len);
            for i in 0..amount {
                let j = rng.gen_range(i..len);
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..4.0f64);
            assert!((-2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_about_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn partial_shuffle_front_is_distinct() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        let (front, _) = v.partial_shuffle(&mut rng, 10);
        let mut f = front.to_vec();
        f.sort_unstable();
        f.dedup();
        assert_eq!(f.len(), 10);
    }
}
