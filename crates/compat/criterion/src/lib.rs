//! Offline stand-in for the `criterion` crate covering the subset this
//! workspace uses: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId::from_parameter`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `criterion` to this crate. Measurement is intentionally simple — a short
//! adaptive loop around `Instant` reporting the mean wall-clock per
//! iteration — with no statistics, plots, or baselines. Good enough to run
//! `cargo bench` offline and eyeball relative costs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures passed to `iter`.
pub struct Bencher {
    /// Target measurement budget per benchmark.
    budget: Duration,
    /// Mean time per iteration from the last `iter` call.
    mean: Duration,
    iters: u64,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            budget,
            mean: Duration::ZERO,
            iters: 0,
        }
    }

    /// Runs the routine repeatedly until the time budget is spent and
    /// records the mean wall-clock time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up / calibration round.
        let start = Instant::now();
        std::hint::black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));

        let target = (self.budget.as_nanos() / first.as_nanos()).clamp(1, 1000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            std::hint::black_box(routine());
        }
        let total = start.elapsed();
        self.iters = target;
        self.mean = total / target as u32;
    }
}

/// Prevents the optimizer from eliding a value (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn report(group: Option<&str>, id: &str, b: &Bencher) {
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    println!(
        "bench: {name:<48} {:>12.3} µs/iter  ({} iters)",
        b.mean.as_nanos() as f64 / 1_000.0,
        b.iters
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(250),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    pub fn benchmark_group<S: Display>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(None, &id.id, &b);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b);
        report(Some(&self.name), &id.id, &b);
        self
    }

    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b, input);
        report(Some(&self.name), &id.id, &b);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

/// Declares a benchmark group function (`fn $name()`), running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("group");
        g.bench_function(BenchmarkId::from_parameter(3), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::from_parameter("in"), &41u64, |b, &x| {
            b.iter(|| x + 1)
        });
        g.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(2) * 2));
    }

    #[test]
    fn runs_groups() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        sample_bench(&mut c);
    }
}
