//! Offline stand-in for the `proptest` crate covering the subset this
//! workspace uses: the `proptest!` macro (with `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, `Strategy` over
//! numeric ranges and tuples, and `any::<T>()` for primitive `T`.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `proptest` to this crate. Semantics are simplified but sound for CI:
//! each property runs `cases` times over values drawn from the strategies
//! with a deterministic per-case seed, so failures reproduce exactly.
//! There is no shrinking — a failing case panics with the sampled inputs
//! already visible in the assertion message.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type. Unlike upstream proptest there
    /// is no value tree/shrinking; `generate` directly produces a value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy producing a single constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u128 - lo as u128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u64, u32, u16, u8, usize, i64, i32);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only: uniform sign/exponent surprises most
            // numeric properties; uniform in [-1e6, 1e6] is plenty here.
            (rng.next_f64() - 0.5) * 2.0e6
        }
    }

    /// Strategy wrapper returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for "any value of type `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod test_runner {
    /// Deterministic per-case RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            let mut rng = TestRng { state: seed };
            rng.next_u64();
            rng
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        #[inline]
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Subset of proptest's runner configuration: only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Runs `body` once per case with a deterministic RNG. The seed mixes a
    /// fixed constant with the case index so runs are reproducible and the
    /// failing case index appears in the panic message.
    pub fn run_cases<F: FnMut(&mut TestRng)>(cases: u32, mut body: F) {
        for case in 0..cases {
            let mut rng = TestRng::from_seed(0x9E3779B9u64 ^ ((case as u64) << 17));
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                body(&mut rng);
            }));
            if let Err(payload) = result {
                eprintln!("proptest case {case}/{cases} failed (deterministic seed)");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Generates `#[test]` functions that sample strategy-bound parameters and
/// run the body once per configured case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(config.cases, |__proptest_rng| {
                $(let $pat = $crate::strategy::Strategy::generate(
                    &($strat),
                    __proptest_rng,
                );)+
                $body
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Drop-in for `assert!` inside properties (no shrinking, plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Drop-in for `assert_eq!` inside properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Drop-in for `assert_ne!` inside properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    fn params() -> impl Strategy<Value = (usize, f64, u64)> {
        (1usize..10, 0.0f64..1.0, any::<u64>())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Tuple strategies stay within their component ranges.
        fn tuple_ranges((n, s, _seed) in params(), k in 2usize..5) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((0.0..1.0).contains(&s));
            prop_assert!((2..5).contains(&k));
        }

        fn eq_holds(x in 0u64..100) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_seed(1);
        let mut b = TestRng::from_seed(1);
        let s = (0usize..100, 0.0f64..1.0);
        assert_eq!(s.generate(&mut a).0, s.generate(&mut b).0);
    }
}
