//! Thread-count invariance: every parallel path in the estimation stack is
//! a rearrangement of the same arithmetic, never an approximation. Estimates
//! and session statistics must be bit-identical at any worker count.
//!
//! CI runs this suite in debug **and** `--release` at `MNC_THREADS` 1, 2,
//! and 8 — when the variable is set, its value is compared against the
//! sequential run; when unset, the suite sweeps {2, 4, 8} itself.

use std::sync::Arc;

use proptest::prelude::*;
use rand::SeedableRng;

use mnc_estimators::{
    BitsetEstimator, DensityMapEstimator, DynamicDensityMapEstimator, MetaAcEstimator,
    MncEstimator, OpKind, SparsityEstimator,
};
use mnc_expr::{EstimationContext, ExprDag, NodeId};
use mnc_matrix::{gen, CsrMatrix};

/// Worker counts under test: `MNC_THREADS` when set (the CI matrix pins it
/// to 1, 2, or 8 per job), a small sweep otherwise.
fn thread_counts() -> Vec<usize> {
    match std::env::var("MNC_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(t) => vec![t],
        None => vec![2, 4, 8],
    }
}

fn make(rows: usize, cols: usize, s: f64, seed: u64) -> Arc<CsrMatrix> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Arc::new(gen::rand_uniform(&mut rng, rows, cols, s))
}

/// MNC with deterministic rounding — order-invariant, so the session walk
/// may schedule it across the pool.
fn det_mnc() -> MncEstimator {
    MncEstimator::with_config(
        "MNC",
        mnc_core::MncConfig {
            probabilistic_rounding: false,
            ..mnc_core::MncConfig::default()
        },
    )
}

/// A wide DAG with genuine level-parallelism: two independent products
/// joined by an add, then transposed.
fn wide_dag(seed: u64, d: usize) -> (ExprDag, NodeId) {
    let mut dag = ExprDag::new();
    let a = dag.leaf("A", make(d, d, 0.05, seed));
    let b = dag.leaf("B", make(d, d, 0.03, seed ^ 1));
    let c = dag.leaf("C", make(d, d, 0.04, seed ^ 2));
    let e = dag.leaf("E", make(d, d, 0.02, seed ^ 3));
    let left = dag.matmul(a, b).expect("square");
    let right = dag.matmul(c, e).expect("square");
    let sum = dag.ew_add(left, right).expect("same shape");
    let root = dag.transpose(sum).expect("unary");
    (dag, root)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The session wavefront walk: estimates and cache statistics are
    /// bit-identical at every worker count, cold and warm.
    #[test]
    fn session_walk_is_thread_count_invariant(seed in any::<u64>(), d in 24usize..72) {
        let (dag, root) = wide_dag(seed, d);
        let ests: Vec<Box<dyn SparsityEstimator>> = vec![
            Box::new(det_mnc()),
            Box::new(DensityMapEstimator::default()),
            Box::new(BitsetEstimator::default()),
            Box::new(MetaAcEstimator),
        ];
        for est in &ests {
            let mut seq = EstimationContext::new();
            let cold = seq.estimate_root(est.as_ref(), &dag, root).expect("estimate");
            let warm = seq.estimate_root(est.as_ref(), &dag, root).expect("estimate");
            let seq_stats = (
                seq.stats().builds,
                seq.stats().cache_hits,
                seq.stats().cache_misses,
            );
            for t in thread_counts() {
                let mut par = EstimationContext::new().with_threads(t);
                let p_cold = par.estimate_root(est.as_ref(), &dag, root).expect("estimate");
                let p_warm = par.estimate_root(est.as_ref(), &dag, root).expect("estimate");
                prop_assert_eq!(cold.to_bits(), p_cold.to_bits(), "cold estimate drifted at {} threads", t);
                prop_assert_eq!(warm.to_bits(), p_warm.to_bits(), "warm estimate drifted at {} threads", t);
                let par_stats = (
                    par.stats().builds,
                    par.stats().cache_hits,
                    par.stats().cache_misses,
                );
                prop_assert_eq!(seq_stats, par_stats, "session stats drifted at {} threads", t);
            }
        }
    }

    /// Threaded MNC sketch builds produce the same sketch: identical
    /// sparsity and identical downstream matmul estimates.
    #[test]
    fn threaded_sketch_build_is_bit_identical(seed in any::<u64>(), d in 24usize..96) {
        let m = make(d, d, 0.05, seed);
        let n = make(d, d, 0.02, seed ^ 7);
        let est = det_mnc();
        let (sm, sn) = (est.build(&m).expect("build"), est.build(&n).expect("build"));
        let reference = est.estimate(&OpKind::MatMul, &[&sm, &sn]).expect("estimate");
        for t in thread_counts() {
            let par = det_mnc().with_build_threads(t);
            let (pm, pn) = (par.build(&m).expect("build"), par.build(&n).expect("build"));
            prop_assert_eq!(sm.sparsity().to_bits(), pm.sparsity().to_bits());
            let got = par.estimate(&OpKind::MatMul, &[&pm, &pn]).expect("estimate");
            prop_assert_eq!(reference.to_bits(), got.to_bits(), "sketch estimate drifted at {} threads", t);
        }
    }

    /// Threaded density-map propagation (the paper's Eq. 4 pseudo-product)
    /// and the dynamic density map's threaded direct estimate both match
    /// their sequential twins.
    #[test]
    fn threaded_density_maps_are_bit_identical(seed in any::<u64>(), d in 24usize..96) {
        let m = make(d, d, 0.04, seed);
        let n = make(d, d, 0.03, seed ^ 11);
        let dm = DensityMapEstimator::default();
        let (sm, sn) = (dm.build(&m).expect("build"), dm.build(&n).expect("build"));
        let reference = dm.propagate(&OpKind::MatMul, &[&sm, &sn]).expect("propagate");
        let dd = DynamicDensityMapEstimator::default();
        let (qm, qn) = (dd.build(&m).expect("build"), dd.build(&n).expect("build"));
        let dd_reference = dd.estimate(&OpKind::MatMul, &[&qm, &qn]).expect("estimate");
        for t in thread_counts() {
            let par = DensityMapEstimator::default().with_threads(t);
            let got = par.propagate(&OpKind::MatMul, &[&sm, &sn]).expect("propagate");
            prop_assert_eq!(reference.sparsity().to_bits(), got.sparsity().to_bits());
            let dd_par = DynamicDensityMapEstimator::default().with_threads(t);
            let dd_got = dd_par.estimate(&OpKind::MatMul, &[&qm, &qn]).expect("estimate");
            prop_assert_eq!(dd_reference.to_bits(), dd_got.to_bits(), "DynDMap estimate drifted at {} threads", t);
        }
    }

    /// Parallel bitset construction and boolean matrix product match the
    /// sequential fold bit for bit.
    #[test]
    fn threaded_bitset_paths_are_bit_identical(seed in any::<u64>(), d in 24usize..96) {
        use mnc_estimators::bitset::{bool_mm, bool_mm_parallel, BitsetSynopsis};
        let m = make(d, d, 0.05, seed);
        let n = make(d, d, 0.04, seed ^ 13);
        let (ba, bb) = (BitsetSynopsis::from_matrix(&m), BitsetSynopsis::from_matrix(&n));
        let reference = bool_mm(&ba, &bb);
        for t in thread_counts() {
            let pa = BitsetSynopsis::from_matrix_parallel(&m, t);
            prop_assert_eq!(ba.sparsity().to_bits(), pa.sparsity().to_bits());
            let got = bool_mm_parallel(&ba, &bb, t);
            prop_assert_eq!(reference.sparsity().to_bits(), got.sparsity().to_bits(), "bool_mm drifted at {} threads", t);
        }
    }
}
