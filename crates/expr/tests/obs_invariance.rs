//! Property-based guarantee that observability is purely passive: attaching
//! a recorder to an estimation session (or wrapping an estimator in
//! `InstrumentedEstimator`) never changes any estimate, bit for bit.

use std::sync::Arc;

use proptest::prelude::*;
use rand::SeedableRng;

use mnc_estimators::{BitsetEstimator, InstrumentedEstimator, MncEstimator, OpKind};
use mnc_expr::{EstimationContext, ExprDag, NodeId, Recorder};
use mnc_matrix::{gen, CsrMatrix};

fn make(rows: usize, cols: usize, s: f64, seed: u64) -> Arc<CsrMatrix> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Arc::new(gen::rand_uniform(&mut rng, rows, cols, s))
}

/// A random expression over `k` square matrices of dimension `d`: fold the
/// leaves together with ops picked by `op_bits`, so every generated DAG is
/// shape-valid.
fn random_dag(d: usize, sparsities: &[f64], op_bits: u64, seed: u64) -> (ExprDag, NodeId) {
    let mut dag = ExprDag::new();
    let leaves: Vec<NodeId> = sparsities
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let m = make(d, d, s, seed.wrapping_add(i as u64));
            dag.leaf(format!("L{i}"), m)
        })
        .collect();
    let mut acc = leaves[0];
    for (i, &l) in leaves[1..].iter().enumerate() {
        let op = match (op_bits >> (2 * i)) & 0b11 {
            0 => OpKind::MatMul,
            1 => OpKind::EwAdd,
            2 => OpKind::EwMul,
            _ => OpKind::EwMax,
        };
        acc = dag.op(op, &[acc, l]).expect("square shapes always agree");
    }
    (dag, acc)
}

// The vendored proptest stub has no `collection::vec`; draw up to five
// sparsities as a tuple and truncate to `k` leaves.
type Params = (usize, usize, (f64, f64, f64, f64, f64), u64, u64);

fn params() -> impl Strategy<Value = Params> {
    (
        4usize..40,
        2usize..6,
        (
            0.0f64..0.6,
            0.0f64..0.6,
            0.0f64..0.6,
            0.0f64..0.6,
            0.0f64..0.6,
        ),
        any::<u64>(),
        any::<u64>(),
    )
}

fn sparsity_vec(k: usize, s: (f64, f64, f64, f64, f64)) -> Vec<f64> {
    let all = [s.0, s.1, s.2, s.3, s.4];
    all[..k].to_vec()
}

/// Golden pin across build configurations: this fixed traced workload must
/// produce these exact bits in *every* build — in particular with and
/// without the `alloc-track` counting allocator (CI runs the test under
/// both feature sets). A differing value here means a feature changed an
/// estimate, which observability must never do.
#[test]
fn estimates_are_bit_stable_across_build_configurations() {
    let (dag, root) = random_dag(24, &[0.1, 0.3, 0.05], 0b0110, 7);
    let mut ctx = EstimationContext::new().with_recorder(Recorder::enabled());
    let traced = ctx
        .estimate_root(&MncEstimator::new(), &dag, root)
        .expect("estimate");
    assert_eq!(
        traced.to_bits(),
        0x3fb6cdfa1d6cdfa1u64, // 0.08908045977011493
        "pinned estimate drifted (alloc-track={}): got {} = {:#018x}",
        mnc_obs::alloc::tracking_active(),
        traced,
        traced.to_bits()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Recorder on, recorder off, and no recorder at all produce
    /// bit-identical estimates. Fresh `MncEstimator` instances per session
    /// keep the probabilistic-rounding RNG streams aligned, so any
    /// divergence would be the recorder's fault.
    #[test]
    fn tracing_never_changes_estimates((d, k, raw, op_bits, seed) in params()) {
        let sparsities = sparsity_vec(k, raw);
        let (dag, root) = random_dag(d, &sparsities, op_bits, seed);

        let mut plain_ctx = EstimationContext::new();
        let plain = plain_ctx
            .estimate_root(&MncEstimator::new(), &dag, root)
            .expect("plain estimate");

        let rec = Recorder::enabled();
        let mut traced_ctx = EstimationContext::new().with_recorder(rec.clone());
        let traced = traced_ctx
            .estimate_root(&MncEstimator::new(), &dag, root)
            .expect("traced estimate");

        let mut off_ctx = EstimationContext::new().with_recorder(Recorder::disabled());
        let off = off_ctx
            .estimate_root(&MncEstimator::new(), &dag, root)
            .expect("disabled-recorder estimate");

        prop_assert_eq!(plain.to_bits(), traced.to_bits(),
            "enabled recorder perturbed the estimate");
        prop_assert_eq!(plain.to_bits(), off.to_bits(),
            "disabled recorder perturbed the estimate");
        // The traced session must actually have observed the walk, and its
        // spans carry allocation deltas exactly when the build tracks them
        // (`--features mnc-obs/alloc-track`) — never otherwise.
        let spans = rec.spans();
        prop_assert!(!spans.is_empty(), "enabled recorder saw no spans");
        let tracked = mnc_obs::alloc::tracking_active();
        prop_assert!(
            spans.iter().all(|s| s.alloc_bytes.is_some() == tracked
                && s.alloc_net.is_some() == tracked),
            "span allocation stamping disagrees with the alloc-track feature"
        );
    }

    /// The counting global allocator is bit-invariant: estimates under a
    /// traced session match the plain session inside *this* build, whatever
    /// its feature set. Cross-build identity is pinned by
    /// `estimates_are_bit_stable_across_build_configurations` below.
    #[test]
    fn alloc_tracking_never_changes_estimates((d, k, raw, op_bits, seed) in params()) {
        let sparsities = sparsity_vec(k, raw);
        let (dag, root) = random_dag(d, &sparsities, op_bits, seed);
        let mut plain_ctx = EstimationContext::new();
        let plain = plain_ctx
            .estimate_root(&BitsetEstimator::default(), &dag, root)
            .expect("plain estimate");
        let mut traced_ctx = EstimationContext::new().with_recorder(Recorder::enabled());
        let traced = traced_ctx
            .estimate_root(&BitsetEstimator::default(), &dag, root)
            .expect("traced estimate");
        prop_assert_eq!(plain.to_bits(), traced.to_bits());
    }

    /// The kernel scratch arena is bit-invariant: a session propagating
    /// through pooled buffers (the default) and a session allocating fresh
    /// vectors per op produce identical estimates — for the full estimator
    /// and for MNC Basic, with the estimator-side arena toggled too. Walks
    /// run twice per context so the second pass actually leases recycled
    /// buffers.
    #[test]
    fn scratch_arena_never_changes_estimates((d, k, raw, op_bits, seed) in params()) {
        let sparsities = sparsity_vec(k, raw);
        let (dag, root) = random_dag(d, &sparsities, op_bits, seed);

        let run = |ctx_arena: bool, est_arena: bool| -> (u64, u64) {
            let mut ctx = EstimationContext::new().with_arena(ctx_arena);
            let est = MncEstimator::new().with_arena(est_arena);
            let first = ctx.estimate_root(&est, &dag, root).expect("estimate");
            let second = ctx.estimate_root(&est, &dag, root).expect("estimate");
            (first.to_bits(), second.to_bits())
        };
        let baseline = run(false, false);
        for (ctx_arena, est_arena) in [(true, true), (true, false), (false, true)] {
            let got = run(ctx_arena, est_arena);
            prop_assert_eq!(
                baseline, got,
                "arena (ctx={}, est={}) perturbed the estimate",
                ctx_arena, est_arena
            );
        }
    }

    /// `InstrumentedEstimator` is transparent: wrapped and bare estimators
    /// agree bit for bit, with tracing on or off.
    #[test]
    fn instrumented_estimator_is_transparent((d, k, raw, op_bits, seed) in params()) {
        let sparsities = sparsity_vec(k, raw);
        let (dag, root) = random_dag(d, &sparsities, op_bits, seed);

        let mut bare_ctx = EstimationContext::new();
        let bare = bare_ctx
            .estimate_root(&BitsetEstimator::default(), &dag, root)
            .expect("bare estimate");

        for rec in [Recorder::enabled(), Recorder::disabled()] {
            let est = InstrumentedEstimator::new(BitsetEstimator::default(), rec);
            let mut ctx = EstimationContext::new();
            let wrapped = ctx.estimate_root(&est, &dag, root).expect("wrapped estimate");
            prop_assert_eq!(bare.to_bits(), wrapped.to_bits(),
                "InstrumentedEstimator changed the estimate");
        }
    }
}
