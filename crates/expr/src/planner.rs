//! Cost-based physical planning from sparsity estimates — the paper's
//! motivating applications (Section 1): "sparsity estimates are used during
//! operation runtime for output format decisions and memory preallocation
//! [and] during compilation for memory and cost estimates".
//!
//! [`Planner::plan`] walks an expression DAG with any
//! [`SparsityEstimator`], estimates every intermediate, and derives:
//!
//! * a **format decision** per node (dense vs CSR, using SystemML's
//!   `s >= 0.4` dense threshold by default);
//! * a **memory estimate** for the chosen format (the wrong-allocation
//!   failure mode the paper describes: "wrong dense allocation of truly
//!   sparse outputs" and vice versa);
//! * an **operation cost estimate** in multiply FLOPs (sketch dot products
//!   for MNC synopses, the uniform `nnz_A · nnz_B / n` approximation
//!   otherwise).

use mnc_estimators::{OpKind, Result, SparsityEstimator, Synopsis};

use crate::dag::{ExprDag, ExprNode, NodeId};
use crate::session::EstimationContext;

/// Physical representation chosen for a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Dense row-major FP64.
    Dense,
    /// Compressed sparse rows (4-B column index + 8-B value per non-zero,
    /// plus the row pointer).
    SparseCsr,
}

/// Plan entry for one DAG node.
#[derive(Debug, Clone)]
pub struct NodePlan {
    /// The node.
    pub id: NodeId,
    /// Output shape.
    pub shape: (usize, usize),
    /// Estimated output sparsity.
    pub sparsity: f64,
    /// Estimated non-zero count.
    pub nnz: f64,
    /// Chosen format.
    pub format: Format,
    /// Memory estimate for the chosen format, in bytes.
    pub memory_bytes: f64,
    /// Estimated multiply FLOPs to compute this node (0 for leaves).
    pub flops: f64,
}

/// A physical plan for a whole DAG.
#[derive(Debug, Clone)]
pub struct PlanSummary {
    /// One entry per node, in topological order.
    pub nodes: Vec<NodePlan>,
    /// Peak-ish memory estimate: the sum over all materialized nodes.
    pub total_memory_bytes: f64,
    /// Total estimated multiply FLOPs.
    pub total_flops: f64,
}

impl PlanSummary {
    /// Plan entry of a node.
    pub fn node(&self, id: NodeId) -> &NodePlan {
        &self.nodes[id]
    }
}

/// The planner configuration.
///
/// ```
/// use mnc_expr::{ExprDag, Format, Planner};
/// use mnc_estimators::MncEstimator;
/// use mnc_matrix::CsrMatrix;
/// use std::sync::Arc;
///
/// let mut dag = ExprDag::new();
/// let a = dag.leaf("A", Arc::new(CsrMatrix::identity(100)));
/// let plan = Planner::default().plan(&MncEstimator::new(), &dag).unwrap();
/// // 1% dense — keep it sparse.
/// assert_eq!(plan.node(a).format, Format::SparseCsr);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Planner {
    /// Dense-format threshold; SystemML dispatches dense at `s >= 0.4`
    /// (footnote 3 of the paper).
    pub dense_threshold: f64,
    /// Bytes per dense cell (FP64).
    pub dense_cell_bytes: f64,
    /// Bytes per sparse entry (CSR: 4-B index + 8-B value).
    pub sparse_entry_bytes: f64,
}

impl Default for Planner {
    fn default() -> Self {
        Planner {
            dense_threshold: 0.4,
            dense_cell_bytes: 8.0,
            sparse_entry_bytes: 12.0,
        }
    }
}

impl Planner {
    /// Plans the whole DAG under the given estimator: synopses are built
    /// for leaves and propagated bottom-up (memoized by node id). One-shot
    /// — runs in a throwaway [`EstimationContext`]; use
    /// [`plan_with_context`](Planner::plan_with_context) to reuse synopses
    /// across repeated planning (e.g. re-costing after a rewrite).
    pub fn plan<E: SparsityEstimator + ?Sized>(
        &self,
        est: &E,
        dag: &ExprDag,
    ) -> Result<PlanSummary> {
        self.plan_with_context(est, dag, &mut EstimationContext::new())
    }

    /// [`plan`](Planner::plan) against a shared estimation session: leaf and
    /// intermediate synopses come from (and are admitted to) the context's
    /// cache, and the work is counted in the context's stats.
    pub fn plan_with_context<E: SparsityEstimator + ?Sized>(
        &self,
        est: &E,
        dag: &ExprDag,
        ctx: &mut EstimationContext,
    ) -> Result<PlanSummary> {
        let _span = ctx.recorder().span("plan").op(est.name());
        let synopses = ctx.materialize_all(est, dag)?;
        let mut nodes = Vec::with_capacity(dag.len());
        for (id, node) in dag.iter() {
            let (syn, flops) = match node {
                ExprNode::Leaf { .. } => (&synopses[id], 0.0),
                ExprNode::Op { op, inputs } => {
                    let ins: Vec<&Synopsis> =
                        inputs.iter().map(|&i| synopses[i].as_ref()).collect();
                    (&synopses[id], estimate_flops(op, &ins))
                }
            };
            let shape = dag.shape(id);
            let sparsity = syn.sparsity();
            let cells = shape.0 as f64 * shape.1 as f64;
            let nnz = sparsity * cells;
            let format = if sparsity >= self.dense_threshold {
                Format::Dense
            } else {
                Format::SparseCsr
            };
            let memory_bytes = match format {
                Format::Dense => cells * self.dense_cell_bytes,
                Format::SparseCsr => nnz * self.sparse_entry_bytes + (shape.0 as f64 + 1.0) * 8.0,
            };
            nodes.push(NodePlan {
                id,
                shape,
                sparsity,
                nnz,
                format,
                memory_bytes,
                flops,
            });
        }
        let total_memory_bytes = nodes.iter().map(|n| n.memory_bytes).sum();
        let total_flops = nodes.iter().map(|n| n.flops).sum();
        Ok(PlanSummary {
            nodes,
            total_memory_bytes,
            total_flops,
        })
    }
}

/// Estimated multiply FLOPs of one operation given input synopses.
fn estimate_flops(op: &OpKind, inputs: &[&Synopsis]) -> f64 {
    let nnz_of = |s: &Synopsis| {
        let (m, n) = s.shape();
        s.sparsity() * m as f64 * n as f64
    };
    match op {
        OpKind::MatMul => match (inputs[0], inputs[1]) {
            // MNC sketches carry per-column/row counts: the exact cost
            // model of Appendix C (Eq. 17).
            (Synopsis::Mnc(a), Synopsis::Mnc(b)) => {
                crate::chain_opt::sketch_dot(&a.sketch, &b.sketch)
            }
            // Otherwise the uniform approximation Σ_k (nnz_A/n)(nnz_B/n)
            // = nnz_A · nnz_B / n.
            (a, b) => {
                let n = a.shape().1 as f64;
                if n == 0.0 {
                    0.0
                } else {
                    nnz_of(a) * nnz_of(b) / n
                }
            }
        },
        OpKind::EwAdd | OpKind::EwMul | OpKind::EwMax | OpKind::EwMin => {
            nnz_of(inputs[0]) + nnz_of(inputs[1])
        }
        OpKind::Rbind | OpKind::Cbind => nnz_of(inputs[0]) + nnz_of(inputs[1]),
        OpKind::Transpose
        | OpKind::Reshape { .. }
        | OpKind::Neq0
        | OpKind::DiagV2M
        | OpKind::DiagM2V => nnz_of(inputs[0]),
        OpKind::Eq0 => {
            let (m, n) = inputs[0].shape();
            m as f64 * n as f64 - nnz_of(inputs[0])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_estimators::{MetaAcEstimator, MncEstimator};
    use mnc_matrix::gen;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn formats_follow_the_threshold() {
        let mut r = rng(1);
        let sparse = gen::rand_uniform(&mut r, 50, 50, 0.05);
        let dense = gen::rand_uniform(&mut r, 50, 50, 0.9);
        let mut dag = ExprDag::new();
        let ns = dag.leaf("S", Arc::new(sparse));
        let nd = dag.leaf("D", Arc::new(dense));
        let prod = dag.matmul(ns, nd).unwrap();
        let plan = Planner::default().plan(&MncEstimator::new(), &dag).unwrap();
        assert_eq!(plan.node(ns).format, Format::SparseCsr);
        assert_eq!(plan.node(nd).format, Format::Dense);
        // 5% x 90% product over a 50-common-dim: essentially dense.
        assert_eq!(plan.node(prod).format, Format::Dense);
        assert!(plan.total_flops > 0.0);
        assert!(plan.total_memory_bytes > 0.0);
    }

    #[test]
    fn memory_matches_format_arithmetic() {
        let mut r = rng(2);
        let m = gen::rand_uniform(&mut r, 100, 80, 0.01);
        let mut dag = ExprDag::new();
        let leaf = dag.leaf("A", Arc::new(m.clone()));
        let plan = Planner::default().plan(&MncEstimator::new(), &dag).unwrap();
        let n = plan.node(leaf);
        assert_eq!(n.format, Format::SparseCsr);
        let expect = m.nnz() as f64 * 12.0 + 101.0 * 8.0;
        assert!((n.memory_bytes - expect).abs() < 1e-6);
    }

    #[test]
    fn mnc_flops_are_exact_for_base_products() {
        let mut r = rng(3);
        let a = gen::rand_uniform(&mut r, 30, 40, 0.2);
        let b = gen::rand_uniform(&mut r, 40, 20, 0.3);
        let mut dag = ExprDag::new();
        let na = dag.leaf("A", Arc::new(a.clone()));
        let nb = dag.leaf("B", Arc::new(b.clone()));
        let prod = dag.matmul(na, nb).unwrap();
        let plan = Planner::default().plan(&MncEstimator::new(), &dag).unwrap();
        let exact = mnc_matrix::ops::product::matmul_flops(&a, &b).unwrap() as f64;
        assert_eq!(plan.node(prod).flops, exact);
    }

    #[test]
    fn context_planning_reuses_synopses_and_agrees_with_one_shot() {
        let mut r = rng(5);
        let mut dag = ExprDag::new();
        let a = dag.leaf("A", Arc::new(gen::rand_uniform(&mut r, 30, 40, 0.1)));
        let b = dag.leaf("B", Arc::new(gen::rand_uniform(&mut r, 40, 20, 0.2)));
        let prod = dag.matmul(a, b).unwrap();
        let one_shot = Planner::default().plan(&MncEstimator::new(), &dag).unwrap();

        let mut ctx = EstimationContext::new();
        let est = MncEstimator::new();
        let first = Planner::default()
            .plan_with_context(&est, &dag, &mut ctx)
            .unwrap();
        assert_eq!(ctx.stats().cache_hits, 0);
        let second = Planner::default()
            .plan_with_context(&est, &dag, &mut ctx)
            .unwrap();
        // Second plan: both leaves and the product come from the cache.
        assert_eq!(ctx.stats().cache_hits, 3);
        assert_eq!(ctx.stats().builds, 2);
        for plan in [&first, &second] {
            assert_eq!(plan.node(prod).sparsity, one_shot.node(prod).sparsity);
            assert_eq!(plan.node(prod).flops, one_shot.node(prod).flops);
            assert_eq!(plan.total_memory_bytes, one_shot.total_memory_bytes);
        }
    }

    #[test]
    fn structured_input_flips_the_format_decision() {
        // The failure mode the paper opens with: a naive estimator predicts
        // a dense output for the ultra-sparse NLP product and would
        // allocate ~m·emb·8 bytes; MNC sees one non-zero per row and keeps
        // it sparse.
        let mut r = rng(4);
        let counts = vec![1u32; 2000];
        let x = gen::rand_with_row_counts(&mut r, 2000, &counts);
        // Concentrate the tokens: only the first 20 vocabulary entries are
        // used, but W's matching rows are empty except those — make W dense
        // only in rows that are *never hit* to push the true output toward
        // empty while metadata still sees a big nnz(W).
        let w = {
            let mut triples = Vec::new();
            for row in 0..2000usize {
                if x.iter_triples().all(|(_, j, _)| j != row) {
                    for c in 0..64usize {
                        triples.push((row, c, 1.0));
                    }
                }
            }
            mnc_matrix::CsrMatrix::from_triples(2000, 64, triples).unwrap()
        };
        let mut dag = ExprDag::new();
        let nx = dag.leaf("X", Arc::new(x));
        let nw = dag.leaf("W", Arc::new(w));
        let prod = dag.matmul(nx, nw).unwrap();

        let mnc_plan = Planner::default().plan(&MncEstimator::new(), &dag).unwrap();
        let meta_plan = Planner::default().plan(&MetaAcEstimator, &dag).unwrap();
        // MetaAC assumes uniformity: nnz(X)=2000, nnz(W) large, common dim
        // 2000 -> predicts a dense-ish output. MNC sees that the occupied
        // columns of X meet empty rows of W.
        assert!(mnc_plan.node(prod).sparsity < meta_plan.node(prod).sparsity);
        assert!(
            mnc_plan.node(prod).memory_bytes <= meta_plan.node(prod).memory_bytes,
            "MNC must not over-allocate relative to MetaAC here"
        );
    }
}
