//! Sparsity-aware matrix-multiplication chain rewriting — the Appendix C
//! optimizer integration ("we introduced an additional dynamic rewrite for
//! sparsity-aware matrix multiplication chain optimization" in SystemML's
//! compiler).
//!
//! [`rewrite_mm_chains`] scans an expression DAG for *maximal* chains of
//! matrix products (product nodes whose intermediate results are not
//! consumed elsewhere), re-optimizes each chain with the sketch-based
//! dynamic program of [`crate::chain_opt`], and emits a new DAG with the
//! reordered parenthesization. Non-product operations and shared
//! intermediates are preserved untouched.

use std::collections::HashMap;

use mnc_core::{MncConfig, MncSketch};
use mnc_estimators::{OpKind, Result};

use crate::chain_opt::{sparse_chain_order, PlanTree};
use crate::dag::{ExprDag, ExprNode, NodeId};
use crate::session::EstimationContext;

/// Outcome of a rewrite pass.
#[derive(Debug)]
pub struct RewriteResult {
    /// The rewritten DAG.
    pub dag: ExprDag,
    /// Mapping from old node ids to new node ids (chain-internal products
    /// that were dissolved are absent).
    pub node_map: HashMap<NodeId, NodeId>,
    /// Number of chains that were re-parenthesized.
    pub chains_rewritten: usize,
}

/// Counts how many nodes consume each node's output.
fn consumer_counts(dag: &ExprDag) -> Vec<usize> {
    let mut counts = vec![0usize; dag.len()];
    for (_, node) in dag.iter() {
        if let ExprNode::Op { inputs, .. } = node {
            for &i in inputs {
                counts[i] += 1;
            }
        }
    }
    counts
}

/// Collects the leaves of the maximal product chain rooted at `id`:
/// a product input is *inlined* into the chain when it is itself a product
/// with exactly one consumer (so dissolving it is safe).
fn collect_chain(dag: &ExprDag, id: NodeId, consumers: &[usize], leaves: &mut Vec<NodeId>) {
    match dag.node(id) {
        ExprNode::Op { op, inputs } if matches!(op, OpKind::MatMul) && consumers[id] <= 1 => {
            collect_chain(dag, inputs[0], consumers, leaves);
            collect_chain(dag, inputs[1], consumers, leaves);
        }
        _ => leaves.push(id),
    }
}

/// Rewrites every maximal matrix-product chain in the DAG using the
/// sparsity-aware dynamic program over MNC sketches of the chain inputs.
///
/// Chain inputs that are themselves operation nodes get their sketches via
/// propagation (memoized); leaf inputs use exact sketches. One-shot — uses
/// a throwaway [`EstimationContext`]; pass a shared context via
/// [`rewrite_mm_chains_with_context`] to reuse sketches across passes.
pub fn rewrite_mm_chains(dag: &ExprDag, cfg: &MncConfig) -> Result<RewriteResult> {
    rewrite_mm_chains_with_context(dag, cfg, &mut EstimationContext::new())
}

/// [`rewrite_mm_chains`] against a shared estimation session: chain-input
/// sketches come from the context's cache.
pub fn rewrite_mm_chains_with_context(
    dag: &ExprDag,
    cfg: &MncConfig,
    ctx: &mut EstimationContext,
) -> Result<RewriteResult> {
    let span = ctx.recorder().span("rewrite").op("matmul");
    let consumers = consumer_counts(dag);
    let mnc = mnc_estimators::MncEstimator::with_config("MNC", *cfg);

    let mut out = ExprDag::new();
    let mut node_map: HashMap<NodeId, NodeId> = HashMap::new();
    let mut chains_rewritten = 0usize;

    for (id, node) in dag.iter() {
        // Chain-internal products are dissolved lazily: skip nodes that are
        // single-consumer products feeding another product.
        if is_dissolved(dag, id, &consumers) {
            continue;
        }
        let new_id = match node {
            ExprNode::Leaf { name, matrix } => out.leaf(name.clone(), matrix.clone()),
            ExprNode::Op { op, inputs } => {
                if matches!(op, OpKind::MatMul) {
                    let mut leaves = Vec::new();
                    collect_chain(dag, id, &consumers, &mut leaves);
                    if leaves.len() > 2 {
                        // Re-optimize the chain.
                        chains_rewritten += 1;
                        let sketches: Vec<MncSketch> = leaves
                            .iter()
                            .map(|&l| sketch_of(&mnc, dag, l, ctx))
                            .collect::<Result<_>>()?;
                        let (_, plan) = sparse_chain_order(&sketches, cfg);
                        let new_leaves: Vec<NodeId> = leaves.iter().map(|l| node_map[l]).collect();
                        build_plan(&mut out, &plan, &new_leaves)?
                    } else {
                        let ins: Vec<NodeId> = inputs.iter().map(|i| node_map[i]).collect();
                        out.op(op.clone(), &ins)?
                    }
                } else {
                    let ins: Vec<NodeId> = inputs.iter().map(|i| node_map[i]).collect();
                    out.op(op.clone(), &ins)?
                }
            }
        };
        node_map.insert(id, new_id);
    }
    drop(span);
    Ok(RewriteResult {
        dag: out,
        node_map,
        chains_rewritten,
    })
}

/// A node is dissolved when it is a single-consumer product feeding another
/// product (it will be re-created by the chain rebuild of its root).
fn is_dissolved(dag: &ExprDag, id: NodeId, consumers: &[usize]) -> bool {
    if !matches!(
        dag.node(id),
        ExprNode::Op {
            op: OpKind::MatMul,
            ..
        }
    ) || consumers[id] != 1
    {
        return false;
    }
    // Find the unique consumer and check it is a product.
    for (_, node) in dag.iter() {
        if let ExprNode::Op { op, inputs } = node {
            if inputs.contains(&id) {
                return matches!(op, OpKind::MatMul);
            }
        }
    }
    false
}

/// MNC sketch of an arbitrary old-DAG node via the context (cached,
/// memoized propagation).
fn sketch_of(
    mnc: &mnc_estimators::MncEstimator,
    dag: &ExprDag,
    id: NodeId,
    ctx: &mut EstimationContext,
) -> Result<MncSketch> {
    use mnc_estimators::Synopsis;
    match ctx.node_synopsis(mnc, dag, id)?.as_ref() {
        Synopsis::Mnc(s) => Ok(s.sketch.clone()),
        _ => unreachable!("the MNC estimator only produces MNC synopses"),
    }
}

/// Materializes a plan tree as product nodes in the new DAG.
fn build_plan(dag: &mut ExprDag, plan: &PlanTree, leaves: &[NodeId]) -> Result<NodeId> {
    match plan {
        PlanTree::Leaf(i) => Ok(leaves[*i]),
        PlanTree::Node(l, r) => {
            let nl = build_plan(dag, l, leaves)?;
            let nr = build_plan(dag, r, leaves)?;
            dag.matmul(nl, nr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use mnc_matrix::gen;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    /// Equality up to floating-point reassociation round-off.
    fn assert_numerically_equal(a: &mnc_matrix::CsrMatrix, b: &mnc_matrix::CsrMatrix) {
        assert!(b.same_pattern(a), "patterns must be identical");
        for ((_, _, va), (_, _, vb)) in a.iter_triples().zip(b.iter_triples()) {
            assert!(
                (va - vb).abs() <= 1e-9 * va.abs().max(1.0),
                "value drift beyond round-off: {va} vs {vb}"
            );
        }
    }

    /// Left-deep chain of four skewed matrices.
    fn chain_dag(seed: u64) -> (ExprDag, NodeId) {
        let mut r = rng(seed);
        let dims = [40usize, 300, 300, 60, 12];
        let sparsities: [f64; 4] = [0.2, 0.001, 0.3, 0.25];
        let mut dag = ExprDag::new();
        let leaves: Vec<NodeId> = dims
            .windows(2)
            .zip(&sparsities)
            .enumerate()
            .map(|(i, (w, &s))| {
                dag.leaf(
                    format!("M{i}"),
                    Arc::new(gen::rand_uniform(
                        &mut r,
                        w[0],
                        w[1],
                        s.max(1.0 / (w[0] * w[1]) as f64),
                    )),
                )
            })
            .collect();
        let mids = dag.left_deep_chain(&leaves).unwrap();
        (dag, *mids.last().unwrap())
    }

    #[test]
    fn rewrite_preserves_the_result() {
        let (dag, root) = chain_dag(1);
        let rewritten = rewrite_mm_chains(&dag, &MncConfig::default()).unwrap();
        assert_eq!(rewritten.chains_rewritten, 1);
        let new_root = rewritten.node_map[&root];
        let before = Evaluator::new().eval(&dag, root).unwrap();
        let after = Evaluator::new().eval(&rewritten.dag, new_root).unwrap();
        // Reassociation changes the floating-point summation order, so
        // compare patterns exactly and values within round-off.
        assert!(after.same_pattern(&before), "patterns must be identical");
        for ((_, _, va), (_, _, vb)) in before.iter_triples().zip(after.iter_triples()) {
            assert!(
                (va - vb).abs() <= 1e-9 * va.abs().max(1.0),
                "value drift beyond round-off: {va} vs {vb}"
            );
        }
    }

    #[test]
    fn rewrite_reduces_or_preserves_actual_flops() {
        use crate::chain_opt::chain_flops_exact;
        let (dag, _) = chain_dag(2);
        // Extract the chain matrices back out for exact cost accounting.
        let mats: Vec<_> = dag
            .iter()
            .filter_map(|(_, n)| match n {
                ExprNode::Leaf { matrix, .. } => Some(Arc::clone(matrix)),
                _ => None,
            })
            .collect();
        let left_deep = PlanTree::left_deep(mats.len());
        let rewritten = rewrite_mm_chains(&dag, &MncConfig::default()).unwrap();
        // Reconstruct the rewritten plan's cost by evaluating the new DAG
        // shape: simplest check — the optimizer's own plan choice costs no
        // more than left-deep.
        let sketches: Vec<MncSketch> = mats.iter().map(|m| MncSketch::build(m)).collect();
        let (_, plan) = sparse_chain_order(&sketches, &MncConfig::default());
        assert!(
            chain_flops_exact(&mats, &plan) <= chain_flops_exact(&mats, &left_deep),
            "optimized plan must not be worse than left-deep"
        );
        assert_eq!(rewritten.chains_rewritten, 1);
    }

    #[test]
    fn shared_intermediates_are_not_dissolved() {
        // (A B) is consumed twice: once by another product and once by an
        // element-wise op — it must survive the rewrite as a real node.
        let mut r = rng(3);
        let a = Arc::new(gen::rand_uniform(&mut r, 20, 20, 0.3));
        let mut dag = ExprDag::new();
        let na = dag.leaf("A", Arc::clone(&a));
        let nb = dag.leaf("B", Arc::clone(&a));
        let ab = dag.matmul(na, nb).unwrap();
        let abc = dag.matmul(ab, na).unwrap();
        let shared = dag.ew_add(ab, nb).unwrap();
        let rewritten = rewrite_mm_chains(&dag, &MncConfig::default()).unwrap();
        let new_abc = rewritten.node_map[&abc];
        let new_shared = rewritten.node_map[&shared];
        let mut ev_old = Evaluator::new();
        let mut ev_new = Evaluator::new();
        assert_eq!(
            *ev_old.eval(&dag, abc).unwrap(),
            *ev_new.eval(&rewritten.dag, new_abc).unwrap()
        );
        assert_eq!(
            *ev_old.eval(&dag, shared).unwrap(),
            *ev_new.eval(&rewritten.dag, new_shared).unwrap()
        );
    }

    #[test]
    fn mixed_expressions_pass_through() {
        // reshape/transpose/element-wise nodes are copied untouched.
        let mut r = rng(4);
        let x = Arc::new(gen::rand_uniform(&mut r, 12, 10, 0.4));
        let mut dag = ExprDag::new();
        let nx = dag.leaf("X", Arc::clone(&x));
        let t = dag.transpose(nx).unwrap();
        let p = dag.matmul(nx, t).unwrap();
        let z = dag.op(OpKind::Neq0, &[p]).unwrap();
        let rewritten = rewrite_mm_chains(&dag, &MncConfig::default()).unwrap();
        assert_eq!(rewritten.chains_rewritten, 0); // only a 2-chain
        let new_z = rewritten.node_map[&z];
        assert_eq!(
            *Evaluator::new().eval(&dag, z).unwrap(),
            *Evaluator::new().eval(&rewritten.dag, new_z).unwrap()
        );
    }

    #[test]
    fn chains_behind_reorgs_are_found() {
        // (A B C)ᵀ — the chain sits under a transpose.
        let mut r = rng(5);
        let dims = [10usize, 80, 15, 30];
        let mut dag = ExprDag::new();
        let leaves: Vec<NodeId> = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                dag.leaf(
                    format!("M{i}"),
                    Arc::new(gen::rand_uniform(&mut r, w[0], w[1], 0.2)),
                )
            })
            .collect();
        let mids = dag.left_deep_chain(&leaves).unwrap();
        let root = dag.transpose(*mids.last().unwrap()).unwrap();
        let rewritten = rewrite_mm_chains(&dag, &MncConfig::default()).unwrap();
        assert_eq!(rewritten.chains_rewritten, 1);
        let new_root = rewritten.node_map[&root];
        assert_numerically_equal(
            &Evaluator::new().eval(&dag, root).unwrap(),
            &Evaluator::new().eval(&rewritten.dag, new_root).unwrap(),
        );
    }
}
