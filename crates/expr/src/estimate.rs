//! Generic, memoized synopsis propagation over expression DAGs.
//!
//! Follows the paper's implementation notes (Section 3.3): synopses of
//! intermediates are memoized (nodes may be reachable over multiple paths),
//! and *root* sparsity is estimated directly without materializing the root
//! synopsis.
//!
//! These free functions are one-shot conveniences: each call runs in a
//! throwaway [`EstimationContext`], so nothing is cached across calls. Hold
//! a context and call its methods directly to reuse synopses over repeated
//! estimation.

use mnc_estimators::{Result, SparsityEstimator};

use crate::dag::{ExprDag, NodeId};
use crate::session::EstimationContext;

/// Estimate for one DAG node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeEstimate {
    /// The node.
    pub id: NodeId,
    /// Estimated sparsity in `[0, 1]`.
    pub sparsity: f64,
}

/// Estimates the sparsity of `root` under the given estimator: leaf synopses
/// are built, intermediate synopses propagated (memoized), and the root is
/// estimated directly.
pub fn estimate_root<E: SparsityEstimator + ?Sized>(
    est: &E,
    dag: &ExprDag,
    root: NodeId,
) -> Result<f64> {
    EstimationContext::new().estimate_root(est, dag, root)
}

/// Estimates the sparsity of *every* operation node in the DAG (used by the
/// chain experiments that report all intermediates, e.g. Figure 15).
pub fn estimate_all<E: SparsityEstimator + ?Sized>(
    est: &E,
    dag: &ExprDag,
) -> Result<Vec<NodeEstimate>> {
    EstimationContext::new().estimate_all(est, dag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use mnc_estimators::{BitsetEstimator, MetaAcEstimator, MncEstimator, OpKind};
    use mnc_matrix::gen;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn chain_dag(seed: u64) -> (ExprDag, NodeId) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut dag = ExprDag::new();
        let a = dag.leaf("A", Arc::new(gen::rand_uniform(&mut rng, 40, 30, 0.1)));
        let b = dag.leaf("B", Arc::new(gen::rand_uniform(&mut rng, 30, 50, 0.08)));
        let c = dag.leaf("C", Arc::new(gen::rand_uniform(&mut rng, 50, 20, 0.12)));
        let ab = dag.matmul(a, b).unwrap();
        let root = dag.matmul(ab, c).unwrap();
        (dag, root)
    }

    #[test]
    fn bitset_root_estimate_is_exact() {
        let (dag, root) = chain_dag(1);
        let est = estimate_root(&BitsetEstimator::default(), &dag, root).unwrap();
        let truth = Evaluator::new().sparsity(&dag, root).unwrap();
        assert!((est - truth).abs() < 1e-15);
    }

    #[test]
    fn mnc_chain_estimate_close() {
        let (dag, root) = chain_dag(2);
        let est = estimate_root(&MncEstimator::new(), &dag, root).unwrap();
        let truth = Evaluator::new().sparsity(&dag, root).unwrap();
        let rel = est.max(truth) / est.min(truth).max(1e-12);
        assert!(rel < 1.5, "relative error {rel} (est {est}, truth {truth})");
    }

    #[test]
    fn meta_ac_runs_on_any_dag() {
        let (dag, root) = chain_dag(3);
        let est = estimate_root(&MetaAcEstimator, &dag, root).unwrap();
        assert!((0.0..=1.0).contains(&est));
    }

    #[test]
    fn estimate_all_covers_every_op_node() {
        let (dag, _) = chain_dag(4);
        let all = estimate_all(&MncEstimator::new(), &dag).unwrap();
        // Two products in the chain.
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|e| (0.0..=1.0).contains(&e.sparsity)));
    }

    #[test]
    fn leaf_root_returns_exact_sparsity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let m = gen::rand_uniform(&mut rng, 10, 10, 0.23);
        let s = m.sparsity();
        let mut dag = ExprDag::new();
        let leaf = dag.leaf("A", Arc::new(m));
        let est = estimate_root(&MncEstimator::new(), &dag, leaf).unwrap();
        assert!((est - s).abs() < 1e-15);
    }

    #[test]
    fn mixed_expression_all_estimators_that_support_it() {
        // reshape(X W) — the B3.1 shape.
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut dag = ExprDag::new();
        let counts = vec![1u32; 60];
        let x = dag.leaf(
            "X",
            Arc::new(gen::rand_with_row_counts(&mut rng, 40, &counts)),
        );
        let w = dag.leaf("W", Arc::new(gen::rand_dense(&mut rng, 40, 30)));
        let xw = dag.matmul(x, w).unwrap();
        let root = dag
            .op(OpKind::Reshape { rows: 30, cols: 60 }, &[xw])
            .unwrap();
        let truth = Evaluator::new().sparsity(&dag, root).unwrap();
        let mnc = estimate_root(&MncEstimator::new(), &dag, root).unwrap();
        // Single non-zero per row + sparsity-preserving reshape: exact.
        assert!((mnc - truth).abs() < 1e-12, "mnc {mnc} truth {truth}");
    }
}
