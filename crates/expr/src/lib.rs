//! # mnc-expr — expression DAGs and the sparsity-aware chain optimizer
//!
//! The paper estimates sparsity for *expressions*: DAGs of matrix products,
//! element-wise operations, and reorganizations (Sections 3.3, 4.2), and
//! uses the estimates inside a matrix-multiplication-chain optimizer
//! (Appendix C). This crate provides:
//!
//! * [`dag`] — a small intermediate representation: leaf matrices and
//!   operation nodes with shape validation at construction;
//! * [`eval`] — exact bottom-up evaluation (the ground truth every
//!   experiment compares against), with memoized intermediates;
//! * [`estimate`] — generic, memoized synopsis propagation for *any*
//!   [`SparsityEstimator`]: intermediate synopses are propagated, root
//!   sparsity is estimated directly (the paper's implementation notes);
//! * [`chain_opt`] — the textbook `O(n³)` matrix-chain dynamic program in
//!   two flavours: dense FLOP costs, and sparsity-aware costs via MNC
//!   sketch dot products `h^c · h^r` (Eq. 17), plus random-plan
//!   enumeration for the Figure 16 experiment;
//! * [`planner`] — cost-based physical planning from the estimates:
//!   per-node format decisions (dense vs CSR), memory pre-allocation
//!   estimates, and FLOP costs — the paper's motivating applications.

pub mod chain_opt;
pub mod dag;
pub mod estimate;
pub mod eval;
pub mod planner;
pub mod rewrite;
pub mod session;
pub mod sessions;

pub use chain_opt::{
    chain_flops_exact, dense_chain_order, plan_cost_sketched, random_plan, sparse_chain_order,
    sparse_chain_order_cached, PlanTree,
};
pub use dag::{ExprDag, ExprNode, NodeId};
pub use estimate::{estimate_all, estimate_root, NodeEstimate};
pub use eval::Evaluator;
pub use planner::{Format, NodePlan, PlanSummary, Planner};
pub use rewrite::{rewrite_mm_chains, rewrite_mm_chains_with_context, RewriteResult};
pub use session::{EstimationContext, SynopsisKey};
pub use sessions::{SessionPool, SessionPoolConfig, SessionPoolStats};

// Re-exported so downstream crates write `mnc_expr::SparsityEstimator`
// (and read `mnc_expr::EstimationStats` off a context).
pub use mnc_core::{EstimationStats, OpStat};
pub use mnc_estimators::{OpKind, SparsityEstimator, Synopsis};
// Observability: attach a `Recorder` via `EstimationContext::with_recorder`,
// export with `Recorder::report()`.
pub use mnc_obs::{ObsFormat, Recorder, Report};
pub use mnc_obsd::{ObsDaemon, ObsdConfig};
