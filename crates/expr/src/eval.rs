//! Exact bottom-up evaluation of expression DAGs — the ground truth.

use std::collections::HashMap;
use std::sync::Arc;

use mnc_estimators::OpKind;
use mnc_matrix::{ops, CsrMatrix, MatrixError};

use crate::dag::{ExprDag, ExprNode, NodeId};

/// Memoizing evaluator: each node is computed at most once, and shared
/// intermediates are reused across roots (mirroring the estimators' sketch
/// memoization).
#[derive(Debug, Default)]
pub struct Evaluator {
    cache: HashMap<NodeId, Arc<CsrMatrix>>,
}

impl Evaluator {
    /// Fresh evaluator with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates `id` (and transitively its inputs) exactly.
    pub fn eval(&mut self, dag: &ExprDag, id: NodeId) -> Result<Arc<CsrMatrix>, MatrixError> {
        if let Some(m) = self.cache.get(&id) {
            return Ok(Arc::clone(m));
        }
        let result = match dag.node(id) {
            ExprNode::Leaf { matrix, .. } => Arc::clone(matrix),
            ExprNode::Op { op, inputs } => {
                let ins: Vec<Arc<CsrMatrix>> = inputs
                    .iter()
                    .map(|&i| self.eval(dag, i))
                    .collect::<Result<_, _>>()?;
                let out = match op {
                    OpKind::MatMul => ops::matmul(&ins[0], &ins[1])?,
                    OpKind::EwAdd => ops::ew_add(&ins[0], &ins[1])?,
                    OpKind::EwMul => ops::ew_mul(&ins[0], &ins[1])?,
                    OpKind::EwMax => ops::ew_max(&ins[0], &ins[1])?,
                    OpKind::EwMin => ops::ew_min(&ins[0], &ins[1])?,
                    OpKind::Transpose => ins[0].transpose(),
                    OpKind::Reshape { rows, cols } => ops::reshape(&ins[0], *rows, *cols)?,
                    OpKind::DiagV2M => ops::diag_v2m(&ins[0])?,
                    OpKind::DiagM2V => ops::diag_extract(&ins[0])?,
                    OpKind::Rbind => ops::rbind(&ins[0], &ins[1])?,
                    OpKind::Cbind => ops::cbind(&ins[0], &ins[1])?,
                    OpKind::Neq0 => ops::neq_zero(&ins[0]),
                    OpKind::Eq0 => ops::eq_zero(&ins[0]),
                };
                Arc::new(out)
            }
        };
        self.cache.insert(id, Arc::clone(&result));
        Ok(result)
    }

    /// Exact output sparsity of a node.
    pub fn sparsity(&mut self, dag: &ExprDag, id: NodeId) -> Result<f64, MatrixError> {
        Ok(self.eval(dag, id)?.sparsity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::gen;
    use rand::SeedableRng;

    #[test]
    fn evaluates_product_chain_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = gen::rand_uniform(&mut rng, 10, 12, 0.3);
        let b = gen::rand_uniform(&mut rng, 12, 8, 0.4);
        let c = gen::rand_uniform(&mut rng, 8, 5, 0.5);
        let mut dag = ExprDag::new();
        let (na, nb, nc) = (
            dag.leaf("A", Arc::new(a.clone())),
            dag.leaf("B", Arc::new(b.clone())),
            dag.leaf("C", Arc::new(c.clone())),
        );
        let ab = dag.matmul(na, nb).unwrap();
        let abc = dag.matmul(ab, nc).unwrap();
        let mut ev = Evaluator::new();
        let got = ev.eval(&dag, abc).unwrap();
        let expect = ops::matmul(&ops::matmul(&a, &b).unwrap(), &c).unwrap();
        assert_eq!(*got, expect);
    }

    #[test]
    fn cache_shares_intermediates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = Arc::new(gen::rand_uniform(&mut rng, 6, 6, 0.4));
        let mut dag = ExprDag::new();
        let na = dag.leaf("A", Arc::clone(&a));
        let sq = dag.matmul(na, na).unwrap();
        let cube = dag.matmul(sq, na).unwrap();
        let quad = dag.matmul(sq, sq).unwrap();
        let mut ev = Evaluator::new();
        let m_cube = ev.eval(&dag, cube).unwrap();
        let m_quad = ev.eval(&dag, quad).unwrap();
        // Both reuse the cached square; results agree with direct compute.
        let sq_m = ops::matmul(&a, &a).unwrap();
        assert_eq!(*m_cube, ops::matmul(&sq_m, &a).unwrap());
        assert_eq!(*m_quad, ops::matmul(&sq_m, &sq_m).unwrap());
    }

    #[test]
    fn mixed_expression() {
        // X ⊙ ((R ⊙ S + T) != 0) — the B3.5 shape at toy scale.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = Arc::new(gen::rand_uniform(&mut rng, 8, 8, 0.5));
        let r = Arc::new(gen::rand_uniform(&mut rng, 8, 8, 0.4));
        let s = Arc::new(gen::rand_uniform(&mut rng, 8, 8, 0.3));
        let t = Arc::new(gen::rand_uniform(&mut rng, 8, 8, 0.2));
        let mut dag = ExprDag::new();
        let (nx, nr, ns, nt) = (
            dag.leaf("X", Arc::clone(&x)),
            dag.leaf("R", Arc::clone(&r)),
            dag.leaf("S", Arc::clone(&s)),
            dag.leaf("T", Arc::clone(&t)),
        );
        let rs = dag.ew_mul(nr, ns).unwrap();
        let rst = dag.ew_add(rs, nt).unwrap();
        let mask = dag.op(OpKind::Neq0, &[rst]).unwrap();
        let out = dag.ew_mul(nx, mask).unwrap();
        let mut ev = Evaluator::new();
        let got = ev.eval(&dag, out).unwrap();
        let expect = ops::ew_mul(
            &x,
            &ops::neq_zero(&ops::ew_add(&ops::ew_mul(&r, &s).unwrap(), &t).unwrap()),
        )
        .unwrap();
        assert_eq!(*got, expect);
    }
}
