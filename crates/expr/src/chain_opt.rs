//! Matrix-multiplication chain optimization (Appendix C).
//!
//! The textbook `O(n³)` dynamic program [CLRS] in two flavours:
//!
//! * [`dense_chain_order`] — classic dense FLOP costs `m·n·l` per product,
//!   oblivious to sparsity (SystemML's default);
//! * [`sparse_chain_order`] — the paper's extension: the cost of a sparse
//!   product is its multiplication count, computed as the sketch dot
//!   product `h^c_left · h^r_right` (Eq. 17); an extra memo table `E`
//!   stores the propagated MNC sketch of each optimal subchain.
//!
//! [`random_plan`] enumerates uniformly random parenthesizations and
//! [`plan_cost_sketched`] / [`chain_flops_exact`] cost arbitrary plans —
//! together they regenerate the Figure 16 experiment.

use std::fmt;
use std::sync::Arc;

use mnc_core::propagate::propagate_matmul_in;
use mnc_core::{MncConfig, MncSketch, ScratchArena, SplitMix64};
use mnc_matrix::{ops, CsrMatrix};

/// A binary parenthesization of a matrix chain; leaves are chain positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanTree {
    /// The `i`-th matrix of the chain.
    Leaf(usize),
    /// A product of two sub-plans.
    Node(Box<PlanTree>, Box<PlanTree>),
}

impl PlanTree {
    /// Fully left-deep plan `((M0 M1) M2) ...` over `n` matrices.
    pub fn left_deep(n: usize) -> PlanTree {
        assert!(n >= 1);
        let mut t = PlanTree::Leaf(0);
        for i in 1..n {
            t = PlanTree::Node(Box::new(t), Box::new(PlanTree::Leaf(i)));
        }
        t
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        match self {
            PlanTree::Leaf(_) => 1,
            PlanTree::Node(l, r) => l.len() + r.len(),
        }
    }

    /// True only for the degenerate empty case (never constructed).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for PlanTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanTree::Leaf(i) => write!(f, "M{i}"),
            PlanTree::Node(l, r) => write!(f, "({l} {r})"),
        }
    }
}

/// Classic dense matrix-chain DP: minimizes `Σ m·n·l` over all
/// parenthesizations. `dims` has `k + 1` entries for `k` matrices.
/// Returns `(optimal cost, plan)`.
pub fn dense_chain_order(dims: &[usize]) -> (f64, PlanTree) {
    let n = dims.len() - 1;
    assert!(n >= 1, "need at least one matrix");
    let mut cost = vec![vec![0.0f64; n]; n];
    let mut split = vec![vec![0usize; n]; n];
    for len in 2..=n {
        for i in 0..=n - len {
            let j = i + len - 1;
            cost[i][j] = f64::INFINITY;
            for k in i..j {
                let c = cost[i][k]
                    + cost[k + 1][j]
                    + dims[i] as f64 * dims[k + 1] as f64 * dims[j + 1] as f64;
                if c < cost[i][j] {
                    cost[i][j] = c;
                    split[i][j] = k;
                }
            }
        }
    }
    (cost[0][n - 1], extract_plan(&split, 0, n - 1))
}

/// Sparsity-aware matrix-chain DP (Appendix C, Eq. 17): the cost of joining
/// two optimal subchains is the estimated sparse multiplication count
/// `h^c · h^r`; subchain sketches are memoized in `E` and propagated with
/// the MNC rules. Returns `(optimal estimated FLOPs, plan)`.
pub fn sparse_chain_order(sketches: &[MncSketch], cfg: &MncConfig) -> (f64, PlanTree) {
    let n = sketches.len();
    assert!(n >= 1, "need at least one matrix");
    let mut rng = SplitMix64::new(cfg.seed ^ 0xC4A1_0000);
    let mut arena = ScratchArena::new();
    let mut cost = vec![vec![0.0f64; n]; n];
    let mut split = vec![vec![0usize; n]; n];
    // E[i][j]: sketch of the optimal plan for the subchain i..=j.
    let mut sketch: Vec<Vec<Option<MncSketch>>> = vec![vec![None; n]; n];
    for (i, row) in sketch.iter_mut().enumerate() {
        row[i] = Some(sketches[i].clone());
    }
    for len in 2..=n {
        for i in 0..=n - len {
            let j = i + len - 1;
            cost[i][j] = f64::INFINITY;
            let mut best_k = i;
            for k in i..j {
                let left = sketch[i][k].as_ref().expect("filled by shorter length");
                let right = sketch[k + 1][j].as_ref().expect("filled by shorter length");
                let c = cost[i][k] + cost[k + 1][j] + sketch_dot(left, right);
                if c < cost[i][j] {
                    cost[i][j] = c;
                    best_k = k;
                }
            }
            split[i][j] = best_k;
            // Propagate straight from the memo table (no clones); the
            // output's count vectors are leased from the scratch arena.
            let out = {
                let left = sketch[i][best_k].as_ref().expect("filled");
                let right = sketch[best_k + 1][j].as_ref().expect("filled");
                propagate_matmul_in(left, right, cfg, &mut rng, &mut arena)
            };
            sketch[i][j] = Some(out);
        }
    }
    (cost[0][n - 1], extract_plan(&split, 0, n - 1))
}

/// [`sparse_chain_order`] with leaf sketches drawn from an
/// [`EstimationContext`](crate::EstimationContext) instead of pre-built by
/// the caller: repeated chain optimization over overlapping matrix sets
/// (e.g. scoring many rewrites of one program) builds each sketch once.
pub fn sparse_chain_order_cached(
    ctx: &mut crate::session::EstimationContext,
    est: &mnc_estimators::MncEstimator,
    mats: &[Arc<CsrMatrix>],
) -> mnc_estimators::Result<(f64, PlanTree)> {
    use mnc_estimators::{EstimatorError, Synopsis};
    let _span = ctx.recorder().span("chain_opt").op("matmul");
    let mut sketches = Vec::with_capacity(mats.len());
    for m in mats {
        let syn = ctx.leaf_synopsis(est, m)?;
        match syn.as_ref() {
            Synopsis::Mnc(s) => sketches.push(s.sketch.clone()),
            other => {
                return Err(EstimatorError::Internal(format!(
                    "sparse_chain_order_cached: MNC estimator produced a non-MNC synopsis {:?}",
                    other.shape()
                )))
            }
        }
    }
    Ok(sparse_chain_order(&sketches, est.config()))
}

/// Estimated sparse multiplication count of the product of two sketched
/// operands: `Σ_k h^c_A[k] · h^r_B[k]` (Eq. 17). This is independent of the
/// output sparsity — it counts FLOPs of a Gustavson-style kernel.
pub fn sketch_dot(a: &MncSketch, b: &MncSketch) -> f64 {
    debug_assert_eq!(a.ncols, b.nrows, "sketch_dot shape mismatch");
    // Unrolled integer-accumulating kernel: exact (single final rounding)
    // wherever the sequential f64 sum was, and bit-identical to it while
    // partial sums stay below 2^53.
    mnc_kernels::dot_u32(&a.hc, &b.hr)
}

fn extract_plan(split: &[Vec<usize>], i: usize, j: usize) -> PlanTree {
    if i == j {
        PlanTree::Leaf(i)
    } else {
        let k = split[i][j];
        PlanTree::Node(
            Box::new(extract_plan(split, i, k)),
            Box::new(extract_plan(split, k + 1, j)),
        )
    }
}

/// Estimated total FLOPs of an arbitrary plan via MNC sketch propagation
/// (used to score the Figure 16 random plans without executing them).
pub fn plan_cost_sketched(sketches: &[MncSketch], plan: &PlanTree, cfg: &MncConfig) -> f64 {
    let mut rng = SplitMix64::new(cfg.seed ^ 0x9A9A_0001);
    let mut arena = ScratchArena::new();
    fn go(
        sketches: &[MncSketch],
        plan: &PlanTree,
        cfg: &MncConfig,
        rng: &mut SplitMix64,
        arena: &mut ScratchArena,
    ) -> (MncSketch, f64) {
        match plan {
            PlanTree::Leaf(i) => (sketches[*i].clone(), 0.0),
            PlanTree::Node(l, r) => {
                let (sl, cl) = go(sketches, l, cfg, rng, arena);
                let (sr, cr) = go(sketches, r, cfg, rng, arena);
                let cost = cl + cr + sketch_dot(&sl, &sr);
                let out = propagate_matmul_in(&sl, &sr, cfg, rng, arena);
                // The consumed operands refill the arena, so deep plans
                // reach a zero-allocation steady state.
                sl.recycle_into(arena);
                sr.recycle_into(arena);
                (out, cost)
            }
        }
    }
    go(sketches, plan, cfg, &mut rng, &mut arena).1
}

/// Exact total multiplication count of a plan, materializing every
/// intermediate pattern. Expensive — use at verification scale only.
pub fn chain_flops_exact(mats: &[Arc<CsrMatrix>], plan: &PlanTree) -> u64 {
    fn go(mats: &[Arc<CsrMatrix>], plan: &PlanTree) -> (Arc<CsrMatrix>, u64) {
        match plan {
            PlanTree::Leaf(i) => (Arc::clone(&mats[*i]), 0),
            PlanTree::Node(l, r) => {
                let (ml, cl) = go(mats, l);
                let (mr, cr) = go(mats, r);
                let flops = ops::product::matmul_flops(&ml, &mr).expect("chain shapes agree");
                let out = Arc::new(ops::bool_matmul(&ml, &mr).expect("chain shapes agree"));
                (out, cl + cr + flops)
            }
        }
    }
    go(mats, plan).1
}

/// Draws a uniformly random parenthesization of `n` matrices by recursive
/// random splitting.
pub fn random_plan(n: usize, rng: &mut SplitMix64) -> PlanTree {
    fn go(lo: usize, hi: usize, rng: &mut SplitMix64) -> PlanTree {
        if lo == hi {
            return PlanTree::Leaf(lo);
        }
        let k = lo + (rng.next_u64() as usize) % (hi - lo);
        PlanTree::Node(Box::new(go(lo, k, rng)), Box::new(go(k + 1, hi, rng)))
    }
    assert!(n >= 1);
    go(0, n - 1, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::gen;
    use rand::SeedableRng;

    #[test]
    fn dense_dp_textbook_example() {
        // CLRS example: dims 30x35, 35x15, 15x5, 5x10, 10x20, 20x25
        // -> optimal cost 15,125 with plan ((M0 (M1 M2)) ((M3 M4) M5)).
        let dims = [30, 35, 15, 5, 10, 20, 25];
        let (cost, plan) = dense_chain_order(&dims);
        assert_eq!(cost, 15_125.0);
        assert_eq!(plan.to_string(), "((M0 (M1 M2)) ((M3 M4) M5))");
    }

    #[test]
    fn single_matrix_chain() {
        let (cost, plan) = dense_chain_order(&[5, 7]);
        assert_eq!(cost, 0.0);
        assert_eq!(plan, PlanTree::Leaf(0));
    }

    #[test]
    fn plan_tree_helpers() {
        let t = PlanTree::left_deep(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.to_string(), "(((M0 M1) M2) M3)");
    }

    #[test]
    fn random_plans_are_valid_and_varied() {
        let mut rng = SplitMix64::new(7);
        let mut shapes = std::collections::HashSet::new();
        for _ in 0..50 {
            let p = random_plan(6, &mut rng);
            assert_eq!(p.len(), 6);
            shapes.insert(p.to_string());
        }
        assert!(shapes.len() > 5, "only {} distinct plans", shapes.len());
    }

    fn random_chain(seed: u64, dims: &[usize], sparsities: &[f64]) -> Vec<Arc<CsrMatrix>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        dims.windows(2)
            .zip(sparsities)
            .map(|(w, &s)| Arc::new(gen::rand_uniform(&mut rng, w[0], w[1], s)))
            .collect()
    }

    #[test]
    fn sparse_dp_beats_or_matches_dense_plan_on_skewed_chain() {
        // A chain where sparsity makes the dense-optimal order suboptimal.
        let dims = [40usize, 200, 30, 200, 25];
        let sparsities = [0.01, 0.6, 0.005, 0.5];
        let mats = random_chain(11, &dims, &sparsities);
        let sketches: Vec<MncSketch> = mats.iter().map(|m| MncSketch::build(m)).collect();
        let cfg = MncConfig::default();
        let (_, dense_plan) = dense_chain_order(&dims);
        let (_, sparse_plan) = sparse_chain_order(&sketches, &cfg);
        let dense_flops = chain_flops_exact(&mats, &dense_plan);
        let sparse_flops = chain_flops_exact(&mats, &sparse_plan);
        assert!(
            sparse_flops <= dense_flops,
            "sparse-aware plan ({sparse_flops}) must not lose to dense plan ({dense_flops})"
        );
    }

    #[test]
    fn sparse_dp_never_worse_than_left_deep_estimate() {
        for seed in 0..5u64 {
            let dims = [30usize, 60, 20, 50, 40, 10];
            let sparsities = [0.05, 0.2, 0.02, 0.3, 0.1];
            let mats = random_chain(100 + seed, &dims, &sparsities);
            let sketches: Vec<MncSketch> = mats.iter().map(|m| MncSketch::build(m)).collect();
            let cfg = MncConfig::default();
            let (opt_cost, _) = sparse_chain_order(&sketches, &cfg);
            let left_deep = PlanTree::left_deep(mats.len());
            let ld_cost = plan_cost_sketched(&sketches, &left_deep, &cfg);
            assert!(
                opt_cost <= ld_cost + 1e-6,
                "DP ({opt_cost}) worse than left-deep ({ld_cost})"
            );
        }
    }

    #[test]
    fn sketched_cost_close_to_exact_on_uniform_data() {
        let dims = [25usize, 40, 30, 20];
        let sparsities = [0.1, 0.15, 0.2];
        let mats = random_chain(42, &dims, &sparsities);
        let sketches: Vec<MncSketch> = mats.iter().map(|m| MncSketch::build(m)).collect();
        let plan = PlanTree::left_deep(3);
        let est = plan_cost_sketched(&sketches, &plan, &MncConfig::default());
        let exact = chain_flops_exact(&mats, &plan) as f64;
        let rel = est.max(exact) / est.min(exact).max(1e-12);
        assert!(rel < 1.4, "relative error {rel} (est {est}, exact {exact})");
    }

    #[test]
    fn first_product_cost_is_exact() {
        // For base matrices (exact sketches), the Eq. 17 dot product is the
        // exact multiplication count.
        let mats = random_chain(5, &[10, 20, 15], &[0.3, 0.2]);
        let sketches: Vec<MncSketch> = mats.iter().map(|m| MncSketch::build(m)).collect();
        let dot = sketch_dot(&sketches[0], &sketches[1]);
        let exact = ops::product::matmul_flops(&mats[0], &mats[1]).unwrap() as f64;
        assert_eq!(dot, exact);
    }
}
