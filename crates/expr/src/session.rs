//! Estimation sessions: cached, instrumented synopsis propagation.
//!
//! An [`EstimationContext`] wraps the stateless [`SparsityEstimator`] calls
//! with a byte-budgeted LRU synopsis cache and [`EstimationStats`] counters.
//! Repeated estimation over the same matrices — the planner re-costing a DAG
//! after a rewrite, the chain optimizer probing many parenthesizations, a
//! benchmark sweeping estimators — reuses leaf synopses and propagated
//! intermediates instead of rebuilding them per call.
//!
//! Cache keys combine the estimator's [`cache_key`] (name + config knobs)
//! with a [`SynopsisKey`]: leaves are identified by matrix pointer identity
//! plus shape/nnz (an `Arc<CsrMatrix>` is immutable, so pointer identity is
//! sound; shape and nnz guard against address reuse after a drop), and
//! intermediates by `(dag id, node id)` — DAGs are append-only, so a node's
//! content never changes under its id.
//!
//! On a cold cache the context performs *exactly* the same build/propagate
//! sequence as the uncached [`estimate_root`](crate::estimate_root) walk
//! (depth-first, inputs in order), so estimators with internal RNG streams
//! (probabilistic rounding in MNC) produce identical results either way —
//! asserted by the property tests.
//!
//! [`cache_key`]: SparsityEstimator::cache_key

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use mnc_core::{EstimationStats, LruSynopsisCache, OpTimer, ScratchArena};
use mnc_estimators::{Result, SparsityEstimator, Synopsis};
use mnc_kernels::WorkerPool;
use mnc_matrix::CsrMatrix;
use mnc_obs::{Counter, Gauge, Histogram, Recorder};

use crate::dag::{ExprDag, ExprNode, NodeId};
use crate::estimate::NodeEstimate;

/// Default cache budget: plenty for sketches (`O(m+n)` each), while bounding
/// the damage when bitsets or retained samples get cached.
pub const DEFAULT_BYTE_BUDGET: usize = 64 << 20;

/// What a cached synopsis describes (the estimator-independent half of the
/// cache key; the estimator half is [`SparsityEstimator::cache_key`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SynopsisKey {
    /// A base matrix, identified by `Arc` pointer identity. Shape and nnz
    /// disambiguate a reused allocation address after the original `Arc`
    /// was dropped.
    Leaf {
        /// `Arc::as_ptr` of the matrix.
        ptr: usize,
        /// Matrix rows.
        nrows: usize,
        /// Matrix columns.
        ncols: usize,
        /// Matrix non-zero count.
        nnz: usize,
    },
    /// An intermediate: a node of a specific DAG.
    Node {
        /// [`ExprDag::id`] of the owning DAG.
        dag: u64,
        /// Node id within that DAG.
        node: NodeId,
    },
    /// A synopsis registered under an external name — the key used by
    /// services whose leaves live in a catalog rather than in-process
    /// `Arc<CsrMatrix>` memory (`mnc-served`'s named matrices).
    Named {
        /// Catalog name of the synopsis.
        name: Arc<str>,
    },
}

impl SynopsisKey {
    /// Key for a base matrix.
    pub fn leaf(m: &Arc<CsrMatrix>) -> SynopsisKey {
        SynopsisKey::Leaf {
            ptr: Arc::as_ptr(m) as usize,
            nrows: m.nrows(),
            ncols: m.ncols(),
            nnz: m.nnz(),
        }
    }

    /// Key for a DAG node.
    pub fn node(dag: &ExprDag, id: NodeId) -> SynopsisKey {
        SynopsisKey::Node {
            dag: dag.id(),
            node: id,
        }
    }

    /// Key for a named (catalog) synopsis.
    pub fn named(name: &str) -> SynopsisKey {
        SynopsisKey::Named { name: name.into() }
    }
}

/// A cached, instrumented estimation session over one or more DAGs.
///
/// ```
/// use mnc_expr::{EstimationContext, ExprDag};
/// use mnc_estimators::MncEstimator;
/// use mnc_matrix::CsrMatrix;
/// use std::sync::Arc;
///
/// let mut dag = ExprDag::new();
/// let a = dag.leaf("A", Arc::new(CsrMatrix::identity(8)));
/// let b = dag.leaf("B", Arc::new(CsrMatrix::identity(8)));
/// let c = dag.matmul(a, b).unwrap();
///
/// let est = MncEstimator::new();
/// let mut ctx = EstimationContext::new();
/// let first = ctx.estimate_root(&est, &dag, c).unwrap();
/// let second = ctx.estimate_root(&est, &dag, c).unwrap();
/// assert_eq!(first, second);
/// assert!(ctx.stats().cache_hits > 0); // leaves came from the cache
/// ```
pub struct EstimationContext {
    cache: LruSynopsisCache<(Arc<str>, SynopsisKey), Arc<Synopsis>>,
    stats: EstimationStats,
    /// Pooled count-vector buffers handed to [`SparsityEstimator::propagate_scratch`]
    /// so repeated DAG propagation runs allocation-free in steady state.
    arena: ScratchArena,
    /// Routes propagation through the arena (on by default); results are
    /// bit-identical either way — see `tests/obs_invariance.rs`.
    use_arena: bool,
    /// Reused per-walk memo map (cleared, not reallocated, between walks).
    memo_scratch: HashMap<NodeId, Arc<Synopsis>>,
    /// Worker pool for DAG-wavefront materialization (1 thread = the plain
    /// sequential walk). Parallel walks are additionally gated on the
    /// estimator being order-invariant and `Sync`, so results stay
    /// bit-identical regardless of this knob.
    pool: WorkerPool,
    rec: Recorder,
    // Metric handles are resolved once per context (registry lookups take a
    // mutex) and are no-ops when the recorder is disabled.
    m_hit: Counter,
    m_miss: Counter,
    m_evict: Counter,
    g_resident: Gauge,
    h_build: Histogram,
    h_estimate: Histogram,
    h_propagate: Histogram,
}

impl Default for EstimationContext {
    fn default() -> Self {
        Self::new()
    }
}

impl EstimationContext {
    /// Context with the default byte budget ([`DEFAULT_BYTE_BUDGET`]).
    pub fn new() -> Self {
        Self::with_byte_budget(DEFAULT_BYTE_BUDGET)
    }

    /// Context keeping at most `byte_budget` bytes of synopses resident
    /// (sized by [`Synopsis::size_bytes`]).
    pub fn with_byte_budget(byte_budget: usize) -> Self {
        EstimationContext {
            cache: LruSynopsisCache::new(byte_budget),
            stats: EstimationStats::new(),
            arena: ScratchArena::new(),
            use_arena: true,
            memo_scratch: HashMap::new(),
            pool: WorkerPool::default(),
            rec: Recorder::disabled(),
            m_hit: Counter::noop(),
            m_miss: Counter::noop(),
            m_evict: Counter::noop(),
            g_resident: Gauge::noop(),
            h_build: Histogram::noop(),
            h_estimate: Histogram::noop(),
            h_propagate: Histogram::noop(),
        }
    }

    /// Attaches an observability [`Recorder`]: every build, estimate, and
    /// propagate in this session becomes a span, and the cache feeds the
    /// recorder's metrics registry (`cache.hit`/`cache.miss`/
    /// `cache.evictions` counters, `cache.bytes_resident` gauge,
    /// `session.*_ns` latency histograms). A disabled recorder restores the
    /// zero-overhead path.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.m_hit = rec.counter("cache.hit");
        self.m_miss = rec.counter("cache.miss");
        self.m_evict = rec.counter("cache.evictions");
        self.g_resident = rec.gauge("cache.bytes_resident");
        self.h_build = rec.histogram("session.build_ns");
        self.h_estimate = rec.histogram("session.estimate_ns");
        self.h_propagate = rec.histogram("session.propagate_ns");
        self.rec = rec;
        self
    }

    /// Wires this session into a live telemetry daemon (`mnc-obsd`): the
    /// session recorder's span and accuracy streams feed the daemon's
    /// flight recorder and drift monitor, and its metrics registry joins
    /// the `/metrics` aggregation (snapshotted periodically by the
    /// daemon's server ticker, freshly on every scrape).
    ///
    /// A session without a recorder gets a **bounded** one (ring capacity
    /// = the daemon's flight capacity) — the right default for the
    /// long-running services obsd exists for, where unbounded span storage
    /// would grow without limit. Call
    /// [`with_recorder`](Self::with_recorder) first to choose a different
    /// recorder (e.g. an unbounded one for a batch run that also wants
    /// live scrapes).
    pub fn with_obsd(mut self, daemon: &mnc_obsd::ObsDaemon) -> Self {
        if !self.rec.is_enabled() {
            let bounded = Recorder::enabled_with_capacity(daemon.flight().capacity());
            self = self.with_recorder(bounded);
        }
        daemon.install(&self.rec);
        // Seed the daemon's cached snapshot so a scrape racing session
        // startup already sees this source.
        daemon.refresh();
        self
    }

    /// Toggles the propagation scratch arena (on by default). Arena-backed
    /// propagation is bit-identical to the allocating path; turning it off
    /// is for A/B allocation measurements and invariance tests.
    pub fn with_arena(mut self, on: bool) -> Self {
        self.use_arena = on;
        self
    }

    /// Materializes independent DAG nodes on up to `threads` pool workers
    /// (topological wavefronts; default 1 = sequential). The parallel walk
    /// only engages for estimators that are order-invariant and expose a
    /// [`Sync`] view ([`SparsityEstimator::order_invariant`] /
    /// [`SparsityEstimator::as_sync`]); every other estimator keeps the
    /// exact sequential schedule. Either way results are bit-identical to
    /// `threads == 1`, and partial results merge in fixed node order.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = WorkerPool::new(threads);
        self
    }

    /// The configured worker-thread budget (1 = sequential walks).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The session's scratch arena (lease/reuse counters for telemetry).
    pub fn arena(&self) -> &ScratchArena {
        &self.arena
    }

    /// The session's recorder (disabled unless [`with_recorder`] was used).
    ///
    /// [`with_recorder`]: EstimationContext::with_recorder
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// Session counters collected so far.
    pub fn stats(&self) -> &EstimationStats {
        &self.stats
    }

    /// Resets the counters without dropping cached synopses.
    pub fn reset_stats(&mut self) {
        let resident = self.stats.bytes_resident;
        self.stats = EstimationStats::new();
        self.stats.bytes_resident = resident;
    }

    /// Drops every cached synopsis (counters are kept).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
        self.stats.bytes_resident = 0;
        self.g_resident.set(0);
    }

    /// Number of synopses currently cached.
    pub fn cached_synopses(&self) -> usize {
        self.cache.len()
    }

    /// The synopsis of a base matrix under `est`, cached across calls.
    /// This is the entry point for non-DAG consumers such as the chain
    /// optimizer ([`sparse_chain_order_cached`](crate::chain_opt::sparse_chain_order_cached)).
    pub fn leaf_synopsis<E: SparsityEstimator + ?Sized>(
        &mut self,
        est: &E,
        m: &Arc<CsrMatrix>,
    ) -> Result<Arc<Synopsis>> {
        let ekey: Arc<str> = est.cache_key().into();
        self.leaf_synopsis_keyed(est, m, &ekey)
    }

    /// [`leaf_synopsis`](Self::leaf_synopsis) with the estimator half of the
    /// cache key pre-computed — walks format the key string once and clone
    /// the `Arc` per node instead of re-formatting per lookup.
    fn leaf_synopsis_keyed<E: SparsityEstimator + ?Sized>(
        &mut self,
        est: &E,
        m: &Arc<CsrMatrix>,
        ekey: &Arc<str>,
    ) -> Result<Arc<Synopsis>> {
        let key = (Arc::clone(ekey), SynopsisKey::leaf(m));
        if let Some(syn) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            self.m_hit.incr();
            return Ok(Arc::clone(syn));
        }
        self.stats.cache_misses += 1;
        self.m_miss.incr();
        let mut span = self.rec.span("build").op(est.name()).nnz_in(m.nnz() as u64);
        let t = OpTimer::start();
        let syn = Arc::new(est.build(m)?);
        let ns = t.elapsed_ns();
        self.stats.record_build(ns);
        self.h_build.record(ns);
        if self.rec.is_enabled() {
            span.set_nnz_out(syn.nnz());
            span.set_bytes(syn.size_bytes());
        }
        drop(span);
        self.admit(key, &syn);
        Ok(syn)
    }

    /// The synopsis registered under an external `name` for `est`, loading
    /// it through `load` on a miss. This is the leaf entry point for
    /// services whose matrices live in a persistent catalog: the session
    /// keeps hot decoded synopses resident (LRU, byte-budgeted) while cold
    /// ones are re-loaded on demand — never re-*built* from a matrix.
    ///
    /// Loads are timed into the session's build statistics (a load is the
    /// catalog path's analogue of a build) under a `"load"` span.
    pub fn named_synopsis<E: SparsityEstimator + ?Sized>(
        &mut self,
        est: &E,
        name: &str,
        load: impl FnOnce() -> Result<Synopsis>,
    ) -> Result<Arc<Synopsis>> {
        let ekey: Arc<str> = est.cache_key().into();
        let key = (ekey, SynopsisKey::named(name));
        if let Some(syn) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            self.m_hit.incr();
            return Ok(Arc::clone(syn));
        }
        self.stats.cache_misses += 1;
        self.m_miss.incr();
        let mut span = self.rec.span("load").op(est.name());
        let t = OpTimer::start();
        let syn = Arc::new(load()?);
        let ns = t.elapsed_ns();
        self.stats.record_build(ns);
        self.h_build.record(ns);
        if self.rec.is_enabled() {
            span.set_nnz_out(syn.nnz());
            span.set_bytes(syn.size_bytes());
        }
        drop(span);
        self.admit(key, &syn);
        Ok(syn)
    }

    /// The synopsis of any DAG node under `est`: leaf synopses are built,
    /// intermediates propagated depth-first (inputs in order), everything
    /// consulted against and admitted to the cache.
    pub fn node_synopsis<E: SparsityEstimator + ?Sized>(
        &mut self,
        est: &E,
        dag: &ExprDag,
        id: NodeId,
    ) -> Result<Arc<Synopsis>> {
        let ekey: Arc<str> = est.cache_key().into();
        let mut memo = self.take_memo();
        let out = self
            .prefill(est, dag, &[id], &ekey, &mut memo)
            .and_then(|()| self.materialize(est, dag, id, &ekey, &mut memo));
        self.restore_memo(memo);
        out
    }

    /// Estimates the sparsity of `root`, mirroring the uncached
    /// [`estimate_root`](crate::estimate_root) contract: leaf roots return
    /// their exact sparsity, operation roots are *estimated* directly from
    /// the input synopses (never propagated).
    pub fn estimate_root<E: SparsityEstimator + ?Sized>(
        &mut self,
        est: &E,
        dag: &ExprDag,
        root: NodeId,
    ) -> Result<f64> {
        match dag.node(root) {
            ExprNode::Leaf { matrix, .. } => Ok(matrix.sparsity()),
            ExprNode::Op { op, inputs } => {
                let ekey: Arc<str> = est.cache_key().into();
                let mut memo = self.take_memo();
                let mut walk = || -> Result<f64> {
                    self.prefill(est, dag, inputs, &ekey, &mut memo)?;
                    for &i in inputs {
                        self.materialize(est, dag, i, &ekey, &mut memo)?;
                    }
                    let ins = GatheredIns::gather(inputs, &memo);
                    let ins = ins.as_slice();
                    let mut span = self.rec.span("estimate").op(op.name());
                    if self.rec.is_enabled() {
                        // Synopsis::nnz() is not free for every synopsis type
                        // (bitsets count bits), so only pay for it when tracing.
                        span = span.nnz_in(ins.iter().map(|s| s.nnz()).sum());
                    }
                    let t = OpTimer::start();
                    let s = est.estimate(op, ins)?;
                    let ns = t.elapsed_ns();
                    drop(span);
                    self.stats.record_estimate(op.name(), ns);
                    self.h_estimate.record(ns);
                    Ok(s)
                };
                let out = walk();
                self.restore_memo(memo);
                out
            }
        }
    }

    /// Estimates the sparsity of every operation node in the DAG, in
    /// topological order (the cached counterpart of
    /// [`estimate_all`](crate::estimate_all)).
    pub fn estimate_all<E: SparsityEstimator + ?Sized>(
        &mut self,
        est: &E,
        dag: &ExprDag,
    ) -> Result<Vec<NodeEstimate>> {
        let synopses = self.materialize_all(est, dag)?;
        Ok(dag
            .iter()
            .filter(|(_, node)| matches!(node, ExprNode::Op { .. }))
            .map(|(id, _)| NodeEstimate {
                id,
                sparsity: synopses[id].sparsity(),
            })
            .collect())
    }

    /// Materializes the synopsis of *every* node, returned in topological
    /// order. Used by [`Planner::plan_with_context`](crate::Planner::plan_with_context),
    /// which needs all intermediates to cost and format them.
    pub fn materialize_all<E: SparsityEstimator + ?Sized>(
        &mut self,
        est: &E,
        dag: &ExprDag,
    ) -> Result<Vec<Arc<Synopsis>>> {
        let ekey: Arc<str> = est.cache_key().into();
        let mut memo = self.take_memo();
        let mut out = Vec::with_capacity(dag.len());
        let mut walk = || -> Result<()> {
            if self.pool.is_parallel() {
                let ids: Vec<NodeId> = dag.iter().map(|(id, _)| id).collect();
                self.prefill(est, dag, &ids, &ekey, &mut memo)?;
            }
            for (id, _) in dag.iter() {
                out.push(self.materialize(est, dag, id, &ekey, &mut memo)?);
            }
            Ok(())
        };
        let res = walk();
        self.restore_memo(memo);
        res.map(|()| out)
    }

    /// Takes the reusable per-walk memo out of the context (cleared).
    fn take_memo(&mut self) -> HashMap<NodeId, Arc<Synopsis>> {
        let mut memo = std::mem::take(&mut self.memo_scratch);
        memo.clear();
        memo
    }

    /// Returns the per-walk memo so the next walk reuses its table.
    fn restore_memo(&mut self, memo: HashMap<NodeId, Arc<Synopsis>>) {
        self.memo_scratch = memo;
    }

    /// Depth-first materialization with a per-walk memo (the memo keeps the
    /// walk's synopses alive even if the LRU evicts them mid-walk, and keeps
    /// the build/propagate order identical to the uncached walk).
    fn materialize<E: SparsityEstimator + ?Sized>(
        &mut self,
        est: &E,
        dag: &ExprDag,
        id: NodeId,
        ekey: &Arc<str>,
        memo: &mut HashMap<NodeId, Arc<Synopsis>>,
    ) -> Result<Arc<Synopsis>> {
        if let Some(syn) = memo.get(&id) {
            return Ok(Arc::clone(syn));
        }
        let syn = match dag.node(id) {
            ExprNode::Leaf { matrix, .. } => self.leaf_synopsis_keyed(est, matrix, ekey)?,
            ExprNode::Op { op, inputs } => {
                let key = (Arc::clone(ekey), SynopsisKey::node(dag, id));
                if let Some(syn) = self.cache.get(&key) {
                    self.stats.cache_hits += 1;
                    self.m_hit.incr();
                    Arc::clone(syn)
                } else {
                    self.stats.cache_misses += 1;
                    self.m_miss.incr();
                    for &i in inputs {
                        self.materialize(est, dag, i, ekey, memo)?;
                    }
                    let ins = GatheredIns::gather(inputs, memo);
                    let ins = ins.as_slice();
                    let mut span = self.rec.span("propagate").op(op.name());
                    if self.rec.is_enabled() {
                        span = span.nnz_in(ins.iter().map(|s| s.nnz()).sum());
                    }
                    let t = OpTimer::start();
                    let syn = Arc::new(if self.use_arena {
                        est.propagate_scratch(op, ins, &mut self.arena)?
                    } else {
                        est.propagate(op, ins)?
                    });
                    let ns = t.elapsed_ns();
                    self.stats.record_propagate(op.name(), ns);
                    self.h_propagate.record(ns);
                    if self.rec.is_enabled() {
                        span.set_nnz_out(syn.nnz());
                        span.set_bytes(syn.size_bytes());
                    }
                    drop(span);
                    self.admit(key, &syn);
                    syn
                }
            }
        };
        memo.insert(id, Arc::clone(&syn));
        Ok(syn)
    }

    /// Gate for the parallel wavefront walk: engages only when the pool is
    /// parallel **and** the estimator declares its build/propagate pure
    /// ([`SparsityEstimator::order_invariant`]) **and** it exposes a
    /// [`Sync`] view ([`SparsityEstimator::as_sync`]). Every other
    /// combination is a no-op, leaving [`materialize`](Self::materialize)
    /// to run the exact sequential schedule — which is what keeps
    /// RNG-bearing estimators (probabilistic MNC) and instrumented
    /// wrappers bit-identical under any `threads` setting.
    fn prefill<E: SparsityEstimator + ?Sized>(
        &mut self,
        est: &E,
        dag: &ExprDag,
        roots: &[NodeId],
        ekey: &Arc<str>,
        memo: &mut HashMap<NodeId, Arc<Synopsis>>,
    ) -> Result<()> {
        if !self.pool.is_parallel() || !est.order_invariant() {
            return Ok(());
        }
        let Some(sync_est) = est.as_sync() else {
            return Ok(());
        };
        self.prefill_wavefront(sync_est, dag, roots, ekey, memo)
    }

    /// Materializes every node reachable from `roots` (and absent from both
    /// `memo` and the cache) in topological wavefronts: nodes of the same
    /// depth run on pool workers concurrently, then merge **in ascending
    /// node order** before the next level starts.
    ///
    /// Two properties keep this bit-identical to the sequential walk:
    ///
    /// 1. Workers compute pure `(synopsis, ns)` pairs; every observable
    ///    side effect — stats, histograms, spans, cache admission, memo
    ///    insertion — happens in the sequential merge, in fixed order.
    /// 2. Discovery replicates the sequential walk's *pre-order* cache
    ///    probes (an op is probed before its inputs, inputs left to
    ///    right), so hit/miss counts match a `threads == 1` walk over the
    ///    same cache state exactly.
    fn prefill_wavefront(
        &mut self,
        est: &(dyn SparsityEstimator + Sync),
        dag: &ExprDag,
        roots: &[NodeId],
        ekey: &Arc<str>,
        memo: &mut HashMap<NodeId, Arc<Synopsis>>,
    ) -> Result<()> {
        let mut scheduled: Vec<NodeId> = Vec::new();
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut stack: Vec<NodeId> = roots.iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            if memo.contains_key(&id) || seen.contains(&id) {
                continue;
            }
            let (key, inputs) = match dag.node(id) {
                ExprNode::Leaf { matrix, .. } => {
                    ((Arc::clone(ekey), SynopsisKey::leaf(matrix)), None)
                }
                ExprNode::Op { inputs, .. } => {
                    ((Arc::clone(ekey), SynopsisKey::node(dag, id)), Some(inputs))
                }
            };
            if let Some(syn) = self.cache.get(&key) {
                self.stats.cache_hits += 1;
                self.m_hit.incr();
                memo.insert(id, Arc::clone(syn));
            } else {
                self.stats.cache_misses += 1;
                self.m_miss.incr();
                seen.insert(id);
                scheduled.push(id);
                if let Some(inputs) = inputs {
                    stack.extend(inputs.iter().rev());
                }
            }
        }
        if scheduled.is_empty() {
            return Ok(());
        }
        // DAGs are append-only, so ascending node id is a topological order.
        scheduled.sort_unstable();

        // A node's wavefront level is one past its deepest *scheduled*
        // input; inputs already in the memo are data, not work, and pin
        // nothing.
        let mut level: HashMap<NodeId, usize> = HashMap::with_capacity(scheduled.len());
        let mut max_level = 0usize;
        for &id in &scheduled {
            let l = match dag.node(id) {
                ExprNode::Leaf { .. } => 0,
                ExprNode::Op { inputs, .. } => inputs
                    .iter()
                    .map(|i| level.get(i).map_or(0, |l| l + 1))
                    .max()
                    .unwrap_or(0),
            };
            max_level = max_level.max(l);
            level.insert(id, l);
        }

        for l in 0..=max_level {
            let batch: Vec<NodeId> = scheduled
                .iter()
                .copied()
                .filter(|id| level[id] == l)
                .collect();
            let memo_ref: &HashMap<NodeId, Arc<Synopsis>> = memo;
            let results: Vec<Result<(Synopsis, u64)>> =
                self.pool.run(batch.len(), |k| -> Result<(Synopsis, u64)> {
                    let t = OpTimer::start();
                    let syn = match dag.node(batch[k]) {
                        ExprNode::Leaf { matrix, .. } => est.build(matrix)?,
                        ExprNode::Op { op, inputs } => {
                            let ins = GatheredIns::gather(inputs, memo_ref);
                            // Allocating propagate: the scratch arena is
                            // single-threaded session state, and arena vs
                            // allocating paths are bit-identical anyway.
                            est.propagate(op, ins.as_slice())?
                        }
                    };
                    Ok((syn, t.elapsed_ns()))
                });
            for (k, res) in results.into_iter().enumerate() {
                let (syn, ns) = res?;
                let id = batch[k];
                let syn = Arc::new(syn);
                match dag.node(id) {
                    ExprNode::Leaf { matrix, .. } => {
                        let mut span = self
                            .rec
                            .span("build")
                            .op(est.name())
                            .nnz_in(matrix.nnz() as u64);
                        self.stats.record_build(ns);
                        self.h_build.record(ns);
                        if self.rec.is_enabled() {
                            span.set_nnz_out(syn.nnz());
                            span.set_bytes(syn.size_bytes());
                        }
                        drop(span);
                        self.admit((Arc::clone(ekey), SynopsisKey::leaf(matrix)), &syn);
                    }
                    ExprNode::Op { op, inputs } => {
                        let mut span = self.rec.span("propagate").op(op.name());
                        if self.rec.is_enabled() {
                            let ins = GatheredIns::gather(inputs, memo);
                            span = span.nnz_in(ins.as_slice().iter().map(|s| s.nnz()).sum());
                        }
                        self.stats.record_propagate(op.name(), ns);
                        self.h_propagate.record(ns);
                        if self.rec.is_enabled() {
                            span.set_nnz_out(syn.nnz());
                            span.set_bytes(syn.size_bytes());
                        }
                        drop(span);
                        self.admit((Arc::clone(ekey), SynopsisKey::node(dag, id)), &syn);
                    }
                }
                memo.insert(id, syn);
            }
        }
        Ok(())
    }

    /// Inserts into the cache and refreshes the cache-derived counters.
    fn admit(&mut self, key: (Arc<str>, SynopsisKey), syn: &Arc<Synopsis>) {
        let bytes = usize::try_from(syn.size_bytes()).unwrap_or(usize::MAX);
        self.cache.insert(key, Arc::clone(syn), bytes);
        let evicted = self.cache.evictions() - self.stats.evictions;
        if evicted > 0 {
            self.m_evict.add(evicted);
        }
        self.stats.evictions = self.cache.evictions();
        self.stats.bytes_resident = self.cache.bytes_resident() as u64;
        self.g_resident.set(self.stats.bytes_resident as i64);
    }
}

/// Input synopses of an op node, gathered without a heap allocation for the
/// unary/binary cases (every op in [`mnc_core::OpKind`] today).
enum GatheredIns<'a> {
    Inline([&'a Synopsis; 2], usize),
    Heap(Vec<&'a Synopsis>),
}

impl<'a> GatheredIns<'a> {
    fn gather(inputs: &[NodeId], memo: &'a HashMap<NodeId, Arc<Synopsis>>) -> GatheredIns<'a> {
        match *inputs {
            [a] => {
                let s = memo[&a].as_ref();
                GatheredIns::Inline([s, s], 1)
            }
            [a, b] => GatheredIns::Inline([memo[&a].as_ref(), memo[&b].as_ref()], 2),
            _ => GatheredIns::Heap(inputs.iter().map(|i| memo[i].as_ref()).collect()),
        }
    }

    fn as_slice(&self) -> &[&'a Synopsis] {
        match self {
            GatheredIns::Inline(arr, n) => &arr[..*n],
            GatheredIns::Heap(v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_estimators::{BitsetEstimator, MncEstimator, OpKind};
    use mnc_matrix::gen;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn chain_dag(seed: u64) -> (ExprDag, NodeId) {
        let mut r = rng(seed);
        let mut dag = ExprDag::new();
        let a = dag.leaf("A", Arc::new(gen::rand_uniform(&mut r, 40, 30, 0.1)));
        let b = dag.leaf("B", Arc::new(gen::rand_uniform(&mut r, 30, 50, 0.08)));
        let c = dag.leaf("C", Arc::new(gen::rand_uniform(&mut r, 50, 20, 0.12)));
        let ab = dag.matmul(a, b).unwrap();
        let root = dag.matmul(ab, c).unwrap();
        (dag, root)
    }

    #[test]
    fn cold_context_matches_uncached_estimate() {
        let (dag, root) = chain_dag(1);
        for threads in [1, 4] {
            let uncached = crate::estimate::estimate_root(
                &MncEstimator::new().with_build_threads(threads),
                &dag,
                root,
            )
            .unwrap();
            let mut ctx = EstimationContext::new();
            let cached = ctx
                .estimate_root(&MncEstimator::new().with_build_threads(threads), &dag, root)
                .unwrap();
            assert_eq!(uncached, cached, "threads={threads}");
        }
    }

    #[test]
    fn second_estimate_hits_the_cache_and_agrees() {
        let (dag, root) = chain_dag(2);
        let est = MncEstimator::new();
        let mut ctx = EstimationContext::new();
        let first = ctx.estimate_root(&est, &dag, root).unwrap();
        let misses = ctx.stats().cache_misses;
        assert_eq!(ctx.stats().cache_hits, 0);
        let second = ctx.estimate_root(&est, &dag, root).unwrap();
        assert_eq!(first, second);
        // Second walk: the AB intermediate hits (short-circuiting its
        // leaves) and the C leaf hits.
        assert_eq!(ctx.stats().cache_hits, 2);
        assert_eq!(ctx.stats().cache_misses, misses);
        assert_eq!(ctx.stats().builds, 3);
    }

    #[test]
    fn estimators_do_not_share_cache_entries() {
        let (dag, root) = chain_dag(3);
        let mut ctx = EstimationContext::new();
        ctx.estimate_root(&MncEstimator::new(), &dag, root).unwrap();
        let misses_after_mnc = ctx.stats().cache_misses;
        // A different estimator must not see MNC's synopses...
        ctx.estimate_root(&BitsetEstimator::default(), &dag, root)
            .unwrap();
        assert_eq!(ctx.stats().cache_misses, misses_after_mnc * 2);
        // ...and neither must a differently-configured MNC.
        ctx.estimate_root(&MncEstimator::basic(), &dag, root)
            .unwrap();
        assert_eq!(ctx.stats().cache_misses, misses_after_mnc * 3);
        // Re-running the originals hits for all three.
        let hits = ctx.stats().cache_hits;
        ctx.estimate_root(&MncEstimator::new(), &dag, root).unwrap();
        assert!(ctx.stats().cache_hits > hits);
    }

    #[test]
    fn shared_leaf_is_cached_across_dags() {
        let mut r = rng(4);
        let shared = Arc::new(gen::rand_uniform(&mut r, 30, 30, 0.1));
        let est = MncEstimator::new();
        let mut ctx = EstimationContext::new();

        let mut dag1 = ExprDag::new();
        let a = dag1.leaf("A", Arc::clone(&shared));
        let t = dag1.transpose(a).unwrap();
        ctx.estimate_root(&est, &dag1, t).unwrap();

        let mut dag2 = ExprDag::new();
        let a2 = dag2.leaf("A", Arc::clone(&shared));
        let b2 = dag2.leaf("B", Arc::new(gen::rand_uniform(&mut r, 30, 30, 0.2)));
        let root2 = dag2.matmul(a2, b2).unwrap();
        ctx.estimate_root(&est, &dag2, root2).unwrap();

        // The shared Arc'd matrix was built once, hit once; dag2's second
        // leaf was a fresh build.
        assert_eq!(ctx.stats().builds, 2);
        assert_eq!(ctx.stats().cache_hits, 1);
    }

    #[test]
    fn intermediates_are_keyed_per_dag() {
        let (dag, root) = chain_dag(5);
        let clone = dag.clone();
        assert_ne!(dag.id(), clone.id());
        let est = MncEstimator::new();
        let mut ctx = EstimationContext::new();
        ctx.estimate_root(&est, &dag, root).unwrap();
        let misses = ctx.stats().cache_misses;
        ctx.estimate_root(&est, &clone, root).unwrap();
        // The clone shares leaf Arcs (hits) but not intermediates (misses).
        assert!(ctx.stats().cache_hits >= 3);
        assert!(ctx.stats().cache_misses > misses);
    }

    #[test]
    fn estimate_all_matches_uncached() {
        let (dag, _) = chain_dag(6);
        let uncached = crate::estimate::estimate_all(&MncEstimator::new(), &dag).unwrap();
        let mut ctx = EstimationContext::new();
        let cached = ctx.estimate_all(&MncEstimator::new(), &dag).unwrap();
        assert_eq!(uncached.len(), cached.len());
        for (u, c) in uncached.iter().zip(&cached) {
            assert_eq!(u.id, c.id);
            assert_eq!(u.sparsity, c.sparsity);
        }
    }

    #[test]
    fn tiny_budget_still_estimates_correctly() {
        let (dag, root) = chain_dag(7);
        let baseline = crate::estimate::estimate_root(&MncEstimator::new(), &dag, root).unwrap();
        // A budget too small to hold anything: every walk rebuilds, the
        // answer must not change.
        let mut ctx = EstimationContext::with_byte_budget(1);
        let est = MncEstimator::new();
        let a = ctx.estimate_root(&est, &dag, root).unwrap();
        assert_eq!(a, baseline);
        assert_eq!(ctx.stats().cache_hits, 0);
        assert_eq!(ctx.cached_synopses(), 0);
    }

    #[test]
    fn stats_expose_per_op_timings_and_reset() {
        let (dag, root) = chain_dag(8);
        let est = MncEstimator::new();
        let mut ctx = EstimationContext::new();
        ctx.estimate_root(&est, &dag, root).unwrap();
        let matmul = ctx
            .stats()
            .per_op()
            .find(|(op, _)| *op == OpKind::MatMul.name())
            .map(|(_, s)| s.clone())
            .expect("matmul bucket");
        assert_eq!(matmul.estimates, 1); // root estimated
        assert_eq!(matmul.propagations, 1); // AB propagated
        assert!(ctx.stats().bytes_resident > 0);

        ctx.reset_stats();
        assert_eq!(ctx.stats().builds, 0);
        assert!(
            ctx.stats().bytes_resident > 0,
            "resident bytes survive reset"
        );
        ctx.clear_cache();
        assert_eq!(ctx.stats().bytes_resident, 0);
        assert_eq!(ctx.cached_synopses(), 0);
    }

    #[test]
    fn recorder_attached_session_traces_without_changing_results() {
        let (dag, root) = chain_dag(10);

        // Fresh estimator per walk: MNC's probabilistic rounding stream
        // advances per propagate, so sharing one instance would diverge for
        // reasons unrelated to tracing.
        let mut plain = EstimationContext::new();
        let baseline = plain
            .estimate_root(&MncEstimator::new(), &dag, root)
            .unwrap();

        let est = MncEstimator::new();
        let rec = Recorder::enabled();
        let mut traced = EstimationContext::new().with_recorder(rec.clone());
        let s = traced.estimate_root(&est, &dag, root).unwrap();
        assert_eq!(s.to_bits(), baseline.to_bits(), "tracing must not perturb");

        // Cold walk: 3 builds, 1 propagate (AB), 1 root estimate.
        let spans = rec.spans();
        assert_eq!(spans.iter().filter(|s| s.name == "build").count(), 3);
        assert_eq!(spans.iter().filter(|s| s.name == "propagate").count(), 1);
        assert_eq!(spans.iter().filter(|s| s.name == "estimate").count(), 1);
        let prop = spans.iter().find(|s| s.name == "propagate").unwrap();
        assert_eq!(prop.op.as_deref(), Some("matmul"));
        assert!(prop.synopsis_bytes.is_some());

        // Registry mirrors the session stats.
        let snap = rec.registry().unwrap().snapshot();
        assert_eq!(snap.counters["cache.miss"], traced.stats().cache_misses);
        assert_eq!(snap.histograms["session.build_ns"].count(), 3);
        assert_eq!(
            snap.gauges["cache.bytes_resident"],
            traced.stats().bytes_resident as i64
        );

        // Warm walk adds hits to both views.
        traced.estimate_root(&est, &dag, root).unwrap();
        let snap = rec.registry().unwrap().snapshot();
        assert_eq!(snap.counters["cache.hit"], traced.stats().cache_hits);
        assert!(snap.counters["cache.hit"] > 0);
    }

    #[test]
    fn with_obsd_wires_the_session_into_the_daemon() {
        use mnc_obsd::{ObsDaemon, ObsdConfig};

        let daemon = ObsDaemon::new(ObsdConfig {
            flight_capacity: 32,
            ..ObsdConfig::default()
        });
        // No recorder yet: with_obsd installs a bounded one sized like the
        // flight ring.
        let mut ctx = EstimationContext::new().with_obsd(&daemon);
        assert!(ctx.recorder().is_enabled());
        assert_eq!(ctx.recorder().ring_capacity(), Some(32));
        assert!(ctx.recorder().has_sink());

        let mut r = rng(11);
        let mut dag = ExprDag::new();
        let a = dag.leaf("A", Arc::new(gen::rand_uniform(&mut r, 16, 16, 0.2)));
        let b = dag.leaf("B", Arc::new(gen::rand_uniform(&mut r, 16, 16, 0.2)));
        let root = dag.matmul(a, b).unwrap();
        ctx.estimate_root(&MncEstimator::new(), &dag, root).unwrap();

        // The estimation spans landed in the daemon's flight ring and the
        // session registry reached the aggregated metrics.
        assert!(daemon.flight().span_len() > 0);
        assert!(daemon.metrics_text().contains("mnc_session_build_ns_count"));

        // A pre-attached recorder is reused, not replaced.
        let rec = Recorder::enabled();
        let ctx2 = EstimationContext::new()
            .with_recorder(rec.clone())
            .with_obsd(&daemon);
        assert!(ctx2.recorder().same_as(&rec));
        assert_eq!(ctx2.recorder().ring_capacity(), None);
    }

    #[test]
    fn named_synopses_cache_per_estimator_and_reload_on_miss() {
        let mut r = rng(12);
        let m = Arc::new(gen::rand_uniform(&mut r, 24, 18, 0.15));
        let est = MncEstimator::new();
        let basic = MncEstimator::basic();
        let mut ctx = EstimationContext::new();

        let loads = std::cell::Cell::new(0u32);
        let load = |e: &MncEstimator| {
            loads.set(loads.get() + 1);
            e.build(&m)
        };

        let s1 = ctx.named_synopsis(&est, "A", || load(&est)).unwrap();
        let s2 = ctx.named_synopsis(&est, "A", || load(&est)).unwrap();
        assert_eq!(loads.get(), 1, "second lookup must hit the cache");
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(ctx.stats().cache_hits, 1);

        // A differently-configured estimator gets its own entry...
        ctx.named_synopsis(&basic, "A", || load(&basic)).unwrap();
        assert_eq!(loads.get(), 2);
        // ...and a different name under the first estimator loads again.
        ctx.named_synopsis(&est, "B", || load(&est)).unwrap();
        assert_eq!(loads.get(), 3);

        // Named entries obey the byte budget like every other synopsis.
        let mut tiny = EstimationContext::with_byte_budget(1);
        tiny.named_synopsis(&est, "A", || est.build(&m)).unwrap();
        tiny.named_synopsis(&est, "A", || est.build(&m)).unwrap();
        assert_eq!(tiny.stats().cache_hits, 0);
        assert_eq!(tiny.stats().cache_misses, 2);
    }

    /// Two independent matmul branches joined by an ew-add: a DAG with a
    /// genuinely parallel wavefront (4 leaves at level 0, 2 matmuls at
    /// level 1) plus a sequential tail.
    fn wide_dag(seed: u64) -> (ExprDag, NodeId) {
        let mut r = rng(seed);
        let mut dag = ExprDag::new();
        let a = dag.leaf("A", Arc::new(gen::rand_uniform(&mut r, 40, 32, 0.1)));
        let b = dag.leaf("B", Arc::new(gen::rand_uniform(&mut r, 32, 28, 0.08)));
        let c = dag.leaf("C", Arc::new(gen::rand_uniform(&mut r, 40, 32, 0.12)));
        let d = dag.leaf("D", Arc::new(gen::rand_uniform(&mut r, 32, 28, 0.15)));
        let ab = dag.matmul(a, b).unwrap();
        let cd = dag.matmul(c, d).unwrap();
        let sum = dag.ew_add(ab, cd).unwrap();
        let root = dag.transpose(sum).unwrap();
        (dag, root)
    }

    fn deterministic_mnc() -> MncEstimator {
        MncEstimator::with_config(
            "MNC",
            mnc_core::MncConfig {
                probabilistic_rounding: false,
                ..mnc_core::MncConfig::default()
            },
        )
    }

    #[test]
    fn parallel_wavefront_is_bit_identical_and_stats_match() {
        let (dag, root) = wide_dag(20);
        // Baseline: sequential walk per estimator.
        let run = |threads: usize, est: &dyn SparsityEstimator| {
            let mut ctx = EstimationContext::new().with_threads(threads);
            let cold = ctx.estimate_root(est, &dag, root).unwrap();
            let props: u64 = ctx.stats().per_op().map(|(_, s)| s.propagations).sum();
            let cold_stats = (
                ctx.stats().builds,
                props,
                ctx.stats().cache_hits,
                ctx.stats().cache_misses,
            );
            let warm = ctx.estimate_root(est, &dag, root).unwrap();
            let warm_hits = ctx.stats().cache_hits;
            (cold, cold_stats, warm, warm_hits)
        };
        let estimators: Vec<Box<dyn SparsityEstimator>> = vec![
            Box::new(deterministic_mnc()),
            Box::new(mnc_estimators::DensityMapEstimator::default()),
            // DynDMap omitted: it does not support MatMul *propagation*
            // (only direct estimates); its threads bit-identity is covered
            // in the estimators crate.
            Box::new(BitsetEstimator::default()),
            Box::new(mnc_estimators::MetaAcEstimator),
        ];
        for est in &estimators {
            assert!(est.order_invariant() && est.as_sync().is_some());
            let baseline = run(1, est.as_ref());
            for threads in [2, 8] {
                let par = run(threads, est.as_ref());
                assert_eq!(
                    baseline.0.to_bits(),
                    par.0.to_bits(),
                    "{} cold, threads={threads}",
                    est.name()
                );
                assert_eq!(baseline.1, par.1, "{} stats, threads={threads}", est.name());
                assert_eq!(baseline.2.to_bits(), par.2.to_bits());
                assert_eq!(baseline.3, par.3);
            }
        }
    }

    #[test]
    fn probabilistic_mnc_keeps_the_sequential_schedule() {
        // Default MNC draws from an internal RNG stream per propagate, so it
        // reports order-sensitivity and the wavefront must stay off — the
        // estimate under threads=8 matches threads=1 because both take the
        // same sequential path.
        let (dag, root) = wide_dag(21);
        let est = MncEstimator::new();
        assert!(!est.order_invariant());
        let seq = EstimationContext::new()
            .estimate_root(&MncEstimator::new(), &dag, root)
            .unwrap();
        let par = EstimationContext::new()
            .with_threads(8)
            .estimate_root(&est, &dag, root)
            .unwrap();
        assert_eq!(seq.to_bits(), par.to_bits());
    }

    #[test]
    fn parallel_materialize_all_and_node_synopsis_agree_with_sequential() {
        let (dag, root) = wide_dag(22);
        let est = deterministic_mnc();
        let mut seq = EstimationContext::new();
        let mut par = EstimationContext::new().with_threads(4);
        let s_all = seq.materialize_all(&est, &dag).unwrap();
        let p_all = par.materialize_all(&est, &dag).unwrap();
        assert_eq!(s_all.len(), p_all.len());
        for (s, p) in s_all.iter().zip(&p_all) {
            assert_eq!(s.sparsity().to_bits(), p.sparsity().to_bits());
        }
        assert_eq!(seq.stats().builds, par.stats().builds);
        let props = |ctx: &EstimationContext| -> u64 {
            ctx.stats().per_op().map(|(_, s)| s.propagations).sum()
        };
        assert_eq!(props(&seq), props(&par));
        // node_synopsis on a warm parallel context hits everywhere.
        let hits = par.stats().cache_hits;
        let syn = par.node_synopsis(&est, &dag, root).unwrap();
        assert_eq!(
            syn.sparsity().to_bits(),
            s_all.last().unwrap().sparsity().to_bits()
        );
        assert!(par.stats().cache_hits > hits);
    }

    #[test]
    fn parallel_walk_traces_the_same_span_counts() {
        let (dag, root) = wide_dag(23);
        let est = deterministic_mnc();
        let rec = Recorder::enabled();
        let mut ctx = EstimationContext::new()
            .with_threads(4)
            .with_recorder(rec.clone());
        ctx.estimate_root(&est, &dag, root).unwrap();
        let spans = rec.spans();
        assert_eq!(spans.iter().filter(|s| s.name == "build").count(), 4);
        assert_eq!(spans.iter().filter(|s| s.name == "propagate").count(), 3);
        assert_eq!(spans.iter().filter(|s| s.name == "estimate").count(), 1);
        let snap = rec.registry().unwrap().snapshot();
        assert_eq!(snap.counters["cache.miss"], ctx.stats().cache_misses);
        assert_eq!(snap.histograms["session.build_ns"].count(), 4);
    }

    #[test]
    fn leaf_root_is_exact_and_free() {
        let mut r = rng(9);
        let m = gen::rand_uniform(&mut r, 10, 10, 0.23);
        let s = m.sparsity();
        let mut dag = ExprDag::new();
        let leaf = dag.leaf("A", Arc::new(m));
        let mut ctx = EstimationContext::new();
        let est = ctx.estimate_root(&MncEstimator::new(), &dag, leaf).unwrap();
        assert_eq!(est, s);
        assert_eq!(ctx.stats().builds, 0, "leaf roots need no synopsis");
    }
}
