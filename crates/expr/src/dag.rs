//! Expression DAG intermediate representation.
//!
//! Nodes are input matrices (leaves) or operations; edges are data
//! dependencies. Nodes may be referenced by multiple consumers (it is a DAG,
//! not a tree), which the estimators exploit by memoizing synopses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mnc_estimators::{EstimatorError, OpKind};
use mnc_matrix::CsrMatrix;

/// Process-wide source of DAG identities (see [`ExprDag::id`]).
static NEXT_DAG_ID: AtomicU64 = AtomicU64::new(1);

/// Index of a node inside its [`ExprDag`].
pub type NodeId = usize;

/// A single DAG node.
#[derive(Debug, Clone)]
pub enum ExprNode {
    /// An input matrix.
    Leaf {
        /// Display name (used in experiment reports).
        name: String,
        /// The matrix itself, shared with evaluators and estimators.
        matrix: Arc<CsrMatrix>,
    },
    /// An operation over earlier nodes.
    Op {
        /// Operation kind.
        op: OpKind,
        /// Input node ids (length = `op.arity()`), all `<` this node's id.
        inputs: Vec<NodeId>,
    },
}

/// An expression DAG in topological order (inputs always precede users).
///
/// ```
/// use mnc_expr::{estimate_root, ExprDag};
/// use mnc_estimators::MncEstimator;
/// use mnc_matrix::CsrMatrix;
/// use std::sync::Arc;
///
/// let mut dag = ExprDag::new();
/// let a = dag.leaf("A", Arc::new(CsrMatrix::identity(4)));
/// let b = dag.leaf("B", Arc::new(CsrMatrix::identity(4)));
/// let c = dag.matmul(a, b).unwrap();
/// let s = estimate_root(&MncEstimator::new(), &dag, c).unwrap();
/// assert_eq!(s, 0.25); // the identity product stays diagonal
/// ```
#[derive(Debug)]
pub struct ExprDag {
    /// Process-unique identity; see [`ExprDag::id`].
    id: u64,
    nodes: Vec<ExprNode>,
    shapes: Vec<(usize, usize)>,
}

impl Default for ExprDag {
    fn default() -> Self {
        ExprDag {
            id: NEXT_DAG_ID.fetch_add(1, Ordering::Relaxed),
            nodes: Vec::new(),
            shapes: Vec::new(),
        }
    }
}

impl Clone for ExprDag {
    fn clone(&self) -> Self {
        // A clone can diverge from the original, so it gets a fresh
        // identity; intermediate synopses cached under (dag id, node id)
        // never leak across the two.
        ExprDag {
            id: NEXT_DAG_ID.fetch_add(1, Ordering::Relaxed),
            nodes: self.nodes.clone(),
            shapes: self.shapes.clone(),
        }
    }
}

impl ExprDag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Process-unique identity of this DAG. Node ids are only meaningful
    /// within one DAG, so `EstimationContext` keys cached intermediate
    /// synopses by `(dag id, node id)`; the DAG is append-only, which keeps
    /// a node's content stable under its id for the DAG's lifetime.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &ExprNode {
        &self.nodes[id]
    }

    /// Output shape of a node.
    pub fn shape(&self, id: NodeId) -> (usize, usize) {
        self.shapes[id]
    }

    /// Iterates `(id, node)` in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &ExprNode)> {
        self.nodes.iter().enumerate()
    }

    /// Adds a leaf matrix.
    pub fn leaf(&mut self, name: impl Into<String>, matrix: Arc<CsrMatrix>) -> NodeId {
        self.shapes.push(matrix.shape());
        self.nodes.push(ExprNode::Leaf {
            name: name.into(),
            matrix,
        });
        self.nodes.len() - 1
    }

    /// Adds an operation node, validating arity and shapes.
    pub fn op(&mut self, op: OpKind, inputs: &[NodeId]) -> Result<NodeId, EstimatorError> {
        if inputs.len() != op.arity() {
            return Err(EstimatorError::arity(&op, inputs.len()));
        }
        for &i in inputs {
            if i >= self.nodes.len() {
                return Err(EstimatorError::Internal(format!(
                    "input node {i} does not exist"
                )));
            }
        }
        let in_shapes: Vec<_> = inputs.iter().map(|&i| self.shapes[i]).collect();
        let shape = op.output_shape(&in_shapes)?;
        self.shapes.push(shape);
        self.nodes.push(ExprNode::Op {
            op,
            inputs: inputs.to_vec(),
        });
        Ok(self.nodes.len() - 1)
    }

    /// Convenience: `A B`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, EstimatorError> {
        self.op(OpKind::MatMul, &[a, b])
    }

    /// Convenience: `A + B`.
    pub fn ew_add(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, EstimatorError> {
        self.op(OpKind::EwAdd, &[a, b])
    }

    /// Convenience: `A ⊙ B`.
    pub fn ew_mul(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, EstimatorError> {
        self.op(OpKind::EwMul, &[a, b])
    }

    /// Convenience: `Aᵀ`.
    pub fn transpose(&mut self, a: NodeId) -> Result<NodeId, EstimatorError> {
        self.op(OpKind::Transpose, &[a])
    }

    /// Convenience: row-wise reshape.
    pub fn reshape(
        &mut self,
        a: NodeId,
        rows: usize,
        cols: usize,
    ) -> Result<NodeId, EstimatorError> {
        self.op(OpKind::Reshape { rows, cols }, &[a])
    }

    /// Builds a left-deep matrix product chain `M1 M2 ... Mk` and returns
    /// all intermediate node ids (`[M1·M2, M1·M2·M3, ...]`).
    pub fn left_deep_chain(&mut self, leaves: &[NodeId]) -> Result<Vec<NodeId>, EstimatorError> {
        assert!(leaves.len() >= 2, "a chain needs at least two matrices");
        let mut acc = leaves[0];
        let mut out = Vec::with_capacity(leaves.len() - 1);
        for &next in &leaves[1..] {
            acc = self.matmul(acc, next)?;
            out.push(acc);
        }
        Ok(out)
    }

    /// Renders the DAG in Graphviz dot format (leaves as boxes labelled
    /// with name and shape, operations as ellipses).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph expr {\n  rankdir=BT;\n");
        for (id, node) in self.iter() {
            let (rows, cols) = self.shape(id);
            match node {
                ExprNode::Leaf { name, .. } => {
                    writeln!(
                        out,
                        "  n{id} [shape=box, label=\"{name}\\n{rows}x{cols}\"];"
                    )
                    .expect("writing to a String cannot fail");
                }
                ExprNode::Op { op, inputs } => {
                    writeln!(out, "  n{id} [label=\"{op:?}\\n{rows}x{cols}\"];")
                        .expect("writing to a String cannot fail");
                    for &i in inputs {
                        writeln!(out, "  n{i} -> n{id};").expect("writing to a String cannot fail");
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Leaf display name, if the node is a leaf.
    pub fn leaf_name(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id] {
            ExprNode::Leaf { name, .. } => Some(name),
            ExprNode::Op { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_matrix::gen;
    use rand::SeedableRng;

    fn arc(m: CsrMatrix) -> Arc<CsrMatrix> {
        Arc::new(m)
    }

    #[test]
    fn build_and_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut dag = ExprDag::new();
        let a = dag.leaf("A", arc(gen::rand_uniform(&mut rng, 4, 6, 0.5)));
        let b = dag.leaf("B", arc(gen::rand_uniform(&mut rng, 6, 3, 0.5)));
        let c = dag.matmul(a, b).unwrap();
        assert_eq!(dag.shape(c), (4, 3));
        let t = dag.transpose(c).unwrap();
        assert_eq!(dag.shape(t), (3, 4));
        let r = dag.reshape(t, 12, 1).unwrap();
        assert_eq!(dag.shape(r), (12, 1));
        assert_eq!(dag.len(), 5);
        assert_eq!(dag.leaf_name(a), Some("A"));
        assert_eq!(dag.leaf_name(c), None);
    }

    #[test]
    fn invalid_shapes_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut dag = ExprDag::new();
        let a = dag.leaf("A", arc(gen::rand_uniform(&mut rng, 4, 6, 0.5)));
        let b = dag.leaf("B", arc(gen::rand_uniform(&mut rng, 4, 6, 0.5)));
        assert!(dag.matmul(a, b).is_err());
        assert!(dag.op(OpKind::MatMul, &[a]).is_err());
        assert!(dag.op(OpKind::Transpose, &[99]).is_err());
        // Failed inserts must not corrupt the DAG.
        assert_eq!(dag.len(), 2);
        assert!(dag.ew_add(a, b).is_ok());
    }

    #[test]
    fn dot_export_mentions_every_node() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut dag = ExprDag::new();
        let a = dag.leaf("A", arc(gen::rand_uniform(&mut rng, 3, 4, 0.5)));
        let b = dag.leaf("B", arc(gen::rand_uniform(&mut rng, 4, 2, 0.5)));
        let c = dag.matmul(a, b).unwrap();
        let dot = dag.to_dot();
        assert!(dot.starts_with("digraph expr {"));
        assert!(dot.contains("n0 [shape=box"));
        assert!(dot.contains("MatMul"));
        assert!(dot.contains(&format!("n{a} -> n{c};")));
        assert!(dot.contains(&format!("n{b} -> n{c};")));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dag_identities_are_unique_and_clones_get_fresh_ones() {
        let a = ExprDag::new();
        let b = ExprDag::new();
        assert_ne!(a.id(), b.id());
        let c = a.clone();
        assert_ne!(a.id(), c.id());
        // Identity is stable across mutation.
        let id = a.id();
        let mut a = a;
        a.leaf("A", Arc::new(CsrMatrix::identity(2)));
        assert_eq!(a.id(), id);
    }

    #[test]
    fn left_deep_chain_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut dag = ExprDag::new();
        let dims = [5usize, 7, 3, 8, 2];
        let leaves: Vec<NodeId> = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                dag.leaf(
                    format!("M{i}"),
                    arc(gen::rand_uniform(&mut rng, w[0], w[1], 0.5)),
                )
            })
            .collect();
        let mids = dag.left_deep_chain(&leaves).unwrap();
        assert_eq!(mids.len(), 3);
        assert_eq!(dag.shape(*mids.last().unwrap()), (5, 2));
    }
}
