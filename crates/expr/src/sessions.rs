//! Per-client estimation sessions for long-running services.
//!
//! A service front-end (`mnc-served`) handles requests from many clients
//! concurrently; each client deserves its own [`EstimationContext`] so that
//! one client's synopsis working set cannot evict another's, and so cache
//! statistics are attributable per client. [`SessionPool`] owns those
//! contexts, keyed by an opaque client id, with two eviction policies
//! layered on top:
//!
//! * **idle TTL** — sessions untouched for longer than
//!   [`SessionPoolConfig::idle_ttl`] are dropped on the next [`SessionPool::sweep`]
//!   (services call it from their periodic tick);
//! * **LRU overflow** — creating a session beyond
//!   [`SessionPoolConfig::max_sessions`] evicts the least-recently-used one,
//!   bounding resident memory to `max_sessions x session_byte_budget` plus
//!   slack.
//!
//! Dropping a session only discards *cached* synopses (and its stats) — the
//! authoritative sketches live in the service's persistent catalog, so an
//! evicted client transparently re-loads on its next request.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::session::EstimationContext;

/// Sizing and retention policy for a [`SessionPool`].
#[derive(Debug, Clone)]
pub struct SessionPoolConfig {
    /// Hard cap on concurrently resident sessions; creating one more evicts
    /// the least-recently-used session.
    pub max_sessions: usize,
    /// Synopsis byte budget handed to each session's [`EstimationContext`].
    pub session_byte_budget: usize,
    /// Sessions idle for longer than this are dropped by [`SessionPool::sweep`].
    pub idle_ttl: Duration,
    /// Worker-thread budget handed to each session's context
    /// ([`EstimationContext::with_threads`]); 1 keeps every walk
    /// sequential. Results are bit-identical at any setting.
    pub threads: usize,
}

impl Default for SessionPoolConfig {
    fn default() -> Self {
        SessionPoolConfig {
            max_sessions: 64,
            session_byte_budget: 16 << 20,
            idle_ttl: Duration::from_secs(300),
            threads: 1,
        }
    }
}

/// Lifetime counters for a pool (monotonic; never reset by eviction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionPoolStats {
    /// Sessions ever created.
    pub created: u64,
    /// Sessions dropped by the idle-TTL sweep.
    pub evicted_idle: u64,
    /// Sessions dropped to make room under `max_sessions`.
    pub evicted_lru: u64,
    /// Requests checked out across all sessions, ever.
    pub requests: u64,
}

struct ClientSession {
    ctx: EstimationContext,
    last_used: Instant,
    requests: u64,
}

/// Owns one [`EstimationContext`] per active client.
///
/// The pool itself is single-threaded; services wrap it in a `Mutex` and
/// hold the lock only long enough to run one request's estimation walk
/// (synopsis loads and propagation are cheap relative to connection I/O).
pub struct SessionPool {
    config: SessionPoolConfig,
    sessions: HashMap<Arc<str>, ClientSession>,
    stats: SessionPoolStats,
}

impl SessionPool {
    /// Empty pool with the given policy. `max_sessions` is clamped to at
    /// least 1 — a pool that can hold nothing would evict the session it
    /// just created.
    pub fn new(mut config: SessionPoolConfig) -> Self {
        config.max_sessions = config.max_sessions.max(1);
        SessionPool {
            config,
            sessions: HashMap::new(),
            stats: SessionPoolStats::default(),
        }
    }

    /// Checks out `client`'s context, creating it on first sight (evicting
    /// the LRU session if the pool is full). Marks the session used *now*.
    pub fn session(&mut self, client: &str) -> &mut EstimationContext {
        self.session_at(client, Instant::now())
    }

    /// [`Self::session`] with an explicit clock, for deterministic tests.
    pub fn session_at(&mut self, client: &str, now: Instant) -> &mut EstimationContext {
        self.session_init_at(client, now, |ctx| ctx)
    }

    /// [`Self::session_at`] with a decoration hook applied to **newly
    /// created** contexts only — services use it to wire each session into
    /// their telemetry daemon (`EstimationContext::with_obsd`).
    pub fn session_init_at(
        &mut self,
        client: &str,
        now: Instant,
        init: impl FnOnce(EstimationContext) -> EstimationContext,
    ) -> &mut EstimationContext {
        if !self.sessions.contains_key(client) {
            if self.sessions.len() >= self.config.max_sessions {
                self.evict_lru();
            }
            self.stats.created += 1;
            self.sessions.insert(
                Arc::from(client),
                ClientSession {
                    ctx: init(
                        EstimationContext::with_byte_budget(self.config.session_byte_budget)
                            .with_threads(self.config.threads),
                    ),
                    last_used: now,
                    requests: 0,
                },
            );
        }
        self.stats.requests += 1;
        let s = self.sessions.get_mut(client).expect("just inserted");
        s.last_used = now;
        s.requests += 1;
        &mut s.ctx
    }

    /// Drops every session — services call this when the underlying data
    /// changes (a catalog entry replaced or deleted) so no session serves a
    /// stale cached synopsis under a reused name.
    pub fn clear(&mut self) {
        self.sessions.clear();
    }

    /// Drops sessions idle for longer than the configured TTL; returns how
    /// many were evicted.
    pub fn sweep(&mut self) -> usize {
        self.sweep_at(Instant::now())
    }

    /// [`Self::sweep`] with an explicit clock, for deterministic tests.
    pub fn sweep_at(&mut self, now: Instant) -> usize {
        let ttl = self.config.idle_ttl;
        let before = self.sessions.len();
        self.sessions
            .retain(|_, s| now.saturating_duration_since(s.last_used) <= ttl);
        let evicted = before - self.sessions.len();
        self.stats.evicted_idle += evicted as u64;
        evicted
    }

    /// Drops `client`'s session if present (e.g. an explicit reset).
    pub fn remove(&mut self, client: &str) -> bool {
        self.sessions.remove(client).is_some()
    }

    /// Number of resident sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no sessions are resident.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SessionPoolStats {
        self.stats
    }

    /// Request count for `client`, if resident.
    pub fn requests(&self, client: &str) -> Option<u64> {
        self.sessions.get(client).map(|s| s.requests)
    }

    fn evict_lru(&mut self) {
        if let Some(name) = self
            .sessions
            .iter()
            .min_by_key(|(_, s)| s.last_used)
            .map(|(name, _)| Arc::clone(name))
        {
            self.sessions.remove(&*name);
            self.stats.evicted_lru += 1;
        }
    }
}

// The service shares the pool across connection threads behind a mutex.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SessionPool>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_estimators::{MncEstimator, SparsityEstimator};
    use mnc_matrix::gen;
    use rand::SeedableRng;

    fn pool(max: usize, ttl_secs: u64) -> SessionPool {
        SessionPool::new(SessionPoolConfig {
            max_sessions: max,
            session_byte_budget: 16 << 20,
            idle_ttl: Duration::from_secs(ttl_secs),
            ..SessionPoolConfig::default()
        })
    }

    #[test]
    fn sessions_are_isolated_per_client() {
        let mut r = rand::rngs::StdRng::seed_from_u64(7);
        let m = Arc::new(gen::rand_uniform(&mut r, 30, 20, 0.1));
        let est = MncEstimator::new();
        let mut p = pool(8, 300);

        // Client "a" warms its cache; client "b" must still miss.
        p.session("a")
            .named_synopsis(&est, "X", || est.build(&m))
            .unwrap();
        p.session("a")
            .named_synopsis(&est, "X", || est.build(&m))
            .unwrap();
        assert_eq!(p.session("a").stats().cache_hits, 1);

        p.session("b")
            .named_synopsis(&est, "X", || est.build(&m))
            .unwrap();
        assert_eq!(p.session("b").stats().cache_hits, 0);
        assert_eq!(p.session("b").stats().cache_misses, 1);

        assert_eq!(p.len(), 2);
        assert_eq!(p.stats().created, 2);
        assert_eq!(p.requests("a"), Some(3));
    }

    #[test]
    fn idle_sessions_are_swept() {
        let mut p = pool(8, 60);
        let t0 = Instant::now();
        p.session_at("a", t0);
        p.session_at("b", t0 + Duration::from_secs(50));

        // At t0+100s, "a" is 100s idle (out), "b" is 50s idle (kept).
        assert_eq!(p.sweep_at(t0 + Duration::from_secs(100)), 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.requests("a"), None);
        assert_eq!(p.requests("b"), Some(1));
        assert_eq!(p.stats().evicted_idle, 1);

        // Touching "b" resets its clock.
        p.session_at("b", t0 + Duration::from_secs(120));
        assert_eq!(p.sweep_at(t0 + Duration::from_secs(150)), 0);
    }

    #[test]
    fn overflow_evicts_least_recently_used() {
        let mut p = pool(2, 3600);
        let t0 = Instant::now();
        p.session_at("a", t0);
        p.session_at("b", t0 + Duration::from_secs(1));
        p.session_at("a", t0 + Duration::from_secs(2)); // "b" is now LRU
        p.session_at("c", t0 + Duration::from_secs(3));

        assert_eq!(p.len(), 2);
        assert!(p.requests("b").is_none(), "LRU session must be evicted");
        assert!(p.requests("a").is_some() && p.requests("c").is_some());
        assert_eq!(p.stats().evicted_lru, 1);
        assert_eq!(p.stats().created, 3);
    }

    #[test]
    fn evicted_client_recreates_transparently() {
        let mut p = pool(1, 3600);
        let t0 = Instant::now();
        p.session_at("a", t0);
        p.session_at("b", t0 + Duration::from_secs(1));
        // "a" was evicted; asking again just creates a fresh session.
        p.session_at("a", t0 + Duration::from_secs(2));
        assert_eq!(p.requests("a"), Some(1));
        assert_eq!(p.stats().created, 3);
        assert_eq!(p.stats().evicted_lru, 2);
    }

    #[test]
    fn remove_and_zero_capacity_clamp() {
        let mut p = pool(0, 3600); // clamped to 1
        p.session("only");
        assert_eq!(p.len(), 1);
        assert!(p.remove("only"));
        assert!(!p.remove("only"));
        assert!(p.is_empty());
    }
}
