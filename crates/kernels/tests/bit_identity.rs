//! Property tests: every kernel is bit-identical to its scalar reference.
//!
//! CI runs these in debug **and** `--release` — autovectorization only
//! happens in release builds, so the release run is the one that would
//! catch a kernel whose vectorized evaluation order drifts.

use proptest::prelude::*;

use mnc_kernels::{scalar, ScratchArena, VecMeta};

/// Deterministic vector generator (the vendored proptest subset has no
/// `collection::vec` strategy): values in `0..=max`, so proptest shrinks
/// only over `(len, seed, max)`.
fn gen_vec(seed: u64, len: usize, max: u32) -> Vec<u32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as u32) % (max + 1)
        })
        .collect()
}

fn gen_words(seed: u64, len: usize) -> Vec<u64> {
    let mut s = seed ^ 0xD6E8_FEB8_6659_FD93;
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s
        })
        .collect()
}

/// `(len, seed, max)` with values small enough that every sequential `f64`
/// partial sum of products is an exact integer (`len · max² < 2^53`), the
/// regime where the scalar reference itself is exact.
fn params() -> impl Strategy<Value = (usize, u64, u32)> {
    (0usize..1500, any::<u64>(), 1u32..100_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dot_is_bit_identical((len, seed, max) in params()) {
        let x = gen_vec(seed, len, max);
        let y = gen_vec(seed ^ 1, len, max);
        prop_assert_eq!(
            mnc_kernels::dot_u32(&x, &y).to_bits(),
            scalar::dot_u32(&x, &y).to_bits()
        );
    }

    #[test]
    fn sum_is_bit_identical((len, seed, max) in params()) {
        let v = gen_vec(seed, len, max);
        prop_assert_eq!(
            (mnc_kernels::sum_u32(&v) as f64).to_bits(),
            scalar::sum_u32(&v).to_bits()
        );
    }

    #[test]
    fn vector_edm_is_bit_identical((len, seed, max) in params()) {
        let x = gen_vec(seed, len, max);
        let y = gen_vec(seed ^ 2, len, max);
        // Several magnitudes of p: tiny p exercises the early return,
        // huge p the log-space accumulation.
        for p in [0.5, 1e3, 1e9, 1e15] {
            prop_assert_eq!(
                mnc_kernels::vector_edm(&x, &y, p).to_bits(),
                scalar::vector_edm(&x, &y, p).to_bits()
            );
        }
    }

    #[test]
    fn combinators_match_scalar_and_fused_meta((len, seed, max) in params()) {
        let x = gen_vec(seed, len, max);
        let y = gen_vec(seed ^ 3, len, max);
        let half = max / 2;
        let mut arena = ScratchArena::new();
        let mut out = arena.take_u32(0);

        let meta = mnc_kernels::zip_add_into(&x, &y, half, &mut out);
        prop_assert_eq!(&out, &scalar::zip_add(&x, &y));
        prop_assert_eq!(meta, scalar::meta_scan(&out, half));

        let meta = mnc_kernels::zip_min_into(&x, &y, half, &mut out);
        prop_assert_eq!(&out, &scalar::zip_min(&x, &y));
        prop_assert_eq!(meta, scalar::meta_scan(&out, half));

        let meta = mnc_kernels::zip_max_into(&x, &y, half, &mut out);
        prop_assert_eq!(&out, &scalar::zip_max(&x, &y));
        prop_assert_eq!(meta, scalar::meta_scan(&out, half));

        mnc_kernels::sub_sat_into(&x, &y, &mut out);
        prop_assert_eq!(&out, &scalar::sub_sat(&x, &y));

        let meta = mnc_kernels::complement_into(&x, max, half, &mut out);
        prop_assert_eq!(&out, &scalar::complement(&x, max));
        prop_assert_eq!(meta, scalar::meta_scan(&out, half));

        let meta = mnc_kernels::concat_meta_into(&x, &y, half, &mut out);
        prop_assert_eq!(meta, scalar::meta_scan(&out, half));
        prop_assert_eq!(&out[..len], &x[..]);
        prop_assert_eq!(&out[len..], &y[..]);
        arena.put_u32(out);
    }

    #[test]
    fn scale_round_matches_scalar_with_identical_draw_sequence(
        (len, seed, max) in params(),
        target in 0.0f64..1e6,
        cap in 1u64..1000,
    ) {
        let counts = gen_vec(seed, len, max);
        // A stateful "RNG": every call mutates it, so any divergence in the
        // call sequence (count or order) changes all later results.
        let mut state_k = seed;
        let mut state_s = seed;
        let draw = |state: &mut u64, v: f64| {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            v.floor() as u64 + (*state >> 63)
        };
        let mut out = Vec::new();
        let meta = mnc_kernels::scale_round_into(
            &counts, target, cap, max / 2, |v| draw(&mut state_k, v), &mut out,
        );
        let reference = scalar::scale_round(&counts, target, cap, |v| draw(&mut state_s, v));
        prop_assert_eq!(&out, &reference);
        prop_assert_eq!(state_k, state_s, "rounding draw sequences diverged");
        prop_assert_eq!(meta, scalar::meta_scan(&out, max / 2));
    }

    #[test]
    fn word_kernels_match_scalar((len, seed, _max) in params()) {
        let len = len % 200;
        let a = gen_words(seed, len);
        let b = gen_words(seed ^ 4, len);
        prop_assert_eq!(mnc_kernels::popcount(&a), scalar::popcount(&a));

        let mut dst_k = a.clone();
        let mut dst_s = a.clone();
        mnc_kernels::or_into(&mut dst_k, &b);
        scalar::or_into(&mut dst_s, &b);
        prop_assert_eq!(&dst_k, &dst_s);

        let mut anded = a.clone();
        mnc_kernels::and_into(&mut anded, &b);
        prop_assert_eq!(
            mnc_kernels::and_popcount(&a, &b),
            scalar::popcount(&anded)
        );

        let (c, d) = (gen_words(seed ^ 5, len), gen_words(seed ^ 6, len));
        let mut dst4 = a.clone();
        mnc_kernels::or4_into(&mut dst4, &b, &c, &d, &a);
        let mut expect = a.clone();
        for src in [&b, &c, &d, &a] {
            scalar::or_into(&mut expect, src);
        }
        prop_assert_eq!(&dst4, &expect);
    }

    #[test]
    fn meta_scan_matches_scalar((len, seed, max) in params()) {
        let v = gen_vec(seed, len, max);
        for half in [0, 1, max / 2, max] {
            let got: VecMeta = mnc_kernels::meta_scan(&v, half);
            prop_assert_eq!(got, scalar::meta_scan(&v, half));
        }
    }
}
