//! Word-parallel bitset kernels: row OR/AND and popcount over `u64` words.
//!
//! OR and AND are associative and commutative per word, and popcount is an
//! integer sum, so every batching/unrolling order below is bit-identical to
//! the one-word-at-a-time scalar loops in [`crate::scalar`]. Each entry
//! point dispatches to the 256-bit AVX2 form ([`crate::simd`]) where
//! available; the `*_portable` bodies are the fallback and stay public so
//! benchmarks can measure both.

/// Popcount over a word slice.
pub fn popcount(words: &[u64]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::enabled() {
        return unsafe { crate::simd::popcount(words) };
    }
    popcount_portable(words)
}

/// The portable four-lane [`popcount`] body (dispatch fallback).
pub fn popcount_portable(words: &[u64]) -> u64 {
    let mut acc = [0u64; 4];
    let mut chunks = words.chunks_exact(4);
    for c in &mut chunks {
        acc[0] += c[0].count_ones() as u64;
        acc[1] += c[1].count_ones() as u64;
        acc[2] += c[2].count_ones() as u64;
        acc[3] += c[3].count_ones() as u64;
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for &w in chunks.remainder() {
        total += w.count_ones() as u64;
    }
    total
}

/// `dst |= src` word-wise.
pub fn or_into(dst: &mut [u64], src: &[u64]) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::enabled() {
        return unsafe { crate::simd::or_into(dst, src) };
    }
    or_into_portable(dst, src)
}

/// The portable word-at-a-time [`or_into`] body (dispatch fallback).
pub fn or_into_portable(dst: &mut [u64], src: &[u64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// `dst &= src` word-wise.
pub fn and_into(dst: &mut [u64], src: &[u64]) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::enabled() {
        return unsafe { crate::simd::and_into(dst, src) };
    }
    and_into_portable(dst, src)
}

/// The portable word-at-a-time [`and_into`] body (dispatch fallback).
pub fn and_into_portable(dst: &mut [u64], src: &[u64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d &= s;
    }
}

/// `dst |= a | b | c | e` — four source rows folded in a single pass over
/// `dst`, quartering the destination traffic of the `bool_mm` inner loop
/// when a left-operand row is dense.
pub fn or4_into(dst: &mut [u64], a: &[u64], b: &[u64], c: &[u64], e: &[u64]) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::enabled() {
        return unsafe { crate::simd::or4_into(dst, a, b, c, e) };
    }
    or4_into_portable(dst, a, b, c, e)
}

/// The portable single-pass [`or4_into`] body (dispatch fallback).
pub fn or4_into_portable(dst: &mut [u64], a: &[u64], b: &[u64], c: &[u64], e: &[u64]) {
    for ((((d, &wa), &wb), &wc), &we) in dst.iter_mut().zip(a).zip(b).zip(c).zip(e) {
        *d |= (wa | wb) | (wc | we);
    }
}

/// Popcount of `a & b` without materializing the intersection.
pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::enabled() {
        return unsafe { crate::simd::and_popcount(a, b) };
    }
    and_popcount_portable(a, b)
}

/// The portable [`and_popcount`] body (dispatch fallback).
pub fn and_popcount_portable(a: &[u64], b: &[u64]) -> u64 {
    let n = a.len().min(b.len());
    let mut total = 0u64;
    for (&wa, &wb) in a[..n].iter().zip(&b[..n]) {
        total += (wa & wb).count_ones() as u64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar;

    fn words(seed: u64, n: usize) -> Vec<u64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s
            })
            .collect()
    }

    #[test]
    fn popcount_matches_scalar() {
        for n in [0, 1, 3, 4, 7, 64, 129] {
            let w = words(n as u64 + 1, n);
            assert_eq!(popcount(&w), scalar::popcount(&w));
            assert_eq!(popcount(&w), popcount_portable(&w));
        }
    }

    #[test]
    fn or4_equals_sequential_ors() {
        for n in [0usize, 1, 3, 4, 5, 37] {
            let mut dst = words(1, n);
            let mut expect = dst.clone();
            let mut portable = dst.clone();
            let (a, b, c, e) = (words(2, n), words(3, n), words(4, n), words(5, n));
            or4_into(&mut dst, &a, &b, &c, &e);
            or4_into_portable(&mut portable, &a, &b, &c, &e);
            for src in [&a, &b, &c, &e] {
                scalar::or_into(&mut expect, src);
            }
            assert_eq!(dst, expect, "n={n}");
            assert_eq!(dst, portable, "n={n}");
        }
    }

    #[test]
    fn and_popcount_matches_materialized() {
        let (a, b) = (words(6, 50), words(7, 50));
        let mut m = a.clone();
        and_into(&mut m, &b);
        assert_eq!(and_popcount(&a, &b), scalar::popcount(&m));
        assert_eq!(and_popcount(&a, &b), and_popcount_portable(&a, &b));
    }
}
