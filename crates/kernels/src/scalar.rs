//! Scalar reference implementations.
//!
//! These mirror the original (pre-kernel) inner loops of `mnc-core` and
//! `mnc-estimators` verbatim: sequential `f64` accumulation, per-op
//! `collect()` allocations, one word at a time. They are the ground truth
//! the bit-identity property tests compare against, and the baseline the
//! `kernel.*` rows of `BENCH_MNC.json` measure speedups over.

use crate::combine::VecMeta;

/// Sequential `f64` dot product of two count vectors — the original
/// `mnc_core::estimate::dot`. The loop-carried `f64` addition cannot be
/// reassociated by the compiler, so this never autovectorizes.
pub fn dot_u32(x: &[u32], y: &[u32]) -> f64 {
    x.iter().zip(y).map(|(&a, &b)| a as f64 * b as f64).sum()
}

/// Sequential `f64` sum of a count vector — the original `scale_counts`
/// prologue.
pub fn sum_u32(v: &[u32]) -> f64 {
    v.iter().map(|&c| c as f64).sum()
}

/// The original `mnc_core::estimate::vector_edm` with `f64` per-element
/// products.
pub fn vector_edm(x: &[u32], y: &[u32], p: f64) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    if p <= 0.0 {
        return 0.0;
    }
    let mut log_zero = 0.0f64;
    for (&xi, &yi) in x.iter().zip(y) {
        if xi == 0 || yi == 0 {
            continue;
        }
        let v = (xi as f64 * yi as f64) / p;
        if v >= 1.0 {
            return 1.0;
        }
        log_zero += (-v).ln_1p();
    }
    1.0 - log_zero.exp()
}

/// Allocating element-wise add — the original rbind/cbind combinator.
pub fn zip_add(x: &[u32], y: &[u32]) -> Vec<u32> {
    x.iter().zip(y).map(|(&a, &b)| a + b).collect()
}

/// Allocating saturating subtract — the original `sub_sat`.
pub fn sub_sat(x: &[u32], y: &[u32]) -> Vec<u32> {
    x.iter()
        .zip(y)
        .map(|(&a, &b)| a.saturating_sub(b))
        .collect()
}

/// Allocating complement `bound - c` — the original `propagate_eq_zero`
/// combinator.
pub fn complement(x: &[u32], bound: u32) -> Vec<u32> {
    x.iter().map(|&c| bound - c).collect()
}

/// Allocating element-wise minimum.
pub fn zip_min(x: &[u32], y: &[u32]) -> Vec<u32> {
    x.iter().zip(y).map(|(&a, &b)| a.min(b)).collect()
}

/// Allocating element-wise maximum.
pub fn zip_max(x: &[u32], y: &[u32]) -> Vec<u32> {
    x.iter().zip(y).map(|(&a, &b)| a.max(b)).collect()
}

/// Allocating scale-and-round — the original `scale_counts`, with the
/// rounding decision injected so the caller controls the RNG.
pub fn scale_round(
    counts: &[u32],
    target: f64,
    cap: u64,
    mut round: impl FnMut(f64) -> u64,
) -> Vec<u32> {
    let sum: f64 = sum_u32(counts);
    if sum <= 0.0 || target <= 0.0 {
        return vec![0; counts.len()];
    }
    let factor = target / sum;
    counts
        .iter()
        .map(|&c| {
            if c == 0 {
                0
            } else {
                round(c as f64 * factor).min(cap) as u32
            }
        })
        .collect()
}

/// One-word-at-a-time popcount — the original `count_ones` scan.
pub fn popcount(words: &[u64]) -> u64 {
    words.iter().map(|w| w.count_ones() as u64).sum()
}

/// Word-at-a-time OR — the original `bool_mm` inner loop body.
pub fn or_into(dst: &mut [u64], src: &[u64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// Separate-pass metadata scan — the original `compute_meta` loop over one
/// count vector.
pub fn meta_scan(v: &[u32], half: u32) -> VecMeta {
    let mut meta = VecMeta::default();
    for &c in v {
        meta.sum += c as u64;
        meta.max = meta.max.max(c);
        meta.nonempty += usize::from(c > 0);
        meta.eq1 += usize::from(c == 1);
        meta.over_half += usize::from(c > half);
    }
    meta
}
