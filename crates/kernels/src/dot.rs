//! Dot-product and fraction-product kernels over `u32` count vectors.

/// Dot product of two count vectors, returned as `f64`.
///
/// Products and partial sums are accumulated in `u64` (integer addition is
/// associative, so any unrolled or vectorized order is exact), then
/// converted to `f64` once. Bit-identical to [`crate::scalar::dot_u32`]
/// while every sequential partial sum stays below `2^53` — which holds
/// whenever `Σ x_k · y_k < 2^53`, i.e. for any realistic sketch (the sum is
/// the boolean FLOP count of a matrix product). Dispatches to the AVX2
/// wide-lane form ([`crate::simd`]) where available, else the portable
/// four-lane body.
pub fn dot_u32(x: &[u32], y: &[u32]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::enabled() {
        return unsafe { crate::simd::dot_u32(x, y) };
    }
    dot_u32_portable(x, y)
}

/// The portable four-`u64`-lane [`dot_u32`] body — the dispatch fallback,
/// kept public so benchmarks can measure it against the SIMD path.
pub fn dot_u32_portable(x: &[u32], y: &[u32]) -> f64 {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    let mut acc = [0u64; 4];
    let mut cx = x.chunks_exact(4);
    let mut cy = y.chunks_exact(4);
    for (a, b) in (&mut cx).zip(&mut cy) {
        acc[0] += a[0] as u64 * b[0] as u64;
        acc[1] += a[1] as u64 * b[1] as u64;
        acc[2] += a[2] as u64 * b[2] as u64;
        acc[3] += a[3] as u64 * b[3] as u64;
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (&a, &b) in cx.remainder().iter().zip(cy.remainder()) {
        total += a as u64 * b as u64;
    }
    total as f64
}

/// Exact integer sum of a count vector. `sum_u32(v) as f64` is bit-identical
/// to the sequential `f64` accumulation of [`crate::scalar::sum_u32`] while
/// the sum stays below `2^53`. Dispatches like [`dot_u32`].
pub fn sum_u32(v: &[u32]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::enabled() {
        return unsafe { crate::simd::sum_u32(v) };
    }
    sum_u32_portable(v)
}

/// The portable four-lane [`sum_u32`] body (dispatch fallback).
pub fn sum_u32_portable(v: &[u32]) -> u64 {
    let mut acc = [0u64; 4];
    let mut chunks = v.chunks_exact(4);
    for c in &mut chunks {
        acc[0] += c[0] as u64;
        acc[1] += c[1] as u64;
        acc[2] += c[2] as u64;
        acc[3] += c[3] as u64;
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for &c in chunks.remainder() {
        total += c as u64;
    }
    total
}

/// Density-map-like fraction product over two aligned count vectors (the
/// Algorithm 1 fallback) — see `mnc_core::estimate::vector_edm` for the
/// formula.
///
/// Per-element products are formed in `u64`; `(x·y) as f64` rounds the exact
/// integer product once, exactly like `x as f64 * y as f64`, so this is
/// bit-identical to [`crate::scalar::vector_edm`] for **all** inputs. The
/// `ln_1p` accumulation keeps its original sequential order (floating-point
/// addition is not reassociated).
pub fn vector_edm(x: &[u32], y: &[u32], p: f64) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    if p <= 0.0 {
        return 0.0;
    }
    let mut log_zero = 0.0f64;
    for (&xi, &yi) in x.iter().zip(y) {
        let prod = xi as u64 * yi as u64;
        if prod == 0 {
            continue;
        }
        let v = prod as f64 / p;
        if v >= 1.0 {
            return 1.0;
        }
        log_zero += (-v).ln_1p();
    }
    1.0 - log_zero.exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar;

    #[test]
    fn dot_matches_scalar_on_small_vectors() {
        let x: Vec<u32> = (0..37).map(|i| (i * 7 + 3) % 50).collect();
        let y: Vec<u32> = (0..37).map(|i| (i * 13 + 1) % 50).collect();
        assert_eq!(dot_u32(&x, &y).to_bits(), scalar::dot_u32(&x, &y).to_bits());
        assert_eq!(dot_u32(&[], &[]), 0.0);
        assert_eq!(dot_u32(&[3], &[4]), 12.0);
    }

    #[test]
    fn dispatched_paths_match_portable_bodies() {
        for n in [0usize, 1, 5, 8, 13, 64, 1000] {
            let x: Vec<u32> = (0..n as u32).map(|i| (i * 7 + 3) % 97).collect();
            let y: Vec<u32> = (0..n as u32).map(|i| (i * 13 + 1) % 89).collect();
            assert_eq!(
                dot_u32(&x, &y).to_bits(),
                dot_u32_portable(&x, &y).to_bits(),
                "n={n}"
            );
            assert_eq!(sum_u32(&x), sum_u32_portable(&x), "n={n}");
        }
    }

    #[test]
    fn sum_matches_scalar() {
        let v: Vec<u32> = (0..101).map(|i| i * 3).collect();
        assert_eq!(
            (sum_u32(&v) as f64).to_bits(),
            scalar::sum_u32(&v).to_bits()
        );
        assert_eq!(sum_u32(&[]), 0);
    }

    #[test]
    fn edm_matches_scalar_including_early_return() {
        let x = [3u32, 0, 5, 2];
        let y = [2u32, 7, 1, 9];
        assert_eq!(
            vector_edm(&x, &y, 100.0).to_bits(),
            scalar::vector_edm(&x, &y, 100.0).to_bits()
        );
        // Saturated term: both return exactly 1.0.
        assert_eq!(vector_edm(&[10], &[10], 50.0), 1.0);
        assert_eq!(vector_edm(&[], &[], 10.0), 0.0);
        assert_eq!(vector_edm(&[1], &[1], 0.0), 0.0);
    }
}
