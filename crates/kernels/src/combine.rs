//! Fused count-vector combinators.
//!
//! Each combinator writes into a caller-provided buffer (typically leased
//! from a [`crate::ScratchArena`]) instead of `collect()`ing a fresh `Vec`,
//! and recomputes the per-vector summary statistics **in the same pass** —
//! the output never needs the separate metadata scan `compute_meta` used to
//! perform.

use crate::dot::sum_u32;

/// Single-pass summary of one count vector: exactly the per-vector half of
/// `mnc_core`'s `SketchMeta` (Section 3.1 summary statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VecMeta {
    /// `Σ v` — total count.
    pub sum: u64,
    /// `max(v)`.
    pub max: u32,
    /// `|v > 0|` — non-empty entries.
    pub nonempty: usize,
    /// `|v = 1|` — entries with exactly one non-zero.
    pub eq1: usize,
    /// `|v > half|` — entries above the half-full threshold.
    pub over_half: usize,
}

impl VecMeta {
    #[inline]
    pub(crate) fn accum(&mut self, v: u32, half: u32) {
        self.sum += v as u64;
        self.max = self.max.max(v);
        self.nonempty += usize::from(v > 0);
        self.eq1 += usize::from(v == 1);
        self.over_half += usize::from(v > half);
    }
}

/// Scans an existing vector — the kernel counterpart of the `compute_meta`
/// loop, shared by sketch construction. Dispatches to the AVX2 form
/// ([`crate::simd`]) where available; all statistics are integer
/// sums/maxima/counts, so any evaluation order is exact.
pub fn meta_scan(v: &[u32], half: u32) -> VecMeta {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::enabled() {
        return unsafe { crate::simd::meta_scan(v, half) };
    }
    meta_scan_portable(v, half)
}

/// The portable scalar [`meta_scan`] body (dispatch fallback).
pub fn meta_scan_portable(v: &[u32], half: u32) -> VecMeta {
    let mut meta = VecMeta::default();
    for &c in v {
        meta.accum(c, half);
    }
    meta
}

/// `out = x + y` element-wise, with fused metadata (threshold `half`).
pub fn zip_add_into(x: &[u32], y: &[u32], half: u32, out: &mut Vec<u32>) -> VecMeta {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::enabled() {
        return unsafe { crate::simd::zip_add_into(x, y, half, out) };
    }
    zip_add_into_portable(x, y, half, out)
}

/// The portable scalar [`zip_add_into`] body (dispatch fallback).
pub fn zip_add_into_portable(x: &[u32], y: &[u32], half: u32, out: &mut Vec<u32>) -> VecMeta {
    debug_assert_eq!(x.len(), y.len());
    out.clear();
    let mut meta = VecMeta::default();
    out.extend(x.iter().zip(y).map(|(&a, &b)| {
        let v = a + b;
        meta.accum(v, half);
        v
    }));
    meta
}

/// `out = concat(x, y)`, with fused metadata — the rbind/cbind
/// concatenation half.
pub fn concat_meta_into(x: &[u32], y: &[u32], half: u32, out: &mut Vec<u32>) -> VecMeta {
    out.clear();
    out.reserve(x.len() + y.len());
    out.extend_from_slice(x);
    out.extend_from_slice(y);
    meta_scan(out, half)
}

/// `out = x ⊖ y` (saturating subtract) — temporaries of the extended-count
/// estimator, no metadata needed.
pub fn sub_sat_into(x: &[u32], y: &[u32], out: &mut Vec<u32>) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::enabled() {
        return unsafe { crate::simd::sub_sat_into(x, y, out) };
    }
    sub_sat_into_portable(x, y, out)
}

/// The portable scalar [`sub_sat_into`] body (dispatch fallback).
pub fn sub_sat_into_portable(x: &[u32], y: &[u32], out: &mut Vec<u32>) {
    debug_assert_eq!(x.len(), y.len());
    out.clear();
    out.extend(x.iter().zip(y).map(|(&a, &b)| a.saturating_sub(b)));
}

/// `out = bound - x` element-wise, with fused metadata — the `A == 0`
/// complement rule (Eq. 14). Requires `x[i] <= bound` (counts never exceed
/// the opposite dimension), matching the original unchecked subtraction.
pub fn complement_into(x: &[u32], bound: u32, half: u32, out: &mut Vec<u32>) -> VecMeta {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::enabled() {
        return unsafe { crate::simd::complement_into(x, bound, half, out) };
    }
    complement_into_portable(x, bound, half, out)
}

/// The portable scalar [`complement_into`] body (dispatch fallback).
pub fn complement_into_portable(x: &[u32], bound: u32, half: u32, out: &mut Vec<u32>) -> VecMeta {
    out.clear();
    let mut meta = VecMeta::default();
    out.extend(x.iter().map(|&c| {
        let v = bound - c;
        meta.accum(v, half);
        v
    }));
    meta
}

/// `out = min(x, y)` element-wise, with fused metadata.
pub fn zip_min_into(x: &[u32], y: &[u32], half: u32, out: &mut Vec<u32>) -> VecMeta {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::enabled() {
        return unsafe { crate::simd::zip_min_into(x, y, half, out) };
    }
    zip_min_into_portable(x, y, half, out)
}

/// The portable scalar [`zip_min_into`] body (dispatch fallback).
pub fn zip_min_into_portable(x: &[u32], y: &[u32], half: u32, out: &mut Vec<u32>) -> VecMeta {
    debug_assert_eq!(x.len(), y.len());
    out.clear();
    let mut meta = VecMeta::default();
    out.extend(x.iter().zip(y).map(|(&a, &b)| {
        let v = a.min(b);
        meta.accum(v, half);
        v
    }));
    meta
}

/// `out = max(x, y)` element-wise, with fused metadata.
pub fn zip_max_into(x: &[u32], y: &[u32], half: u32, out: &mut Vec<u32>) -> VecMeta {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::enabled() {
        return unsafe { crate::simd::zip_max_into(x, y, half, out) };
    }
    zip_max_into_portable(x, y, half, out)
}

/// The portable scalar [`zip_max_into`] body (dispatch fallback).
pub fn zip_max_into_portable(x: &[u32], y: &[u32], half: u32, out: &mut Vec<u32>) -> VecMeta {
    debug_assert_eq!(x.len(), y.len());
    out.clear();
    let mut meta = VecMeta::default();
    out.extend(x.iter().zip(y).map(|(&a, &b)| {
        let v = a.max(b);
        meta.accum(v, half);
        v
    }));
    meta
}

/// Scales `counts` to sum to `target`, rounding each entry through the
/// caller's `round` (probabilistic or deterministic) and capping at `cap` —
/// the propagation scaling rule of Section 3.3, with fused metadata.
///
/// Bit-identity with [`crate::scalar::scale_round`]: the integer sum equals
/// the sequential `f64` sum exactly (counts sum below `2^53`), zero entries
/// are skipped **without consuming a rounding decision**, and the
/// per-element expression `round(c · factor).min(cap) as u32` is evaluated
/// in the original order.
pub fn scale_round_into(
    counts: &[u32],
    target: f64,
    cap: u64,
    half: u32,
    mut round: impl FnMut(f64) -> u64,
    out: &mut Vec<u32>,
) -> VecMeta {
    out.clear();
    let sum = sum_u32(counts);
    if sum == 0 || target <= 0.0 {
        out.resize(counts.len(), 0);
        return VecMeta::default();
    }
    let factor = target / sum as f64;
    let mut meta = VecMeta::default();
    out.extend(counts.iter().map(|&c| {
        let v = if c == 0 {
            0
        } else {
            round(c as f64 * factor).min(cap) as u32
        };
        meta.accum(v, half);
        v
    }));
    meta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar;

    #[test]
    fn fused_meta_equals_separate_scan() {
        let x: Vec<u32> = (0..53).map(|i| (i * 5) % 17).collect();
        let y: Vec<u32> = (0..53).map(|i| (i * 3 + 1) % 11).collect();
        let mut out = Vec::new();
        let meta = zip_add_into(&x, &y, 8, &mut out);
        assert_eq!(out, scalar::zip_add(&x, &y));
        assert_eq!(meta, scalar::meta_scan(&out, 8));
        assert_eq!(meta, meta_scan(&out, 8));
    }

    #[test]
    fn concat_covers_both_inputs() {
        let mut out = Vec::new();
        let meta = concat_meta_into(&[1, 0, 2], &[3, 1], 1, &mut out);
        assert_eq!(out, vec![1, 0, 2, 3, 1]);
        assert_eq!(meta.sum, 7);
        assert_eq!(meta.nonempty, 4);
        assert_eq!(meta.eq1, 2);
        assert_eq!(meta.over_half, 2);
    }

    #[test]
    fn sub_sat_and_complement_match_scalar() {
        let x = [5u32, 2, 9, 0];
        let y = [3u32, 4, 9, 1];
        let mut out = Vec::new();
        sub_sat_into(&x, &y, &mut out);
        assert_eq!(out, scalar::sub_sat(&x, &y));
        let meta = complement_into(&x, 10, 5, &mut out);
        assert_eq!(out, scalar::complement(&x, 10));
        assert_eq!(meta, scalar::meta_scan(&out, 5));
    }

    #[test]
    fn min_max_match_scalar() {
        let x = [5u32, 2, 9, 0];
        let y = [3u32, 4, 9, 1];
        let mut out = Vec::new();
        zip_min_into(&x, &y, 3, &mut out);
        assert_eq!(out, scalar::zip_min(&x, &y));
        zip_max_into(&x, &y, 3, &mut out);
        assert_eq!(out, scalar::zip_max(&x, &y));
    }

    #[test]
    fn scale_round_preserves_rounding_call_sequence() {
        let counts = [0u32, 3, 0, 7, 1];
        // Record every value handed to the rounding hook: zeros must be
        // skipped, everything else seen in order.
        let mut seen_k = Vec::new();
        let mut seen_s = Vec::new();
        let mut out = Vec::new();
        let meta = scale_round_into(
            &counts,
            5.5,
            4,
            2,
            |v| {
                seen_k.push(v);
                v.round() as u64
            },
            &mut out,
        );
        let reference = scalar::scale_round(&counts, 5.5, 4, |v| {
            seen_s.push(v);
            v.round() as u64
        });
        assert_eq!(out, reference);
        assert_eq!(seen_k, seen_s);
        assert_eq!(seen_k.len(), 3, "zero counts must not consume a decision");
        assert_eq!(meta, scalar::meta_scan(&out, 2));
    }

    #[test]
    fn scale_round_zero_sum_or_target_is_all_zeros() {
        let mut out = vec![9u32; 3];
        let meta = scale_round_into(&[0, 0, 0], 5.0, 4, 1, |_| panic!("no draws"), &mut out);
        assert_eq!(out, vec![0, 0, 0]);
        assert_eq!(meta, VecMeta::default());
        let meta = scale_round_into(&[1, 2], 0.0, 4, 1, |_| panic!("no draws"), &mut out);
        assert_eq!(out, vec![0, 0]);
        assert_eq!(meta, VecMeta::default());
    }
}
