//! A small scoped-thread worker pool for deterministic fan-out.
//!
//! [`WorkerPool`] is deliberately minimal: it carries a thread budget (the
//! `threads` knob surfaced by every CLI) and runs closures over index
//! ranges on `std::thread::scope` workers. Determinism comes from the
//! merge, not the schedule — workers race over indices, but results are
//! always returned **in index order**, so callers that fold partial
//! results in that fixed order (sketch chunk merges, bitset row chunks,
//! wavefront DAG levels) produce answers bit-identical to a sequential
//! run. A pool with `threads == 1` never spawns: every `run` degenerates
//! to an inline loop with zero overhead beyond the call.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A scoped-thread worker pool with a fixed thread budget.
///
/// The pool owns no OS threads between calls — workers are scoped to each
/// [`run`](WorkerPool::run)/[`run_tasks`](WorkerPool::run_tasks)
/// invocation, so an idle pool costs nothing and the type stays trivially
/// `Clone`/`Send`/`Sync`.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new(1)
    }
}

impl WorkerPool {
    /// A pool running at most `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// The thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether `run`/`run_tasks` may actually spawn workers.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Evaluates `f(0..n)` and returns the results in index order.
    ///
    /// Sequential when the pool is single-threaded or there is at most one
    /// index; otherwise `min(threads, n)` scoped workers pull indices from
    /// a shared atomic counter and the partials are re-assembled by index
    /// after the scope joins.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let f = &f;
            let next = &next;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                for (i, v) in h.join().expect("pool worker panicked") {
                    slots[i] = Some(v);
                }
            }
        });
        slots
            .into_iter()
            .map(|v| v.expect("every index covered"))
            .collect()
    }

    /// Runs pre-built closures — one scoped worker each — and returns their
    /// results in task order. This is the escape hatch for callers that
    /// partition a buffer with `split_at_mut` (bitset packing, boolean MM):
    /// each task owns its disjoint `&mut` segment, so the closures cannot be
    /// re-dispatched through a shared `Fn` and get a thread apiece instead.
    /// Callers chunk with [`crate::row_chunks`] at the pool's thread count,
    /// so the task count already matches the budget.
    pub fn run_tasks<'env, T: Send>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
    ) -> Vec<T> {
        if self.threads == 1 || tasks.len() <= 1 {
            return tasks.into_iter().map(|t| t()).collect();
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = tasks.into_iter().map(|t| s.spawn(t)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_in_index_order() {
        for threads in [1, 2, 3, 8, 64] {
            let pool = WorkerPool::new(threads);
            let out = pool.run(23, |i| i * i);
            assert_eq!(
                out,
                (0..23).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
        assert!(WorkerPool::new(0).threads() == 1, "clamped to 1");
        assert!(WorkerPool::new(4).run(0, |i| i).is_empty());
    }

    #[test]
    fn run_tasks_preserves_task_order_and_split_writes() {
        let mut buf = vec![0u32; 12];
        let pool = WorkerPool::new(4);
        {
            let mut rest = buf.as_mut_slice();
            let mut tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = Vec::new();
            for part in 0..4 {
                let (seg, tail) = rest.split_at_mut(3);
                rest = tail;
                tasks.push(Box::new(move || {
                    for (k, v) in seg.iter_mut().enumerate() {
                        *v = (part * 10 + k) as u32;
                    }
                    part
                }));
            }
            assert_eq!(pool.run_tasks(tasks), vec![0, 1, 2, 3]);
        }
        assert_eq!(buf, vec![0, 1, 2, 10, 11, 12, 20, 21, 22, 30, 31, 32]);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        // A 1-thread pool must not spawn: thread-local state proves the
        // closures ran on the calling thread.
        thread_local! {
            static MARK: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
        }
        MARK.with(|m| m.set(7));
        let pool = WorkerPool::new(1);
        let seen = pool.run(4, |_| MARK.with(|m| m.get()));
        assert_eq!(seen, vec![7; 4]);
    }
}
