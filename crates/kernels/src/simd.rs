//! AVX2 specializations of the hot-path kernels, selected at runtime.
//!
//! Every function here is an *implementation detail* of the public kernels
//! in [`crate::dot`], [`crate::words`], and [`crate::combine`]: those entry
//! points probe [`enabled`] once per call (a cached atomic load inside
//! `is_x86_feature_detected!`) and fall back to the portable four-lane
//! bodies on non-x86_64 targets or pre-AVX2 hardware.
//!
//! ## Why the wide lanes stay bit-identical
//!
//! The portable kernels already accumulate `u32` products and sums in `u64`
//! lanes, where addition is associative — so widening from 4 scalar lanes to
//! 4×64-bit vector lanes (or 8×32-bit for the element-wise combinators)
//! cannot change the final integer, and the single `as f64` conversion at
//! the end is unchanged. Bitwise OR/AND/popcount are per-word and order-free.
//! The element-wise combinators (`zip_add` & co.) compute each output lane
//! independently with exact integer ops (`_mm256_add_epi32`,
//! `_mm256_max_epu32`, ...), and their fused [`VecMeta`] statistics are
//! integer sums/maxima/counts — again order-free. Nothing here touches a
//! transcendental: `vector_edm` keeps its sequential scalar order upstream.

#[cfg(target_arch = "x86_64")]
pub(crate) use x86::*;

/// True when the AVX2 paths may be taken on this machine. The detection
/// result is cached in a static by the standard library, so this is an
/// atomic load + branch after the first call.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    use crate::combine::VecMeta;

    /// Sums the four `u64` lanes of `v` (wrapping, matching `u64` addition).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi64(v: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
        lanes[0]
            .wrapping_add(lanes[1])
            .wrapping_add(lanes[2])
            .wrapping_add(lanes[3])
    }

    /// `dot_u32` over 8 elements per iteration: even/odd 32-bit lanes are
    /// multiplied into 64-bit products (`_mm256_mul_epu32`) and accumulated
    /// in two independent `u64x4` registers.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_u32(x: &[u32], y: &[u32]) -> f64 {
        let n = x.len().min(y.len());
        let chunks = n / 8;
        let mut acc_even = _mm256_setzero_si256();
        let mut acc_odd = _mm256_setzero_si256();
        for i in 0..chunks {
            let vx = _mm256_loadu_si256(x.as_ptr().add(i * 8) as *const __m256i);
            let vy = _mm256_loadu_si256(y.as_ptr().add(i * 8) as *const __m256i);
            acc_even = _mm256_add_epi64(acc_even, _mm256_mul_epu32(vx, vy));
            acc_odd = _mm256_add_epi64(
                acc_odd,
                _mm256_mul_epu32(_mm256_srli_epi64::<32>(vx), _mm256_srli_epi64::<32>(vy)),
            );
        }
        let mut total = hsum_epi64(_mm256_add_epi64(acc_even, acc_odd));
        for k in chunks * 8..n {
            total += *x.get_unchecked(k) as u64 * *y.get_unchecked(k) as u64;
        }
        total as f64
    }

    /// `sum_u32` with even/odd lane widening into two `u64x4` accumulators.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_u32(v: &[u32]) -> u64 {
        let n = v.len();
        let chunks = n / 8;
        let mask32 = _mm256_set1_epi64x(0xFFFF_FFFF);
        let mut acc_even = _mm256_setzero_si256();
        let mut acc_odd = _mm256_setzero_si256();
        for i in 0..chunks {
            let w = _mm256_loadu_si256(v.as_ptr().add(i * 8) as *const __m256i);
            acc_even = _mm256_add_epi64(acc_even, _mm256_and_si256(w, mask32));
            acc_odd = _mm256_add_epi64(acc_odd, _mm256_srli_epi64::<32>(w));
        }
        let mut total = hsum_epi64(_mm256_add_epi64(acc_even, acc_odd));
        for k in chunks * 8..n {
            total += *v.get_unchecked(k) as u64;
        }
        total
    }

    /// Per-byte popcount of `v` via the classic nibble shuffle LUT; the
    /// byte counts are folded to four `u64` partials with `_mm256_sad_epu8`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcnt_bytes(v: __m256i) -> __m256i {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low_mask);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    /// Popcount over a `u64` word slice, 4 words per iteration.
    #[target_feature(enable = "avx2")]
    pub unsafe fn popcount(words: &[u64]) -> u64 {
        let chunks = words.len() / 4;
        let mut acc = _mm256_setzero_si256();
        for i in 0..chunks {
            let w = _mm256_loadu_si256(words.as_ptr().add(i * 4) as *const __m256i);
            acc = _mm256_add_epi64(acc, popcnt_bytes(w));
        }
        let mut total = hsum_epi64(acc);
        for k in chunks * 4..words.len() {
            total += words.get_unchecked(k).count_ones() as u64;
        }
        total
    }

    /// Popcount of `a & b` without materializing the intersection.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len().min(b.len());
        let chunks = n / 4;
        let mut acc = _mm256_setzero_si256();
        for i in 0..chunks {
            let wa = _mm256_loadu_si256(a.as_ptr().add(i * 4) as *const __m256i);
            let wb = _mm256_loadu_si256(b.as_ptr().add(i * 4) as *const __m256i);
            acc = _mm256_add_epi64(acc, popcnt_bytes(_mm256_and_si256(wa, wb)));
        }
        let mut total = hsum_epi64(acc);
        for k in chunks * 4..n {
            total += (a.get_unchecked(k) & b.get_unchecked(k)).count_ones() as u64;
        }
        total
    }

    /// `dst |= src`, 256 bits at a time.
    #[target_feature(enable = "avx2")]
    pub unsafe fn or_into(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        let chunks = n / 4;
        for i in 0..chunks {
            let p = dst.as_mut_ptr().add(i * 4) as *mut __m256i;
            let d = _mm256_loadu_si256(p as *const __m256i);
            let s = _mm256_loadu_si256(src.as_ptr().add(i * 4) as *const __m256i);
            _mm256_storeu_si256(p, _mm256_or_si256(d, s));
        }
        for k in chunks * 4..n {
            *dst.get_unchecked_mut(k) |= src.get_unchecked(k);
        }
    }

    /// `dst &= src`, 256 bits at a time.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_into(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        let chunks = n / 4;
        for i in 0..chunks {
            let p = dst.as_mut_ptr().add(i * 4) as *mut __m256i;
            let d = _mm256_loadu_si256(p as *const __m256i);
            let s = _mm256_loadu_si256(src.as_ptr().add(i * 4) as *const __m256i);
            _mm256_storeu_si256(p, _mm256_and_si256(d, s));
        }
        for k in chunks * 4..n {
            *dst.get_unchecked_mut(k) &= src.get_unchecked(k);
        }
    }

    /// `dst |= a | b | c | e`, 256 bits at a time (the `bool_mm` fast path).
    #[target_feature(enable = "avx2")]
    pub unsafe fn or4_into(dst: &mut [u64], a: &[u64], b: &[u64], c: &[u64], e: &[u64]) {
        let n = dst
            .len()
            .min(a.len())
            .min(b.len())
            .min(c.len())
            .min(e.len());
        let chunks = n / 4;
        for i in 0..chunks {
            let p = dst.as_mut_ptr().add(i * 4) as *mut __m256i;
            let d = _mm256_loadu_si256(p as *const __m256i);
            let wa = _mm256_loadu_si256(a.as_ptr().add(i * 4) as *const __m256i);
            let wb = _mm256_loadu_si256(b.as_ptr().add(i * 4) as *const __m256i);
            let wc = _mm256_loadu_si256(c.as_ptr().add(i * 4) as *const __m256i);
            let we = _mm256_loadu_si256(e.as_ptr().add(i * 4) as *const __m256i);
            let or = _mm256_or_si256(_mm256_or_si256(wa, wb), _mm256_or_si256(wc, we));
            _mm256_storeu_si256(p, _mm256_or_si256(d, or));
        }
        for k in chunks * 4..n {
            *dst.get_unchecked_mut(k) |= (a.get_unchecked(k) | b.get_unchecked(k))
                | (c.get_unchecked(k) | e.get_unchecked(k));
        }
    }

    /// Vectorized [`VecMeta`] accumulator: `u64` sums via even/odd widening,
    /// running `max` lanes, and compare-mask popcounts for the three
    /// predicate counters (`>0`, `==1`, `>half`; the unsigned `>` uses the
    /// usual sign-flip trick).
    struct MetaAcc {
        sum_even: __m256i,
        sum_odd: __m256i,
        max: __m256i,
        nonempty: usize,
        eq1: usize,
        over_half: usize,
        mask32: __m256i,
        one: __m256i,
        zero: __m256i,
        sign: __m256i,
        half_flipped: __m256i,
    }

    impl MetaAcc {
        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn new(half: u32) -> Self {
            let sign = _mm256_set1_epi32(i32::MIN);
            MetaAcc {
                sum_even: _mm256_setzero_si256(),
                sum_odd: _mm256_setzero_si256(),
                max: _mm256_setzero_si256(),
                nonempty: 0,
                eq1: 0,
                over_half: 0,
                mask32: _mm256_set1_epi64x(0xFFFF_FFFF),
                one: _mm256_set1_epi32(1),
                zero: _mm256_setzero_si256(),
                sign,
                half_flipped: _mm256_xor_si256(_mm256_set1_epi32(half as i32), sign),
            }
        }

        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn accum8(&mut self, v: __m256i) {
            self.sum_even = _mm256_add_epi64(self.sum_even, _mm256_and_si256(v, self.mask32));
            self.sum_odd = _mm256_add_epi64(self.sum_odd, _mm256_srli_epi64::<32>(v));
            self.max = _mm256_max_epu32(self.max, v);
            let zero_lanes =
                _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, self.zero))) as u32;
            self.nonempty += 8 - (zero_lanes & 0xff).count_ones() as usize;
            let one_lanes =
                _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, self.one))) as u32;
            self.eq1 += (one_lanes & 0xff).count_ones() as usize;
            let gt = _mm256_cmpgt_epi32(_mm256_xor_si256(v, self.sign), self.half_flipped);
            let gt_lanes = _mm256_movemask_ps(_mm256_castsi256_ps(gt)) as u32;
            self.over_half += (gt_lanes & 0xff).count_ones() as usize;
        }

        #[inline]
        #[target_feature(enable = "avx2")]
        unsafe fn finish(self) -> VecMeta {
            let mut max_lanes = [0u32; 8];
            _mm256_storeu_si256(max_lanes.as_mut_ptr() as *mut __m256i, self.max);
            VecMeta {
                sum: hsum_epi64(_mm256_add_epi64(self.sum_even, self.sum_odd)),
                max: max_lanes.iter().copied().max().unwrap_or(0),
                nonempty: self.nonempty,
                eq1: self.eq1,
                over_half: self.over_half,
            }
        }
    }

    /// Generates one binary element-wise combinator with fused metadata:
    /// `$vexpr` is the 8-lane vector form, `$sexpr` the scalar remainder.
    macro_rules! avx2_zip_meta {
        ($(#[$doc:meta])* $name:ident, |$va:ident, $vb:ident| $vexpr:expr, |$sa:ident, $sb:ident| $sexpr:expr) => {
            $(#[$doc])*
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(x: &[u32], y: &[u32], half: u32, out: &mut Vec<u32>) -> VecMeta {
                debug_assert_eq!(x.len(), y.len());
                let n = x.len().min(y.len());
                out.clear();
                out.resize(n, 0);
                let chunks = n / 8;
                let mut acc = MetaAcc::new(half);
                let dst = out.as_mut_ptr();
                for i in 0..chunks {
                    let $va = _mm256_loadu_si256(x.as_ptr().add(i * 8) as *const __m256i);
                    let $vb = _mm256_loadu_si256(y.as_ptr().add(i * 8) as *const __m256i);
                    let v = $vexpr;
                    acc.accum8(v);
                    _mm256_storeu_si256(dst.add(i * 8) as *mut __m256i, v);
                }
                let mut meta = acc.finish();
                for k in chunks * 8..n {
                    let $sa = *x.get_unchecked(k);
                    let $sb = *y.get_unchecked(k);
                    let v = $sexpr;
                    meta.accum(v, half);
                    *out.get_unchecked_mut(k) = v;
                }
                meta
            }
        };
    }

    avx2_zip_meta!(
        /// `out = x + y` with fused metadata.
        zip_add_into,
        |a, b| _mm256_add_epi32(a, b),
        |a, b| a.wrapping_add(b)
    );
    avx2_zip_meta!(
        /// `out = min(x, y)` with fused metadata.
        zip_min_into,
        |a, b| _mm256_min_epu32(a, b),
        |a, b| a.min(b)
    );
    avx2_zip_meta!(
        /// `out = max(x, y)` with fused metadata.
        zip_max_into,
        |a, b| _mm256_max_epu32(a, b),
        |a, b| a.max(b)
    );

    /// `out = x ⊖ y` (unsigned saturating subtract, `max(a, b) - b`), no
    /// metadata — mirrors [`crate::combine::sub_sat_into`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn sub_sat_into(x: &[u32], y: &[u32], out: &mut Vec<u32>) {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len().min(y.len());
        out.clear();
        out.resize(n, 0);
        let chunks = n / 8;
        let dst = out.as_mut_ptr();
        for i in 0..chunks {
            let a = _mm256_loadu_si256(x.as_ptr().add(i * 8) as *const __m256i);
            let b = _mm256_loadu_si256(y.as_ptr().add(i * 8) as *const __m256i);
            let v = _mm256_sub_epi32(_mm256_max_epu32(a, b), b);
            _mm256_storeu_si256(dst.add(i * 8) as *mut __m256i, v);
        }
        for k in chunks * 8..n {
            *out.get_unchecked_mut(k) = x.get_unchecked(k).saturating_sub(*y.get_unchecked(k));
        }
    }

    /// `out = bound - x` with fused metadata (requires `x[i] <= bound`, the
    /// [`crate::combine::complement_into`] precondition).
    #[target_feature(enable = "avx2")]
    pub unsafe fn complement_into(x: &[u32], bound: u32, half: u32, out: &mut Vec<u32>) -> VecMeta {
        let n = x.len();
        out.clear();
        out.resize(n, 0);
        let chunks = n / 8;
        let vb = _mm256_set1_epi32(bound as i32);
        let mut acc = MetaAcc::new(half);
        let dst = out.as_mut_ptr();
        for i in 0..chunks {
            let a = _mm256_loadu_si256(x.as_ptr().add(i * 8) as *const __m256i);
            let v = _mm256_sub_epi32(vb, a);
            acc.accum8(v);
            _mm256_storeu_si256(dst.add(i * 8) as *mut __m256i, v);
        }
        let mut meta = acc.finish();
        for k in chunks * 8..n {
            let v = bound - x.get_unchecked(k);
            meta.accum(v, half);
            *out.get_unchecked_mut(k) = v;
        }
        meta
    }

    /// Metadata scan of an existing vector — the vectorized
    /// [`crate::combine::meta_scan`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn meta_scan(v: &[u32], half: u32) -> VecMeta {
        let n = v.len();
        let chunks = n / 8;
        let mut acc = MetaAcc::new(half);
        for i in 0..chunks {
            acc.accum8(_mm256_loadu_si256(v.as_ptr().add(i * 8) as *const __m256i));
        }
        let mut meta = acc.finish();
        for k in chunks * 8..n {
            meta.accum(*v.get_unchecked(k), half);
        }
        meta
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use crate::combine::VecMeta;
    use crate::scalar;

    fn vecs(seed: u64, n: usize, max: u32) -> Vec<u32> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (s >> 33) as u32 % (max + 1)
            })
            .collect()
    }

    #[test]
    fn avx2_kernels_match_scalar_reference() {
        if !super::enabled() {
            return;
        }
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 31, 64, 257] {
            let x = vecs(n as u64 + 1, n, 1000);
            let y = vecs(n as u64 + 7, n, 1000);
            unsafe {
                // The portable bodies are the dispatch peers; the `f64`
                // scalar reference differs from both only in the sign of
                // the empty sum (`f64::sum()` starts from `-0.0`).
                assert_eq!(
                    super::dot_u32(&x, &y).to_bits(),
                    crate::dot::dot_u32_portable(&x, &y).to_bits(),
                    "dot n={n}"
                );
                assert_eq!(
                    super::sum_u32(&x),
                    crate::dot::sum_u32_portable(&x),
                    "sum n={n}"
                );
                if n > 0 {
                    assert_eq!(
                        super::dot_u32(&x, &y).to_bits(),
                        scalar::dot_u32(&x, &y).to_bits(),
                        "dot vs scalar n={n}"
                    );
                }
                for half in [0u32, 1, 499] {
                    let mut out = Vec::new();
                    let meta = super::zip_add_into(&x, &y, half, &mut out);
                    assert_eq!(out, scalar::zip_add(&x, &y), "add n={n}");
                    assert_eq!(meta, scalar::meta_scan(&out, half), "add meta n={n}");
                    let meta = super::zip_min_into(&x, &y, half, &mut out);
                    assert_eq!(out, scalar::zip_min(&x, &y));
                    assert_eq!(meta, scalar::meta_scan(&out, half));
                    let meta = super::zip_max_into(&x, &y, half, &mut out);
                    assert_eq!(out, scalar::zip_max(&x, &y));
                    assert_eq!(meta, scalar::meta_scan(&out, half));
                    super::sub_sat_into(&x, &y, &mut out);
                    assert_eq!(out, scalar::sub_sat(&x, &y));
                    let meta = super::complement_into(&x, 1000, half, &mut out);
                    assert_eq!(out, scalar::complement(&x, 1000));
                    assert_eq!(meta, scalar::meta_scan(&out, half));
                    assert_eq!(
                        super::meta_scan(&x, half),
                        scalar::meta_scan(&x, half),
                        "scan n={n} half={half}"
                    );
                }
            }
        }
    }

    #[test]
    fn avx2_word_kernels_match_scalar_reference() {
        if !super::enabled() {
            return;
        }
        let words = |seed: u64, n: usize| -> Vec<u64> {
            let mut s = seed;
            (0..n)
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    s
                })
                .collect()
        };
        for n in [0usize, 1, 3, 4, 5, 8, 63, 130] {
            let a = words(n as u64 + 1, n);
            let b = words(n as u64 + 2, n);
            unsafe {
                assert_eq!(super::popcount(&a), scalar::popcount(&a), "pop n={n}");
                let mut m = a.clone();
                super::and_into(&mut m, &b);
                assert_eq!(super::and_popcount(&a, &b), scalar::popcount(&m));
                let mut d1 = a.clone();
                let mut d2 = a.clone();
                super::or_into(&mut d1, &b);
                scalar::or_into(&mut d2, &b);
                assert_eq!(d1, d2, "or n={n}");
                let (c, e, f) = (words(3, n), words(4, n), words(5, n));
                let mut d1 = a.clone();
                let mut d2 = a.clone();
                super::or4_into(&mut d1, &b, &c, &e, &f);
                for src in [&b, &c, &e, &f] {
                    scalar::or_into(&mut d2, src);
                }
                assert_eq!(d1, d2, "or4 n={n}");
            }
        }
    }

    #[test]
    fn meta_acc_handles_extreme_values() {
        if !super::enabled() {
            return;
        }
        // u32::MAX exercises the sign-flip unsigned compare and the widening
        // sums; an all-zero vector exercises the empty predicates.
        let x = vec![u32::MAX, 0, 1, u32::MAX - 1, 2, 0, 1, u32::MAX, 7];
        let y = vec![0u32; 9];
        unsafe {
            let got = super::meta_scan(&x, u32::MAX - 1);
            let want = scalar::meta_scan(&x, u32::MAX - 1);
            assert_eq!(got, want);
            let mut out = Vec::new();
            let meta = super::zip_max_into(&x, &y, 0, &mut out);
            assert_eq!(meta, scalar::meta_scan(&x, 0));
            assert_eq!(super::meta_scan(&y, 0), VecMeta::default());
        }
    }
}
