//! The shared row-chunking helper for scoped-thread parallel scans.
//!
//! Parallel sketch construction (Appendix B), the distributed merge, and the
//! multi-threaded boolean matrix multiply all split `0..nrows` into
//! contiguous per-thread ranges. This is the one implementation they share.

/// Splits `0..nrows` into at most `parts` contiguous `(lo, hi)` ranges.
///
/// All ranges are non-empty, cover `0..nrows` exactly, and — except possibly
/// the last — have the same length `ceil(nrows / parts)`, so the ranges also
/// line up with `chunks`/`chunks_mut` of that size over row-major storage.
/// Returns an empty vector when `nrows == 0`.
pub fn row_chunks(nrows: usize, parts: usize) -> Vec<(usize, usize)> {
    if nrows == 0 {
        return Vec::new();
    }
    let per = nrows.div_ceil(parts.max(1));
    (0..nrows)
        .step_by(per)
        .map(|lo| (lo, (lo + per).min(nrows)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly_and_are_never_empty() {
        for nrows in 0..65usize {
            for parts in [1, 2, 3, 4, 7, 8, 64, 100] {
                let chunks = row_chunks(nrows, parts);
                assert!(chunks.len() <= parts.max(1));
                let mut next = 0;
                for &(lo, hi) in &chunks {
                    assert_eq!(lo, next, "gap before {lo} (n={nrows}, p={parts})");
                    assert!(hi > lo, "empty chunk (n={nrows}, p={parts})");
                    next = hi;
                }
                assert_eq!(next, nrows, "coverage (n={nrows}, p={parts})");
            }
        }
    }

    #[test]
    fn equal_sizes_except_last() {
        let chunks = row_chunks(10, 4);
        assert_eq!(chunks, vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
        assert!(row_chunks(0, 4).is_empty());
        assert_eq!(row_chunks(5, 1), vec![(0, 5)]);
        // parts = 0 degrades to a single chunk rather than panicking.
        assert_eq!(row_chunks(5, 0), vec![(0, 5)]);
    }
}
