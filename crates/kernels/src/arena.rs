//! A pool of reusable count-vector buffers.
//!
//! Sketch propagation allocates the same handful of `O(m + n)` vectors per
//! operation — output count vectors plus the extended-count temporaries of
//! Algorithm 1. A [`ScratchArena`] leases zero-filled buffers and takes them
//! back, so a DAG propagation chain reaches a steady state where no call
//! touches the allocator: the arena's capacity high-water mark is the
//! largest vector ever leased, and span-stamped alloc deltas (the
//! `alloc-track` feature of `mnc-obs`) verify the chain runs allocation-free.
//!
//! ## Lifetime rules
//!
//! * `take_*` returns a buffer of exactly the requested length, zero-filled;
//!   `take_*_spare` returns a cleared length-zero buffer for callers that
//!   fill it themselves (the `*_into` combinators).
//! * `put_*` returns a buffer to the pool; length/contents are irrelevant
//!   (the next lease clears it). Buffers moved into long-lived results (e.g.
//!   cached sketches) are simply *not* returned — the pool refills on its
//!   own from later `put_*` calls.
//! * The pool is bounded ([`ScratchArena::MAX_POOLED`] per element type);
//!   excess buffers are dropped, so an arena never pins more than a bounded
//!   multiple of the largest working set.

/// Reusable buffer pool for `u32` count vectors and `u64` word/product rows.
#[derive(Debug, Default)]
pub struct ScratchArena {
    u32_bufs: Vec<Vec<u32>>,
    u64_bufs: Vec<Vec<u64>>,
    leases: u64,
    reuses: u64,
}

impl ScratchArena {
    /// Maximum buffers retained per element type.
    pub const MAX_POOLED: usize = 64;

    /// An empty arena. Does not allocate until the first lease.
    pub fn new() -> Self {
        Self::default()
    }

    /// Leases a zero-filled `u32` buffer of length `len`.
    pub fn take_u32(&mut self, len: usize) -> Vec<u32> {
        self.leases += 1;
        match self.u32_bufs.pop() {
            Some(mut v) => {
                self.reuses += 1;
                v.clear();
                v.resize(len, 0);
                v
            }
            None => vec![0; len],
        }
    }

    /// Leases a cleared, length-zero buffer (capacity retained from prior
    /// uses) — for outputs handed straight to the `*_into` combinators,
    /// which clear and fill the buffer themselves. Skips the zero-fill pass
    /// [`ScratchArena::take_u32`] pays.
    pub fn take_u32_spare(&mut self) -> Vec<u32> {
        self.leases += 1;
        match self.u32_bufs.pop() {
            Some(mut v) => {
                self.reuses += 1;
                v.clear();
                v
            }
            None => Vec::new(),
        }
    }

    /// Returns a `u32` buffer to the pool.
    pub fn put_u32(&mut self, v: Vec<u32>) {
        if self.u32_bufs.len() < Self::MAX_POOLED {
            self.u32_bufs.push(v);
        }
    }

    /// Returns an optional `u32` buffer to the pool.
    pub fn put_u32_opt(&mut self, v: Option<Vec<u32>>) {
        if let Some(v) = v {
            self.put_u32(v);
        }
    }

    /// Leases a zero-filled `u64` buffer of length `len`.
    pub fn take_u64(&mut self, len: usize) -> Vec<u64> {
        self.leases += 1;
        match self.u64_bufs.pop() {
            Some(mut v) => {
                self.reuses += 1;
                v.clear();
                v.resize(len, 0);
                v
            }
            None => vec![0; len],
        }
    }

    /// Returns a `u64` buffer to the pool.
    pub fn put_u64(&mut self, v: Vec<u64>) {
        if self.u64_bufs.len() < Self::MAX_POOLED {
            self.u64_bufs.push(v);
        }
    }

    /// Leases a `u32` buffer initialized as a copy of `src`.
    pub fn take_u32_copy(&mut self, src: &[u32]) -> Vec<u32> {
        let mut v = self.take_u32(src.len());
        v.copy_from_slice(src);
        v
    }

    /// Total buffer leases served.
    pub fn leases(&self) -> u64 {
        self.leases
    }

    /// Fraction of leases served from the pool (steady-state → 1.0).
    pub fn reuse_rate(&self) -> f64 {
        if self.leases == 0 {
            0.0
        } else {
            self.reuses as f64 / self.leases as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leased_buffers_are_zero_filled_and_reused() {
        let mut a = ScratchArena::new();
        let mut v = a.take_u32(8);
        v[3] = 7;
        let p = v.as_ptr();
        a.put_u32(v);
        let v2 = a.take_u32(5);
        assert_eq!(v2, vec![0; 5], "recycled buffer must be cleared");
        assert_eq!(v2.as_ptr(), p, "buffer must come from the pool");
        assert_eq!(a.leases(), 2);
        assert!((a.reuse_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pool_is_bounded() {
        let mut a = ScratchArena::new();
        for _ in 0..ScratchArena::MAX_POOLED + 10 {
            a.put_u32(Vec::new());
        }
        assert_eq!(a.u32_bufs.len(), ScratchArena::MAX_POOLED);
    }

    #[test]
    fn u64_pool_and_copy_lease() {
        let mut a = ScratchArena::new();
        let w = a.take_u64(4);
        assert_eq!(w, vec![0u64; 4]);
        a.put_u64(w);
        assert_eq!(a.take_u64(2), vec![0u64; 2]);
        let c = a.take_u32_copy(&[1, 2, 3]);
        assert_eq!(c, vec![1, 2, 3]);
        a.put_u32_opt(Some(c));
        a.put_u32_opt(None);
        assert_eq!(a.u32_bufs.len(), 1);
    }
}
