//! # mnc-kernels — vectorized hot-path primitives for MNC sketches
//!
//! The sketch operations of the paper (Sections 3.2–3.3) are `O(m + n)`
//! passes over `u32` count vectors and `u64` bit rows. This crate collects
//! those inner loops as free-standing kernels so every caller — matmul
//! estimation, sketch propagation, the chain-optimizer DP, and the bitset
//! boolean product — shares one implementation that the compiler can
//! autovectorize, plus a [`ScratchArena`] of reusable buffers so propagation
//! chains run allocation-free in steady state.
//!
//! ## Bit-identity contract
//!
//! Every kernel is **bit-identical** to its scalar reference in [`scalar`]
//! (property-tested in `tests/bit_identity.rs`, in debug and release). The
//! trick is integer accumulation: `u32` products and sums are computed in
//! `u64`, where addition is associative, so chunked/unrolled evaluation
//! orders cannot drift. The final integer is converted to `f64` once —
//! exactly the value a sequential `f64` accumulation produces while partial
//! sums stay below `2^53` (guaranteed for count vectors: entries are bounded
//! by matrix dimensions, sums by FLOP counts of realistic workloads).
//! Floating-point-transcendental loops ([`vector_edm`]) keep their original
//! sequential evaluation order and only replace the per-element product with
//! the (identically rounded) integer form.
//!
//! Dispatch is runtime feature detection behind a plain function call: on
//! x86_64 with AVX2 the entry points take the wide-lane forms in [`simd`]
//! (integer-exact, so still bit-identical — see the module docs there); on
//! every other target, or pre-AVX2 hardware, the portable `*_portable`
//! bodies run. No feature flags are required for correctness, and no caller
//! changes when a new specialization is layered in.
//!
//! The crate also hosts the [`WorkerPool`] scoped-thread pool used by
//! multi-threaded sketch/bitset builds and DAG-wavefront propagation:
//! workers produce per-chunk partials that are merged in a fixed order, so
//! parallel answers stay bit-identical to sequential ones.

pub mod arena;
pub mod chunk;
pub mod combine;
pub mod dot;
pub mod pool;
pub mod scalar;
pub mod simd;
pub mod words;

pub use arena::ScratchArena;
pub use chunk::row_chunks;
pub use combine::{
    complement_into, concat_meta_into, meta_scan, scale_round_into, sub_sat_into, zip_add_into,
    zip_max_into, zip_min_into, VecMeta,
};
pub use dot::{dot_u32, dot_u32_portable, sum_u32, sum_u32_portable, vector_edm};
pub use pool::WorkerPool;
pub use words::{
    and_into, and_into_portable, and_popcount, and_popcount_portable, or4_into, or4_into_portable,
    or_into, or_into_portable, popcount, popcount_portable,
};
