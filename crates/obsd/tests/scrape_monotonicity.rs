//! Prometheus exposition contract, checked over live scrapes: `_total`
//! counters (and histogram `_count`/`_sum`/`_bucket` samples) never go
//! backwards across consecutive scrapes of the same process, counter
//! series never disappear once exposed, and within every scrape each
//! histogram's buckets are cumulative in `le` order with the mandatory
//! `+Inf` bucket equal to `_count`. A scraper (or recording rule) that
//! computes `rate()` over these series must never see a reset that isn't
//! a real process restart.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use mnc_obs::Recorder;
use mnc_obsd::{ObsDaemon, ObsdConfig, TimelineConfig};

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Parses an exposition body into `full series key -> value`, keeping the
/// label block as part of the key (`name{a="b"}`).
fn parse_exposition(body: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in body.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (key, value) = line.rsplit_once(' ').expect("sample line");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value: {line}"));
        assert!(
            out.insert(key.to_string(), value).is_none(),
            "duplicate series in one scrape: {key}"
        );
    }
    out
}

/// Base metric name of a series key (strips the label block).
fn base(key: &str) -> &str {
    key.split('{').next().unwrap()
}

/// Whether this series must be monotone non-decreasing across scrapes.
fn is_cumulative(key: &str) -> bool {
    let b = base(key);
    b.ends_with("_total") || b.ends_with("_count") || b.ends_with("_sum") || b.ends_with("_bucket")
}

/// The `le` bound of a `_bucket` series, as an ordering key.
fn le_bound(key: &str) -> f64 {
    let labels = &key[key.find('{').unwrap()..];
    let le = labels
        .split("le=\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or_else(|| panic!("bucket without le: {key}"));
    if le == "+Inf" {
        f64::INFINITY
    } else {
        le.parse().unwrap_or_else(|_| panic!("bad le in {key}"))
    }
}

/// `_bucket` series key with the `le` label removed — the histogram child
/// identity.
fn bucket_family(key: &str) -> String {
    let brace = key.find('{').unwrap();
    let labels: Vec<&str> = key[brace + 1..key.len() - 1]
        .split(',')
        .filter(|kv| !kv.starts_with("le=\""))
        .collect();
    format!("{}{{{}}}", &key[..brace], labels.join(","))
}

/// Within one scrape: every histogram family's buckets are cumulative in
/// `le` order and close with `+Inf` == `_count`.
fn assert_buckets_cumulative(scrape: &BTreeMap<String, f64>) {
    let mut families: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for (key, &value) in scrape {
        if base(key).ends_with("_bucket") {
            families
                .entry(bucket_family(key))
                .or_default()
                .push((le_bound(key), value));
        }
    }
    assert!(!families.is_empty(), "no histograms exposed");
    for (family, mut buckets) in families {
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in buckets.windows(2) {
            assert!(
                pair[0].1 <= pair[1].1,
                "{family}: bucket le={} count {} > le={} count {}",
                pair[0].0,
                pair[0].1,
                pair[1].0,
                pair[1].1
            );
        }
        let (last_le, inf_count) = *buckets.last().unwrap();
        assert!(last_le.is_infinite(), "{family}: no +Inf bucket");
        // `_bucket{le="+Inf"}` must equal `_count` for the same family.
        let count_key = family.replacen("_bucket", "_count", 1);
        let count = scrape
            .get(&count_key)
            .or_else(|| scrape.get(base(&count_key)))
            .unwrap_or_else(|| panic!("missing {count_key}"));
        assert_eq!(inf_count, *count, "{family}: +Inf != _count");
    }
}

#[test]
fn cumulative_series_never_regress_across_scrapes() {
    let daemon = ObsDaemon::new(ObsdConfig {
        timeline: TimelineConfig {
            capacity: 32,
            ..TimelineConfig::default()
        },
        ..ObsdConfig::default()
    });
    let rec = Recorder::enabled();
    assert!(daemon.install(&rec));
    let server = daemon.serve("127.0.0.1:0").expect("bind");

    let mut previous: Option<BTreeMap<String, f64>> = None;
    for round in 0u64..5 {
        // Traffic between scrapes: counters climb, histograms record,
        // spans flow through the flight ring.
        rec.counter("cache.hit").add(3 + round);
        rec.counter("cache.miss").add(1);
        for i in 0..=round {
            rec.histogram("estimate_ns").record(1_000 << i);
            let _g = rec.span("estimate");
        }

        let (status, body) = get(server.local_addr(), "/metrics");
        assert_eq!(status, 200);
        let scrape = parse_exposition(&body);
        assert_buckets_cumulative(&scrape);

        if let Some(prev) = &previous {
            for (key, &was) in prev {
                if !is_cumulative(key) {
                    continue;
                }
                let now = scrape.get(key).unwrap_or_else(|| {
                    panic!("cumulative series {key} disappeared between scrapes")
                });
                assert!(
                    *now >= was,
                    "{key} went backwards: {was} -> {now} (scrape {round})"
                );
            }
        }
        previous = Some(scrape);
    }

    // The traffic actually moved the counters (the loop wasn't vacuous).
    let last = previous.unwrap();
    assert!(last["mnc_cache_hit_total"] >= 3.0 + 4.0 + 5.0 + 6.0 + 7.0);
    assert!(last["mnc_obsd_flight_spans_pushed_total"] >= 15.0);
}
