//! End-to-end tests of the embedded HTTP endpoint: golden `/metrics` body,
//! concurrent scrapes during live estimation traffic, malformed requests,
//! and the drift-driven `/healthz` flip.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use mnc_obs::{span, AccuracyRecord, Recorder};
use mnc_obsd::{DriftConfig, ObsDaemon, ObsdConfig, TimelineConfig};

fn small_config() -> ObsdConfig {
    ObsdConfig {
        flight_capacity: 64,
        drift: DriftConfig {
            min_samples: 4,
            window: 8,
            ..DriftConfig::default()
        },
        // Off so the golden `/metrics` body stays deterministic; the
        // timeline endpoints get their own config below.
        timeline: TimelineConfig {
            enabled: false,
            ..TimelineConfig::default()
        },
    }
}

fn timeline_config() -> ObsdConfig {
    ObsdConfig {
        timeline: TimelineConfig {
            capacity: 16,
            ..TimelineConfig::default()
        },
        ..small_config()
    }
}

/// Sends raw bytes and returns `(status code, body)`.
fn raw_request(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    raw_request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

#[test]
fn metrics_body_is_golden() {
    let daemon = ObsDaemon::new(small_config());
    let rec = Recorder::enabled();
    daemon.install(&rec);
    rec.counter("cache.hit").add(7);
    let server = daemon.serve("127.0.0.1:0").expect("bind");
    let (status, body) = get(server.local_addr(), "/metrics");
    assert_eq!(status, 200);
    // The exact exposition body for this state: one session counter merged
    // with the daemon's deterministic service metrics, sorted by name.
    let expected = "\
# TYPE mnc_cache_hit_total counter
mnc_cache_hit_total 7
# TYPE mnc_obsd_drift_alerts_total counter
mnc_obsd_drift_alerts_total 0
# TYPE mnc_obsd_flight_accuracy_pushed_total counter
mnc_obsd_flight_accuracy_pushed_total 0
# TYPE mnc_obsd_flight_dropped_total counter
mnc_obsd_flight_dropped_total 0
# TYPE mnc_obsd_flight_spans_pushed_total counter
mnc_obsd_flight_spans_pushed_total 0
# TYPE mnc_obsd_degraded gauge
mnc_obsd_degraded 0
# TYPE mnc_obsd_flight_accuracy_retained gauge
mnc_obsd_flight_accuracy_retained 0
# TYPE mnc_obsd_flight_spans_retained gauge
mnc_obsd_flight_spans_retained 0
# TYPE mnc_obsd_sources gauge
mnc_obsd_sources 1
";
    assert_eq!(body, expected);
}

#[test]
fn concurrent_scrapes_during_estimates_stay_consistent() {
    let daemon = ObsDaemon::new(small_config());
    let rec = Recorder::enabled();
    daemon.install(&rec);
    let server = daemon.serve("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let hits = rec.counter("cache.hit");

    std::thread::scope(|scope| {
        // A writer hammering the telemetry channels, as estimates would.
        let writer_rec = rec.clone();
        scope.spawn(move || {
            for i in 0..500u64 {
                let _g = span!(writer_rec, "estimate", nnz_in = i);
                hits.incr();
            }
        });
        // Two clients scraping /metrics while the writer runs.
        for _ in 0..2 {
            scope.spawn(move || {
                for _ in 0..20 {
                    let (status, body) = get(addr, "/metrics");
                    assert_eq!(status, 200);
                    // Every sample line parses as `name value` with a
                    // non-negative counter value.
                    let hit_line = body
                        .lines()
                        .find(|l| l.starts_with("mnc_cache_hit_total "))
                        .expect("counter always present once registered");
                    let v: u64 = hit_line.split(' ').nth(1).unwrap().parse().unwrap();
                    assert!(v <= 500);
                    assert!(body.contains("mnc_obsd_sources 1"));
                }
            });
        }
    });

    // After the writer finishes, the scrape converges on the final values.
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("mnc_cache_hit_total 500"), "{body}");
    assert!(
        body.contains("mnc_obsd_flight_spans_pushed_total 500"),
        "{body}"
    );
}

#[test]
fn malformed_requests_get_400_and_unknown_paths_404() {
    let daemon = ObsDaemon::new(small_config());
    let server = daemon.serve("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    // Not HTTP at all.
    let (status, _) = raw_request(addr, b"garbage\r\n\r\n");
    assert_eq!(status, 400);
    // Missing the leading slash.
    let (status, _) = raw_request(addr, b"GET metrics HTTP/1.1\r\n\r\n");
    assert_eq!(status, 400);
    // Wrong protocol token.
    let (status, _) = raw_request(addr, b"GET /metrics SPDY/3\r\n\r\n");
    assert_eq!(status, 400);
    // Well-formed but non-GET.
    let (status, _) = raw_request(addr, b"POST /metrics HTTP/1.1\r\n\r\n");
    assert_eq!(status, 405);
    // Well-formed GET for nothing we serve.
    let (status, body) = get(addr, "/nope");
    assert_eq!(status, 404);
    assert_eq!(body, "not found\n");
    // The server still answers real routes after the abuse.
    let (status, _) = get(addr, "/metrics");
    assert_eq!(status, 200);
}

#[test]
fn healthz_flips_to_degraded_on_injected_drift() {
    let daemon = ObsDaemon::new(small_config());
    let rec = Recorder::enabled();
    daemon.install(&rec);
    let server = daemon.serve("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "OK\n");

    // Inject a drifting accuracy stream: a sampling-style estimator that
    // is consistently ~10x off trips the geo-EWMA ceiling.
    for i in 0..20 {
        rec.record_accuracy(AccuracyRecord::new(
            format!("c{i}"),
            "matmul",
            "Sample",
            0.9,
            0.09,
        ));
    }

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 503);
    assert!(body.starts_with("DEGRADED\n"), "{body}");
    assert!(body.contains("Sample/matmul"), "{body}");
    // The alert counter shows up on /metrics too.
    let (_, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("mnc_obsd_drift_alerts_total 1"),
        "{metrics}"
    );
    assert!(metrics.contains("mnc_obsd_degraded 1"), "{metrics}");

    // Recovery: a long accurate stream restores OK (hysteresis).
    for i in 0..200 {
        rec.record_accuracy(AccuracyRecord::new(
            format!("r{i}"),
            "matmul",
            "Sample",
            0.1,
            0.1,
        ));
    }
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
}

#[test]
fn flight_and_attribution_serve_ring_contents() {
    let daemon = ObsDaemon::new(small_config());
    let rec = Recorder::enabled();
    daemon.install(&rec);
    {
        let _outer = span!(rec, "estimate", op = "matmul");
        let _inner = span!(rec, "build", op = "MNC");
    }
    rec.record_accuracy(AccuracyRecord::new("B1.1", "matmul", "MNC", 0.1, 0.2));
    let server = daemon.serve("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let (status, body) = get(addr, "/flight");
    assert_eq!(status, 200);
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 3, "{body}");
    assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    assert!(body.contains("\"type\":\"span\""));
    assert!(body.contains("\"type\":\"accuracy\""));

    let (status, body) = get(addr, "/attribution");
    assert_eq!(status, 200);
    assert!(body.contains("estimate"), "{body}");
}

#[test]
fn timeline_endpoint_serves_series_and_slo_block() {
    let daemon = ObsDaemon::new(timeline_config());
    let rec = Recorder::enabled();
    daemon.install(&rec);
    rec.counter("cache.hit").add(7);
    let server = daemon.serve("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // A scrape refreshes the daemon, which tails the snapshot into the
    // timeline (first frame lands on the first refresh).
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("mnc_slo_burn_alerts_total 0"), "{metrics}");
    assert!(metrics.contains("mnc_timeline_series "), "{metrics}");
    assert!(
        metrics.contains("mnc_slo_firing{objective=\"availability\"} 0"),
        "{metrics}"
    );

    let (status, body) = get(addr, "/v1/debug/timeline");
    assert_eq!(status, 200);
    assert!(body.contains("\"schema\":\"mnc.timeline.v1\""), "{body}");
    assert!(body.contains("\"metric\":\"cache.hit\""), "{body}");
    assert!(body.contains("\"alerts_total\":0"), "{body}");

    // Selection narrows the series list.
    let (status, body) = get(addr, "/v1/debug/timeline?metric=cache.&resolution=1s");
    assert_eq!(status, 200);
    assert!(body.contains("cache.hit"), "{body}");
    assert!(!body.contains("obsd.flight"), "{body}");

    // Malformed selections are rejected, not ignored.
    let (status, _) = get(addr, "/v1/debug/timeline?resolution=5m");
    assert_eq!(status, 400);
    let (status, _) = get(addr, "/v1/debug/timeline?since=yesterday");
    assert_eq!(status, 400);
}

#[test]
fn timeline_disabled_serves_empty_series() {
    let daemon = ObsDaemon::new(small_config());
    let server = daemon.serve("127.0.0.1:0").expect("bind");
    let (status, body) = get(server.local_addr(), "/v1/debug/timeline");
    assert_eq!(status, 200);
    assert!(body.contains("\"series\":[]"), "{body}");
}

#[test]
fn shutdown_stops_the_server() {
    let daemon = ObsDaemon::new(small_config());
    let mut server = daemon.serve("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    server.shutdown();
    // The listener is gone: connecting either fails outright or the
    // connection closes without a response.
    match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(mut s) => {
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            assert!(out.is_empty(), "served after shutdown: {out:?}");
        }
    }
}
