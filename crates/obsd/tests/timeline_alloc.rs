//! Proof of the timeline's fixed-memory guarantee: once every ring is at
//! capacity, tailing one more snapshot frame — counter deltas, gauge
//! levels, histogram bucket deltas, the downsample cascade, and the SLO
//! engine pass — allocates **nothing**. Frames move into pre-allocated
//! slots; evicted frames fold into fixed pending accumulators.
//!
//! Requires the `alloc-track` feature (the counting global allocator).
//! Lives alone in its own integration binary: the allocation counters are
//! process-global, so a concurrently running test would attribute its
//! allocations to our measurement scope.

#![cfg(feature = "alloc-track")]

use mnc_obs::alloc::AllocScope;
use mnc_obs::metrics::{LatencyHisto, MetricSnapshot};
use mnc_obsd::{SloConfig, Timeline, TimelineConfig};

/// Small capacity so the measured loop cycles every ring (1s, 10s, 60s)
/// through eviction many times over.
const CAPACITY: usize = 8;

fn snapshot(requests: u64) -> MetricSnapshot {
    let mut snap = MetricSnapshot::default();
    snap.counters.insert(
        "served.requests{endpoint=/v1/estimate,method=POST,status=200}".to_string(),
        requests,
    );
    snap.counters.insert(
        "served.requests{endpoint=/v1/estimate,method=POST,status=500}".to_string(),
        requests / 10,
    );
    snap.counters.insert("cache.hit".to_string(), requests * 3);
    snap.gauges
        .insert("served.active".to_string(), (requests % 7) as i64);
    let mut histo = LatencyHisto::new();
    for i in 0..requests % 16 {
        histo.record(1_000 << i);
    }
    snap.histograms.insert(
        "served.service_ns{endpoint=/v1/estimate}".to_string(),
        histo,
    );
    snap
}

#[test]
fn frame_sampling_at_ring_capacity_allocates_nothing() {
    let timeline = Timeline::new(TimelineConfig {
        enabled: true,
        capacity: CAPACITY,
        slo: SloConfig {
            availability_target: 0.999,
            latency_p99_ms: 5,
            ..SloConfig::default()
        },
        ..TimelineConfig::default()
    });

    // Warm-up: register every series and push far enough that all three
    // resolutions (1s, 10s at x10, 60s at x60) are at capacity and
    // evicting. 60 * CAPACITY seconds fills the 60s ring; double it so
    // steady-state eviction is long established before we measure.
    let mut now_s = 1_000_000u64;
    for step in 0..(120 * CAPACITY as u64) {
        now_s += 1;
        timeline.sample_at(now_s, &snapshot(step * 11), false);
    }
    let stats = timeline.stats();
    assert_eq!(
        stats.frames, [CAPACITY; 3],
        "all rings at capacity: {stats:?}"
    );

    // Pre-build the snapshots the measured loop will tail, so snapshot
    // construction (BTreeMaps, strings) never lands inside the scope.
    let snaps: Vec<MetricSnapshot> = (0..1000u64).map(|i| snapshot(13_200 + i * 7)).collect();

    // Measure: 1000 more full sampling passes — per-series delta
    // computation, ring pushes with eviction, both cascade stages, SLO
    // window advance. Traffic is healthy throughout, so no alert edge
    // (the one path that allocates, for the human-readable reasons) fires.
    let scope = AllocScope::start();
    for snap in &snaps {
        now_s += 1;
        timeline.sample_at(now_s, snap, false);
    }
    let delta = scope.measure();
    assert_eq!(
        delta.gross_bytes, 0,
        "timeline sampling at capacity must not allocate (delta: {delta:?})"
    );
    assert_eq!(delta.allocs, 0, "no allocation events either: {delta:?}");

    // The rings kept rotating: every pass landed a frame and retained
    // counts stayed fixed.
    let stats = timeline.stats();
    assert_eq!(stats.samples, (120 * CAPACITY + 1000) as u64);
    assert_eq!(stats.contended_samples, 0);
    assert_eq!(stats.frames, [CAPACITY; 3]);
}
