//! The downsample-exactness property: a coarse frame is not an
//! approximation of the seconds it covers — it is their **exact merge**.
//! For arbitrary traffic shapes (random increments, random clock gaps,
//! any run length), every 10s counter frame must equal the sum of its ten
//! constituent evicted 1s deltas, every 60s frame the sum of six 10s
//! frames; gauges carry the last level of their window, histograms the
//! bucket-wise sum. The test rebuilds the expected rings with an
//! independent chunking reference and compares against what
//! `/v1/debug/timeline` actually serves, frame by frame.

use mnc_obs::json::{parse, JsonValue};
use mnc_obs::metrics::{LatencyHisto, MetricSnapshot};
use mnc_obsd::{Timeline, TimelineConfig, TimelineQuery};
use proptest::prelude::*;

const CAPACITY: usize = 8;
const FACTORS: [usize; 2] = [10, 6];

/// One simulated second of ground truth, as frames the 1s ring saw.
#[derive(Clone, Copy, Default)]
struct Truth {
    t_s: u64,
    counter_delta: u64,
    gauge: i64,
    histo_count: u64,
}

/// Reference downsampler: chunk evicted fine frames into groups of
/// `factor`, merging counters by sum, gauges by last, counts by sum,
/// timestamps by max. Returns (coarse frames, frames left in fine ring).
fn chunk(fine: &[Truth], factor: usize) -> (Vec<Truth>, Vec<Truth>) {
    let evicted = fine.len().saturating_sub(CAPACITY);
    let coarse: Vec<Truth> = fine[..evicted]
        .chunks(factor)
        .filter(|c| c.len() == factor)
        .map(|c| Truth {
            t_s: c.iter().map(|f| f.t_s).max().unwrap(),
            counter_delta: c.iter().map(|f| f.counter_delta).sum(),
            gauge: c.last().unwrap().gauge,
            histo_count: c.iter().map(|f| f.histo_count).sum(),
        })
        .collect();
    let visible = fine[evicted..].to_vec();
    (coarse, visible)
}

/// The last `CAPACITY` frames of a reference ring (what the real ring
/// retains after its own evictions).
fn retained(frames: Vec<Truth>) -> Vec<Truth> {
    let skip = frames.len().saturating_sub(CAPACITY);
    frames[skip..].to_vec()
}

fn frames_of<'a>(doc: &'a JsonValue, metric: &str, resolution: &str) -> Vec<&'a JsonValue> {
    let JsonValue::Array(series) = doc.get("series").expect("series") else {
        panic!("series not an array");
    };
    series
        .iter()
        .find(|s| {
            s.get("metric").and_then(|m| m.as_str()) == Some(metric)
                && s.get("resolution").and_then(|r| r.as_str()) == Some(resolution)
        })
        .map(|s| match s.get("frames") {
            Some(JsonValue::Array(f)) => f.iter().collect(),
            _ => Vec::new(),
        })
        .unwrap_or_default()
}

fn num(v: &JsonValue, key: &str) -> i64 {
    v.get(key).and_then(|x| x.as_f64()).unwrap_or(f64::NAN) as i64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn coarse_frames_are_the_exact_merge_of_their_fine_constituents(
        seed in any::<u64>(),
        n_seconds in 1usize..700,
    ) {
        let timeline = Timeline::new(TimelineConfig {
            enabled: true,
            capacity: CAPACITY,
            ..TimelineConfig::default()
        });

        // Drive with xorshift traffic: random counter increments, random
        // gauge levels, random histogram records, random clock gaps
        // (skipped seconds must fold into the next frame's delta — the
        // same lossless fold a contended sample relies on).
        let mut rng = seed | 1;
        let mut step = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut truth: Vec<Truth> = Vec::new();
        let mut cum_counter = 0u64;
        let mut cum_histo = LatencyHisto::new();
        let mut now_s = 1_000u64;
        for _ in 0..n_seconds {
            now_s += 1 + step() % 3; // gaps of 0..=2 skipped seconds
            let inc = step() % 100;
            let gauge = (step() % 50) as i64;
            let records = step() % 5;
            cum_counter += inc;
            for _ in 0..records {
                cum_histo.record(1 + step() % 1_000_000);
            }
            let mut snap = MetricSnapshot::default();
            snap.counters.insert("traffic.requests".into(), cum_counter);
            snap.gauges.insert("traffic.depth".into(), gauge);
            snap.histograms.insert("traffic.latency_ns".into(), cum_histo.clone());
            timeline.sample_at(now_s, &snap, false);
            truth.push(Truth { t_s: now_s, counter_delta: inc, gauge, histo_count: records });
        }

        // Reference cascade: 1s evictions chunk by 10 into 10s frames,
        // 10s evictions chunk by 6 into 60s frames.
        let (coarse10_all, visible1) = chunk(&truth, FACTORS[0]);
        let (coarse60_all, visible10) = chunk(&coarse10_all, FACTORS[1]);
        let expected = [visible1, visible10, retained(coarse60_all)];

        let body = timeline
            .render_json(now_s, &TimelineQuery { metric: None, resolution: None, since_s: 0 })
            .expect("uncontended render");
        let doc = parse(&body).expect("timeline JSON parses");

        for (res, want) in ["1s", "10s", "60s"].iter().zip(&expected) {
            let counter = frames_of(&doc, "traffic.requests", res);
            prop_assert_eq!(counter.len(), want.len(), "counter frame count at {}", res);
            for (frame, w) in counter.iter().zip(want) {
                prop_assert_eq!(num(frame, "t_s") as u64, w.t_s, "counter t_s at {}", res);
                prop_assert_eq!(num(frame, "v") as u64, w.counter_delta, "counter v at {}", res);
            }
            let gauge = frames_of(&doc, "traffic.depth", res);
            prop_assert_eq!(gauge.len(), want.len(), "gauge frame count at {}", res);
            for (frame, w) in gauge.iter().zip(want) {
                prop_assert_eq!(num(frame, "v"), w.gauge, "gauge v at {}", res);
            }
            let histo = frames_of(&doc, "traffic.latency_ns", res);
            prop_assert_eq!(histo.len(), want.len(), "histo frame count at {}", res);
            for (frame, w) in histo.iter().zip(want) {
                prop_assert_eq!(num(frame, "t_s") as u64, w.t_s, "histo t_s at {}", res);
                prop_assert_eq!(num(frame, "count") as u64, w.histo_count, "histo count at {}", res);
            }
        }
    }
}
