//! Proof of the flight recorder's fixed-memory guarantee: once the rings
//! are at capacity, recording a payload-free span allocates **nothing** —
//! records move into pre-allocated slots and the overwritten record drops
//! in place.
//!
//! Requires the `alloc-track` feature (the counting global allocator).
//! This test lives alone in its own integration binary on purpose: the
//! allocation counters are process-global, so any concurrently running
//! test would attribute its allocations to our measurement scope.

#![cfg(feature = "alloc-track")]

use mnc_obs::alloc::AllocScope;
use mnc_obs::Recorder;
use mnc_obsd::{ObsDaemon, ObsdConfig};

#[test]
fn span_recording_at_ring_capacity_allocates_nothing() {
    const CAPACITY: usize = 64;
    let daemon = ObsDaemon::new(ObsdConfig {
        flight_capacity: CAPACITY,
        ..ObsdConfig::default()
    });
    // A bounded recorder: its own span storage is a ring too, so the whole
    // hot path — guard open, sink tap, flight push, recorder push — is
    // allocation-free at capacity.
    let rec = Recorder::enabled_with_capacity(CAPACITY);
    assert!(daemon.install(&rec));

    // Warm-up: fill both rings past capacity and touch every thread-local
    // and lazy initialization on this thread.
    for _ in 0..CAPACITY * 2 {
        let _g = rec.span("estimate");
    }
    assert_eq!(daemon.flight().span_len(), CAPACITY);

    // Measure: N more spans through the full pipeline. Spans without an
    // `op` label carry no heap payload, so zero gross allocation is the
    // exact expectation, not an approximation.
    let scope = AllocScope::start();
    for _ in 0..1000 {
        let _g = rec.span("estimate");
    }
    let delta = scope.measure();
    assert_eq!(
        delta.gross_bytes, 0,
        "flight recording at capacity must not allocate (delta: {delta:?})"
    );
    assert_eq!(delta.allocs, 0, "no allocation events either: {delta:?}");

    // The rings kept rotating: all 1000 spans were offered and retained
    // count stayed fixed.
    assert_eq!(daemon.flight().spans_pushed(), (CAPACITY * 2 + 1000) as u64);
    assert_eq!(daemon.flight().span_len(), CAPACITY);
}
