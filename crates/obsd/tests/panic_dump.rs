//! Exercises the postmortem path: the daemon's panic hook writes the
//! flight-ring JSONL dump before the default hook runs, so a crashing
//! service leaves its last N spans and accuracy records behind.
//!
//! Lives in its own integration binary: the panic hook is process-global.

use mnc_obs::{span, AccuracyRecord, Recorder};
use mnc_obsd::{ObsDaemon, ObsdConfig};

#[test]
fn panic_hook_writes_the_flight_dump() {
    let daemon = ObsDaemon::new(ObsdConfig {
        flight_capacity: 32,
        ..ObsdConfig::default()
    });
    let rec = Recorder::enabled();
    daemon.install(&rec);
    {
        let _g = span!(rec, "estimate", op = "matmul");
    }
    rec.record_accuracy(AccuracyRecord::new("B1.1", "matmul", "MNC", 0.1, 0.2));

    let path =
        std::env::temp_dir().join(format!("mnc-obsd-panic-dump-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    daemon.install_panic_hook(path.clone());

    // Panic on a scratch thread: the hook runs there, the test survives.
    let result = std::thread::Builder::new()
        .name("crasher".into())
        .spawn(|| panic!("synthetic crash for the postmortem test"))
        .unwrap()
        .join();
    assert!(result.is_err(), "the thread must actually panic");

    let dump = std::fs::read_to_string(&path).expect("panic hook wrote the dump");
    let _ = std::fs::remove_file(&path);
    assert_eq!(dump, daemon.flight_jsonl(), "dump is the canonical JSONL");
    assert!(dump.contains("\"type\":\"span\""), "{dump}");
    assert!(dump.contains("\"type\":\"accuracy\""), "{dump}");

    // Restore the default hook so later panics in this binary (if any)
    // print normally without re-dumping.
    let _ = std::panic::take_hook();
}
