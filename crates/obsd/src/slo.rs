//! Multi-window, multi-burn-rate SLO evaluation over the timeline's
//! per-second samples.
//!
//! The engine implements the Google-SRE alerting shape: for each declared
//! objective it maintains a per-second ring of `(bad, total)` event counts,
//! computes the **burn rate** — observed error fraction divided by the
//! objective's error budget — over a *fast* and a *slow* window, and fires
//! only when **both** windows exceed their thresholds (fast 14.4×, slow 6×
//! by default: the classic "2% of a 30-day budget in an hour" pairing,
//! rescaled to the service's much shorter windows). Requiring both windows
//! makes the alert precise (slow window) *and* quick to clear (fast
//! window); hysteresis on top — recovery only once both burns fall below
//! `recovery_factor ×` their thresholds — keeps `/healthz` from flapping
//! at the boundary.
//!
//! Three objectives are wired by the timeline plane:
//!
//! * **availability** — non-5xx/non-shed fraction of `served.requests`;
//! * **latency** — fraction of `served.service_ns{endpoint=/v1/estimate}`
//!   observations under the configured p99 ceiling (budget 1%);
//! * **drift** — fraction of seconds the accuracy-drift monitor was not
//!   degraded.
//!
//! Concurrency: [`SloEngine::observe`] is called only from the timeline's
//! single-writer sampling pass (its interior mutex is uncontended by
//! design), while every published statistic — firing flags, milli-scaled
//! burns, the alert counter — lives in atomics so `/metrics`, `/healthz`,
//! and `/v1/status` read without any lock. Everything is fixed-memory: the
//! per-second work is a handful of ring writes and two window sums, with
//! no allocation after construction (proven in `tests/timeline_alloc.rs`).

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// Objective slots the engine evaluates. Fixed so state can be plain
/// arrays; disabled objectives simply never accumulate burn.
pub const OBJECTIVES: [&str; 3] = ["availability", "latency", "drift"];
/// Number of objective slots.
pub const N_OBJECTIVES: usize = OBJECTIVES.len();
const N_OBJ: usize = N_OBJECTIVES;

/// Ceiling on window length (and thus per-objective ring memory).
const MAX_WINDOW_S: usize = 3600;

/// Declared objectives and window geometry for the SLO engine.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Availability target in `(0, 1)`; `0.0` disables the objective.
    /// A request is *bad* when its status is 5xx or 429 (shed).
    pub availability_target: f64,
    /// p99 service-latency ceiling for the tracked endpoint, in
    /// milliseconds; `0` disables the objective. The log₂ histogram
    /// quantizes the ceiling up to the next power-of-two bucket boundary.
    pub latency_p99_ms: u64,
    /// Histogram series the latency objective reads.
    pub latency_metric: String,
    /// Drift-health target: fraction of seconds the drift monitor must be
    /// healthy; `0.0` disables the objective.
    pub drift_target: f64,
    /// Fast alert window in seconds.
    pub fast_window_s: u64,
    /// Slow alert window in seconds (expected ≥ the fast window).
    pub slow_window_s: u64,
    /// Fast-window burn-rate threshold.
    pub fast_burn: f64,
    /// Slow-window burn-rate threshold.
    pub slow_burn: f64,
    /// Hysteresis: a firing objective recovers only when both window burns
    /// fall below `recovery_factor ×` their thresholds.
    pub recovery_factor: f64,
    /// Minimum events inside the fast window before an objective may trip
    /// (cold-start and trickle-traffic guard).
    pub min_events: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            availability_target: 0.999,
            latency_p99_ms: 0,
            latency_metric: "served.service_ns{endpoint=/v1/estimate}".into(),
            drift_target: 0.99,
            fast_window_s: 60,
            slow_window_s: 300,
            fast_burn: 14.4,
            slow_burn: 6.0,
            recovery_factor: 0.8,
            min_events: 10,
        }
    }
}

impl SloConfig {
    /// The objective's error budget (the denominator of every burn rate).
    pub fn budget(&self, obj: usize) -> f64 {
        match obj {
            0 => 1.0 - self.availability_target,
            1 => 0.01, // p99 objective: 1% of observations may exceed it
            _ => 1.0 - self.drift_target,
        }
    }

    /// Whether the objective is declared with a meaningful budget.
    pub fn enabled(&self, obj: usize) -> bool {
        let declared = match obj {
            0 => self.availability_target > 0.0,
            1 => self.latency_p99_ms > 0,
            _ => self.drift_target > 0.0,
        };
        let b = self.budget(obj);
        declared && b > 0.0 && b < 1.0
    }

    /// The objective's target as declared (for reports).
    pub fn target(&self, obj: usize) -> f64 {
        match obj {
            0 => self.availability_target,
            1 => 0.99,
            _ => self.drift_target,
        }
    }
}

/// One second's worth of events for every objective, handed to
/// [`SloEngine::observe`] by the timeline's sampling pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloSample {
    /// `served.requests` delta: every request this second.
    pub avail_total: u64,
    /// `served.requests` delta: bad (5xx or shed) requests this second.
    pub avail_bad: u64,
    /// Latency-histogram delta: every observation this second.
    pub lat_total: u64,
    /// Latency-histogram delta: observations above the ceiling bucket.
    pub lat_bad: u64,
    /// Whether the drift monitor was degraded this second.
    pub drift_degraded: bool,
}

/// An alert edge produced by one evaluation: objective index plus the new
/// firing state. Returned in a fixed-size array so evaluation stays
/// allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloTransition {
    /// Index into [`OBJECTIVES`].
    pub objective: usize,
    /// `true` = tripped, `false` = recovered.
    pub fired: bool,
}

/// Per-objective event ring: `(bad, total)` per second, window sums by
/// walking the most recent N slots (N ≤ `MAX_WINDOW_S`, trivially cheap
/// once a second).
struct EventRing {
    bad: Box<[u32]>,
    total: Box<[u32]>,
    head: usize,
    len: usize,
}

impl EventRing {
    fn new(capacity: usize) -> Self {
        EventRing {
            bad: vec![0; capacity].into_boxed_slice(),
            total: vec![0; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    fn push(&mut self, bad: u64, total: u64) {
        let cap = self.total.len();
        let at = (self.head + self.len) % cap;
        self.bad[at] = u32::try_from(bad).unwrap_or(u32::MAX);
        self.total[at] = u32::try_from(total).unwrap_or(u32::MAX);
        if self.len < cap {
            self.len += 1;
        } else {
            self.head = (self.head + 1) % cap;
        }
    }

    /// `(bad, total)` summed over the most recent `window` slots.
    fn window_sum(&self, window: usize) -> (u64, u64) {
        let n = window.min(self.len);
        let cap = self.total.len();
        let mut bad = 0u64;
        let mut total = 0u64;
        for k in 0..n {
            let at = (self.head + self.len - 1 - k) % cap;
            bad += u64::from(self.bad[at]);
            total += u64::from(self.total[at]);
        }
        (bad, total)
    }
}

/// The single-writer state: event rings plus the alert state machine.
struct SloCore {
    rings: [EventRing; N_OBJ],
    firing: [bool; N_OBJ],
}

/// Published per-objective readout (the lock-free face the `/metrics`
/// exposition, `/v1/status`, and the timeline JSON render from).
#[derive(Debug, Clone, Copy)]
pub struct ObjectiveReadout {
    /// Objective name from [`OBJECTIVES`].
    pub name: &'static str,
    /// Whether the objective is declared and evaluated.
    pub enabled: bool,
    /// Whether the alert is currently firing.
    pub firing: bool,
    /// Fast-window burn rate (milli precision).
    pub burn_fast: f64,
    /// Slow-window burn rate (milli precision).
    pub burn_slow: f64,
    /// Fraction of the slow-window error budget still unspent, in `[0, 1]`.
    pub budget_remaining: f64,
}

/// The multi-window burn-rate engine. See the module docs for the
/// concurrency contract.
pub struct SloEngine {
    config: SloConfig,
    /// Mutated only by [`observe`](SloEngine::observe), whose single caller
    /// (the timeline sampler) is already serialized — the mutex is a
    /// soundness fence, not a contention point.
    core: Mutex<SloCore>,
    alerts_total: AtomicU64,
    pub_firing: [AtomicBool; N_OBJ],
    pub_burn_fast_milli: [AtomicI64; N_OBJ],
    pub_burn_slow_milli: [AtomicI64; N_OBJ],
    pub_budget_remaining_milli: [AtomicI64; N_OBJ],
    /// Human-readable reason per firing objective, rebuilt on transitions
    /// only (so the sampling steady state never allocates).
    reasons: Mutex<[Option<String>; N_OBJ]>,
}

impl SloEngine {
    /// An engine with pre-allocated windows sized to the slow window.
    pub fn new(config: SloConfig) -> Self {
        let cap = (config.slow_window_s.max(config.fast_window_s) as usize).clamp(1, MAX_WINDOW_S);
        SloEngine {
            config,
            core: Mutex::new(SloCore {
                rings: std::array::from_fn(|_| EventRing::new(cap)),
                firing: [false; N_OBJ],
            }),
            alerts_total: AtomicU64::new(0),
            pub_firing: std::array::from_fn(|_| AtomicBool::new(false)),
            pub_burn_fast_milli: std::array::from_fn(|_| AtomicI64::new(0)),
            pub_burn_slow_milli: std::array::from_fn(|_| AtomicI64::new(0)),
            pub_budget_remaining_milli: std::array::from_fn(|_| AtomicI64::new(1000)),
            reasons: Mutex::new([None, None, None]),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Folds one second of events in and re-evaluates every objective.
    /// Returns up to one transition per objective (`None`-padded).
    pub fn observe(&self, sample: &SloSample) -> [Option<SloTransition>; N_OBJ] {
        let events: [(u64, u64); N_OBJ] = [
            (sample.avail_bad, sample.avail_total),
            (sample.lat_bad, sample.lat_total),
            (u64::from(sample.drift_degraded), 1),
        ];
        let mut out = [None; N_OBJ];
        let mut core = self.core.lock().expect("slo core poisoned");
        for (obj, (bad, total)) in events.into_iter().enumerate() {
            core.rings[obj].push(bad, total);
            if !self.config.enabled(obj) {
                continue;
            }
            let budget = self.config.budget(obj);
            let fast = burn(
                &core.rings[obj],
                self.config.fast_window_s as usize,
                self.config.fast_window_s as usize,
                self.config.min_events,
                budget,
            );
            let slow = burn(
                &core.rings[obj],
                self.config.slow_window_s as usize,
                self.config.fast_window_s as usize,
                self.config.min_events,
                budget,
            );
            let (slow_bad, slow_total) =
                core.rings[obj].window_sum(self.config.slow_window_s as usize);
            let spent = if slow_total == 0 {
                0.0
            } else {
                (slow_bad as f64 / slow_total as f64) / budget
            };
            let remaining = (1.0 - spent).clamp(0.0, 1.0);

            let was = core.firing[obj];
            let now = if was {
                // Hysteresis: both burns must fall clearly below threshold.
                !(fast < self.config.recovery_factor * self.config.fast_burn
                    && slow < self.config.recovery_factor * self.config.slow_burn)
            } else {
                fast > self.config.fast_burn && slow > self.config.slow_burn
            };
            let milli = |v: f64| (v * 1000.0).min(i64::MAX as f64) as i64;
            self.pub_burn_fast_milli[obj].store(milli(fast), Ordering::Relaxed);
            self.pub_burn_slow_milli[obj].store(milli(slow), Ordering::Relaxed);
            self.pub_budget_remaining_milli[obj].store(milli(remaining), Ordering::Relaxed);
            if now != was {
                core.firing[obj] = now;
                self.pub_firing[obj].store(now, Ordering::Relaxed);
                if now {
                    self.alerts_total.fetch_add(1, Ordering::Relaxed);
                }
                // Transition path: allocation is fine here, edges are rare.
                let mut reasons = self.reasons.lock().expect("slo reasons poisoned");
                reasons[obj] = now.then(|| {
                    format!(
                        "slo {}: fast burn {:.1}x > {:.1}x and slow burn {:.1}x > {:.1}x \
                         of error budget {:.4}",
                        OBJECTIVES[obj],
                        fast,
                        self.config.fast_burn,
                        slow,
                        self.config.slow_burn,
                        budget,
                    )
                });
                out[obj] = Some(SloTransition {
                    objective: obj,
                    fired: now,
                });
            }
        }
        out
    }

    /// Total alert trips since start (monotone; the
    /// `mnc_slo_burn_alerts_total` counter).
    pub fn alerts_total(&self) -> u64 {
        self.alerts_total.load(Ordering::Relaxed)
    }

    /// Lock-free per-objective readout.
    pub fn readout(&self) -> [ObjectiveReadout; N_OBJ] {
        std::array::from_fn(|obj| ObjectiveReadout {
            name: OBJECTIVES[obj],
            enabled: self.config.enabled(obj),
            firing: self.pub_firing[obj].load(Ordering::Relaxed),
            burn_fast: self.pub_burn_fast_milli[obj].load(Ordering::Relaxed) as f64 / 1000.0,
            burn_slow: self.pub_burn_slow_milli[obj].load(Ordering::Relaxed) as f64 / 1000.0,
            budget_remaining: self.pub_budget_remaining_milli[obj].load(Ordering::Relaxed) as f64
                / 1000.0,
        })
    }

    /// Current firing reasons (one per firing objective), for the
    /// `/healthz` merge.
    pub fn health_reasons(&self) -> Vec<String> {
        self.reasons
            .lock()
            .expect("slo reasons poisoned")
            .iter()
            .flatten()
            .cloned()
            .collect()
    }

    /// Whether any objective is firing (lock-free).
    pub fn any_firing(&self) -> bool {
        self.pub_firing.iter().any(|f| f.load(Ordering::Relaxed))
    }
}

/// Burn rate over the most recent `window` seconds: error fraction over
/// budget, zeroed while the fast window holds fewer than `min_events`
/// events (a lone failing request during a quiet minute must not trip).
fn burn(ring: &EventRing, window: usize, fast_window: usize, min_events: u64, budget: f64) -> f64 {
    let (bad, total) = ring.window_sum(window);
    let (_, fast_total) = ring.window_sum(fast_window);
    if total == 0 || fast_total < min_events {
        return 0.0;
    }
    (bad as f64 / total as f64) / budget
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_config() -> SloConfig {
        SloConfig {
            availability_target: 0.99,
            latency_p99_ms: 100,
            drift_target: 0.0, // disabled: these tests drive the first two
            fast_window_s: 5,
            slow_window_s: 15,
            min_events: 5,
            ..SloConfig::default()
        }
    }

    fn traffic(n: u64, bad: u64) -> SloSample {
        SloSample {
            avail_total: n,
            avail_bad: bad,
            lat_total: n,
            lat_bad: bad,
            ..SloSample::default()
        }
    }

    #[test]
    fn trips_when_both_windows_burn_and_counts_alerts() {
        let eng = SloEngine::new(short_config());
        // Healthy traffic: no alert ever.
        for _ in 0..20 {
            let t = eng.observe(&traffic(10, 0));
            assert!(t.iter().all(Option::is_none), "healthy traffic tripped");
        }
        assert!(!eng.any_firing());
        // Total failure: burn = 100x budget on both objectives once both
        // windows see it.
        let mut fired = Vec::new();
        for _ in 0..20 {
            fired.extend(eng.observe(&traffic(10, 10)).into_iter().flatten());
        }
        assert!(
            fired.iter().any(|t| t.objective == 0 && t.fired),
            "availability never fired: {fired:?}"
        );
        assert!(
            fired.iter().any(|t| t.objective == 1 && t.fired),
            "latency never fired: {fired:?}"
        );
        assert_eq!(eng.alerts_total(), 2);
        assert!(eng.any_firing());
        assert_eq!(eng.health_reasons().len(), 2);
        let r = eng.readout();
        assert!(r[0].firing && r[1].firing);
        assert!(r[0].burn_fast > eng.config().fast_burn);
        assert!(r[0].budget_remaining < 0.1);
    }

    #[test]
    fn recovers_with_hysteresis_after_the_slow_window_drains() {
        let eng = SloEngine::new(short_config());
        for _ in 0..20 {
            eng.observe(&traffic(10, 10));
        }
        assert!(eng.any_firing());
        // Healthy traffic again: the fast window clears in ~5s but the slow
        // window holds the alert until the bad seconds age out of it.
        let mut recovered_at = None;
        for s in 0..40 {
            for t in eng.observe(&traffic(10, 0)).into_iter().flatten() {
                if !t.fired && recovered_at.is_none() {
                    recovered_at = Some(s);
                }
            }
        }
        let at = recovered_at.expect("never recovered");
        assert!(at >= 4, "recovered before the fast window cleared: {at}");
        assert!(!eng.any_firing());
        assert!(eng.health_reasons().is_empty());
        // Alert count is edge-triggered: the recovery did not increment it.
        assert_eq!(eng.alerts_total(), 2);
    }

    #[test]
    fn min_events_guard_blocks_trickle_traffic() {
        let eng = SloEngine::new(SloConfig {
            min_events: 10,
            ..short_config()
        });
        // One failing request per second tops out at 5 events per 5s fast
        // window, below min_events=10: burn must read 0 and nothing fires.
        for _ in 0..30 {
            let t = eng.observe(&traffic(1, 1));
            assert!(t.iter().all(Option::is_none));
        }
        assert!(!eng.any_firing());
        assert_eq!(eng.readout()[0].burn_fast, 0.0);
    }

    #[test]
    fn disabled_objectives_never_evaluate() {
        let eng = SloEngine::new(SloConfig {
            availability_target: 0.0,
            latency_p99_ms: 0,
            drift_target: 0.0,
            ..short_config()
        });
        for _ in 0..30 {
            let t = eng.observe(&SloSample {
                avail_total: 10,
                avail_bad: 10,
                lat_total: 10,
                lat_bad: 10,
                drift_degraded: true,
            });
            assert!(t.iter().all(Option::is_none));
        }
        assert!(!eng.any_firing());
        assert_eq!(eng.alerts_total(), 0);
        assert!(eng.readout().iter().all(|o| !o.enabled));
    }

    #[test]
    fn drift_objective_follows_the_degraded_flag() {
        let eng = SloEngine::new(SloConfig {
            availability_target: 0.0,
            latency_p99_ms: 0,
            drift_target: 0.99, // budget 1%: full degradation burns at 100x
            fast_window_s: 5,
            slow_window_s: 10,
            min_events: 3,
            ..SloConfig::default()
        });
        let mut fired = false;
        for _ in 0..15 {
            let t = eng.observe(&SloSample {
                drift_degraded: true,
                ..SloSample::default()
            });
            fired |= t.iter().flatten().any(|t| t.objective == 2 && t.fired);
        }
        assert!(fired, "drift objective never fired");
    }

    #[test]
    fn budget_and_target_shapes() {
        let cfg = SloConfig::default();
        assert!((cfg.budget(0) - 0.001).abs() < 1e-12);
        assert!((cfg.budget(1) - 0.01).abs() < 1e-12);
        assert!((cfg.budget(2) - 0.01).abs() < 1e-12);
        // Default config: availability and drift declared, latency off.
        assert!(cfg.enabled(0));
        assert!(!cfg.enabled(1));
        assert!(cfg.enabled(2));
    }
}
