//! Online accuracy-drift detection.
//!
//! The paper's core claim is that structure-exploiting estimation stays
//! accurate where sampling-based baselines drift badly on skewed inputs
//! (Section 2; PAPERS.md, Amossen et al.). A long-running service must
//! therefore watch its own error signal *online*: this module folds every
//! [`AccuracyRecord`] into per-`(estimator, op)` statistics and trips a
//! degraded-health state when error drifts past configured thresholds.
//!
//! ## The statistics
//!
//! The symmetric relative error is a **ratio** metric (`>= 1`, `1` =
//! perfect), so the running average is an EWMA over `ln(err)` — the
//! exponential of the EWMA is then a *geometric* running mean, matching the
//! geo-mean aggregation the batch summaries use:
//!
//! ```text
//! ewma_ln ← α·ln(err) + (1 − α)·ewma_ln        (seeded with the first ln)
//! geo-EWMA = exp(ewma_ln)
//! ```
//!
//! Alongside, a fixed window of the most recent errors yields a windowed
//! p95 that catches tail blow-ups an average smooths over. A series trips
//! when either statistic crosses its ceiling (after a minimum sample
//! count); it recovers with hysteresis — both statistics must fall below
//! `recovery_factor ×` the ceiling — so health does not flap at the
//! threshold. Each trip increments a monotone alert counter, exported as
//! `mnc_obsd_drift_alerts_total`.
//!
//! Infinite errors (zero/non-zero mismatches — legal per the pinned
//! [`symmetric_relative_error`](mnc_obs::accuracy::symmetric_relative_error)
//! contract) are counted separately and clamped to `infinite_clamp` before
//! entering the statistics, keeping the EWMA finite while still letting a
//! burst of them trip the thresholds immediately.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use mnc_obs::AccuracyRecord;

/// Thresholds and smoothing parameters for the drift monitor.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// EWMA smoothing factor in `(0, 1]`; larger reacts faster.
    pub ewma_alpha: f64,
    /// Degrade when a series' geometric EWMA error exceeds this.
    pub max_geo_ewma: f64,
    /// Degrade when a series' windowed p95 error exceeds this.
    pub max_p95: f64,
    /// Number of recent errors in the quantile window.
    pub window: usize,
    /// Samples a series needs before it may trip (cold-start guard).
    pub min_samples: u64,
    /// Substitute for infinite errors entering the statistics.
    pub infinite_clamp: f64,
    /// Hysteresis: recover only when both statistics fall below
    /// `recovery_factor × ceiling`.
    pub recovery_factor: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            ewma_alpha: 0.2,
            max_geo_ewma: 2.0,
            max_p95: 5.0,
            window: 64,
            min_samples: 16,
            infinite_clamp: 1e6,
            recovery_factor: 0.8,
        }
    }
}

/// Drift-aware health: the `/healthz` verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum Health {
    /// No series is drifting.
    Ok,
    /// At least one series tripped; one human-readable reason per series.
    Degraded(Vec<String>),
}

impl Health {
    /// Whether the service is healthy.
    pub fn is_ok(&self) -> bool {
        matches!(self, Health::Ok)
    }
}

/// Per-`(estimator, op)` running state.
#[derive(Debug)]
struct Series {
    n: u64,
    infinite: u64,
    ewma_ln: f64,
    /// Ring of the most recent errors (quantile window).
    window: Vec<f64>,
    next: usize,
    degraded: bool,
}

impl Series {
    fn p95(&self) -> f64 {
        if self.window.is_empty() {
            return 1.0;
        }
        let mut sorted = self.window.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("clamped errors are finite"));
        let rank = ((0.95 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

/// A snapshot of one series, for reports and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesStats {
    /// Estimator display name.
    pub estimator: String,
    /// Root operation.
    pub op: String,
    /// Observations folded in.
    pub count: u64,
    /// Infinite errors seen (clamped before entering the statistics).
    pub infinite: u64,
    /// Geometric EWMA of the error.
    pub geo_ewma: f64,
    /// Windowed p95 of the error.
    pub p95: f64,
    /// Whether this series currently trips the thresholds.
    pub degraded: bool,
}

/// The online drift monitor. Observation is thread-safe (one short mutex —
/// accuracy records are orders of magnitude rarer than spans) and the
/// health flag is a lock-free read.
#[derive(Debug)]
pub struct DriftMonitor {
    cfg: DriftConfig,
    series: Mutex<BTreeMap<(String, String), Series>>,
    alerts: AtomicU64,
    degraded: AtomicBool,
}

impl DriftMonitor {
    /// A monitor with the given thresholds.
    pub fn new(cfg: DriftConfig) -> Self {
        DriftMonitor {
            cfg,
            series: Mutex::new(BTreeMap::new()),
            alerts: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }

    /// Folds one accuracy record into its `(estimator, op)` series.
    pub fn observe(&self, rec: &AccuracyRecord) {
        self.observe_error(&rec.estimator, &rec.op, rec.relative_error);
    }

    /// Folds one raw error observation.
    pub fn observe_error(&self, estimator: &str, op: &str, relative_error: f64) {
        let infinite = !relative_error.is_finite();
        // The pinned contract says the error is never NaN and >= 1; clamp
        // anyway so a violation degrades gracefully instead of poisoning
        // the EWMA.
        let err = if infinite {
            self.cfg.infinite_clamp
        } else {
            relative_error.max(1.0)
        };
        let mut map = self.series.lock().expect("drift state poisoned");
        let s = map
            .entry((estimator.to_string(), op.to_string()))
            .or_insert_with(|| Series {
                n: 0,
                infinite: 0,
                ewma_ln: 0.0,
                window: Vec::with_capacity(self.cfg.window.max(1)),
                next: 0,
                degraded: false,
            });
        let ln = err.ln();
        s.ewma_ln = if s.n == 0 {
            ln
        } else {
            self.cfg.ewma_alpha * ln + (1.0 - self.cfg.ewma_alpha) * s.ewma_ln
        };
        s.n += 1;
        if infinite {
            s.infinite += 1;
        }
        let cap = self.cfg.window.max(1);
        if s.window.len() < cap {
            s.window.push(err);
        } else {
            s.window[s.next] = err;
            s.next = (s.next + 1) % cap;
        }
        if s.n >= self.cfg.min_samples {
            let geo = s.ewma_ln.exp();
            let p95 = s.p95();
            if !s.degraded && (geo > self.cfg.max_geo_ewma || p95 > self.cfg.max_p95) {
                s.degraded = true;
                self.alerts.fetch_add(1, Ordering::Relaxed);
            } else if s.degraded
                && geo <= self.cfg.max_geo_ewma * self.cfg.recovery_factor
                && p95 <= self.cfg.max_p95 * self.cfg.recovery_factor
            {
                s.degraded = false;
            }
        }
        let any = map.values().any(|s| s.degraded);
        self.degraded.store(any, Ordering::Release);
    }

    /// Total threshold trips (monotone; the `drift_alerts_total` counter).
    pub fn alerts(&self) -> u64 {
        self.alerts.load(Ordering::Relaxed)
    }

    /// Whether any series currently trips (lock-free).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// The drift-aware health verdict with per-series reasons.
    pub fn status(&self) -> Health {
        if !self.is_degraded() {
            return Health::Ok;
        }
        let map = self.series.lock().expect("drift state poisoned");
        let reasons: Vec<String> = map
            .iter()
            .filter(|(_, s)| s.degraded)
            .map(|((est, op), s)| {
                format!(
                    "{est}/{op}: geo-EWMA err {:.3} (ceiling {:.3}), window p95 {:.3} \
                     (ceiling {:.3}), n={}",
                    s.ewma_ln.exp(),
                    self.cfg.max_geo_ewma,
                    s.p95(),
                    self.cfg.max_p95,
                    s.n
                )
            })
            .collect();
        if reasons.is_empty() {
            // The flag and the lock race benignly: recheck said recovered.
            Health::Ok
        } else {
            Health::Degraded(reasons)
        }
    }

    /// Snapshot of every series, sorted by `(estimator, op)`.
    pub fn stats(&self) -> Vec<SeriesStats> {
        let map = self.series.lock().expect("drift state poisoned");
        map.iter()
            .map(|((est, op), s)| SeriesStats {
                estimator: est.clone(),
                op: op.clone(),
                count: s.n,
                infinite: s.infinite,
                geo_ewma: s.ewma_ln.exp(),
                p95: s.p95(),
                degraded: s.degraded,
            })
            .collect()
    }
}

impl Default for DriftMonitor {
    fn default() -> Self {
        Self::new(DriftConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> DriftConfig {
        DriftConfig {
            min_samples: 4,
            window: 8,
            ..DriftConfig::default()
        }
    }

    #[test]
    fn accurate_stream_stays_healthy() {
        let m = DriftMonitor::new(fast_cfg());
        for _ in 0..100 {
            m.observe_error("MNC", "matmul", 1.05);
        }
        assert!(!m.is_degraded());
        assert_eq!(m.status(), Health::Ok);
        assert_eq!(m.alerts(), 0);
        let s = &m.stats()[0];
        assert!(s.geo_ewma < 1.1);
        assert!(!s.degraded);
    }

    #[test]
    fn drifting_stream_trips_once_and_names_the_series() {
        let m = DriftMonitor::new(fast_cfg());
        for _ in 0..20 {
            m.observe_error("Sample", "matmul", 8.0);
        }
        assert!(m.is_degraded());
        assert_eq!(m.alerts(), 1, "one trip, not one per record");
        match m.status() {
            Health::Degraded(reasons) => {
                assert_eq!(reasons.len(), 1);
                assert!(reasons[0].starts_with("Sample/matmul:"), "{reasons:?}");
            }
            Health::Ok => panic!("expected degraded"),
        }
    }

    #[test]
    fn min_samples_guards_cold_start() {
        let m = DriftMonitor::new(fast_cfg());
        for _ in 0..3 {
            m.observe_error("MNC", "matmul", 100.0);
        }
        assert!(!m.is_degraded(), "below min_samples nothing trips");
    }

    #[test]
    fn recovery_has_hysteresis() {
        let m = DriftMonitor::new(fast_cfg());
        for _ in 0..20 {
            m.observe_error("MNC", "matmul", 8.0);
        }
        assert!(m.is_degraded());
        // A long accurate stream drains both the EWMA and the window.
        for _ in 0..100 {
            m.observe_error("MNC", "matmul", 1.01);
        }
        assert!(!m.is_degraded(), "{:?}", m.stats());
        assert_eq!(m.alerts(), 1);
        // Re-tripping counts a second alert.
        for _ in 0..50 {
            m.observe_error("MNC", "matmul", 9.0);
        }
        assert!(m.is_degraded());
        assert_eq!(m.alerts(), 2);
    }

    #[test]
    fn series_are_independent() {
        let m = DriftMonitor::new(fast_cfg());
        for _ in 0..20 {
            m.observe_error("MNC", "matmul", 1.02);
            m.observe_error("Sample", "matmul", 12.0);
        }
        let stats = m.stats();
        assert_eq!(stats.len(), 2);
        assert!(
            !stats
                .iter()
                .find(|s| s.estimator == "MNC")
                .unwrap()
                .degraded
        );
        assert!(
            stats
                .iter()
                .find(|s| s.estimator == "Sample")
                .unwrap()
                .degraded
        );
        assert!(m.is_degraded(), "any degraded series degrades the whole");
    }

    #[test]
    fn infinite_errors_clamp_and_count() {
        let m = DriftMonitor::new(fast_cfg());
        for _ in 0..8 {
            m.observe_error("MNC", "matmul", f64::INFINITY);
        }
        let s = &m.stats()[0];
        assert_eq!(s.infinite, 8);
        assert!(s.geo_ewma.is_finite(), "clamped before the EWMA");
        assert!(m.is_degraded(), "a burst of INF errors trips");
    }

    #[test]
    fn recovery_boundary_sits_at_recovery_factor_times_ceiling() {
        // alpha = 1 makes the EWMA equal the last observation and window = 1
        // makes p95 equal it too, so the hysteresis band can be probed with
        // single observations: ceiling 2.0, recovery at 0.8 × 2.0 = 1.6.
        let m = DriftMonitor::new(DriftConfig {
            ewma_alpha: 1.0,
            window: 1,
            min_samples: 1,
            ..DriftConfig::default()
        });
        m.observe_error("MNC", "matmul", 3.0);
        assert!(m.is_degraded(), "3.0 > ceiling 2.0 must trip");
        // Inside the hysteresis band (1.6, 2.0]: below the trip ceiling but
        // above the recovery line — stays degraded, no flapping.
        m.observe_error("MNC", "matmul", 1.61);
        assert!(
            m.is_degraded(),
            "1.61 > 0.8×2.0 is inside the band: {:?}",
            m.stats()
        );
        assert_eq!(m.alerts(), 1, "staying degraded is not a new alert");
        // Below the recovery line: healthy again.
        m.observe_error("MNC", "matmul", 1.59);
        assert!(!m.is_degraded(), "1.59 < 1.6 must recover: {:?}", m.stats());
        // And the band is one-sided: re-entering it from below does NOT
        // re-trip (only crossing the full ceiling does).
        m.observe_error("MNC", "matmul", 1.9);
        assert!(!m.is_degraded(), "1.9 < ceiling must not trip from healthy");
        assert_eq!(m.alerts(), 1);
        m.observe_error("MNC", "matmul", 2.1);
        assert!(m.is_degraded());
        assert_eq!(m.alerts(), 2, "crossing the ceiling again is a new alert");
    }

    #[test]
    fn exactly_min_samples_observations_may_trip_but_one_fewer_never_does() {
        let cfg = fast_cfg(); // min_samples: 4
        let m = DriftMonitor::new(cfg.clone());
        for _ in 0..(cfg.min_samples - 1) {
            m.observe_error("MNC", "matmul", 1000.0);
        }
        assert!(
            !m.is_degraded(),
            "min_samples - 1 huge errors stay cold-start guarded"
        );
        assert_eq!(m.alerts(), 0);
        m.observe_error("MNC", "matmul", 1000.0);
        assert!(m.is_degraded(), "the min_samples-th observation trips");
        assert_eq!(m.alerts(), 1);
    }

    #[test]
    fn infinite_clamp_bounds_the_ewma_and_decays_back_out() {
        let m = DriftMonitor::new(DriftConfig {
            min_samples: 1,
            window: 4,
            ..DriftConfig::default()
        });
        m.observe_error("MNC", "matmul", f64::INFINITY);
        let s = &m.stats()[0];
        assert_eq!(s.infinite, 1);
        // The clamp caps the seeded EWMA at exactly the configured value
        // (modulo the ln/exp roundtrip), not at infinity.
        let clamp = m.config().infinite_clamp;
        assert!(
            (s.geo_ewma - clamp).abs() / clamp < 1e-12,
            "geo EWMA {} must seed at the clamp {clamp}",
            s.geo_ewma
        );
        assert!(m.is_degraded());
        // Perfect observations decay the geometric EWMA multiplicatively:
        // after k steps the EWMA is clamp^((1-α)^k), so it falls below the
        // recovery line in bounded time even from a clamped-infinite seed.
        let mut steps = 0;
        while m.is_degraded() && steps < 500 {
            m.observe_error("MNC", "matmul", 1.0);
            steps += 1;
        }
        assert!(
            !m.is_degraded(),
            "clamped INF must decay out: {:?}",
            m.stats()
        );
        // ln(ln(recovery)/ln(clamp)) / ln(1-α): ≈ 60 steps for the defaults;
        // the window (4 samples of 1.0) clears far sooner.
        let expected = ((0.8f64 * 2.0).ln() / clamp.ln()).ln() / (1.0f64 - 0.2).ln();
        assert!(
            (steps as f64) <= expected.ceil() + 4.0,
            "decay took {steps} steps, analytic bound {expected:.1}"
        );
        let s = &m.stats()[0];
        assert_eq!(s.infinite, 1, "the infinite count is not decayed");
    }

    #[test]
    fn observes_records_via_the_accuracy_channel_shape() {
        let m = DriftMonitor::new(fast_cfg());
        for i in 0..20 {
            m.observe(&AccuracyRecord::new(
                format!("c{i}"),
                "matmul",
                "MNC",
                0.5,
                0.05,
            ));
        }
        assert!(m.is_degraded(), "10x error drifts");
    }
}
