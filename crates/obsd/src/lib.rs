//! # mnc-obsd — live telemetry for long-running estimation services
//!
//! PR 2's `mnc-obs` is batch-oriented: spans, metrics, and accuracy records
//! surface *after* a run, via CLI flags. This crate turns that layer into
//! production telemetry with three always-on, low-overhead subsystems
//! behind one handle, [`ObsDaemon`]:
//!
//! * **flight recorder** ([`flight`]) — the most recent N spans and
//!   accuracy records in O(N) memory, fed live from the recorder's
//!   [`RecordSink`] tap, dumpable on demand and automatically from a panic
//!   hook for postmortems;
//! * **accuracy-drift monitor** ([`drift`]) — per-`(estimator, op)` online
//!   EWMA + windowed quantiles of the symmetric relative error, tripping a
//!   degraded-health state and a `drift_alerts_total` counter when error
//!   drifts past configured ceilings;
//! * **embedded HTTP endpoint** ([`http`]) — a dependency-free
//!   `std::net::TcpListener` server on a background thread serving
//!   `GET /metrics` (Prometheus text), `/healthz` (drift-aware
//!   OK/DEGRADED), `/flight` (JSONL ring dump), and `/attribution`.
//!
//! ```no_run
//! use mnc_obs::Recorder;
//! use mnc_obsd::{ObsDaemon, ObsdConfig};
//!
//! let daemon = ObsDaemon::new(ObsdConfig::default());
//! let rec = Recorder::enabled_with_capacity(4096);
//! daemon.install(&rec);                       // live span/accuracy tap
//! let server = daemon.serve("127.0.0.1:0").unwrap();
//! println!("scrape http://{}/metrics", server.local_addr());
//! ```

pub mod drift;
pub mod flight;
pub mod http;
pub mod slo;
pub mod timeline;

pub use drift::{DriftConfig, DriftMonitor, Health, SeriesStats};
pub use flight::FlightRecorder;
pub use http::{
    serve_with, telemetry_response, Handler, Request, Response, ServeOptions, ServerHandle,
};
pub use slo::{SloConfig, SloEngine, SloTransition};
pub use timeline::{Timeline, TimelineConfig, TimelineQuery, TimelineStats};

use std::sync::{Arc, Mutex};

use mnc_obs::{
    render_attribution, render_prometheus, AccuracyRecord, MetricSnapshot, RecordSink, Recorder,
    SpanRecord,
};

/// Configuration for one daemon.
#[derive(Debug, Clone)]
pub struct ObsdConfig {
    /// Per-stream flight-ring capacity (spans and accuracy records each).
    pub flight_capacity: usize,
    /// Drift-monitor thresholds.
    pub drift: DriftConfig,
    /// Timeline-plane sizing and SLO objectives.
    pub timeline: TimelineConfig,
}

impl Default for ObsdConfig {
    fn default() -> Self {
        ObsdConfig {
            flight_capacity: 1024,
            drift: DriftConfig::default(),
            timeline: TimelineConfig::default(),
        }
    }
}

/// Shared daemon state; also the [`RecordSink`] installed on source
/// recorders (both callbacks run on the estimation hot path and do one
/// ring push / one short-mutex fold each).
struct DaemonShared {
    flight: FlightRecorder,
    drift: DriftMonitor,
    timeline: Timeline,
    /// Source recorders whose registries `/metrics` aggregates. Holding
    /// clones keeps the registries alive for scrapes that outlive the
    /// session.
    sources: Mutex<Vec<Recorder>>,
    /// The latest merged snapshot (refreshed periodically by the HTTP
    /// ticker and on every scrape) — also what a panic dump would see.
    cached: Mutex<MetricSnapshot>,
}

impl RecordSink for DaemonShared {
    fn on_span(&self, span: &SpanRecord) {
        self.flight.record_span(span);
    }

    fn on_accuracy(&self, rec: &AccuracyRecord) {
        self.flight.record_accuracy(rec);
        self.drift.observe(rec);
    }
}

/// The live-telemetry daemon: a cheap, cloneable handle over the flight
/// recorder, drift monitor, and metric aggregation. Serve it over HTTP
/// with [`ObsDaemon::serve`].
#[derive(Clone)]
pub struct ObsDaemon {
    shared: Arc<DaemonShared>,
}

impl ObsDaemon {
    /// A daemon with the given configuration. Nothing is observed until a
    /// recorder is [`install`](ObsDaemon::install)ed.
    pub fn new(config: ObsdConfig) -> Self {
        ObsDaemon {
            shared: Arc::new(DaemonShared {
                flight: FlightRecorder::new(config.flight_capacity),
                drift: DriftMonitor::new(config.drift),
                timeline: Timeline::new(config.timeline),
                sources: Mutex::new(Vec::new()),
                cached: Mutex::new(MetricSnapshot::default()),
            }),
        }
    }

    /// Wires a recorder into the daemon: its metrics registry joins the
    /// `/metrics` aggregation and its span/accuracy streams feed the
    /// flight recorder and drift monitor via the recorder's
    /// [`RecordSink`] tap. Installing the same recorder twice is a no-op
    /// (sources are deduplicated by identity), so `--serve-obs` wiring and
    /// `EstimationContext::with_obsd` compose without double counting.
    ///
    /// Returns whether the live tap was installed — `false` for a disabled
    /// recorder or one that already has a different sink (its registry is
    /// still aggregated).
    pub fn install(&self, rec: &Recorder) -> bool {
        if rec.is_enabled() {
            let mut sources = self.shared.sources.lock().expect("sources poisoned");
            if !sources.iter().any(|s| s.same_as(rec)) {
                sources.push(rec.clone());
            }
        }
        rec.set_sink(Arc::clone(&self.shared) as Arc<dyn RecordSink>)
    }

    /// The flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.shared.flight
    }

    /// The drift monitor.
    pub fn drift(&self) -> &DriftMonitor {
        &self.shared.drift
    }

    /// The timeline plane (history rings + SLO engine).
    pub fn timeline(&self) -> &Timeline {
        &self.shared.timeline
    }

    /// The health verdict (`/healthz`): drift-monitor reasons merged with
    /// any firing SLO burn-rate alerts.
    pub fn health(&self) -> Health {
        let mut reasons = match self.shared.drift.status() {
            Health::Ok => Vec::new(),
            Health::Degraded(r) => r,
        };
        reasons.extend(self.shared.timeline.slo().health_reasons());
        if reasons.is_empty() {
            Health::Ok
        } else {
            Health::Degraded(reasons)
        }
    }

    /// Number of installed source recorders.
    pub fn source_count(&self) -> usize {
        self.shared.sources.lock().expect("sources poisoned").len()
    }

    /// Service-health metrics the daemon contributes beside the aggregated
    /// session registries: the alert counter, flight-ring counters and
    /// retention gauges, and the degraded flag as a 0/1 gauge.
    fn service_snapshot(&self) -> MetricSnapshot {
        let mut snap = MetricSnapshot::default();
        snap.counters
            .insert("obsd.drift_alerts".into(), self.shared.drift.alerts());
        snap.counters.insert(
            "obsd.flight.spans_pushed".into(),
            self.shared.flight.spans_pushed(),
        );
        snap.counters.insert(
            "obsd.flight.accuracy_pushed".into(),
            self.shared.flight.accuracy_pushed(),
        );
        snap.counters
            .insert("obsd.flight.dropped".into(), self.shared.flight.dropped());
        snap.gauges.insert(
            "obsd.flight.spans_retained".into(),
            self.shared.flight.span_len() as i64,
        );
        snap.gauges.insert(
            "obsd.flight.accuracy_retained".into(),
            self.shared.flight.accuracy_len() as i64,
        );
        snap.gauges.insert(
            "obsd.degraded".into(),
            i64::from(self.shared.drift.is_degraded()),
        );
        snap.gauges
            .insert("obsd.sources".into(), self.source_count() as i64);
        // The drift monitor's live per-(estimator, op) statistics, exported
        // as labeled gauges (milli-scaled: a geo-EWMA of 1.234 reads 1234).
        // Cardinality is bounded by the estimator × op vocabulary.
        for s in self.shared.drift.stats() {
            let milli = |v: f64| (v * 1000.0).min(i64::MAX as f64) as i64;
            let labels = format!("{{estimator={},op={}}}", s.estimator, s.op);
            snap.gauges.insert(
                format!("obsd.drift.geo_ewma_milli{labels}"),
                milli(s.geo_ewma),
            );
            snap.gauges
                .insert(format!("obsd.drift.p95_milli{labels}"), milli(s.p95));
            snap.gauges.insert(
                format!("obsd.drift.samples{labels}"),
                i64::try_from(s.count).unwrap_or(i64::MAX),
            );
            snap.gauges.insert(
                format!("obsd.drift.infinite{labels}"),
                i64::try_from(s.infinite).unwrap_or(i64::MAX),
            );
            snap.gauges.insert(
                format!("obsd.drift.degraded{labels}"),
                i64::from(s.degraded),
            );
        }
        snap
    }

    /// Re-merges the service metrics with every source registry into the
    /// cached snapshot. Called on every scrape and periodically by the
    /// HTTP server's ticker (so the cache stays near-current even when
    /// nobody scrapes). The merged snapshot is also tailed into the
    /// timeline plane (at most one frame per second) and any SLO alert
    /// edges that produces are stamped into the flight recorder.
    pub fn refresh(&self) {
        let mut merged = self.service_snapshot();
        {
            let sources = self.shared.sources.lock().expect("sources poisoned");
            for rec in sources.iter() {
                if let Some(reg) = rec.registry() {
                    merged.merge(&reg.snapshot());
                }
            }
        }
        let now_s = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let edges = self
            .shared
            .timeline
            .sample_at(now_s, &merged, self.shared.drift.is_degraded());
        for edge in edges.into_iter().flatten() {
            self.shared.flight.record_span(&SpanRecord {
                id: 0,
                parent: 0,
                name: "slo_alert",
                op: Some(format!(
                    "{}:{}",
                    slo::OBJECTIVES[edge.objective],
                    if edge.fired { "fire" } else { "recover" }
                )),
                thread: 0,
                start_ns: now_s.saturating_mul(1_000_000_000),
                dur_ns: 0,
                nnz_in: None,
                nnz_out: None,
                synopsis_bytes: None,
                alloc_net: None,
                alloc_bytes: None,
                trace: None,
            });
        }
        // Contributed after sampling so scrapes see this second's SLO
        // state, and the timeline never tracks its own series.
        self.shared.timeline.contribute_metrics(&mut merged);
        *self.shared.cached.lock().expect("cached poisoned") = merged;
    }

    /// The `/metrics` body: a fresh merge of the service metrics and every
    /// source registry, rendered in Prometheus text exposition format with
    /// the `mnc_` prefix (the drift counter appears as
    /// `mnc_obsd_drift_alerts_total`).
    pub fn metrics_text(&self) -> String {
        self.refresh();
        let snap = self.shared.cached.lock().expect("cached poisoned").clone();
        render_prometheus(&snap, "mnc_", &[])
    }

    /// The `/flight` body: the flight recorder's JSONL dump.
    pub fn flight_jsonl(&self) -> String {
        self.shared.flight.dump_jsonl()
    }

    /// The `/attribution` body: per-phase self-time attribution over the
    /// retained flight spans.
    pub fn attribution_text(&self) -> String {
        render_attribution(&self.shared.flight.spans())
    }

    /// Writes the flight dump to `path` (postmortems; see
    /// [`install_panic_hook`](ObsDaemon::install_panic_hook)).
    pub fn dump_flight_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.flight_jsonl())
    }

    /// Installs a process-wide panic hook that writes the flight dump to
    /// `path` before delegating to the previous hook — a crashing service
    /// leaves its last N spans and accuracy records behind for the
    /// postmortem. Dump errors inside the hook are swallowed (a failing
    /// dump must not turn a panic into an abort).
    pub fn install_panic_hook(&self, path: std::path::PathBuf) {
        let daemon = self.clone();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = daemon.dump_flight_to(&path);
            prev(info);
        }));
    }

    /// Starts the embedded HTTP server on `addr` (use port 0 for an
    /// OS-assigned port; read it back from
    /// [`ServerHandle::local_addr`]). The server runs on background
    /// threads until the handle is shut down or dropped.
    pub fn serve(&self, addr: &str) -> std::io::Result<ServerHandle> {
        http::serve(self.clone(), addr)
    }
}

impl std::fmt::Debug for ObsDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ObsDaemon(flight {:?}, alerts {}, sources {})",
            self.shared.flight,
            self.shared.drift.alerts(),
            self.source_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_obs::span;

    fn small() -> ObsdConfig {
        ObsdConfig {
            flight_capacity: 8,
            drift: DriftConfig {
                min_samples: 4,
                window: 8,
                ..DriftConfig::default()
            },
            // Off so the golden metrics assertions stay deterministic.
            timeline: TimelineConfig {
                enabled: false,
                ..TimelineConfig::default()
            },
        }
    }

    #[test]
    fn install_taps_the_record_streams() {
        let daemon = ObsDaemon::new(small());
        let rec = Recorder::enabled();
        assert!(daemon.install(&rec));
        {
            let _g = span!(rec, "estimate", op = "matmul");
        }
        rec.record_accuracy(AccuracyRecord::new("B1.1", "matmul", "MNC", 0.1, 0.1));
        assert_eq!(daemon.flight().span_len(), 1);
        assert_eq!(daemon.flight().accuracy_len(), 1);
        assert_eq!(daemon.drift().stats().len(), 1);
    }

    #[test]
    fn install_is_idempotent_per_recorder() {
        let daemon = ObsDaemon::new(small());
        let rec = Recorder::enabled();
        assert!(daemon.install(&rec));
        // Second install: already the sink, already a source.
        assert!(!daemon.install(&rec.clone()));
        assert_eq!(daemon.source_count(), 1);
        // A disabled recorder contributes nothing.
        assert!(!daemon.install(&Recorder::disabled()));
        assert_eq!(daemon.source_count(), 1);
        // A second live recorder joins as its own source.
        let rec2 = Recorder::enabled();
        assert!(daemon.install(&rec2));
        assert_eq!(daemon.source_count(), 2);
    }

    #[test]
    fn metrics_text_aggregates_sources_and_service_counters() {
        let daemon = ObsDaemon::new(small());
        let a = Recorder::enabled();
        let b = Recorder::enabled();
        daemon.install(&a);
        daemon.install(&b);
        a.counter("cache.hit").add(3);
        b.counter("cache.hit").add(4);
        let text = daemon.metrics_text();
        assert!(text.contains("mnc_cache_hit_total 7"), "{text}");
        assert!(text.contains("mnc_obsd_drift_alerts_total 0"), "{text}");
        assert!(text.contains("mnc_obsd_sources 2"), "{text}");
    }

    #[test]
    fn drift_series_export_as_labeled_gauges() {
        let daemon = ObsDaemon::new(small());
        let rec = Recorder::enabled();
        daemon.install(&rec);
        for _ in 0..6 {
            rec.record_accuracy(AccuracyRecord::new("c", "matmul", "MNC", 0.105, 0.1));
            rec.record_accuracy(AccuracyRecord::new("c", "ew_add", "DMap", 0.9, 0.1));
        }
        let text = daemon.metrics_text();
        // p95 comes straight from the window (no ln/exp roundtrip), so its
        // milli value is exact; the geo-EWMA lines are asserted by presence.
        for needle in [
            "mnc_obsd_drift_geo_ewma_milli{estimator=\"MNC\",op=\"matmul\"} ",
            "mnc_obsd_drift_geo_ewma_milli{estimator=\"DMap\",op=\"ew_add\"} ",
            "mnc_obsd_drift_p95_milli{estimator=\"MNC\",op=\"matmul\"} 1049",
            "mnc_obsd_drift_p95_milli{estimator=\"DMap\",op=\"ew_add\"} 9000",
            "mnc_obsd_drift_samples{estimator=\"MNC\",op=\"matmul\"} 6",
            "mnc_obsd_drift_degraded{estimator=\"DMap\",op=\"ew_add\"} 1",
            "mnc_obsd_drift_degraded{estimator=\"MNC\",op=\"matmul\"} 0",
            "mnc_obsd_drift_infinite{estimator=\"MNC\",op=\"matmul\"} 0",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn health_follows_the_drift_monitor() {
        let daemon = ObsDaemon::new(small());
        let rec = Recorder::enabled();
        daemon.install(&rec);
        assert!(daemon.health().is_ok());
        for i in 0..20 {
            rec.record_accuracy(AccuracyRecord::new(
                format!("c{i}"),
                "matmul",
                "Sample",
                0.9,
                0.05,
            ));
        }
        assert!(!daemon.health().is_ok());
        let text = daemon.metrics_text();
        assert!(text.contains("mnc_obsd_drift_alerts_total 1"), "{text}");
        assert!(text.contains("mnc_obsd_degraded 1"), "{text}");
    }

    #[test]
    fn flight_dump_and_attribution_render_from_the_rings() {
        let daemon = ObsDaemon::new(small());
        let rec = Recorder::enabled();
        daemon.install(&rec);
        {
            let _outer = span!(rec, "estimate", op = "matmul");
            let _inner = span!(rec, "build");
        }
        let dump = daemon.flight_jsonl();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("\"type\":\"span\""));
        let attr = daemon.attribution_text();
        assert!(attr.contains("estimate"), "{attr}");
    }

    #[test]
    fn dump_flight_to_writes_the_jsonl() {
        let daemon = ObsDaemon::new(small());
        let rec = Recorder::enabled();
        daemon.install(&rec);
        {
            let _g = span!(rec, "estimate");
        }
        let path = std::env::temp_dir().join(format!("mnc-obsd-dump-{}.jsonl", std::process::id()));
        daemon.dump_flight_to(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(body, daemon.flight_jsonl());
        assert!(body.contains("\"name\":\"estimate\""));
    }
}
