//! The embedded HTTP server: a dependency-free `std::net::TcpListener`
//! server on background threads.
//!
//! Historically this served GET-only telemetry (`/metrics`, `/healthz`,
//! `/flight`, `/attribution`); it now exposes a small generic
//! method+body dispatch layer — [`Request`], [`Response`], [`Handler`],
//! [`serve_with`] — that `mnc-served` mounts its `/v1` estimation API on,
//! while the telemetry plane ([`serve`]) is one particular [`Handler`].
//!
//! Scope stays deliberately tiny — enough HTTP/1.1 for a Prometheus
//! scraper, a load balancer's health probe, `curl`, and the `/v1` service
//! clients:
//!
//! * request line + headers are capped at [`MAX_REQUEST_BYTES`];
//! * bodies are read per `Content-Length` (no chunked encoding), capped by
//!   [`ServeOptions::max_body_bytes`] — an oversized body is answered
//!   `413` without draining it;
//! * one thread per connection, `Connection: close` semantics throughout.
//!
//! Shutdown is cooperative: the accept loop checks a stop flag after every
//! accept, and [`ServerHandle::shutdown`] wakes a blocked accept with a
//! self-connect. A ticker thread invokes [`Handler::tick`] every 250 ms
//! while the server runs — the telemetry handler refreshes the daemon's
//! cached metric snapshot there (the "periodic registry snapshot" —
//! postmortems and slow scrapers see near-current aggregates).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::{Health, ObsDaemon};

/// Maximum accepted request head (request line + headers).
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(5);
/// Handler tick period.
const TICK: Duration = Duration::from_millis(250);

/// A parsed HTTP request: method, path, query string, headers, body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `PUT`, ...).
    pub method: String,
    /// Request path without the query string.
    pub path: String,
    /// Raw query string (without the `?`; empty when absent).
    pub query: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value under `name`, ASCII-case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Value of query parameter `name` (`k=v` pairs split on `&`; no
    /// percent-decoding — the workspace's parameters are plain tokens).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v)
    }
}

/// An HTTP response: status code, content type, extra headers, body.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (reason phrase derived from it on the wire).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (e.g. `Retry-After`), written verbatim.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Adds an extra header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }
}

/// Reason phrases for the status codes the workspace emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A request handler mounted on [`serve_with`]. Handlers run on
/// per-connection threads, so they must be `Send + Sync`.
pub trait Handler: Send + Sync + 'static {
    /// Produces the response for one request.
    fn handle(&self, req: &Request) -> Response;

    /// Invoked every 250 ms from the server's ticker thread while the
    /// server runs; the default does nothing.
    fn tick(&self) {}
}

/// Server knobs for [`serve_with`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Largest accepted request body; anything larger is answered `413`
    /// without reading it in.
    pub max_body_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            // Telemetry traffic has no bodies; services raise this.
            max_body_bytes: 1 << 20,
        }
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address — with `:0` binds, this is where the OS-assigned
    /// port is read back.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the accept loop, and joins both background
    /// threads. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake a blocked `accept` so the loop observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.ticker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServerHandle({})", self.addr)
    }
}

/// Binds `addr` and dispatches requests to `handler` on background
/// threads — the generic face of the server.
pub fn serve_with(
    handler: Arc<dyn Handler>,
    addr: impl ToSocketAddrs,
    opts: ServeOptions,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    let accept = {
        let stop = Arc::clone(&stop);
        let handler = Arc::clone(&handler);
        let opts = opts.clone();
        std::thread::Builder::new()
            .name("mnc-obsd-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let handler = Arc::clone(&handler);
                    let opts = opts.clone();
                    // Thread-per-connection: request traffic is modest, and
                    // a stuck client must not stall the next probe.
                    let _ = std::thread::Builder::new()
                        .name("mnc-obsd-conn".into())
                        .spawn(move || handle_connection(stream, handler.as_ref(), &opts));
                }
            })?
    };

    let ticker = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("mnc-obsd-tick".into())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    handler.tick();
                    std::thread::sleep(TICK);
                }
            })?
    };

    Ok(ServerHandle {
        addr: local,
        stop,
        accept: Some(accept),
        ticker: Some(ticker),
    })
}

/// The telemetry handler: GET-only routes over an [`ObsDaemon`], refreshing
/// its cached snapshot on every tick.
struct TelemetryHandler {
    daemon: ObsDaemon,
}

impl Handler for TelemetryHandler {
    fn handle(&self, req: &Request) -> Response {
        if req.method != "GET" {
            return Response::text(405, "method not allowed\n");
        }
        telemetry_response(&self.daemon, req).unwrap_or_else(|| Response::text(404, "not found\n"))
    }

    fn tick(&self) {
        self.daemon.refresh();
    }
}

/// Routes one request to the daemon's telemetry plane; `None` for unknown
/// paths. Shared by the plain telemetry server and `mnc-served`, which
/// mounts these routes next to its `/v1` API as its health plane. Takes
/// the whole request (not just the path) because `/v1/debug/timeline`
/// reads `?metric=&resolution=&since=` selections.
pub fn telemetry_response(daemon: &ObsDaemon, req: &Request) -> Option<Response> {
    Some(match req.path.as_str() {
        "/metrics" => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            headers: Vec::new(),
            body: daemon.metrics_text().into_bytes(),
        },
        "/healthz" => match daemon.health() {
            Health::Ok => Response::text(200, "OK\n"),
            Health::Degraded(reasons) => {
                Response::text(503, format!("DEGRADED\n{}\n", reasons.join("\n")))
            }
        },
        "/flight" => Response {
            status: 200,
            content_type: "application/jsonl; charset=utf-8",
            headers: Vec::new(),
            body: daemon.flight_jsonl().into_bytes(),
        },
        "/attribution" => Response::text(200, daemon.attribution_text()),
        "/v1/debug/timeline" => {
            let resolution = match req.query_param("resolution") {
                None => None,
                Some(r) => match crate::timeline::RESOLUTIONS.iter().position(|n| *n == r) {
                    Some(i) => Some(i),
                    None => {
                        return Some(Response::json(
                            400,
                            "{\"error\":\"resolution must be one of 1s, 10s, 60s\"}",
                        ))
                    }
                },
            };
            let since_s = match req.query_param("since") {
                None => 0,
                Some(s) => match s.parse::<u64>() {
                    Ok(v) => v,
                    Err(_) => {
                        return Some(Response::json(
                            400,
                            "{\"error\":\"since must be unix seconds\"}",
                        ))
                    }
                },
            };
            let query = crate::timeline::TimelineQuery {
                metric: req.query_param("metric"),
                resolution,
                since_s,
            };
            let now_s = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            match daemon.timeline().render_json(now_s, &query) {
                Some(body) => Response::json(200, body),
                // Every claim retry lost to a writer — tell the client to
                // come back rather than block the scrape path.
                None => Response::json(503, "{\"error\":\"timeline busy, retry\"}")
                    .with_header("Retry-After", "1"),
            }
        }
        _ => return None,
    })
}

/// Binds `addr` and serves the daemon's telemetry endpoints on background
/// threads.
pub fn serve(daemon: ObsDaemon, addr: impl ToSocketAddrs) -> std::io::Result<ServerHandle> {
    serve_with(
        Arc::new(TelemetryHandler { daemon }),
        addr,
        ServeOptions::default(),
    )
}

fn handle_connection(mut stream: TcpStream, handler: &dyn Handler, opts: &ServeOptions) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let (resp, drain) = match read_request(&mut stream, opts) {
        Ok(Some(req)) => (handler.handle(&req), 0),
        Ok(None) => (Response::text(400, "bad request\n"), 0),
        // The oversized body was refused unread; its declared remainder must
        // still be drained (bounded) after the response, or closing with
        // unread bytes in the receive buffer sends an RST that can destroy
        // the buffered `413` before the client reads it.
        Err(ReadError::BodyTooLarge(rest)) => (
            Response::text(413, "request body too large\n"),
            rest.min(MAX_DRAIN_BYTES),
        ),
        Err(ReadError::Io) => (Response::text(400, "bad request\n"), 0),
    };
    let _ = write_response(&mut stream, &resp);
    let mut remaining = drain;
    let mut chunk = [0u8; 4096];
    while remaining > 0 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => remaining = remaining.saturating_sub(n),
        }
    }
}

/// Most bytes drained (not stored) from a refused oversized body before the
/// connection is closed anyway; clients still mid-send past this see a reset.
const MAX_DRAIN_BYTES: usize = 8 << 20;

enum ReadError {
    Io,
    /// Body over the limit; carries the declared bytes not yet read, so the
    /// connection can drain exactly that much without blocking on more.
    BodyTooLarge(usize),
}

impl From<std::io::Error> for ReadError {
    fn from(_: std::io::Error) -> Self {
        ReadError::Io
    }
}

/// Reads and parses one request: head until `\r\n\r\n` (bounded), then the
/// body per `Content-Length` (bounded). `Ok(None)` means malformed.
fn read_request(stream: &mut TcpStream, opts: &ServeOptions) -> Result<Option<Request>, ReadError> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_REQUEST_BYTES {
            return Ok(None);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(None);
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return Ok(None),
    };
    let Some((method, path, query)) = parse_request_line(head) else {
        return Ok(None);
    };
    let headers: Vec<(String, String)> = head
        .lines()
        .skip(1)
        .filter_map(|l| {
            let (name, value) = l.split_once(':')?;
            Some((name.trim().to_string(), value.trim().to_string()))
        })
        .collect();
    let req_line = (method.to_string(), path.to_string(), query.to_string());

    let content_length = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > opts.max_body_bytes {
        let already = buf.len() - (head_end + 4);
        return Err(ReadError::BodyTooLarge(
            content_length.saturating_sub(already),
        ));
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(None); // client hung up mid-body
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Some(Request {
        method: req_line.0,
        path: req_line.1,
        query: req_line.2,
        headers,
        body,
    }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses `GET /path?query HTTP/1.x` into `(method, path, query)` (query
/// empty when absent); `None` for anything malformed.
fn parse_request_line(head: &str) -> Option<(&str, &str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split(' ');
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if parts.next().is_some()
        || method.is_empty()
        || !method.chars().all(|c| c.is_ascii_uppercase())
        || !target.starts_with('/')
        || !version.starts_with("HTTP/1.")
    {
        return None;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Some((method, path, query))
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parsing() {
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1\r\n"),
            Some(("GET", "/metrics", ""))
        );
        assert_eq!(
            parse_request_line("GET /metrics?x=1 HTTP/1.0\r\nHost: a\r\n\r\n"),
            Some(("GET", "/metrics", "x=1"))
        );
        assert_eq!(
            parse_request_line("POST /metrics HTTP/1.1\r\n"),
            Some(("POST", "/metrics", ""))
        );
        // Malformed shapes.
        assert_eq!(parse_request_line(""), None);
        assert_eq!(parse_request_line("NOT-HTTP\r\n"), None);
        assert_eq!(parse_request_line("GET /x SPDY/3\r\n"), None);
        assert_eq!(parse_request_line("GET metrics HTTP/1.1\r\n"), None);
        assert_eq!(parse_request_line("get /x HTTP/1.1\r\n"), None);
        assert_eq!(parse_request_line("GET /x HTTP/1.1 extra\r\n"), None);
    }

    #[test]
    fn query_params_are_split_on_ampersands() {
        let req = Request {
            method: "GET".into(),
            path: "/v1/debug/requests".into(),
            query: "format=chrome&limit=5".into(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(req.query_param("format"), Some("chrome"));
        assert_eq!(req.query_param("limit"), Some("5"));
        assert_eq!(req.query_param("missing"), None);
        let bare = Request {
            query: String::new(),
            ..req.clone()
        };
        assert_eq!(bare.query_param("format"), None);
    }

    #[test]
    fn response_constructors_and_reasons() {
        let r = Response::json(429, "{}").with_header("Retry-After", "1");
        assert_eq!(r.status, 429);
        assert_eq!(reason(r.status), "Too Many Requests");
        assert_eq!(r.headers, vec![("Retry-After", "1".to_string())]);
        assert_eq!(reason(201), "Created");
        assert_eq!(reason(418), "Unknown");
    }

    struct Echo;
    impl Handler for Echo {
        fn handle(&self, req: &Request) -> Response {
            Response::text(
                200,
                format!(
                    "{} {} {}B ct={}",
                    req.method,
                    req.path,
                    req.body.len(),
                    req.header("Content-Type").unwrap_or("-")
                ),
            )
        }
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn generic_handler_sees_method_and_body() {
        let mut h = serve_with(
            Arc::new(Echo),
            "127.0.0.1:0",
            ServeOptions { max_body_bytes: 64 },
        )
        .unwrap();
        let addr = h.local_addr();

        let out = roundtrip(
            addr,
            "PUT /v1/matrices/a HTTP/1.1\r\nContent-Type: text/x-mm\r\nContent-Length: 5\r\n\r\nhello",
        );
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
        assert!(out.contains("PUT /v1/matrices/a 5B ct=text/x-mm"), "{out}");

        // Body over the limit: 413 without reading it.
        let out = roundtrip(addr, "PUT /big HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 413 "), "{out}");

        // Malformed request line: 400.
        let out = roundtrip(addr, "garbage\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 400 "), "{out}");

        h.shutdown();
    }
}
