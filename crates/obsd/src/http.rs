//! The embedded HTTP endpoint: a dependency-free `std::net::TcpListener`
//! server on background threads.
//!
//! Scope is deliberately tiny — enough HTTP/1.1 for a Prometheus scraper,
//! a load balancer's health probe, and `curl`:
//!
//! | route          | body                                         | status |
//! |----------------|----------------------------------------------|--------|
//! | `/metrics`     | aggregated Prometheus text (0.0.4)           | 200 |
//! | `/healthz`     | `OK` or `DEGRADED` + per-series reasons      | 200 / 503 |
//! | `/flight`      | flight-ring JSONL dump                       | 200 |
//! | `/attribution` | per-phase self-time table                    | 200 |
//!
//! Anything that is not a well-formed `GET <path> HTTP/1.x` request line is
//! answered `400`; a well-formed non-GET gets `405`; an unknown path `404`.
//! Connections are handled one thread each (scrape traffic is a handful of
//! requests per second at most), `Connection: close` semantics throughout.
//!
//! Shutdown is cooperative: the accept loop checks a stop flag after every
//! accept, and [`ServerHandle::shutdown`] wakes a blocked accept with a
//! self-connect. A ticker thread refreshes the daemon's cached metric
//! snapshot every 250 ms while the server runs (the "periodic registry
//! snapshot" — postmortems and slow scrapers see near-current aggregates).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::{Health, ObsDaemon};

/// Maximum accepted request head (request line + headers).
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(5);
/// Cached-snapshot refresh period.
const TICK: Duration = Duration::from_millis(250);

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address — with `:0` binds, this is where the OS-assigned
    /// port is read back.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the accept loop, and joins both background
    /// threads. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake a blocked `accept` so the loop observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.ticker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServerHandle({})", self.addr)
    }
}

/// Binds `addr` and serves the daemon's endpoints on background threads.
pub fn serve(daemon: ObsDaemon, addr: impl ToSocketAddrs) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    let accept = {
        let stop = Arc::clone(&stop);
        let daemon = daemon.clone();
        std::thread::Builder::new()
            .name("mnc-obsd-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let daemon = daemon.clone();
                    // Thread-per-connection: scrape traffic is sparse, and
                    // a stuck client must not stall the next probe.
                    let _ = std::thread::Builder::new()
                        .name("mnc-obsd-conn".into())
                        .spawn(move || handle_connection(stream, &daemon));
                }
            })?
    };

    let ticker = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("mnc-obsd-tick".into())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    daemon.refresh();
                    std::thread::sleep(TICK);
                }
            })?
    };

    Ok(ServerHandle {
        addr: local,
        stop,
        accept: Some(accept),
        ticker: Some(ticker),
    })
}

fn handle_connection(mut stream: TcpStream, daemon: &ObsDaemon) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let (status, content_type, body) = match read_request(&mut stream) {
        Ok(head) => respond(&head, daemon),
        Err(_) => bad_request(),
    };
    let _ = write_response(&mut stream, status, content_type, &body);
}

/// Reads until the end of the request head (`\r\n\r\n`) or the size limit.
fn read_request(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    String::from_utf8(buf).map_err(|_| std::io::Error::other("non-utf8 request"))
}

/// Routes one request head to `(status line, content type, body)`.
fn respond(head: &str, daemon: &ObsDaemon) -> (&'static str, &'static str, String) {
    let Some((method, path)) = parse_request_line(head) else {
        return bad_request();
    };
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".into(),
        );
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            daemon.metrics_text(),
        ),
        "/healthz" => match daemon.health() {
            Health::Ok => ("200 OK", "text/plain; charset=utf-8", "OK\n".into()),
            Health::Degraded(reasons) => (
                "503 Service Unavailable",
                "text/plain; charset=utf-8",
                format!("DEGRADED\n{}\n", reasons.join("\n")),
            ),
        },
        "/flight" => (
            "200 OK",
            "application/jsonl; charset=utf-8",
            daemon.flight_jsonl(),
        ),
        "/attribution" => (
            "200 OK",
            "text/plain; charset=utf-8",
            daemon.attribution_text(),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".into(),
        ),
    }
}

fn bad_request() -> (&'static str, &'static str, String) {
    (
        "400 Bad Request",
        "text/plain; charset=utf-8",
        "bad request\n".into(),
    )
}

/// Parses `GET /path HTTP/1.x` into `(method, path-sans-query)`; `None`
/// for anything malformed.
fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split(' ');
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if parts.next().is_some()
        || method.is_empty()
        || !method.chars().all(|c| c.is_ascii_uppercase())
        || !target.starts_with('/')
        || !version.starts_with("HTTP/1.")
    {
        return None;
    }
    let path = target.split('?').next().unwrap_or(target);
    Some((method, path))
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parsing() {
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1\r\n"),
            Some(("GET", "/metrics"))
        );
        assert_eq!(
            parse_request_line("GET /metrics?x=1 HTTP/1.0\r\nHost: a\r\n\r\n"),
            Some(("GET", "/metrics"))
        );
        assert_eq!(
            parse_request_line("POST /metrics HTTP/1.1\r\n"),
            Some(("POST", "/metrics"))
        );
        // Malformed shapes.
        assert_eq!(parse_request_line(""), None);
        assert_eq!(parse_request_line("NOT-HTTP\r\n"), None);
        assert_eq!(parse_request_line("GET /x SPDY/3\r\n"), None);
        assert_eq!(parse_request_line("GET metrics HTTP/1.1\r\n"), None);
        assert_eq!(parse_request_line("get /x HTTP/1.1\r\n"), None);
        assert_eq!(parse_request_line("GET /x HTTP/1.1 extra\r\n"), None);
    }
}
