//! The flight recorder: the most recent N spans and accuracy records,
//! always, in O(N) memory.
//!
//! Built on [`RecordRing`] (two rings, one per stream), fed live from the
//! recorder's [`RecordSink`](mnc_obs::RecordSink) tap. Pushing into a ring
//! at capacity allocates nothing for payload-free spans — records move into
//! pre-allocated slots, the overwritten record drops in place — so the
//! recorder can stay on in a service forever (the `flight_alloc`
//! integration test proves this with allocation counters).
//!
//! The dump is JSONL through the *shared* serializers in
//! [`mnc_obs::export`] ([`span_json`], [`accuracy_json`]): a new span
//! payload field lands in `Report::to_jsonl` and the flight dump at once,
//! by construction.

use mnc_obs::export::{accuracy_json, span_json};
use mnc_obs::{AccuracyRecord, RecordRing, SpanRecord};

/// Fixed-capacity retention of the most recent spans and accuracy records.
#[derive(Debug)]
pub struct FlightRecorder {
    spans: RecordRing<SpanRecord>,
    accuracy: RecordRing<AccuracyRecord>,
}

impl FlightRecorder {
    /// A flight recorder retaining the most recent `capacity` records of
    /// each stream (minimum 1). All memory is allocated here.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            spans: RecordRing::new(capacity),
            accuracy: RecordRing::new(capacity),
        }
    }

    /// The per-stream slot count.
    pub fn capacity(&self) -> usize {
        self.spans.capacity()
    }

    /// Records a finished span (clones into the ring; the clone is
    /// allocation-free for spans without an `op` label).
    pub fn record_span(&self, span: &SpanRecord) {
        self.spans.push(span.clone());
    }

    /// Records an accuracy observation.
    pub fn record_accuracy(&self, rec: &AccuracyRecord) {
        self.accuracy.push(rec.clone());
    }

    /// Total spans ever offered (monotone, includes overwritten ones).
    pub fn spans_pushed(&self) -> u64 {
        self.spans.pushed()
    }

    /// Total accuracy records ever offered (monotone).
    pub fn accuracy_pushed(&self) -> u64 {
        self.accuracy.pushed()
    }

    /// Records abandoned under ring contention (expected 0).
    pub fn dropped(&self) -> u64 {
        self.spans.dropped() + self.accuracy.dropped()
    }

    /// Retained spans, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut v = self.spans.collect();
        v.sort_by_key(|s| (s.start_ns, s.id));
        v
    }

    /// Retained span count.
    pub fn span_len(&self) -> usize {
        self.spans.len()
    }

    /// Retained accuracy records, oldest first.
    pub fn accuracy(&self) -> Vec<AccuracyRecord> {
        self.accuracy.collect()
    }

    /// Retained accuracy-record count.
    pub fn accuracy_len(&self) -> usize {
        self.accuracy.len()
    }

    /// The postmortem dump: every retained span then every retained
    /// accuracy record, one JSON object per line, rendered by the shared
    /// serializers in [`mnc_obs::export`].
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.spans() {
            out.push_str(&span_json(&s));
            out.push('\n');
        }
        for a in self.accuracy() {
            out.push_str(&accuracy_json(&a));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, start_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent: 0,
            name: "estimate",
            op: None,
            thread: 0,
            start_ns,
            dur_ns: 10,
            nnz_in: Some(id),
            nnz_out: None,
            synopsis_bytes: None,
            alloc_net: None,
            alloc_bytes: None,
            trace: None,
        }
    }

    #[test]
    fn retains_the_newest_of_both_streams() {
        let f = FlightRecorder::new(4);
        for i in 0..10 {
            f.record_span(&span(i + 1, i * 100));
            f.record_accuracy(&AccuracyRecord::new(
                format!("c{i}"),
                "matmul",
                "MNC",
                0.1,
                0.1,
            ));
        }
        let spans = f.spans();
        assert_eq!(spans.len(), 4);
        assert!(spans.iter().all(|s| s.id > 6));
        assert_eq!(f.accuracy_len(), 4);
        assert_eq!(f.accuracy().last().unwrap().case, "c9");
        assert_eq!(f.spans_pushed(), 10);
        assert_eq!(f.dropped(), 0);
    }

    #[test]
    fn dump_uses_the_shared_serializers() {
        let f = FlightRecorder::new(8);
        let s = span(1, 5);
        f.record_span(&s);
        let a = AccuracyRecord::new("B1.1", "matmul", "MNC", 0.1, 0.2);
        f.record_accuracy(&a);
        let dump = f.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        // Byte-identical to the canonical serializers — the same functions
        // `Report::to_jsonl` renders through.
        assert_eq!(lines[0], span_json(&s));
        assert_eq!(lines[1], accuracy_json(&a));
    }

    #[test]
    fn empty_dump_is_empty() {
        assert_eq!(FlightRecorder::new(4).dump_jsonl(), "");
    }
}
